open Xt_topology
open Xt_bintree
open Xt_embedding

type t = {
  capacity : int;
  (* growable guest arrays *)
  mutable parent : int array;
  mutable left : int array;
  mutable right : int array;
  mutable placement : int array;
  mutable size : int;
  (* host *)
  mutable xt : Xtree.t;
  mutable occ : int array;
}

let grow_guest d =
  let cap = Array.length d.parent in
  if d.size >= cap then begin
    let extend a =
      let a' = Array.make (2 * cap) (-1) in
      Array.blit a 0 a' 0 cap;
      a'
    in
    d.parent <- extend d.parent;
    d.left <- extend d.left;
    d.right <- extend d.right;
    d.placement <- extend d.placement
  end

let create ?(capacity = 16) () =
  if capacity <= 0 then invalid_arg "Dynamic.create";
  let xt = Xtree.create ~height:0 in
  let d =
    {
      capacity;
      parent = Array.make 16 (-1);
      left = Array.make 16 (-1);
      right = Array.make 16 (-1);
      placement = Array.make 16 (-1);
      size = 1;
      xt;
      occ = Array.make 1 0;
    }
  in
  d.placement.(0) <- Xtree.root;
  d.occ.(Xtree.root) <- 1;
  d

let size d = d.size
let root _ = 0
let host_height d = Xtree.height d.xt

let place d v =
  if v < 0 || v >= d.size then invalid_arg "Dynamic.place";
  d.placement.(v)

let total_free d = (d.capacity * Xtree.order d.xt) - d.size

let grow_host d =
  (* Heap ids are stable, so occupancy just extends with zeros. *)
  let xt = Xtree.create ~height:(Xtree.height d.xt + 1) in
  let occ = Array.make (Xtree.order xt) 0 in
  Array.blit d.occ 0 occ 0 (Array.length d.occ);
  d.xt <- xt;
  d.occ <- occ

let nearest_free d from_ =
  let g = Xtree.graph d.xt in
  let seen = Array.make (Graph.n g) false in
  let queue = Queue.create () in
  Queue.add from_ queue;
  seen.(from_) <- true;
  let found = ref (-1) in
  while !found < 0 && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if d.occ.(v) < d.capacity then found := v
    else
      Graph.iter_neighbours g v (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            Queue.add w queue
          end)
  done;
  !found

let add_child d ~parent =
  if parent < 0 || parent >= d.size then invalid_arg "Dynamic.add_child: no such parent";
  if d.left.(parent) >= 0 && d.right.(parent) >= 0 then
    invalid_arg "Dynamic.add_child: parent full";
  if total_free d = 0 then grow_host d;
  grow_guest d;
  let v = d.size in
  d.size <- v + 1;
  d.parent.(v) <- parent;
  if d.left.(parent) < 0 then d.left.(parent) <- v else d.right.(parent) <- v;
  let target = nearest_free d d.placement.(parent) in
  d.placement.(v) <- target;
  d.occ.(target) <- d.occ.(target) + 1;
  v

let to_tree d =
  Bintree.of_arrays ~root:0
    ~parent:(Array.sub d.parent 0 d.size)
    ~left:(Array.sub d.left 0 d.size)
    ~right:(Array.sub d.right 0 d.size)

let to_embedding d =
  Embedding.make ~tree:(to_tree d) ~host:(Xtree.graph d.xt)
    ~place:(Array.sub d.placement 0 d.size)

let load d = Embedding.load (to_embedding d)

let dilation d = Embedding.dilation ~dist:(Xtree.distance d.xt) (to_embedding d)

let rebuild d =
  let tree = to_tree d in
  let res = Theorem1.embed ~capacity:d.capacity tree in
  let res, _ = Repair.improve_theorem1 res in
  d.xt <- res.Theorem1.xt;
  d.occ <- Array.make (Xtree.order d.xt) 0;
  Array.iteri
    (fun v p ->
      d.placement.(v) <- p;
      d.occ.(p) <- d.occ.(p) + 1)
    res.Theorem1.embedding.Embedding.place
