(** Weighted guests: embedding trees whose nodes carry heterogeneous work.

    The paper charges every guest node one unit ("the load factor measures
    the computation work"); real recursion nodes differ in cost. This
    extension embeds a tree with positive integer node weights into an
    X-tree whose vertices have a weight {e budget}, aiming to balance
    total weight per processor while keeping neighbours close.

    The algorithm is weight-aware recursive bisection: each vertex absorbs
    frontier nodes while its budget lasts; the remainder is split into two
    bags of roughly equal {e weight} (greedy component assignment plus one
    corrective carve found by a weighted variant of the paper's find1).
    This is a heuristic, not a theorem: the per-vertex overshoot is
    bounded by the heaviest single node, and benchmark E19 measures the
    achieved imbalance and dilation against the weight-blind Theorem 1
    placement. *)

type result = {
  embedding : Xt_embedding.Embedding.t;
  xt : Xt_topology.Xtree.t;
  height : int;
  budget : int;              (** Weight budget per host vertex. *)
  max_vertex_weight : int;   (** Heaviest vertex in the result. *)
  total_weight : int;
  weights : int array;       (** The guest weights used. *)
}

val embed : ?height:int -> budget:int -> weights:int array -> Xt_bintree.Bintree.t -> result
(** [embed ~budget ~weights t] places every node; [weights] must be
    positive and indexed by guest node. [height] defaults to the smallest
    X-tree whose total budget covers the total weight (with 25% headroom
    for bisection slack). Raises [Invalid_argument] on a non-positive
    weight or budget smaller than the heaviest node. *)

val vertex_weights : result -> int array
(** Total guest weight per host vertex. *)

val imbalance : result -> float
(** [max_vertex_weight / ceil(total_weight / vertices)] — 1.0 is perfect
    balance. *)

val evaluate_placement : weights:int array -> Xt_embedding.Embedding.t -> int
(** Max per-vertex total weight of an arbitrary embedding under the given
    weights — used to score weight-blind baselines. *)
