(** Post-embedding repair: a load-preserving local search that removes the
    rare condition-(3′) violations left by capacity fallbacks.

    The X-TREE algorithm enforces load <= 16 by diverting a placement to
    the nearest free slot when its target vertex is full; the handful of
    edges touching a diverted node may then leave the Figure 2
    neighbourhood (and occasionally push dilation from 3 to 4). This pass
    walks the violating edges and greedily {e swaps} guest nodes between
    host vertices whenever the swap strictly lowers the total badness

    [cost(edge) = 100·(3′ violated) + host distance],

    summed over all edges incident to the swapped pair. Swapping preserves
    per-vertex loads exactly, so Theorem 1's load/expansion guarantees are
    untouched; dilation and (3′) can only improve in total. *)

type report = {
  swaps : int;                (** Accepted swaps. *)
  violations_before : int;    (** Condition-(3′) violations before. *)
  violations_after : int;
  dilation_before : int;
  dilation_after : int;
}

val improve :
  ?max_rounds:int ->
  Xt_topology.Xtree.t ->
  Xt_embedding.Embedding.t ->
  Xt_embedding.Embedding.t * report
(** [improve xt e] runs up to [max_rounds] (default 8) sweeps over the
    violating edges. Returns the repaired embedding (a fresh value; [e] is
    not mutated) and the before/after report. *)

val improve_theorem1 : ?max_rounds:int -> Theorem1.result -> Theorem1.result * report
(** Convenience wrapper re-packaging a Theorem 1 result. *)
