(** Theorem 4: a universal graph of degree at most 415 for binary trees.

    [G_n] ([n = 16·(2{^r+1} - 1) = 2{^r+5} - 16]) has one vertex per
    (X-tree vertex, slot) pair, [slot < 16]. Two slots are adjacent iff
    their X-tree vertices [a], [b] satisfy [b ∈ N(a)] or [a ∈ N(b)] (the
    Figure 2 neighbourhood), or [a = b] (a 16-clique per vertex). Every
    load-16 embedding satisfying condition (3′) then realises its guest
    tree as a spanning tree of [G_n]. *)

type t = {
  graph : Xt_topology.Graph.t;
  xt : Xt_topology.Xtree.t;
  height : int;
  slots : int; (** 16 for the paper's construction. *)
}

val create : ?slots:int -> int -> t
(** [create height] builds [G_n] for the X-tree of the given height. *)

val order : t -> int

val degree_bound : int
(** 415 = 25·16 + 15, the paper's bound for 16 slots. *)

val slot_vertex : t -> xvertex:int -> slot:int -> int
(** Vertex id of a (vertex, slot) pair. *)

val spanning_tree_of : t -> Xt_bintree.Bintree.t -> (int array, string) result
(** Embed the guest with Theorem 1 (capacity = [slots]) on this [t]'s
    X-tree, run the {!Repair} pass to restore condition (3′) on any
    fallback-diverted edges, assign distinct slots per vertex, and check
    that every guest edge is an edge of [G_n]. Returns the injective
    placement, or a description of the first missing edge. The guest must
    have at most [order t] nodes (exactly that many for a spanning
    tree). *)
