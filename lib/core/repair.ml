open Xt_obs
open Xt_topology
open Xt_bintree
open Xt_embedding

let c_swaps = Obs.counter "repair.swaps"
let c_fixed = Obs.counter "repair.fixed_violations"

type report = {
  swaps : int;
  violations_before : int;
  violations_after : int;
  dilation_before : int;
  dilation_after : int;
}

(* Edge badness: condition (3') dominates; distances beyond the paper's
   dilation 3 are punished almost as hard (a swap must never trade a (3')
   fix for a new dilation violation); short distances break ties. *)
let edge_cost xt dist a b =
  let upper, lower = if Xtree.level a <= Xtree.level b then (a, b) else (b, a) in
  let in_n = List.mem lower (Xtree.neighbourhood xt upper) in
  let d = dist a b in
  (if in_n then 0 else 100) + (if d > 3 then 60 * (d - 3) else 0) + d

let improve ?(max_rounds = 8) xt (e : Embedding.t) =
  let n = Bintree.n e.tree in
  let place = Array.copy e.place in
  let dist = Xtree.distance xt in
  (* nodes living at each vertex, maintained across swaps *)
  let residents = Array.make (Graph.n e.host) [] in
  Array.iteri (fun v p -> residents.(p) <- v :: residents.(p)) place;
  let node_cost v =
    let total = ref 0 in
    Bintree.iter_neighbours e.tree v (fun w -> total := !total + edge_cost xt dist place.(v) place.(w));
    !total
  in
  let violations () =
    let count = ref 0 in
    List.iter
      (fun (u, v) ->
        let a = place.(u) and b = place.(v) in
        let upper, lower = if Xtree.level a <= Xtree.level b then (a, b) else (b, a) in
        if not (List.mem lower (Xtree.neighbourhood xt upper)) then incr count)
      (Bintree.edges e.tree);
    !count
  in
  let dilation () =
    List.fold_left
      (fun acc (u, v) -> max acc (dist place.(u) place.(v)))
      0 (Bintree.edges e.tree)
  in
  let violations_before = violations () and dilation_before = dilation () in
  let swaps = ref 0 in
  let swap v w =
    let pv = place.(v) and pw = place.(w) in
    place.(v) <- pw;
    place.(w) <- pv;
    residents.(pv) <- w :: List.filter (fun x -> x <> v) residents.(pv);
    residents.(pw) <- v :: List.filter (fun x -> x <> w) residents.(pw)
  in
  (* try to relocate guest node [v] next to the image of its neighbour
     [anchor_vertex]: candidate hosts are N(anchor) both ways *)
  let try_fix v anchor_vertex =
    let candidates = Xtree.neighbourhood xt anchor_vertex in
    let improved = ref false in
    List.iter
      (fun z ->
        if (not !improved) && z <> place.(v) then
          List.iter
            (fun w ->
              if (not !improved) && w <> v then begin
                let before = node_cost v + node_cost w in
                swap v w;
                let after = node_cost v + node_cost w in
                if after < before then begin
                  improved := true;
                  incr swaps
                end
                else swap v w (* revert *)
              end)
            residents.(z))
      candidates;
    !improved
  in
  let round () =
    let changed = ref false in
    for u = 0 to n - 1 do
      Bintree.iter_neighbours e.tree u (fun v ->
          if u < v then begin
            let a = place.(u) and b = place.(v) in
            let (upper, upper_node), (lower, lower_node) =
              if Xtree.level a <= Xtree.level b then ((a, u), (b, v)) else ((b, v), (a, u))
            in
            if not (List.mem lower (Xtree.neighbourhood xt upper)) then begin
              (* move the lower node next to the upper image, or failing
                 that the upper node next to the lower image *)
              if try_fix lower_node upper then changed := true
              else if try_fix upper_node lower then changed := true
            end
          end)
    done;
    !changed
  in
  let rec loop k = if k > 0 && round () then loop (k - 1) in
  Obs.span "repair.improve" (fun () -> loop max_rounds);
  let repaired = Embedding.make ~tree:e.tree ~host:e.host ~place in
  let violations_after = violations () in
  Obs.add c_swaps !swaps;
  Obs.add c_fixed (max 0 (violations_before - violations_after));
  ( repaired,
    {
      swaps = !swaps;
      violations_before;
      violations_after;
      dilation_before;
      dilation_after = dilation ();
    } )

let improve_theorem1 ?max_rounds (r : Theorem1.result) =
  let repaired, report = improve ?max_rounds r.Theorem1.xt r.Theorem1.embedding in
  ({ r with Theorem1.embedding = repaired }, report)
