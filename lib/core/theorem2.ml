open Xt_prelude
open Xt_topology
open Xt_embedding

type result = {
  embedding : Embedding.t;
  xt : Xtree.t;
  height : int;
  extra_levels : int;
  base : Theorem1.result;
}

let of_theorem1 (base : Theorem1.result) =
  let extra =
    let rec find k = if Bits.pow2 k >= base.capacity then k else find (k + 1) in
    find 0
  in
  let height = base.height + extra in
  let xt = Xtree.create ~height in
  let tree = base.embedding.Embedding.tree in
  let n = Xt_bintree.Bintree.n tree in
  (* Per base vertex, hand out distinct suffixes in arrival order. *)
  let next_suffix = Array.make (Xtree.order base.xt) 0 in
  let place = Array.make n (-1) in
  for v = 0 to n - 1 do
    let a = base.embedding.Embedding.place.(v) in
    let mu = next_suffix.(a) in
    next_suffix.(a) <- mu + 1;
    let level = Xtree.level a + extra in
    let index = (Xtree.index a * Bits.pow2 extra) + mu in
    place.(v) <- Xtree.id ~level ~index
  done;
  let embedding = Embedding.make ~tree ~host:(Xtree.graph xt) ~place in
  { embedding; xt; height; extra_levels = extra; base }

let embed ?capacity ?cache tree = of_theorem1 (Theorem1.embed ?capacity ?cache tree)

let distance_oracle result = Xtree.distance result.xt
