(* Frozen sequential reference for Theorem 1 (ISSUE 6), in the Sim_ref
   pattern: a self-contained copy of the pre-parallelisation pipeline —
   hash-table separator, list-ordered workspace, purely sequential
   ADJUST/SPLIT sweeps — kept verbatim so the reworked flat-workspace,
   domain-parallel core in [Theorem1] can be tested for *bit-identical*
   placements against it. Nothing here is reachable from the production
   path; do not "fix" or optimise this module. *)

open Xt_topology
open Xt_bintree

(* ------------------------------------------------------------------ *)
(* Separator (reference copy)                                          *)
(* ------------------------------------------------------------------ *)

module Sep = struct
  type piece = { nodes : int list; r1 : int; r2 : int option }
  type split = { s1 : int list; t1 : int list; s2 : int list; t2 : int list }

  type ws = {
    tree : Bintree.t;
    mark : int array;
    par : int array;
    size : int array;
    exq : int array;
    exval : int array;
    anc : int array;
    mutable gen : int;
    mutable exgen : int;
    mutable ancgen : int;
    mutable order : int list;
  }

  let make_ws tree =
    let n = Bintree.n tree in
    {
      tree;
      mark = Array.make n 0;
      par = Array.make n (-1);
      size = Array.make n 0;
      exq = Array.make n 0;
      exval = Array.make n 0;
      anc = Array.make n 0;
      gen = 0;
      exgen = 0;
      ancgen = 0;
      order = [];
    }

  let member ws v = ws.mark.(v) = ws.gen

  let load ws nodes r1 =
    ws.gen <- ws.gen + 1;
    List.iter (fun v -> ws.mark.(v) <- ws.gen) nodes;
    if not (member ws r1) then invalid_arg "Separator: designated node not in piece";
    let stack = Stack.create () in
    let order = ref [] in
    ws.par.(r1) <- -1;
    Stack.push r1 stack;
    let visited = Hashtbl.create 64 in
    Hashtbl.replace visited r1 ();
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      order := v :: !order;
      Bintree.iter_neighbours ws.tree v (fun w ->
          if member ws w && not (Hashtbl.mem visited w) then begin
            Hashtbl.replace visited w ();
            ws.par.(w) <- v;
            Stack.push w stack
          end)
    done;
    List.iter (fun v -> ws.size.(v) <- 1) !order;
    List.iter
      (fun v -> if v <> r1 then ws.size.(ws.par.(v)) <- ws.size.(ws.par.(v)) + ws.size.(v))
      !order;
    ws.order <- List.rev !order;
    List.length !order

  let iter_children ws v f =
    Bintree.iter_neighbours ws.tree v (fun w -> if member ws w && ws.par.(w) = v then f w)

  let reset_exclusions ws = ws.exgen <- ws.exgen + 1

  let exclude ws u =
    let s = ws.size.(u) in
    let rec up v =
      if ws.exq.(v) = ws.exgen then ws.exval.(v) <- ws.exval.(v) + s
      else begin
        ws.exq.(v) <- ws.exgen;
        ws.exval.(v) <- s
      end;
      if ws.par.(v) >= 0 then up ws.par.(v)
    in
    up u

  let eff ws v = ws.size.(v) - if ws.exq.(v) = ws.exgen then ws.exval.(v) else 0

  let find1 ws start ~target =
    let rec descend v =
      if 3 * eff ws v <= 4 * target then v
      else begin
        let best = ref (-1) and best_size = ref 0 in
        iter_children ws v (fun c ->
            let s = eff ws c in
            if s > !best_size then begin
              best := c;
              best_size := s
            end);
        if !best < 0 then v else descend !best
      end
    in
    descend start

  let subtree_nodes ws u =
    let acc = ref [] in
    let stack = Stack.create () in
    if eff ws u > 0 then Stack.push u stack;
    while not (Stack.is_empty stack) do
      let v = Stack.pop stack in
      acc := v :: !acc;
      iter_children ws v (fun c -> if eff ws c > 0 then Stack.push c stack)
    done;
    !acc

  let mark_root_path ws u =
    ws.ancgen <- ws.ancgen + 1;
    let rec up v =
      ws.anc.(v) <- ws.ancgen;
      if ws.par.(v) >= 0 then up ws.par.(v)
    in
    up u

  let lca ws u v =
    mark_root_path ws u;
    let rec up w = if ws.anc.(w) = ws.ancgen then w else up ws.par.(w) in
    up v

  let in_subtree ws ~root v =
    let rec up w = if w = root then true else if ws.par.(w) >= 0 then up ws.par.(w) else false in
    up v

  let uniq xs = List.sort_uniq compare xs

  let assemble ws nodes ~s1 ~s2 ~side2_nodes =
    ws.ancgen <- ws.ancgen + 1;
    List.iter (fun v -> ws.anc.(v) <- ws.ancgen) side2_nodes;
    let in2 v = ws.anc.(v) = ws.ancgen in
    let s1 = uniq s1 and s2 = uniq s2 in
    let t1 = List.filter (fun v -> (not (in2 v)) && not (List.mem v s1)) nodes in
    let t2 = List.filter (fun v -> in2 v && not (List.mem v s2)) side2_nodes in
    { s1; t1; s2; t2 }

  let move_all piece =
    let s2 = uniq (piece.r1 :: Option.to_list piece.r2) in
    let t2 = List.filter (fun v -> not (List.mem v s2)) piece.nodes in
    { s1 = []; t1 = []; s2; t2 }

  let swap_sides sp = { s1 = sp.s2; t1 = sp.t2; s2 = sp.s1; t2 = sp.t1 }

  let carve1 ws piece ~target =
    let r1 = piece.r1 in
    let r2 = match piece.r2 with Some r2 when r2 <> r1 -> Some r2 | _ -> None in
    reset_exclusions ws;
    let u = find1 ws r1 ~target in
    if u = r1 then move_all piece
    else begin
      let z = ws.par.(u) in
      let side2 = subtree_nodes ws u in
      match r2 with
      | Some r2 when in_subtree ws ~root:u r2 ->
          assemble ws piece.nodes ~s1:[ r1; z ] ~s2:[ u; r2 ] ~side2_nodes:side2
      | Some r2 ->
          let y = lca ws u r2 in
          assemble ws piece.nodes ~s1:[ r1; r2; z; y ] ~s2:[ u ] ~side2_nodes:side2
      | None -> assemble ws piece.nodes ~s1:[ r1; z ] ~s2:[ u ] ~side2_nodes:side2
    end

  let lemma1 ws piece ~target =
    if target <= 0 then invalid_arg "Separator.lemma1: target must be positive";
    let n = load ws piece.nodes piece.r1 in
    (match piece.r2 with
    | Some r2 when not (member ws r2) -> invalid_arg "Separator.lemma1: r2 not in piece"
    | _ -> ());
    if target >= n then move_all piece
    else if 3 * n > 4 * target then carve1 ws piece ~target
    else swap_sides (carve1 ws piece ~target:(n - target))

  let two_stage_carve ws ~from_ ~target =
    let u1 = find1 ws from_ ~target in
    if u1 = from_ then None
    else begin
      let z1 = ws.par.(u1) in
      let e = eff ws u1 - target in
      if e > 0 then begin
        let u2 = find1 ws u1 ~target:e in
        if u2 = u1 then Some ([ z1 ], [ u1 ], subtree_nodes ws u1)
        else begin
          let p2 = ws.par.(u2) in
          exclude ws u2;
          let side2 = subtree_nodes ws u1 in
          Some ([ z1; u2 ], [ u1; p2 ], side2)
        end
      end
      else if e < 0 then begin
        let side2a = subtree_nodes ws u1 in
        exclude ws u1;
        let u2 = find1 ws z1 ~target:(-e) in
        if u2 = z1 || eff ws u2 <= 0 then Some ([ z1 ], [ u1 ], side2a)
        else begin
          let z2 = ws.par.(u2) in
          let side2b = subtree_nodes ws u2 in
          Some ([ z1; z2 ], [ u1; u2 ], side2a @ side2b)
        end
      end
      else Some ([ z1 ], [ u1 ], subtree_nodes ws u1)
    end

  let carve2 ws piece ~target =
    let r1 = piece.r1 in
    let r2 = match piece.r2 with Some r2 when r2 <> r1 -> r2 | _ -> r1 in
    reset_exclusions ws;
    let path =
      let rec up acc v = if v = r1 then v :: acc else up (v :: acc) ws.par.(v) in
      up [] r2
    in
    let rec walk = function
      | [] -> r2
      | [ v ] -> v
      | v :: rest -> if 3 * ws.size.(v) > 4 * target && v <> r2 then walk rest else v
    in
    let v = walk path in
    if v = r2 && 3 * ws.size.(v) > 4 * target then begin
      match two_stage_carve ws ~from_:r2 ~target with
      | Some (s1x, s2, side2) ->
          assemble ws piece.nodes ~s1:(r1 :: r2 :: s1x) ~s2 ~side2_nodes:side2
      | None -> move_all piece
    end
    else if ws.size.(v) < target then begin
      let x = ws.par.(v) in
      if x < 0 then move_all piece
      else begin
        let a2 = target - ws.size.(v) in
        let side2v = subtree_nodes ws v in
        exclude ws v;
        match two_stage_carve ws ~from_:x ~target:a2 with
        | Some (s1x, s2x, side2c) ->
            assemble ws piece.nodes ~s1:(r1 :: x :: s1x) ~s2:(r2 :: v :: s2x)
              ~side2_nodes:(side2v @ side2c)
        | None ->
            assemble ws piece.nodes ~s1:[ r1; x ] ~s2:[ r2; v ] ~side2_nodes:side2v
      end
    end
    else begin
      let x = ws.par.(v) in
      if x < 0 then move_all piece
      else begin
        let a' = ws.size.(v) - target in
        if a' = 0 then
          assemble ws piece.nodes ~s1:[ r1; x ] ~s2:[ r2; v ] ~side2_nodes:(subtree_nodes ws v)
        else begin
          let u' = find1 ws v ~target:a' in
          if u' = v then
            assemble ws piece.nodes ~s1:[ r1; x ] ~s2:[ r2; v ]
              ~side2_nodes:(subtree_nodes ws v)
          else begin
            let z' = ws.par.(u') in
            exclude ws u';
            let side2 = subtree_nodes ws v in
            if in_subtree ws ~root:u' r2 then
              assemble ws piece.nodes ~s1:(r1 :: x :: [ u'; r2 ]) ~s2:[ v; z' ]
                ~side2_nodes:side2
            else begin
              let y' = lca ws u' r2 in
              assemble ws piece.nodes ~s1:[ r1; x; u' ] ~s2:[ v; z'; r2; y' ]
                ~side2_nodes:side2
            end
          end
        end
      end
    end

  let lemma2 ws piece ~target =
    if target <= 0 then invalid_arg "Separator.lemma2: target must be positive";
    let n = load ws piece.nodes piece.r1 in
    (match piece.r2 with
    | Some r2 when not (member ws r2) -> invalid_arg "Separator.lemma2: r2 not in piece"
    | _ -> ());
    if target >= n then move_all piece
    else if 3 * n > 4 * target then carve2 ws piece ~target
    else swap_sides (carve2 ws piece ~target:(n - target))

  let components ws ~nodes ~removed =
    ws.gen <- ws.gen + 1;
    List.iter (fun v -> ws.mark.(v) <- ws.gen) nodes;
    List.iter (fun v -> ws.mark.(v) <- ws.gen - 1) removed;
    let seen = Hashtbl.create 64 in
    let comps = ref [] in
    List.iter
      (fun v ->
        if member ws v && not (Hashtbl.mem seen v) then begin
          let comp = ref [] in
          let stack = Stack.create () in
          Stack.push v stack;
          Hashtbl.replace seen v ();
          while not (Stack.is_empty stack) do
            let u = Stack.pop stack in
            comp := u :: !comp;
            Bintree.iter_neighbours ws.tree u (fun w ->
                if member ws w && not (Hashtbl.mem seen w) then begin
                  Hashtbl.replace seen w ();
                  Stack.push w stack
                end)
          done;
          comps := !comp :: !comps
        end)
      nodes;
    !comps
end

(* ------------------------------------------------------------------ *)
(* State (reference copy, sequential: no forks, no barrier, no hooks)  *)
(* ------------------------------------------------------------------ *)

module St = struct
  type boundary = { bnode : int; anchor : int }
  type piece = { pid : int; size : int; nodes : int list; bounds : boundary list }

  type t = {
    tree : Bintree.t;
    xt : Xtree.t;
    height : int;
    capacity : int;
    place : int array;
    occ : int array;
    weight : int array;
    attached : piece list array;
    ws : Sep.ws;
    mutable placed : int;
    mutable next_pid : int;
    mutable fallbacks : int;
    mutable wide_pieces : int;
  }

  let create ~tree ~height ~capacity =
    if capacity <= 0 then invalid_arg "State.create: capacity";
    let xt = Xtree.create ~height in
    let order = Xtree.order xt in
    {
      tree;
      xt;
      height;
      capacity;
      place = Array.make (Bintree.n tree) (-1);
      occ = Array.make order 0;
      weight = Array.make order 0;
      attached = Array.make order [];
      ws = Sep.make_ws tree;
      placed = 0;
      next_pid = 0;
      fallbacks = 0;
      wide_pieces = 0;
    }

  let weight_of st v = st.weight.(v)

  let add_weight st v delta =
    let rec up v =
      st.weight.(v) <- st.weight.(v) + delta;
      match Xtree.parent v with Some p -> up p | None -> ()
    in
    up v

  let nearest_free st ~max_level ~from_ =
    let g = Xtree.graph st.xt in
    let seen = Array.make (Graph.n g) false in
    let queue = Queue.create () in
    Queue.add from_ queue;
    seen.(from_) <- true;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if st.occ.(v) < st.capacity && Xtree.level v <= max_level then found := v
      else
        Graph.iter_neighbours g v (fun w ->
            if not seen.(w) then begin
              seen.(w) <- true;
              Queue.add w queue
            end)
    done;
    !found

  let lay st ~max_level ~node ~vertex =
    if st.place.(node) >= 0 then invalid_arg "State.lay: node already placed";
    let target =
      if st.occ.(vertex) < st.capacity && Xtree.level vertex <= max_level then vertex
      else begin
        st.fallbacks <- st.fallbacks + 1;
        let v = nearest_free st ~max_level ~from_:vertex in
        (* Mirrors State.lay: when every level the round may touch is
           exhausted, divert below [max_level] rather than abandoning the
           embedding — dilation grows but the load bound holds. *)
        let v =
          if v >= 0 then v
          else nearest_free st ~max_level:(Xtree.height st.xt) ~from_:vertex
        in
        if v < 0 then invalid_arg "State.lay: host is full";
        v
      end
    in
    st.place.(node) <- target;
    st.occ.(target) <- st.occ.(target) + 1;
    st.placed <- st.placed + 1;
    add_weight st target 1

  let attach st ~vertex piece =
    st.attached.(vertex) <- piece :: st.attached.(vertex);
    add_weight st vertex piece.size

  let detach st ~vertex piece =
    let before = List.length st.attached.(vertex) in
    st.attached.(vertex) <- List.filter (fun p -> p.pid <> piece.pid) st.attached.(vertex);
    if List.length st.attached.(vertex) <> before - 1 then
      invalid_arg "State.detach: piece not attached here";
    add_weight st vertex (-piece.size)

  let make_piece st nodes =
    let bounds = ref [] in
    List.iter
      (fun w ->
        Bintree.iter_neighbours st.tree w (fun x ->
            if st.place.(x) >= 0 then bounds := { bnode = w; anchor = st.place.(x) } :: !bounds))
      nodes;
    let bounds = !bounds in
    if List.length bounds > 2 then st.wide_pieces <- st.wide_pieces + 1;
    let pid = st.next_pid in
    st.next_pid <- pid + 1;
    { pid; size = List.length nodes; nodes; bounds }

  let pieces_at st v = st.attached.(v)

  let separator_piece p =
    match p.bounds with
    | [] -> invalid_arg "State.separator_piece: piece has no boundary"
    | b :: rest ->
        let r2 =
          List.fold_left
            (fun acc b' ->
              match acc with
              | Some _ -> acc
              | None -> if b'.bnode <> b.bnode then Some b'.bnode else None)
            None rest
        in
        { Sep.nodes = p.nodes; r1 = b.bnode; r2 }
end

(* ------------------------------------------------------------------ *)
(* Moves (reference copy)                                              *)
(* ------------------------------------------------------------------ *)

module Mv = struct
  let clamp_vertex st ~floor_level v =
    let rec down v =
      if Xtree.level v >= floor_level then v
      else begin
        let c0 = Xtree.child v 0 and c1 = Xtree.child v 1 in
        down (if St.weight_of st c0 <= St.weight_of st c1 then c0 else c1)
      end
    in
    down v

  let reattach st ~floor_level ~fallback nodes =
    if nodes <> [] then begin
      let comps = Sep.components st.St.ws ~nodes ~removed:[] in
      List.iter
        (fun comp ->
          let piece = St.make_piece st comp in
          let vertex =
            match piece.St.bounds with
            | b :: _ -> clamp_vertex st ~floor_level b.St.anchor
            | [] -> fallback
          in
          St.attach st ~vertex piece)
        comps
    end

  let reattach_to st ~vertex nodes =
    if nodes <> [] then begin
      let comps = Sep.components st.St.ws ~nodes ~removed:[] in
      List.iter
        (fun comp ->
          let piece = St.make_piece st comp in
          St.attach st ~vertex piece)
        comps
    end

  let apply_split st ~max_level ~floor_level (sp : Sep.split) ~dest1 ~dest2 =
    List.iter (fun v -> St.lay st ~max_level ~node:v ~vertex:dest1) sp.s1;
    List.iter (fun v -> St.lay st ~max_level ~node:v ~vertex:dest2) sp.s2;
    reattach st ~floor_level ~fallback:dest1 sp.t1;
    reattach st ~floor_level ~fallback:dest2 sp.t2

  let move_whole st ~max_level ~floor_level (piece : St.piece) ~dest =
    let designated = List.sort_uniq compare (List.map (fun b -> b.St.bnode) piece.bounds) in
    List.iter (fun v -> St.lay st ~max_level ~node:v ~vertex:dest) designated;
    let rest = List.filter (fun v -> not (List.mem v designated)) piece.nodes in
    reattach st ~floor_level ~fallback:dest rest
end

(* ------------------------------------------------------------------ *)
(* ADJUST (reference copy)                                             *)
(* ------------------------------------------------------------------ *)

module Adj = struct
  let rec spine v b lvl = if Xtree.level v >= lvl then v else spine (Xtree.child v b) b lvl

  let run st ~round:i ~a =
    let c0 = Xtree.child a 0 and c1 = Xtree.child a 1 in
    let w0 = St.weight_of st c0 and w1 = St.weight_of st c1 in
    let delta = (max w0 w1 - min w0 w1) / 2 in
    if delta <> 0 then begin
      let heavy_first = w0 > w1 in
      let donor_leaf, receiver_leaf =
        if heavy_first then (spine c0 1 (i - 1), spine c1 0 (i - 1))
        else (spine c1 0 (i - 1), spine c0 1 (i - 1))
      in
      let donor_new = Xtree.child donor_leaf (if heavy_first then 1 else 0) in
      let receiver_new = Xtree.child receiver_leaf (if heavy_first then 0 else 1) in
      let budget_donor = ref 4 and budget_recv = ref 4 in
      let remaining = ref delta in
      let continue_ = ref true in
      while !continue_ do
        let pieces = St.pieces_at st donor_leaf in
        if !remaining <= 0 || pieces = [] then continue_ := false
        else begin
          let big = List.filter (fun p -> p.St.size >= !remaining) pieces in
          let smallest_big =
            match big with
            | [] -> None
            | p :: rest ->
                Some
                  (List.fold_left
                     (fun acc q -> if q.St.size < acc.St.size then q else acc)
                     p rest)
          in
          match smallest_big with
          | Some piece when !budget_donor >= 4 && !budget_recv >= 4 ->
              let sp = Sep.lemma2 st.St.ws (St.separator_piece piece) ~target:!remaining in
              St.detach st ~vertex:donor_leaf piece;
              Mv.apply_split st ~max_level:i ~floor_level:(i - 1) sp ~dest1:donor_new
                ~dest2:receiver_new;
              continue_ := false
          | Some piece
            when !budget_donor >= 4 && !budget_recv >= 2 && 3 * piece.St.size > 4 * !remaining
            ->
              let sp = Sep.lemma1 st.St.ws (St.separator_piece piece) ~target:!remaining in
              St.detach st ~vertex:donor_leaf piece;
              Mv.apply_split st ~max_level:i ~floor_level:(i - 1) sp ~dest1:donor_new
                ~dest2:receiver_new;
              continue_ := false
          | _ ->
              let piece =
                List.fold_left
                  (fun acc p -> if p.St.size > acc.St.size then p else acc)
                  (List.hd pieces) pieces
              in
              let cost =
                max 1
                  (List.length
                     (List.sort_uniq compare (List.map (fun b -> b.St.bnode) piece.bounds)))
              in
              if piece.St.size <= !remaining && !budget_recv >= cost then begin
                St.detach st ~vertex:donor_leaf piece;
                Mv.move_whole st ~max_level:i ~floor_level:(i - 1) piece ~dest:receiver_new;
                budget_recv := !budget_recv - cost;
                remaining := !remaining - piece.St.size
              end
              else continue_ := false
        end
      done
    end
end

(* ------------------------------------------------------------------ *)
(* SPLIT (reference copy)                                              *)
(* ------------------------------------------------------------------ *)

module Spl = struct
  let piece_size (p : St.piece) = p.St.size

  let assign_class ~pairing (bag0, acc0) (bag1, acc1) pieces =
    let pieces =
      if pairing then List.sort (fun a b -> compare (piece_size b) (piece_size a)) pieces
      else pieces
    in
    let flip = ref false in
    List.iter
      (fun p ->
        let to_first = if pairing then !bag0 <= !bag1 else not !flip in
        flip := not !flip;
        if to_first then begin
          bag0 := !bag0 + piece_size p;
          acc0 := p :: !acc0
        end
        else begin
          bag1 := !bag1 + piece_size p;
          acc1 := p :: !acc1
        end)
      pieces

  let run ?(options = Options.default) ?outer_weight st ~round:i ~alpha =
    let capacity = st.St.capacity in
    let outer_weight = match outer_weight with Some f -> f | None -> St.weight_of st in
    let c0 = Xtree.child alpha 0 and c1 = Xtree.child alpha 1 in
    let old_anchor (p : St.piece) =
      List.exists (fun b -> Xtree.level b.St.anchor <= i - 2) p.St.bounds
    in
    let at_alpha = St.pieces_at st alpha in
    let prov0 = St.pieces_at st c0 and prov1 = St.pieces_at st c1 in
    List.iter (fun p -> St.detach st ~vertex:alpha p) at_alpha;
    List.iter (fun p -> St.detach st ~vertex:c0 p) prov0;
    List.iter (fun p -> St.detach st ~vertex:c1 p) prov1;
    let must_lay, dist = List.partition old_anchor at_alpha in
    let size0 = ref 0 and size1 = ref 0 in
    let bag0 = ref [] and bag1 = ref [] in
    let assign_class = assign_class ~pairing:options.Options.pairing in
    assign_class (size0, bag0) (size1, bag1) must_lay;
    assign_class (size0, bag0) (size1, bag1) dist;
    assign_class (size0, bag0) (size1, bag1) (prov0 @ prov1);
    let base0 = St.weight_of st c0 and base1 = St.weight_of st c1 in
    let imbalance_straight = abs (base0 + !size0 - (base1 + !size1)) in
    let imbalance_swapped = abs (base0 + !size1 - (base1 + !size0)) in
    let straight =
      if imbalance_straight <> imbalance_swapped then imbalance_straight < imbalance_swapped
      else begin
        let outer0 = Option.map outer_weight (Xtree.predecessor c0) in
        let outer1 = Option.map outer_weight (Xtree.successor c1) in
        let heavy_is_bag0 = !size0 >= !size1 in
        let prefer_heavy_left =
          match (outer0, outer1) with
          | Some w0, Some w1 -> w0 <= w1
          | Some _, None -> true
          | None, Some _ -> false
          | None, None -> true
        in
        heavy_is_bag0 = prefer_heavy_left
      end
    in
    let side0, side1 = if straight then (!bag0, !bag1) else (!bag1, !bag0) in
    let settle child pieces =
      List.iter
        (fun (p : St.piece) ->
          let to_lay =
            List.sort_uniq compare
              (List.filter_map
                 (fun b ->
                   if Xtree.level b.St.anchor <= i - 2 then Some b.St.bnode else None)
                 p.St.bounds)
          in
          if to_lay = [] then St.attach st ~vertex:child p
          else begin
            List.iter (fun v -> St.lay st ~max_level:i ~node:v ~vertex:child) to_lay;
            let rest = List.filter (fun v -> not (List.mem v to_lay)) p.St.nodes in
            Mv.reattach_to st ~vertex:child rest
          end)
        pieces
    in
    settle c0 side0;
    settle c1 side1;
    let w0 = St.weight_of st c0 and w1 = St.weight_of st c1 in
    let delta = (max w0 w1 - min w0 w1) / 2 in
    if delta > 0 && options.Options.balance_split then begin
      let heavy, light = if w0 >= w1 then (c0, c1) else (c1, c0) in
      if st.St.occ.(heavy) + 4 <= capacity && st.St.occ.(light) + 4 <= capacity then begin
        match St.pieces_at st heavy with
        | [] -> ()
        | pieces ->
            let big = List.filter (fun p -> piece_size p >= delta) pieces in
            let piece =
              match big with
              | p :: rest ->
                  List.fold_left
                    (fun acc q -> if piece_size q < piece_size acc then q else acc)
                    p rest
              | [] ->
                  List.fold_left
                    (fun acc q -> if piece_size q > piece_size acc then q else acc)
                    (List.hd pieces) pieces
            in
            let target = min delta (piece_size piece) in
            if target > 0 then begin
              let sp = Sep.lemma2 st.St.ws (St.separator_piece piece) ~target in
              St.detach st ~vertex:heavy piece;
              Mv.apply_split st ~max_level:i ~floor_level:i sp ~dest1:heavy ~dest2:light
            end
      end
    end;
    let fill child =
      let continue_ = ref true in
      while !continue_ && st.St.occ.(child) < capacity do
        match St.pieces_at st child with
        | [] -> continue_ := false
        | (p : St.piece) :: _ ->
            St.detach st ~vertex:child p;
            let peel =
              match p.St.bounds with b :: _ -> b.St.bnode | [] -> List.hd p.St.nodes
            in
            St.lay st ~max_level:i ~node:peel ~vertex:child;
            let rest = List.filter (fun v -> v <> peel) p.St.nodes in
            Mv.reattach_to st ~vertex:child rest
      done
    in
    fill c0;
    fill c1
end

(* ------------------------------------------------------------------ *)
(* Driver (reference copy: sequential rounds, no cache, no trace)      *)
(* ------------------------------------------------------------------ *)

type result = {
  place : int array;
  height : int;
  capacity : int;
  fallbacks : int;
  wide_pieces : int;
}

let optimal_size ?(capacity = 16) r = capacity * (Xt_prelude.Bits.pow2 (r + 1) - 1)

let height_for ?(capacity = 16) n =
  if n <= 0 then invalid_arg "Theorem1_ref.height_for";
  let rec find r = if optimal_size ~capacity r >= n then r else find (r + 1) in
  find 0

let bfs_prefix tree k =
  let queue = Queue.create () in
  Queue.add (Bintree.root tree) queue;
  let taken = ref [] and count = ref 0 in
  while !count < k && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    taken := v :: !taken;
    incr count;
    List.iter (fun c -> Queue.add c queue) (Bintree.children tree v)
  done;
  List.rev !taken

let final_fill st =
  let height = st.St.height in
  let order = Xtree.order st.St.xt in
  for v = 0 to order - 1 do
    let rec drain () =
      match St.pieces_at st v with
      | [] -> ()
      | (p : St.piece) :: _ ->
          St.detach st ~vertex:v p;
          let member = Hashtbl.create (List.length p.nodes) in
          List.iter (fun w -> Hashtbl.replace member w ()) p.nodes;
          let queue = Queue.create () in
          let seen = Hashtbl.create 16 in
          let seed w =
            if not (Hashtbl.mem seen w) then begin
              Hashtbl.replace seen w ();
              Queue.add w queue
            end
          in
          (match p.bounds with
          | [] -> seed (List.hd p.nodes)
          | bs -> List.iter (fun b -> seed b.St.bnode) bs);
          while not (Queue.is_empty queue) do
            let w = Queue.pop queue in
            let hint = ref v in
            Bintree.iter_neighbours st.St.tree w (fun x ->
                if st.St.place.(x) >= 0 then hint := st.St.place.(x));
            St.lay st ~max_level:height ~node:w ~vertex:!hint;
            Bintree.iter_neighbours st.St.tree w (fun x ->
                if Hashtbl.mem member x && st.St.place.(x) < 0 then seed x)
          done;
          drain ()
    in
    drain ()
  done

let embed ?(capacity = 16) ?height ?(options = Options.default) tree =
  let n = Bintree.n tree in
  let height = match height with Some h -> h | None -> height_for ~capacity n in
  if optimal_size ~capacity height < n then
    invalid_arg "Theorem1_ref.embed: X-tree too small for this guest";
  let st = St.create ~tree ~height ~capacity in
  let d0 = bfs_prefix tree (min capacity n) in
  List.iter (fun node -> St.lay st ~max_level:0 ~node ~vertex:Xtree.root) d0;
  let rest = List.filter (fun v -> st.St.place.(v) < 0) (List.init n Fun.id) in
  Mv.reattach st ~floor_level:0 ~fallback:Xtree.root rest;
  for i = 1 to height do
    if options.Options.adjust then
      for j = 0 to i - 2 do
        List.iter
          (fun a -> Adj.run st ~round:i ~a)
          (Xtree.vertices_at_level st.St.xt j)
      done;
    let level_i = Array.of_list (Xtree.vertices_at_level st.St.xt i) in
    let outer_snap = Array.map (St.weight_of st) level_i in
    let outer_weight v = outer_snap.(Xtree.index v) in
    List.iter
      (fun alpha -> Spl.run ~options ~outer_weight st ~round:i ~alpha)
      (Xtree.vertices_at_level st.St.xt (i - 1))
  done;
  final_fill st;
  {
    place = Array.copy st.St.place;
    height;
    capacity;
    fallbacks = st.St.fallbacks;
    wide_pieces = st.St.wide_pieces;
  }
