(** Mutable state of the X-TREE embedding algorithm (Theorem 1).

    The state tracks, per X-tree vertex: its occupancy (at most [capacity]
    guest nodes), the {e pieces} (residual connected subtrees of the guest)
    attached to it, and the cached total weight of its X-subtree (embedded
    plus attached guest nodes) — the quantity ADJUST balances.

    A piece carries its {e boundaries}: residual nodes adjacent to an
    already-embedded node, together with that neighbour's X-tree vertex
    (the {e anchor}). Under the paper's invariant (6) a piece has at most
    two boundaries sharing one anchor; this implementation tolerates more
    anchors and simply measures the resulting dilation. *)

type boundary = { bnode : int; anchor : int }

type piece = {
  pid : int;
  size : int;
  nodes : int list;
  bounds : boundary list; (** Usually one or two. *)
}

type t = {
  tree : Xt_bintree.Bintree.t;
  xt : Xt_topology.Xtree.t;
  height : int;
  capacity : int;
  place : int array;            (** guest node -> X-tree vertex, [-1] unplaced *)
  occ : int array;              (** per-vertex occupancy *)
  weight : int array;           (** cached X-subtree weights *)
  attached : piece list array;  (** pieces attached per vertex *)
  ws : Xt_bintree.Separator.ws;
  weight_barrier : int;         (** weight updates stop below this vertex id (0 = root) *)
  pid_stride : int;             (** piece-id increment; forks interleave ids *)
  strict : bool;                (** forked view: a diverted [lay] raises *)
  mutable on_touch : int -> unit;
      (** called with every vertex an operation mutates (lay target,
          attach/detach site); [ignore] by default — the parallel sweep
          driver uses it to invalidate stale confinement analyses *)
  mutable placed : int;
  mutable next_pid : int;
  mutable fallbacks : int;      (** placements that had to divert to a free slot *)
  mutable wide_pieces : int;    (** pieces created with more than two boundaries *)
}

val create : tree:Xt_bintree.Bintree.t -> height:int -> capacity:int -> t

val weight_of : t -> int -> int
(** Cached weight of a vertex's X-subtree. *)

val lay : t -> max_level:int -> node:int -> vertex:int -> unit
(** Place a guest node at (or, when the vertex is full, at the nearest
    vertex of level <= [max_level] with a free slot — counted in
    [fallbacks]). Raises [Invalid_argument] if the node is already placed
    or no slot exists. *)

val attach : t -> vertex:int -> piece -> unit
val detach : t -> vertex:int -> piece -> unit

val make_piece : t -> int list -> piece
(** Builds a piece from its node list, scanning for boundaries against the
    current placement. *)

val pieces_at : t -> int -> piece list

val separator_piece : piece -> Xt_bintree.Separator.piece
(** View a piece as input for the separator lemmas ([r1]/[r2] are the
    boundary nodes). Raises [Invalid_argument] on a boundary-less piece. *)

val reattach_components : t -> int list -> default_vertex:int -> unit
(** Split the given residual nodes into connected components, wrap each as
    a piece, and attach every piece to the anchor of its first boundary
    (or to [default_vertex] if it has none). *)

val total_capacity : t -> int

val fork :
  t ->
  ws:Xt_bintree.Separator.ws ->
  pid_base:int ->
  pid_stride:int ->
  weight_barrier:int ->
  t
(** A task-private view of the same embedding for one task of a parallel
    sweep: the placement/occupancy/weight/piece arrays are {e shared},
    while the separator workspace, counters (zeroed), piece-id sequence
    (interleaved: [pid_base], [pid_base + pid_stride], …) and weight
    barrier are private. The view is {e strict}: a [lay] that would
    divert to a fallback slot — and thereby escape the task's subtree —
    raises instead of diverting. Only sound when tasks operate on
    disjoint X-subtrees at or below [weight_barrier]'s level. *)

val join : t -> t list -> unit
(** Fold forked counters ([placed], [fallbacks], [wide_pieces], and the
    piece-id high-water mark) back into the base state. *)

val check_invariants : t -> (unit, string) result
(** Expensive consistency check used by tests: occupancy, weights and
    piece bookkeeping all agree with [place]. *)
