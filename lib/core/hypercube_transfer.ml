open Xt_prelude
open Xt_topology
open Xt_embedding

let chi = Bits.gray

let map_vertex ~height a =
  let l = Xtree.level a in
  if l > height then invalid_arg "Hypercube_transfer.map_vertex";
  let k = Xtree.index a in
  (* MSB-first word chi(a) · 1 · 0^(height - l) of height+1 bits *)
  ((chi k * 2) + 1) * Bits.pow2 (height - l)

let lemma3_distance_bound_holds ~height =
  let xt = Xtree.create ~height in
  let order = Xtree.order xt in
  let ok = ref true in
  for a = 0 to order - 1 do
    let row = Graph.bfs (Xtree.graph xt) a in
    for b = 0 to order - 1 do
      let dq = Bits.hamming (map_vertex ~height a) (map_vertex ~height b) in
      if dq > row.(b) + 1 then ok := false
    done
  done;
  !ok

let siblings_adjacent ~height =
  let xt = Xtree.create ~height in
  let ok = ref true in
  for a = 0 to Xtree.order xt - 1 do
    match Xtree.successor a with
    | Some b ->
        if Bits.hamming (map_vertex ~height a) (map_vertex ~height b) <> 1 then ok := false
    | None -> ()
  done;
  !ok

type result = {
  embedding : Embedding.t;
  cube : Hypercube.t;
  dim : int;
  base : Theorem1.result;
}

let embed ?capacity tree =
  let base = Theorem1.embed ?capacity tree in
  let dim = base.Theorem1.height + 1 in
  let cube = Hypercube.create ~dim in
  let tree = base.Theorem1.embedding.Embedding.tree in
  let place =
    Array.map (fun a -> map_vertex ~height:base.Theorem1.height a)
      base.Theorem1.embedding.Embedding.place
  in
  let embedding = Embedding.make ~tree ~host:(Hypercube.graph cube) ~place in
  { embedding; cube; dim; base }

let embed_injective ?capacity tree =
  let base = Theorem1.embed ?capacity tree in
  let extra =
    let rec find k = if Bits.pow2 k >= base.Theorem1.capacity then k else find (k + 1) in
    find 0
  in
  let dim = base.Theorem1.height + 1 + extra in
  let cube = Hypercube.create ~dim in
  let tree = base.Theorem1.embedding.Embedding.tree in
  let n = Xt_bintree.Bintree.n tree in
  let next_slot = Array.make (Xtree.order base.Theorem1.xt) 0 in
  let place = Array.make n (-1) in
  for v = 0 to n - 1 do
    let a = base.Theorem1.embedding.Embedding.place.(v) in
    let mu = next_slot.(a) in
    next_slot.(a) <- mu + 1;
    place.(v) <- (map_vertex ~height:base.Theorem1.height a * Bits.pow2 extra) + mu
  done;
  let embedding = Embedding.make ~tree ~host:(Hypercube.graph cube) ~place in
  { embedding; cube; dim; base }

let distance_oracle result = Hypercube.distance result.cube
