open Xt_prelude
open Xt_topology
open Xt_bintree
open Xt_embedding

type result = {
  embedding : Embedding.t;
  xt : Xtree.t;
  height : int;
  budget : int;
  max_vertex_weight : int;
  total_weight : int;
  weights : int array;
}

(* Weighted subtree sizes of a component rooted at [r], restricted to
   [member]; returns (order, parent, wsize) as hashtables keyed by node. *)
let rooted tree ~member ~weights r =
  let parent = Hashtbl.create 64 in
  let order = ref [] in
  let stack = Stack.create () in
  Hashtbl.replace parent r (-1);
  Stack.push r stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    order := v :: !order;
    Bintree.iter_neighbours tree v (fun w ->
        if member w && not (Hashtbl.mem parent w) then begin
          Hashtbl.replace parent w v;
          Stack.push w stack
        end)
  done;
  let wsize = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace wsize v weights.(v)) !order;
  List.iter
    (fun v ->
      let p = Hashtbl.find parent v in
      if p >= 0 then Hashtbl.replace wsize p (Hashtbl.find wsize p + Hashtbl.find wsize v))
    !order;
  (List.rev !order, parent, wsize)

(* Weighted find1: descend into the heaviest child while the current
   weighted subtree exceeds 4A/3; carve that subtree out of [nodes].
   Returns (carved, kept). *)
let carve tree ~weights nodes ~target =
  let member_tbl = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace member_tbl v ()) nodes;
  let member v = Hashtbl.mem member_tbl v in
  match nodes with
  | [] -> ([], [])
  | r :: _ ->
      let _, parent, wsize = rooted tree ~member ~weights r in
      let rec descend u =
        if 3 * Hashtbl.find wsize u <= 4 * target then u
        else begin
          let best = ref (-1) and best_w = ref 0 in
          Bintree.iter_neighbours tree u (fun c ->
              if member c && Hashtbl.find parent c = u then begin
                let w = Hashtbl.find wsize c in
                if w > !best_w then begin
                  best := c;
                  best_w := w
                end
              end);
          if !best < 0 then u else descend !best
        end
      in
      let u = descend r in
      if u = r then (nodes, [])
      else begin
        (* collect T(u) *)
        let carved = Hashtbl.create 64 in
        let stack = Stack.create () in
        Hashtbl.replace carved u ();
        Stack.push u stack;
        while not (Stack.is_empty stack) do
          let v = Stack.pop stack in
          Bintree.iter_neighbours tree v (fun w ->
              if member w && Hashtbl.find parent w = v && not (Hashtbl.mem carved w) then begin
                Hashtbl.replace carved w ();
                Stack.push w stack
              end)
        done;
        List.partition (fun v -> Hashtbl.mem carved v) nodes
      end

let components tree nodes =
  let member_tbl = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace member_tbl v ()) nodes;
  let seen = Hashtbl.create 64 in
  let comps = ref [] in
  List.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then begin
        let comp = ref [] in
        let stack = Stack.create () in
        Hashtbl.replace seen v ();
        Stack.push v stack;
        while not (Stack.is_empty stack) do
          let u = Stack.pop stack in
          comp := u :: !comp;
          Bintree.iter_neighbours tree u (fun w ->
              if Hashtbl.mem member_tbl w && not (Hashtbl.mem seen w) then begin
                Hashtbl.replace seen w ();
                Stack.push w stack
              end)
        done;
        comps := !comp :: !comps
      end)
    nodes;
  !comps

let weight_of weights nodes = List.fold_left (fun acc v -> acc + weights.(v)) 0 nodes

let embed ?height ~budget ~weights tree =
  let n = Bintree.n tree in
  if Array.length weights <> n then invalid_arg "Weighted.embed: weights size";
  Array.iter (fun w -> if w <= 0 then invalid_arg "Weighted.embed: non-positive weight") weights;
  let heaviest = Array.fold_left max 0 weights in
  if budget < heaviest then invalid_arg "Weighted.embed: budget below heaviest node";
  let total_weight = Array.fold_left ( + ) 0 weights in
  let height =
    match height with
    | Some h -> h
    | None ->
        (* 25% headroom over the perfectly balanced requirement *)
        let needed = total_weight + (total_weight / 4) in
        let rec find r = if budget * (Bits.pow2 (r + 1) - 1) >= needed then r else find (r + 1) in
        find 0
  in
  let xt = Xtree.create ~height in
  let place = Array.make n (-1) in
  (* Peel frontier nodes (adjacent to something placed, or the seed) into
     [vertex] while the budget lasts; returns the rest. *)
  let fill vertex nodes =
    let remaining = ref nodes and used = ref 0 in
    let continue_ = ref true in
    while !continue_ && !remaining <> [] do
      let frontier =
        List.filter
          (fun v ->
            let adj = ref false in
            Bintree.iter_neighbours tree v (fun w -> if place.(w) >= 0 then adj := true);
            !adj)
          !remaining
      in
      let candidates = if frontier = [] then [ List.hd !remaining ] else frontier in
      let placeable = List.filter (fun v -> !used + weights.(v) <= budget) candidates in
      match placeable with
      | [] -> continue_ := false
      | _ ->
          (* heaviest-first keeps the bin packing tight *)
          let v =
            List.fold_left (fun acc v -> if weights.(v) > weights.(acc) then v else acc)
              (List.hd placeable) placeable
          in
          place.(v) <- vertex;
          used := !used + weights.(v);
          remaining := List.filter (fun w -> w <> v) !remaining
    done;
    !remaining
  in
  (* Split [nodes] into two bags of roughly equal total weight. *)
  let bisect nodes =
    let comps = components tree nodes in
    let sized = List.map (fun c -> (weight_of weights c, c)) comps in
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) sized in
    let s0 = ref 0 and s1 = ref 0 and b0 = ref [] and b1 = ref [] in
    List.iter
      (fun (w, c) ->
        if !s0 <= !s1 then begin
          s0 := !s0 + w;
          b0 := c :: !b0
        end
        else begin
          s1 := !s1 + w;
          b1 := c :: !b1
        end)
      sorted;
    let delta = (max !s0 !s1 - min !s0 !s1) / 2 in
    if delta > 0 then begin
      let heavy, light, hs, ls = if !s0 >= !s1 then (b0, b1, s0, s1) else (b1, b0, s1, s0) in
      match List.sort (fun a b -> compare (weight_of weights b) (weight_of weights a)) !heavy with
      | biggest :: rest when List.length biggest > 1 ->
          let carved, kept = carve tree ~weights biggest ~target:delta in
          if kept <> [] && carved <> [] then begin
            let moved = weight_of weights carved in
            heavy := kept :: rest;
            light := carved :: !light;
            hs := !hs - moved;
            ls := !ls + moved
          end
      | _ -> ()
    end;
    (List.concat !b0, List.concat !b1)
  in
  let rec go vertex nodes =
    if nodes <> [] then
      if Xtree.level vertex = height then List.iter (fun v -> place.(v) <- vertex) nodes
      else begin
        let rest = fill vertex nodes in
        let left, right = bisect rest in
        go (Xtree.child vertex 0) left;
        go (Xtree.child vertex 1) right
      end
  in
  go Xtree.root (List.init n Fun.id);
  (* Spill pass: recursive bisection cannot correct compounding errors
     (that is exactly the paper's point), so vertices can end up over
     budget — evict their lightest nodes to the nearest vertex with room.
     The 25% default headroom guarantees room exists somewhere. *)
  let vweights = Array.make (Xtree.order xt) 0 in
  Array.iteri (fun v p -> vweights.(p) <- vweights.(p) + weights.(v)) place;
  let host = Xtree.graph xt in
  let nearest_with_room from_ w =
    let seen = Array.make (Graph.n host) false in
    let queue = Queue.create () in
    Queue.add from_ queue;
    seen.(from_) <- true;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      if v <> from_ && vweights.(v) + w <= budget then found := v
      else
        Graph.iter_neighbours host v (fun u ->
            if not seen.(u) then begin
              seen.(u) <- true;
              Queue.add u queue
            end)
    done;
    !found
  in
  for vertex = 0 to Xtree.order xt - 1 do
    if vweights.(vertex) > budget then begin
      (* residents, lightest first *)
      let residents = ref [] in
      Array.iteri (fun v p -> if p = vertex then residents := v :: !residents) place;
      let ordered = List.sort (fun a b -> compare weights.(a) weights.(b)) !residents in
      List.iter
        (fun v ->
          if vweights.(vertex) > budget then begin
            let target = nearest_with_room vertex weights.(v) in
            if target >= 0 then begin
              place.(v) <- target;
              vweights.(vertex) <- vweights.(vertex) - weights.(v);
              vweights.(target) <- vweights.(target) + weights.(v)
            end
          end)
        ordered
    end
  done;
  let embedding = Embedding.make ~tree ~host:(Xtree.graph xt) ~place in
  let vweights = Array.make (Xtree.order xt) 0 in
  Array.iteri (fun v p -> vweights.(p) <- vweights.(p) + weights.(v)) place;
  let max_vertex_weight = Array.fold_left max 0 vweights in
  { embedding; xt; height; budget; max_vertex_weight; total_weight; weights }

let vertex_weights_from ~weights (e : Embedding.t) =
  let vweights = Array.make (Graph.n e.host) 0 in
  Array.iteri (fun v p -> vweights.(p) <- vweights.(p) + weights.(v)) e.place;
  vweights

let vertex_weights r = vertex_weights_from ~weights:r.weights r.embedding

let imbalance r =
  let vertices = Xtree.order r.xt in
  let ideal = (r.total_weight + vertices - 1) / vertices in
  float_of_int r.max_vertex_weight /. float_of_int (max 1 ideal)

let evaluate_placement ~weights (e : Embedding.t) =
  Array.fold_left max 0 (vertex_weights_from ~weights e)
