open Xt_obs
open Xt_topology
open Xt_bintree

(* Work counters: totals depend only on the embedding computed, not on
   how the sweep was scheduled, so they match across domain budgets. *)
let c_active = Obs.counter "adjust.active_calls"
let c_whole = Obs.counter "adjust.whole_moves"
let c_splits = Obs.counter "adjust.lemma_splits"
let c_nodes = Obs.counter "adjust.nodes_moved"

(* Descend from [v] appending bit [b] until reaching [lvl]. *)
let rec spine v b lvl = if Xtree.level v >= lvl then v else spine (Xtree.child v b) b lvl

type plan = { donor_leaf : int; receiver_leaf : int; donor_new : int; receiver_new : int; delta : int }

let plan st ~round:i ~a =
  let c0 = Xtree.child a 0 and c1 = Xtree.child a 1 in
  let w0 = State.weight_of st c0 and w1 = State.weight_of st c1 in
  let delta = (max w0 w1 - min w0 w1) / 2 in
  if delta = 0 then None
  else begin
    (* Boundary leaves at level i-1; ADJUST lays out at their inward
       children on level i, which are horizontal neighbours. *)
    let heavy_first = w0 > w1 in
    let donor_leaf, receiver_leaf =
      if heavy_first then (spine c0 1 (i - 1), spine c1 0 (i - 1))
      else (spine c1 0 (i - 1), spine c0 1 (i - 1))
    in
    let donor_new = Xtree.child donor_leaf (if heavy_first then 1 else 0) in
    let receiver_new = Xtree.child receiver_leaf (if heavy_first then 0 else 1) in
    Some { donor_leaf; receiver_leaf; donor_new; receiver_new; delta }
  end

let run st ~round:i ~a =
  match plan st ~round:i ~a with
  | None -> ()
  | Some { donor_leaf; donor_new; receiver_new; delta; receiver_leaf = _ } ->
      Obs.incr c_active;
      (* Budgets: at most 4 nodes laid per new leaf by one ADJUST call. *)
      let budget_donor = ref 4 and budget_recv = ref 4 in
      let remaining = ref delta in
      let continue_ = ref true in
      while !continue_ do
        let pieces = State.pieces_at st donor_leaf in
        if !remaining <= 0 || pieces = [] then continue_ := false
        else begin
          (* Case A: a piece of at least the remaining deficit exists —
             split it (Lemma 2 with full budgets, Lemma 1 with a reduced
             receiver budget, as in the paper's case B) and stop. *)
          let big = List.filter (fun p -> p.State.size >= !remaining) pieces in
          let smallest_big =
            match big with
            | [] -> None
            | p :: rest ->
                Some (List.fold_left (fun acc q -> if q.State.size < acc.State.size then q else acc) p rest)
          in
          match smallest_big with
          | Some piece when !budget_donor >= 4 && !budget_recv >= 4 ->
              let sp = Separator.lemma2 st.State.ws (State.separator_piece piece) ~target:!remaining in
              State.detach st ~vertex:donor_leaf piece;
              Moves.apply_split st ~max_level:i ~floor_level:(i - 1) sp ~dest1:donor_new
                ~dest2:receiver_new;
              Obs.incr c_splits;
              Obs.add c_nodes !remaining;
              continue_ := false
          | Some piece
            when !budget_donor >= 4 && !budget_recv >= 2 && 3 * piece.State.size > 4 * !remaining ->
              (* Lemma 1 lays at most 2 nodes on the receiver side. *)
              let sp = Separator.lemma1 st.State.ws (State.separator_piece piece) ~target:!remaining in
              State.detach st ~vertex:donor_leaf piece;
              Moves.apply_split st ~max_level:i ~floor_level:(i - 1) sp ~dest1:donor_new
                ~dest2:receiver_new;
              Obs.incr c_splits;
              Obs.add c_nodes !remaining;
              continue_ := false
          | _ ->
              (* Case B/C: move the largest whole piece across, budget
                 permitting, and iterate. *)
              let piece =
                List.fold_left (fun acc p -> if p.State.size > acc.State.size then p else acc)
                  (List.hd pieces) pieces
              in
              let cost =
                max 1
                  (List.length
                     (List.sort_uniq compare (List.map (fun b -> b.State.bnode) piece.bounds)))
              in
              if piece.State.size <= !remaining && !budget_recv >= cost then begin
                State.detach st ~vertex:donor_leaf piece;
                Moves.move_whole st ~max_level:i ~floor_level:(i - 1) piece ~dest:receiver_new;
                Obs.incr c_whole;
                Obs.add c_nodes piece.State.size;
                budget_recv := !budget_recv - cost;
                remaining := !remaining - piece.State.size
              end
              else continue_ := false
        end
      done
