(** The procedure SPLIT of the paper.

    [run st ~round:i ~alpha] distributes everything attached to the
    level-(i-1) vertex [alpha] onto its two children:

    + pieces with an anchor two or more levels up {e must} lay their
      anchored boundary nodes now (condition (4) allows a level gap of at
      most two);
    + all pieces — including those provisionally placed at the children by
      this round's ADJUST calls — are paired largest-against-the-lighter-bag
      into two bags, which are then oriented onto the children;
    + a final Lemma 2 split over the remaining free slots reduces the
      children's weight difference;
    + each child is topped up to [capacity] with frontier nodes (residual
      nodes adjacent to an already-laid node). *)

val run :
  ?options:Options.t ->
  ?outer_weight:(int -> int) ->
  State.t ->
  round:int ->
  alpha:int ->
  unit
(** [outer_weight] supplies the weight of the level-[i] vertices just
    outside [alpha]'s subtree, read only to break orientation ties.
    Defaults to the live weights; {!Theorem1.embed} passes a pre-sweep
    snapshot of the whole level so every SPLIT of a sweep sees the same
    outer weights regardless of execution order — the property that lets
    sweeps run in parallel. *)
