open Xt_obs
open Xt_topology
open Xt_bintree

(* Work counters; like ADJUST's they are schedule-independent. *)
let c_calls = Obs.counter "split.calls"
let c_pieces = Obs.counter "split.pieces"
let c_balance = Obs.counter "split.balance_splits"
let c_fill = Obs.counter "split.fill_laid"

let piece_size (p : State.piece) = p.State.size

(* Pair pieces of one class largest-first, sending the larger of each pair
   to the currently lighter bag; [bags] are (size ref, piece list ref).
   Without [pairing] (ablation), assign alternately in arrival order. *)
let assign_class ~pairing (bag0, acc0) (bag1, acc1) pieces =
  let pieces =
    if pairing then List.sort (fun a b -> compare (piece_size b) (piece_size a)) pieces
    else pieces
  in
  let flip = ref false in
  List.iter
    (fun p ->
      let to_first = if pairing then !bag0 <= !bag1 else not !flip in
      flip := not !flip;
      if to_first then begin
        bag0 := !bag0 + piece_size p;
        acc0 := p :: !acc0
      end
      else begin
        bag1 := !bag1 + piece_size p;
        acc1 := p :: !acc1
      end)
    pieces

let run ?(options = Options.default) ?outer_weight st ~round:i ~alpha =
  let capacity = st.State.capacity in
  (* Weight of a level-i vertex outside alpha's subtree, read only for
     the orientation tie-break. Callers sweeping a whole level pass a
     pre-sweep snapshot so the tie-break is independent of how much of
     the sweep has already run — which also removes the one cross-subtree
     read that would block parallel sweeps. *)
  let outer_weight = match outer_weight with Some f -> f | None -> State.weight_of st in
  let c0 = Xtree.child alpha 0 and c1 = Xtree.child alpha 1 in
  let old_anchor (p : State.piece) =
    List.exists (fun b -> Xtree.level b.State.anchor <= i - 2) p.State.bounds
  in
  let at_alpha = State.pieces_at st alpha in
  let prov0 = State.pieces_at st c0 and prov1 = State.pieces_at st c1 in
  Obs.incr c_calls;
  Obs.add c_pieces (List.length at_alpha + List.length prov0 + List.length prov1);
  List.iter (fun p -> State.detach st ~vertex:alpha p) at_alpha;
  List.iter (fun p -> State.detach st ~vertex:c0 p) prov0;
  List.iter (fun p -> State.detach st ~vertex:c1 p) prov1;
  let must_lay, dist = List.partition old_anchor at_alpha in
  (* Bags: pair within each class (paper's S1 / S2 / S3). *)
  let size0 = ref 0 and size1 = ref 0 in
  let bag0 = ref [] and bag1 = ref [] in
  let assign_class = assign_class ~pairing:options.Options.pairing in
  assign_class (size0, bag0) (size1, bag1) must_lay;
  assign_class (size0, bag0) (size1, bag1) dist;
  assign_class (size0, bag0) (size1, bag1) (prov0 @ prov1);
  (* Orientation: base weights already under each child (ADJUST layouts)
     plus bag weight; choose the mapping with the smaller imbalance,
     breaking ties towards draining into the lighter outer neighbour. *)
  let base0 = State.weight_of st c0 and base1 = State.weight_of st c1 in
  let imbalance_straight = abs (base0 + !size0 - (base1 + !size1)) in
  let imbalance_swapped = abs (base0 + !size1 - (base1 + !size0)) in
  let straight =
    if imbalance_straight <> imbalance_swapped then imbalance_straight < imbalance_swapped
    else begin
      let outer0 = Option.map outer_weight (Xtree.predecessor c0) in
      let outer1 = Option.map outer_weight (Xtree.successor c1) in
      let heavy_is_bag0 = !size0 >= !size1 in
      let prefer_heavy_left =
        match (outer0, outer1) with
        | Some w0, Some w1 -> w0 <= w1
        | Some _, None -> true
        | None, Some _ -> false
        | None, None -> true
      in
      heavy_is_bag0 = prefer_heavy_left
    end
  in
  let side0, side1 = if straight then (!bag0, !bag1) else (!bag1, !bag0) in
  (* Place each piece on its side: lay old-anchored boundary nodes, then
     attach the (remaining) components to the child. *)
  let settle child pieces =
    List.iter
      (fun (p : State.piece) ->
        let to_lay =
          List.sort_uniq compare
            (List.filter_map
               (fun b ->
                 if Xtree.level b.State.anchor <= i - 2 then Some b.State.bnode else None)
               p.State.bounds)
        in
        if to_lay = [] then State.attach st ~vertex:child p
        else begin
          List.iter (fun v -> State.lay st ~max_level:i ~node:v ~vertex:child) to_lay;
          let rest = List.filter (fun v -> not (List.mem v to_lay)) p.State.nodes in
          Moves.reattach_to st ~vertex:child rest
        end)
      pieces
  in
  settle c0 side0;
  settle c1 side1;
  (* Final balancing over the free slots (paper: Lemma 2 using the at most
     4 remaining places on each child). *)
  let w0 = State.weight_of st c0 and w1 = State.weight_of st c1 in
  let delta = (max w0 w1 - min w0 w1) / 2 in
  if delta > 0 && options.Options.balance_split then begin
    let heavy, light = if w0 >= w1 then (c0, c1) else (c1, c0) in
    if st.State.occ.(heavy) + 4 <= capacity && st.State.occ.(light) + 4 <= capacity then begin
      match State.pieces_at st heavy with
      | [] -> ()
      | pieces ->
          let big = List.filter (fun p -> piece_size p >= delta) pieces in
          let piece =
            match big with
            | p :: rest ->
                List.fold_left (fun acc q -> if piece_size q < piece_size acc then q else acc) p rest
            | [] ->
                List.fold_left
                  (fun acc q -> if piece_size q > piece_size acc then q else acc)
                  (List.hd pieces) pieces
          in
          let target = min delta (piece_size piece) in
          if target > 0 then begin
            let sp = Separator.lemma2 st.State.ws (State.separator_piece piece) ~target in
            State.detach st ~vertex:heavy piece;
            Moves.apply_split st ~max_level:i ~floor_level:i sp ~dest1:heavy ~dest2:light;
            Obs.incr c_balance
          end
      end
  end;
  (* Fill each child to capacity with frontier nodes. *)
  let fill child =
    let continue_ = ref true in
    while !continue_ && st.State.occ.(child) < capacity do
      match State.pieces_at st child with
      | [] -> continue_ := false
      | (p : State.piece) :: _ ->
          State.detach st ~vertex:child p;
          let peel =
            match p.State.bounds with
            | b :: _ -> b.State.bnode
            | [] -> List.hd p.State.nodes
          in
          State.lay st ~max_level:i ~node:peel ~vertex:child;
          Obs.incr c_fill;
          let rest = List.filter (fun v -> v <> peel) p.State.nodes in
          Moves.reattach_to st ~vertex:child rest
    done
  in
  fill c0;
  fill c1
