(** Online embedding of a {e growing} binary tree.

    The paper's motivation — binary trees as the shape of running
    divide-and-conquer programs — is inherently online: the recursion tree
    unfolds node by node. This module maintains an embedding while the
    guest grows:

    - a new leaf is placed at its parent's X-tree vertex when a slot is
      free, otherwise at the nearest vertex with a free slot;
    - when the host fills up completely its height grows by one (heap
      vertex ids are stable: [X(r)] is an induced prefix of [X(r+1)]);
    - quality degrades gradually; {!rebuild} re-runs the offline
      Theorem 1 algorithm (plus {!Repair}) on the current tree, restoring
      dilation ~3.

    Benchmark E11 measures the degradation/rebuild trade-off. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh guest consisting of a single root node, placed at the root of
    [X(0)]. *)

val size : t -> int

val root : t -> int

val add_child : t -> parent:int -> int
(** Attach a new leaf under [parent] and place it. Returns the new node's
    id. Raises [Invalid_argument] if [parent] already has two children or
    does not exist. *)

val host_height : t -> int

val place : t -> int -> int
(** Current X-tree vertex of a guest node. *)

val load : t -> int

val dilation : t -> int
(** Maximum host distance over current guest edges (computed on demand). *)

val rebuild : t -> unit
(** Re-embed the current tree offline (Theorem 1 + repair). Host height is
    re-chosen to be optimal for the current size. *)

val to_tree : t -> Xt_bintree.Bintree.t
(** Snapshot of the current guest as an immutable tree (ids preserved). *)

val to_embedding : t -> Xt_embedding.Embedding.t
(** Snapshot of the current placement over the current host. *)
