open Xt_obs
open Xt_topology
open Xt_bintree

(* How often a forked view's weight update was cut off at its barrier
   (the sweep driver repays these with one ancestor fixup per vertex).
   Scheduling-dependent: only forked views have a barrier above root. *)
let c_barrier_stops = Obs.counter "state.weight_barrier_stops"

type boundary = { bnode : int; anchor : int }

type piece = { pid : int; size : int; nodes : int list; bounds : boundary list }

type t = {
  tree : Bintree.t;
  xt : Xtree.t;
  height : int;
  capacity : int;
  place : int array;
  occ : int array;
  weight : int array;
  attached : piece list array;
  ws : Separator.ws;
  weight_barrier : int;
  pid_stride : int;
  strict : bool;
  mutable on_touch : int -> unit;
  mutable placed : int;
  mutable next_pid : int;
  mutable fallbacks : int;
  mutable wide_pieces : int;
}

let create ~tree ~height ~capacity =
  if capacity <= 0 then invalid_arg "State.create: capacity";
  let xt = Xtree.create ~height in
  let order = Xtree.order xt in
  {
    tree;
    xt;
    height;
    capacity;
    place = Array.make (Bintree.n tree) (-1);
    occ = Array.make order 0;
    weight = Array.make order 0;
    attached = Array.make order [];
    ws = Separator.make_ws tree;
    weight_barrier = 0;
    pid_stride = 1;
    strict = false;
    on_touch = ignore;
    placed = 0;
    next_pid = 0;
    fallbacks = 0;
    wide_pieces = 0;
  }

let weight_of st v = st.weight.(v)

(* Weight updates stop at [weight_barrier]: a forked view confines them
   to the swept subtree; the sweep driver restores the ancestor weights
   in one additive fixup after the parallel batch. The default barrier 0
   propagates all the way to the root. *)
let add_weight st v delta =
  let rec up v =
    st.weight.(v) <- st.weight.(v) + delta;
    match Xtree.parent v with
    | Some p when p >= st.weight_barrier -> up p
    | Some _ -> Obs.incr c_barrier_stops
    | None -> ()
  in
  up v

(* Nearest vertex with a free slot among levels <= max_level, by BFS from
   [from_] in the X-tree. *)
let nearest_free st ~max_level ~from_ =
  let g = Xtree.graph st.xt in
  let seen = Array.make (Graph.n g) false in
  let queue = Queue.create () in
  Queue.add from_ queue;
  seen.(from_) <- true;
  let found = ref (-1) in
  while !found < 0 && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if st.occ.(v) < st.capacity && Xtree.level v <= max_level then found := v
    else
      Graph.iter_neighbours g v (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            Queue.add w queue
          end)
  done;
  !found

let lay st ~max_level ~node ~vertex =
  if st.place.(node) >= 0 then invalid_arg "State.lay: node already placed";
  let target =
    if st.occ.(vertex) < st.capacity && Xtree.level vertex <= max_level then vertex
    else begin
      if st.strict then invalid_arg "State.lay: confined placement overflowed";
      st.fallbacks <- st.fallbacks + 1;
      let v = nearest_free st ~max_level ~from_:vertex in
      (* Tight capacities (e.g. 4) can exhaust every level the round is
         allowed to touch while deeper levels still have slack; diverting
         below [max_level] costs dilation but keeps the load bound and
         places every node, where raising would abandon the embedding. *)
      let v =
        if v >= 0 then v
        else nearest_free st ~max_level:(Xtree.height st.xt) ~from_:vertex
      in
      if v < 0 then invalid_arg "State.lay: host is full";
      v
    end
  in
  st.on_touch target;
  st.place.(node) <- target;
  st.occ.(target) <- st.occ.(target) + 1;
  st.placed <- st.placed + 1;
  add_weight st target 1

let attach st ~vertex piece =
  st.on_touch vertex;
  st.attached.(vertex) <- piece :: st.attached.(vertex);
  add_weight st vertex piece.size

let detach st ~vertex piece =
  st.on_touch vertex;
  let before = List.length st.attached.(vertex) in
  st.attached.(vertex) <- List.filter (fun p -> p.pid <> piece.pid) st.attached.(vertex);
  if List.length st.attached.(vertex) <> before - 1 then
    invalid_arg "State.detach: piece not attached here";
  add_weight st vertex (-piece.size)

let make_piece st nodes =
  let bounds = ref [] in
  List.iter
    (fun w ->
      Bintree.iter_neighbours st.tree w (fun x ->
          if st.place.(x) >= 0 then bounds := { bnode = w; anchor = st.place.(x) } :: !bounds))
    nodes;
  let bounds = !bounds in
  if List.length bounds > 2 then st.wide_pieces <- st.wide_pieces + 1;
  let pid = st.next_pid in
  st.next_pid <- pid + st.pid_stride;
  { pid; size = List.length nodes; nodes; bounds }

let pieces_at st v = st.attached.(v)

let separator_piece p =
  match p.bounds with
  | [] -> invalid_arg "State.separator_piece: piece has no boundary"
  | b :: rest ->
      let r2 =
        List.fold_left
          (fun acc b' -> match acc with Some _ -> acc | None -> if b'.bnode <> b.bnode then Some b'.bnode else None)
          None rest
      in
      { Separator.nodes = p.nodes; r1 = b.bnode; r2 }

let reattach_components st nodes ~default_vertex =
  if nodes <> [] then begin
    let comps = Separator.components st.ws ~nodes ~removed:[] in
    List.iter
      (fun comp ->
        let piece = make_piece st comp in
        let vertex = match piece.bounds with b :: _ -> b.anchor | [] -> default_vertex in
        attach st ~vertex piece)
      comps
  end

let total_capacity st = st.capacity * Xtree.order st.xt

(* A fork is a view of the same embedding (the big arrays are shared) for
   one task of a parallel sweep. It differs from the base state in what
   it must not share: a private separator workspace, counters starting at
   zero (folded back by [join]), an interleaved piece-id sequence (ids
   from distinct forks never collide), a weight barrier confining weight
   propagation to the swept subtree, and strict placement (a diverted
   [lay] would escape the task's subtree, so it raises instead). *)
let fork st ~ws ~pid_base ~pid_stride ~weight_barrier =
  {
    st with
    ws;
    weight_barrier;
    pid_stride;
    strict = true;
    on_touch = ignore;
    next_pid = pid_base;
    placed = 0;
    fallbacks = 0;
    wide_pieces = 0;
  }

let join st forks =
  List.iter
    (fun f ->
      st.placed <- st.placed + f.placed;
      st.fallbacks <- st.fallbacks + f.fallbacks;
      st.wide_pieces <- st.wide_pieces + f.wide_pieces;
      if f.next_pid > st.next_pid then st.next_pid <- f.next_pid)
    forks

let check_invariants st =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let order = Xtree.order st.xt in
  (* occupancy matches place *)
  let occ' = Array.make order 0 in
  let placed' = ref 0 in
  Array.iter
    (fun v ->
      if v >= 0 then begin
        occ'.(v) <- occ'.(v) + 1;
        incr placed'
      end)
    st.place;
  if occ' <> st.occ then fail "occupancy out of sync"
  else if !placed' <> st.placed then fail "placed counter out of sync"
  else begin
    (* every guest node is placed xor belongs to exactly one piece *)
    let covered = Array.make (Bintree.n st.tree) 0 in
    Array.iteri (fun v p -> if p >= 0 then covered.(v) <- covered.(v) + 1) st.place;
    Array.iter
      (fun pieces ->
        List.iter (fun p -> List.iter (fun v -> covered.(v) <- covered.(v) + 1) p.nodes) pieces)
      st.attached;
    let bad = ref None in
    Array.iteri
      (fun v c -> if c <> 1 && !bad = None then bad := Some (v, c))
      covered;
    match !bad with
    | Some (v, c) -> fail "guest node %d covered %d times" v c
    | None ->
        (* weights: recompute bottom-up *)
        let w = Array.make order 0 in
        for v = order - 1 downto 0 do
          let own = st.occ.(v) + List.fold_left (fun acc p -> acc + p.size) 0 st.attached.(v) in
          let kids =
            let c0 = (2 * v) + 1 and c1 = (2 * v) + 2 in
            (if c0 < order then w.(c0) else 0) + if c1 < order then w.(c1) else 0
          in
          w.(v) <- own + kids
        done;
        if w <> st.weight then fail "weights out of sync" else Ok ()
  end
