open Xt_topology
open Xt_bintree
open Xt_embedding

type report = {
  edges : int;
  cond3_violations : int;
  cond4_violations : int;
  max_level_gap : int;
}

let check xt (e : Embedding.t) =
  let edges = Bintree.edges e.tree in
  let cond3 = ref 0 and cond4 = ref 0 and gap = ref 0 in
  List.iter
    (fun (u, v) ->
      let a = e.place.(u) and b = e.place.(v) in
      let upper, lower = if Xtree.level a <= Xtree.level b then (a, b) else (b, a) in
      let g = Xtree.level lower - Xtree.level upper in
      if g > !gap then gap := g;
      if g > 2 then incr cond4;
      if not (List.mem lower (Xtree.neighbourhood xt upper)) then incr cond3)
    edges;
  { edges = List.length edges; cond3_violations = !cond3; cond4_violations = !cond4; max_level_gap = !gap }

let check_theorem1 (r : Theorem1.result) = check r.Theorem1.xt r.Theorem1.embedding
