type t = { adjust : bool; pairing : bool; balance_split : bool }

let default = { adjust = true; pairing = true; balance_split = true }
let no_adjust = { default with adjust = false }
let no_pairing = { default with pairing = false }
let no_balance = { default with balance_split = false }

let variants =
  [
    ("full", default);
    ("no-adjust", no_adjust);
    ("no-pairing", no_pairing);
    ("no-balance", no_balance);
  ]
