(** The procedure ADJUST of the paper.

    [run st ~round:i ~a] balances the X-subtree weights of [a]'s two
    children using the unique horizontally adjacent leaf pair across the
    cut — the rightmost level-(i-1) leaf below [a0] and the leftmost below
    [a1]. Pieces attached to the heavy side's boundary leaf are split
    (Lemma 2 / Lemma 1) or shifted whole; the separator nodes are laid out
    at the two new level-i leaves under the boundary, at most four nodes
    per leaf. *)

type plan = {
  donor_leaf : int;     (** level-(i-1) boundary leaf on the heavy side *)
  receiver_leaf : int;  (** its horizontal neighbour across the cut *)
  donor_new : int;      (** level-i child receiving the donor-side layout *)
  receiver_new : int;   (** level-i child receiving the moved nodes *)
  delta : int;          (** half the weight difference; always > 0 *)
}

val plan : State.t -> round:int -> a:int -> plan option
(** The sites one [run] call would operate on, or [None] when the
    children are already balanced (weight difference at most 1) and
    [run] would be a no-op. Used by the parallel sweep driver to decide
    whether an ADJUST call is confined to [a]'s subtree. *)

val run : State.t -> round:int -> a:int -> unit
