(** The procedure ADJUST of the paper.

    [run st ~round:i ~a] balances the X-subtree weights of [a]'s two
    children using the unique horizontally adjacent leaf pair across the
    cut — the rightmost level-(i-1) leaf below [a0] and the leftmost below
    [a1]. Pieces attached to the heavy side's boundary leaf are split
    (Lemma 2 / Lemma 1) or shifted whole; the separator nodes are laid out
    at the two new level-i leaves under the boundary, at most four nodes
    per leaf. *)

val run : State.t -> round:int -> a:int -> unit
