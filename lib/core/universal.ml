open Xt_topology
open Xt_bintree
open Xt_embedding

type t = { graph : Graph.t; xt : Xtree.t; height : int; slots : int }

let degree_bound = 415

let slot_vertex_raw slots a mu = (a * slots) + mu

let create ?(slots = 16) height =
  let xt = Xtree.create ~height in
  let order = Xtree.order xt in
  let edges = ref [] in
  for a = 0 to order - 1 do
    (* clique inside a vertex *)
    for mu = 0 to slots - 1 do
      for nu = mu + 1 to slots - 1 do
        edges := (slot_vertex_raw slots a mu, slot_vertex_raw slots a nu) :: !edges
      done
    done;
    (* complete bipartite towards every member of N(a) *)
    List.iter
      (fun b ->
        if b <> a then
          for mu = 0 to slots - 1 do
            for nu = 0 to slots - 1 do
              edges := (slot_vertex_raw slots a mu, slot_vertex_raw slots b nu) :: !edges
            done
          done)
      (Xtree.neighbourhood xt a)
  done;
  { graph = Graph.of_edges ~n:(order * slots) !edges; xt; height; slots }

let order t = Graph.n t.graph

let slot_vertex t ~xvertex ~slot =
  if slot < 0 || slot >= t.slots then invalid_arg "Universal.slot_vertex";
  slot_vertex_raw t.slots xvertex slot

let spanning_tree_of t tree =
  let n = Bintree.n tree in
  if n > order t then Error "guest larger than the universal graph"
  else begin
    let res = Theorem1.embed ~capacity:t.slots ~height:t.height tree in
    (* remove any fallback-induced (3') violations; load is preserved *)
    let res, _ = Repair.improve_theorem1 res in
    let next_slot = Array.make (Xtree.order t.xt) 0 in
    let place = Array.make n (-1) in
    for v = 0 to n - 1 do
      let a = res.Theorem1.embedding.Embedding.place.(v) in
      let mu = next_slot.(a) in
      next_slot.(a) <- mu + 1;
      place.(v) <- slot_vertex_raw t.slots a mu
    done;
    let missing =
      List.find_opt (fun (u, v) -> not (Graph.has_edge t.graph place.(u) place.(v))) (Bintree.edges tree)
    in
    match missing with
    | None -> Ok place
    | Some (u, v) ->
        Error
          (Printf.sprintf "guest edge %d-%d maps to non-adjacent slots (%s to %s)" u v
             (Xtree.to_string res.Theorem1.embedding.Embedding.place.(u))
             (Xtree.to_string res.Theorem1.embedding.Embedding.place.(v)))
  end
