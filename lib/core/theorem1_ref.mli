(** Frozen sequential reference for Theorem 1 (ISSUE 6), analogous to
    [Xt_netsim.Sim_ref]: a verbatim copy of the pre-parallelisation
    pipeline (hash-table separator workspace, sequential ADJUST/SPLIT
    sweeps). The production [Theorem1] — flat workspaces, domain-parallel
    sweeps — must produce bit-identical placements; the equivalence suite
    in [test_theorem1_ref.ml] checks exactly that. Not reachable from any
    production path, deliberately unoptimised: do not modify. *)

type result = {
  place : int array;  (** guest node -> host vertex *)
  height : int;
  capacity : int;
  fallbacks : int;
  wide_pieces : int;
}

val optimal_size : ?capacity:int -> int -> int
val height_for : ?capacity:int -> int -> int

val embed : ?capacity:int -> ?height:int -> ?options:Options.t -> Xt_bintree.Bintree.t -> result
(** Sequential Theorem 1 embedding, exactly as shipped before the
    parallel construction landed. *)
