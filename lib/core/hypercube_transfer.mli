(** Lemma 3 and Theorem 3: transferring the X-tree embedding into
    hypercubes.

    Lemma 3 embeds [X(r)] injectively into [Q_{r+1}] so that X-tree
    distance [Δ] becomes hypercube distance at most [Δ + 1]: the vertex
    with address [a] (level [l]) maps to the [(r+1)]-bit word
    [χ(a)·1·0^{r-l}], where [χ] is the differential (Gray) recoding
    [b₁ = a₁], [b_ν = a_ν ⊕ a_{ν-1}].

    Theorem 3 composes Theorem 1 with Lemma 3: every binary tree with
    [n = 16·(2^r - 1)] nodes embeds into its optimal hypercube [Q_r] with
    load 16 and dilation 4; appending the 4 slot bits of Theorem 2 gives an
    injective embedding into [Q_{r+4}] with dilation 8. *)

val chi : int -> int
(** The bit recoding [χ] on level indices: the binary-reflected Gray code. *)

val map_vertex : height:int -> int -> int
(** [map_vertex ~height a] is the [Q_{height+1}] label of X-tree vertex
    [a] under Lemma 3. Raises [Invalid_argument] if [a] does not belong to
    [X(height)]. *)

val lemma3_distance_bound_holds : height:int -> bool
(** Exhaustively checks [dist_Q(map α, map β) <= dist_X(α, β) + 1] over
    all vertex pairs of [X(height)] — feasible up to height ~8. *)

val siblings_adjacent : height:int -> bool
(** Exhaustively checks the stepping stone of Lemma 3's proof: horizontal
    neighbours of [X(height)] map to hypercube neighbours. *)

type result = {
  embedding : Xt_embedding.Embedding.t;
  cube : Xt_topology.Hypercube.t;
  dim : int;
  base : Theorem1.result;
}

val embed : ?capacity:int -> Xt_bintree.Bintree.t -> result
(** Theorem 3: load-[capacity] embedding into the smallest sufficient
    hypercube, via Theorem 1 and Lemma 3. *)

val embed_injective : ?capacity:int -> Xt_bintree.Bintree.t -> result
(** The injective corollary: append slot bits, one dimension per
    capacity-doubling (4 extra dimensions for capacity 16). *)

val distance_oracle : result -> int -> int -> int
(** Hamming distance on the host labels. *)
