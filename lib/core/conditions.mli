(** Checkers for the structural conditions (3′) and (4) of the paper's
    Theorem 1 proof, measured on a finished embedding.

    Condition (3′): for every guest edge [{u, v}] with [|δ(u)| <= |δ(v)|],
    the image [δ(v)] lies in the neighbourhood [N(δ(u))] of Figure 2.
    Condition (4): the levels of the two images differ by at most 2.

    The implementation enforces neither (it enforces the load bound and
    measures dilation instead), so these reports quantify how closely a
    run tracks the paper's invariants; (3′) also certifies membership of
    the guest in the Theorem 4 universal graph. *)

type report = {
  edges : int;
  cond3_violations : int;  (** Guest edges with [δ(v) ∉ N(δ(u))]. *)
  cond4_violations : int;  (** Guest edges with level gap > 2. *)
  max_level_gap : int;
}

val check : Xt_topology.Xtree.t -> Xt_embedding.Embedding.t -> report

val check_theorem1 : Theorem1.result -> report
