open Xt_obs
open Xt_prelude
open Xt_topology
open Xt_bintree
open Xt_embedding

let c_rounds = Obs.counter "theorem1.rounds"

type trace = {
  rounds : int array array;
  spreads : (int * int) array array;
}

type result = {
  embedding : Embedding.t;
  xt : Xtree.t;
  height : int;
  capacity : int;
  fallbacks : int;
  wide_pieces : int;
  trace : trace option;
}

let optimal_size ?(capacity = 16) r = capacity * (Bits.pow2 (r + 1) - 1)

let height_for ?(capacity = 16) n =
  if n <= 0 then invalid_arg "Theorem1.height_for";
  let rec find r = if optimal_size ~capacity r >= n then r else find (r + 1) in
  find 0

(* First [k] nodes of the guest in BFS order from its root: a connected
   set whose complement's components each hang by a single edge. *)
let bfs_prefix tree k =
  let queue = Queue.create () in
  Queue.add (Bintree.root tree) queue;
  let taken = ref [] and count = ref 0 in
  while !count < k && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    taken := v :: !taken;
    incr count;
    List.iter (fun c -> Queue.add c queue) (Bintree.children tree v)
  done;
  List.rev !taken

let snapshot st ~height =
  let row = Array.make (max height 1) 0 in
  for j = 0 to height - 1 do
    let best = ref 0 in
    List.iter
      (fun a ->
        let d =
          abs
            (State.weight_of st (Xtree.child a 0) - State.weight_of st (Xtree.child a 1))
        in
        if d > !best then best := d)
      (Xtree.vertices_at_level st.State.xt j);
    row.(j) <- !best
  done;
  row

(* nl(j,i) / nh(j,i) of the paper: the per-level extremes of the number
   of guest nodes associated to one X-subtree. *)
let snapshot_spread st ~height =
  let row = Array.make (height + 1) (0, 0) in
  for j = 0 to height do
    let lo = ref max_int and hi = ref 0 in
    List.iter
      (fun a ->
        let w = State.weight_of st a in
        if w < !lo then lo := w;
        if w > !hi then hi := w)
      (Xtree.vertices_at_level st.State.xt j);
    row.(j) <- ((if !lo = max_int then 0 else !lo), !hi)
  done;
  row

(* Place every node still living in a piece: breadth-first from the
   piece's boundary nodes, each node next to an already-placed tree
   neighbour (State.lay diverts to the nearest free slot if needed). *)
let final_fill st =
  let height = st.State.height in
  let order = Xtree.order st.State.xt in
  for v = 0 to order - 1 do
    let rec drain () =
      match State.pieces_at st v with
      | [] -> ()
      | (p : State.piece) :: _ ->
          State.detach st ~vertex:v p;
          let member = Hashtbl.create (List.length p.nodes) in
          List.iter (fun w -> Hashtbl.replace member w ()) p.nodes;
          let queue = Queue.create () in
          let seen = Hashtbl.create 16 in
          let seed w =
            if not (Hashtbl.mem seen w) then begin
              Hashtbl.replace seen w ();
              Queue.add w queue
            end
          in
          (match p.bounds with
          | [] -> seed (List.hd p.nodes)
          | bs -> List.iter (fun b -> seed b.State.bnode) bs);
          while not (Queue.is_empty queue) do
            let w = Queue.pop queue in
            let hint = ref v in
            Bintree.iter_neighbours st.State.tree w (fun x ->
                if st.State.place.(x) >= 0 then hint := st.State.place.(x));
            State.lay st ~max_level:height ~node:w ~vertex:!hint;
            Bintree.iter_neighbours st.State.tree w (fun x ->
                if Hashtbl.mem member x && st.State.place.(x) < 0 then seed x)
          done;
          drain ()
    in
    drain ()
  done

(* ------------------------------------------------------------------ *)
(* Parallel sweeps                                                     *)
(*                                                                     *)
(* ADJUST sweeps a whole X-tree level, one call per vertex, and so does *)
(* SPLIT one level further down. A call at vertex [a] usually only      *)
(* reads and writes state inside subtree(a) — subtrees of distinct      *)
(* level-j vertices are disjoint, so such calls commute and a left-to-  *)
(* right sweep can run them concurrently without changing any result.   *)
(* The driver below proves confinement per vertex before the sweep      *)
(* (conservatively: every neighbour of every piece at the call's sites  *)
(* resolves inside the subtree, and enough capacity slack rules out     *)
(* diverted placements), runs maximal runs of confined vertices as one  *)
(* pool batch on forked state views, and executes the rest sequentially *)
(* in order — invalidating pending analyses through [State.on_touch]    *)
(* whenever a sequential call mutates a foreign subtree.                *)
(* ------------------------------------------------------------------ *)

(* Guest node -> id of the level-[j] ancestor of the vertex its piece is
   attached to; -1 when placed, loose, or attached above level [j]. *)
let owner_map st ~level:j =
  let own = Array.make (Bintree.n st.State.tree) (-1) in
  let base = Bits.pow2 j - 1 in
  Array.iteri
    (fun v pieces ->
      if v >= base && pieces <> [] then begin
        let anc = Xtree.id ~level:j ~index:(Xtree.index v lsr (Xtree.level v - j)) in
        List.iter
          (fun (p : State.piece) -> List.iter (fun x -> own.(x) <- anc) p.State.nodes)
          pieces
      end)
    st.State.attached;
  own

(* A piece is confined to subtree(a) when every tree-neighbour of its
   nodes either is already placed inside that subtree (placed nodes never
   move, so the read is stable) or is unplaced but owned by [a] itself
   (only a's own call may place it). *)
let piece_confined st own a (p : State.piece) =
  List.for_all
    (fun x ->
      let ok = ref true in
      Bintree.iter_neighbours st.State.tree x (fun y ->
          if !ok then begin
            let pv = st.State.place.(y) in
            if pv >= 0 then begin
              if not (Xtree.is_ancestor a pv) then ok := false
            end
            else if own.(y) <> a then ok := false
          end);
      !ok)
    p.State.nodes

(* Capacity slack: a confined call must never trigger the nearest-free
   fallback in [State.lay], which wanders outside the subtree. ADJUST
   lays at most 4 nodes on each new leaf (separator Lemmas 1/2 and the
   move budget); 4 free slots at both suffice. *)
let adjust_confined st own ~round:i ~a =
  match Adjust.plan st ~round:i ~a with
  | None -> true
  | Some { Adjust.donor_leaf; donor_new; receiver_new; _ } ->
      st.State.occ.(donor_new) + 4 <= st.State.capacity
      && st.State.occ.(receiver_new) + 4 <= st.State.capacity
      && List.for_all (piece_confined st own a) (State.pieces_at st donor_leaf)

(* SPLIT lays the old-anchored boundary nodes of its pieces (at most
   [s] in total, whichever way the bags fall) plus at most 4 nodes per
   child from the final Lemma 2 balance; the fill loop guards its own
   occupancy. *)
let split_confined st own ~round:i ~alpha =
  let c0 = Xtree.child alpha 0 and c1 = Xtree.child alpha 1 in
  let pieces = State.pieces_at st alpha @ State.pieces_at st c0 @ State.pieces_at st c1 in
  let to_lay (p : State.piece) =
    List.length
      (List.sort_uniq compare
         (List.filter_map
            (fun (b : State.boundary) ->
              if Xtree.level b.State.anchor <= i - 2 then Some b.State.bnode else None)
            p.State.bounds))
  in
  let s = List.fold_left (fun acc p -> acc + to_lay p) 0 pieces in
  st.State.occ.(c0) + s + 4 <= st.State.capacity
  && st.State.occ.(c1) + s + 4 <= st.State.capacity
  && List.for_all (piece_confined st own alpha) pieces

(* Separator workspaces for forked views: one per pool domain, owned for
   the life of the process and rebound (grow-to-fit, no clearing pass) to
   whatever tree the current batch works on. A domain executes one chunk
   at a time, so the workspace is never shared — even when batches of
   distinct concurrent embeds interleave on the same domain. *)
let sep_slots : Separator.ws Parallel.slots = Parallel.make_slots ()

let domain_ws tree =
  let ws = Parallel.slot sep_slots ~default:(fun () -> Separator.make_ws tree) in
  Separator.rebind_ws ws tree;
  ws

let min_parallel_level = 8 (* levels narrower than this aren't worth analysing *)
let min_parallel_run = 2

let sweep st ~par ~level:j ~confined_of ~op verts =
  let nv = Array.length verts in
  if (not par) || nv < min_parallel_level || Parallel.domain_budget () <= 1 then
    Array.iter (op st) verts
  else begin
    let own = owner_map st ~level:j in
    let confined = Array.map (confined_of own) verts in
    let demoted = Array.make nv false in
    let base = Bits.pow2 j - 1 in
    (* A sequential call touched vertex [v]: any pending analysis for
       v's level-j ancestor is stale. *)
    let hook v =
      if v >= base then begin
        let k = Xtree.index v lsr (Xtree.level v - j) in
        if k < nv then demoted.(k) <- true
      end
    in
    let run_seq a =
      st.State.on_touch <- hook;
      Fun.protect ~finally:(fun () -> st.State.on_touch <- ignore) (fun () -> op st a)
    in
    let run_batch lo hi =
      let w_before = Array.init (hi - lo) (fun k -> State.weight_of st verts.(lo + k)) in
      let lanes = min (hi - lo) (Parallel.domain_budget ()) in
      let nchunks = min (hi - lo) (2 * lanes) in
      let csize = (hi - lo + nchunks - 1) / nchunks in
      let forks = Array.make nchunks None in
      Parallel.parallel_for ~chunk:1 nchunks (fun c ->
          let fst_ =
            State.fork st ~ws:(domain_ws st.State.tree) ~pid_base:(st.State.next_pid + c)
              ~pid_stride:nchunks ~weight_barrier:base
          in
          forks.(c) <- Some fst_;
          let b = min hi (lo + ((c + 1) * csize)) in
          for k = lo + (c * csize) to b - 1 do
            op fst_ verts.(k)
          done);
      State.join st (Array.to_list forks |> List.filter_map Fun.id);
      (* Forked weight updates stopped at level j; restore the ancestors
         with one additive fixup per swept vertex. *)
      for k = 0 to hi - lo - 1 do
        let delta = State.weight_of st verts.(lo + k) - w_before.(k) in
        if delta <> 0 then begin
          let rec up v =
            match Xtree.parent v with
            | Some p ->
                st.State.weight.(p) <- st.State.weight.(p) + delta;
                up p
            | None -> ()
          in
          up verts.(lo + k)
        end
      done
    in
    let pos = ref 0 in
    while !pos < nv do
      if confined.(!pos) && not demoted.(!pos) then begin
        let e = ref !pos in
        while !e < nv && confined.(!e) && not demoted.(!e) do
          incr e
        done;
        if !e - !pos >= min_parallel_run then run_batch !pos !e
        else
          for k = !pos to !e - 1 do
            run_seq verts.(k)
          done;
        pos := !e
      end
      else begin
        run_seq verts.(!pos);
        incr pos
      end
    done
  end

let embed_uncached ?(capacity = 16) ?height ?(record_trace = false) ?(options = Options.default)
    ?par tree =
  let n = Bintree.n tree in
  let height = match height with Some h -> h | None -> height_for ~capacity n in
  if optimal_size ~capacity height < n then
    invalid_arg "Theorem1.embed: X-tree too small for this guest";
  let par =
    match par with
    | Some b -> b
    | None -> Parallel.domain_budget () > 1 && not (Parallel.in_parallel_region ())
  in
  let st = State.create ~tree ~height ~capacity in
  (* Round 0: the initial subtree D0 at the root. *)
  let d0 = bfs_prefix tree (min capacity n) in
  List.iter (fun node -> State.lay st ~max_level:0 ~node ~vertex:Xtree.root) d0;
  let rest = List.filter (fun v -> st.State.place.(v) < 0) (List.init n Fun.id) in
  Moves.reattach st ~floor_level:0 ~fallback:Xtree.root rest;
  (* Rounds 1..r. *)
  let rows = ref [] and spread_rows = ref [] in
  Obs.span ~arg:n "theorem1.embed" (fun () ->
      for i = 1 to height do
        Obs.span ~arg:i "theorem1.round" @@ fun () ->
        Obs.incr c_rounds;
        if options.Options.adjust then
          for j = 0 to i - 2 do
            Obs.span ~arg:j "theorem1.adjust-sweep" @@ fun () ->
            sweep st ~par ~level:j
              ~confined_of:(fun own a -> adjust_confined st own ~round:i ~a)
              ~op:(fun stv a -> Adjust.run stv ~round:i ~a)
              (Array.of_list (Xtree.vertices_at_level st.State.xt j))
          done;
        (* Snapshot the level-i weights once: every SPLIT of the sweep breaks
           orientation ties against the same pre-sweep outer weights, in both
           sequential and parallel execution. *)
        let level_i = Array.of_list (Xtree.vertices_at_level st.State.xt i) in
        let outer_snap = Array.map (State.weight_of st) level_i in
        let outer_weight v = outer_snap.(Xtree.index v) in
        (Obs.span ~arg:(i - 1) "theorem1.split-sweep" @@ fun () ->
         sweep st ~par ~level:(i - 1)
           ~confined_of:(fun own alpha -> split_confined st own ~round:i ~alpha)
           ~op:(fun stv alpha -> Split.run ~options ~outer_weight stv ~round:i ~alpha)
           (Array.of_list (Xtree.vertices_at_level st.State.xt (i - 1))));
        if record_trace then begin
          rows := snapshot st ~height :: !rows;
          spread_rows := snapshot_spread st ~height :: !spread_rows
        end
      done;
      Obs.span "theorem1.final-fill" (fun () -> final_fill st));
  let embedding = Embedding.make ~tree ~host:(Xtree.graph st.State.xt) ~place:st.State.place in
  {
    embedding;
    xt = st.State.xt;
    height;
    capacity;
    fallbacks = st.State.fallbacks;
    wide_pieces = st.State.wide_pieces;
    trace =
      (if record_trace then
         Some
           {
             rounds = Array.of_list (List.rev !rows);
             spreads = Array.of_list (List.rev !spread_rows);
           }
       else None);
  }

(* ------------------------------------------------------------------ *)
(* Canonical-shape cache                                               *)
(* ------------------------------------------------------------------ *)

(* Everything of a result except the embedding and the trace is shared
   verbatim between the hits of one entry; the host [Xtree.t] in
   particular amortises its graph (and its memoised BFS rows) across all
   trees of the shape. *)
type cache_meta = {
  m_xt : Xtree.t;
  m_height : int;
  m_fallbacks : int;
  m_wide : int;
}

type cache = cache_meta Shape_memo.t

let make_cache ?shards ?capacity ?max_bytes () = Shape_memo.create ?shards ?capacity ?max_bytes ()

let cache_length = Shape_memo.length
let cache_stats = Shape_memo.stats

(* Snapshot meta codec: the host [Xtree.t] is fully determined by its
   height, so only the three integers travel; reloads rebuild the host
   once per distinct height and share it across entries, exactly as the
   live cache shares it across hits. *)
let encode_cache_meta m = Printf.sprintf "%d %d %d" m.m_height m.m_fallbacks m.m_wide

let make_cache_meta_decoder () =
  let hosts = Hashtbl.create 4 in
  fun s ->
    match Scanf.sscanf s " %d %d %d %!" (fun h f w -> (h, f, w)) with
    | exception _ -> None
    | h, f, w when h >= 0 && f >= 0 && w >= 0 ->
        let xt =
          match Hashtbl.find_opt hosts h with
          | Some xt -> xt
          | None ->
              let xt = Xtree.create ~height:h in
              Hashtbl.add hosts h xt;
              xt
        in
        Some { m_xt = xt; m_height = h; m_fallbacks = f; m_wide = w }
    | _ -> None

let cache_save cache ~file = Shape_memo.save cache ~encode_meta:encode_cache_meta ~file

let cache_load cache ~file =
  Shape_memo.load cache ~decode_meta:(make_cache_meta_decoder ()) ~file

let flag b = if b then 't' else 'f'

let cache_prefix ~name ~capacity ~height (options : Options.t) =
  (* [par] is deliberately absent: parallel sweeps are bit-identical to
     sequential ones, so both populate and consume the same entries. *)
  Printf.sprintf "%s|c=%d|h=%d|o=%c%c%c" name capacity height (flag options.adjust)
    (flag options.pairing) (flag options.balance_split)

let embed ?capacity ?height ?record_trace ?options ?par ?cache tree =
  match cache with
  | Some memo when record_trace <> Some true ->
      let cap = Option.value capacity ~default:16 in
      let opts = Option.value options ~default:Options.default in
      let h =
        match height with Some h -> h | None -> height_for ~capacity:cap (Bintree.n tree)
      in
      let prefix = cache_prefix ~name:"t1" ~capacity:cap ~height:h opts in
      let place, m =
        Shape_memo.memo memo ~prefix ~tree ~compute:(fun () ->
            let r = embed_uncached ~capacity:cap ~height:h ~options:opts ?par tree in
            ( r.embedding.Embedding.place,
              { m_xt = r.xt; m_height = r.height; m_fallbacks = r.fallbacks; m_wide = r.wide_pieces }
            ))
      in
      {
        embedding = Embedding.make ~tree ~host:(Xtree.graph m.m_xt) ~place;
        xt = m.m_xt;
        height = m.m_height;
        capacity = cap;
        fallbacks = m.m_fallbacks;
        wide_pieces = m.m_wide;
        trace = None;
      }
  | _ -> embed_uncached ?capacity ?height ?record_trace ?options ?par tree

let distance_oracle result = Xtree.distance result.xt
