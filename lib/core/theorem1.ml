open Xt_prelude
open Xt_topology
open Xt_bintree
open Xt_embedding

type trace = {
  rounds : int array array;
  spreads : (int * int) array array;
}

type result = {
  embedding : Embedding.t;
  xt : Xtree.t;
  height : int;
  capacity : int;
  fallbacks : int;
  wide_pieces : int;
  trace : trace option;
}

let optimal_size ?(capacity = 16) r = capacity * (Bits.pow2 (r + 1) - 1)

let height_for ?(capacity = 16) n =
  if n <= 0 then invalid_arg "Theorem1.height_for";
  let rec find r = if optimal_size ~capacity r >= n then r else find (r + 1) in
  find 0

(* First [k] nodes of the guest in BFS order from its root: a connected
   set whose complement's components each hang by a single edge. *)
let bfs_prefix tree k =
  let queue = Queue.create () in
  Queue.add (Bintree.root tree) queue;
  let taken = ref [] and count = ref 0 in
  while !count < k && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    taken := v :: !taken;
    incr count;
    List.iter (fun c -> Queue.add c queue) (Bintree.children tree v)
  done;
  List.rev !taken

let snapshot st ~height =
  let row = Array.make (max height 1) 0 in
  for j = 0 to height - 1 do
    let best = ref 0 in
    List.iter
      (fun a ->
        let d =
          abs
            (State.weight_of st (Xtree.child a 0) - State.weight_of st (Xtree.child a 1))
        in
        if d > !best then best := d)
      (Xtree.vertices_at_level st.State.xt j);
    row.(j) <- !best
  done;
  row

(* nl(j,i) / nh(j,i) of the paper: the per-level extremes of the number
   of guest nodes associated to one X-subtree. *)
let snapshot_spread st ~height =
  let row = Array.make (height + 1) (0, 0) in
  for j = 0 to height do
    let lo = ref max_int and hi = ref 0 in
    List.iter
      (fun a ->
        let w = State.weight_of st a in
        if w < !lo then lo := w;
        if w > !hi then hi := w)
      (Xtree.vertices_at_level st.State.xt j);
    row.(j) <- ((if !lo = max_int then 0 else !lo), !hi)
  done;
  row

(* Place every node still living in a piece: breadth-first from the
   piece's boundary nodes, each node next to an already-placed tree
   neighbour (State.lay diverts to the nearest free slot if needed). *)
let final_fill st =
  let height = st.State.height in
  let order = Xtree.order st.State.xt in
  for v = 0 to order - 1 do
    let rec drain () =
      match State.pieces_at st v with
      | [] -> ()
      | (p : State.piece) :: _ ->
          State.detach st ~vertex:v p;
          let member = Hashtbl.create (List.length p.nodes) in
          List.iter (fun w -> Hashtbl.replace member w ()) p.nodes;
          let queue = Queue.create () in
          let seen = Hashtbl.create 16 in
          let seed w =
            if not (Hashtbl.mem seen w) then begin
              Hashtbl.replace seen w ();
              Queue.add w queue
            end
          in
          (match p.bounds with
          | [] -> seed (List.hd p.nodes)
          | bs -> List.iter (fun b -> seed b.State.bnode) bs);
          while not (Queue.is_empty queue) do
            let w = Queue.pop queue in
            let hint = ref v in
            Bintree.iter_neighbours st.State.tree w (fun x ->
                if st.State.place.(x) >= 0 then hint := st.State.place.(x));
            State.lay st ~max_level:height ~node:w ~vertex:!hint;
            Bintree.iter_neighbours st.State.tree w (fun x ->
                if Hashtbl.mem member x && st.State.place.(x) < 0 then seed x)
          done;
          drain ()
    in
    drain ()
  done

let embed ?(capacity = 16) ?height ?(record_trace = false) ?(options = Options.default) tree =
  let n = Bintree.n tree in
  let height = match height with Some h -> h | None -> height_for ~capacity n in
  if optimal_size ~capacity height < n then
    invalid_arg "Theorem1.embed: X-tree too small for this guest";
  let st = State.create ~tree ~height ~capacity in
  (* Round 0: the initial subtree D0 at the root. *)
  let d0 = bfs_prefix tree (min capacity n) in
  List.iter (fun node -> State.lay st ~max_level:0 ~node ~vertex:Xtree.root) d0;
  let rest = List.filter (fun v -> st.State.place.(v) < 0) (List.init n Fun.id) in
  Moves.reattach st ~floor_level:0 ~fallback:Xtree.root rest;
  (* Rounds 1..r. *)
  let rows = ref [] and spread_rows = ref [] in
  for i = 1 to height do
    if options.Options.adjust then
      for j = 0 to i - 2 do
        List.iter (fun a -> Adjust.run st ~round:i ~a) (Xtree.vertices_at_level st.State.xt j)
      done;
    List.iter
      (fun alpha -> Split.run ~options st ~round:i ~alpha)
      (Xtree.vertices_at_level st.State.xt (i - 1));
    if record_trace then begin
      rows := snapshot st ~height :: !rows;
      spread_rows := snapshot_spread st ~height :: !spread_rows
    end
  done;
  final_fill st;
  let embedding = Embedding.make ~tree ~host:(Xtree.graph st.State.xt) ~place:st.State.place in
  {
    embedding;
    xt = st.State.xt;
    height;
    capacity;
    fallbacks = st.State.fallbacks;
    wide_pieces = st.State.wide_pieces;
    trace =
      (if record_trace then
         Some
           {
             rounds = Array.of_list (List.rev !rows);
             spreads = Array.of_list (List.rev !spread_rows);
           }
       else None);
  }

let distance_oracle result = Xtree.distance result.xt
