(** Theorem 2: the injective refinement.

    The load-16 embedding of Theorem 1 into [X(r)] becomes a one-to-one
    embedding into [X(r+4)] by sending the (at most) 16 guest nodes living
    at an X-tree vertex [a] to the 16 distinct descendants [a·μ],
    [μ ∈ {0,1}{^4}], four levels below [a]. Any assignment of the 16
    suffixes works; a path [α-β-γ-ω] of length 3 in [X(r)] becomes a path
    [αμ ⋯ α-β-γ-ω ⋯ ων] of length at most [4 + 3 + 4 = 11]. *)

type result = {
  embedding : Xt_embedding.Embedding.t;
  xt : Xt_topology.Xtree.t; (** The enlarged host [X(r + extra)]. *)
  height : int;             (** Height of the enlarged host. *)
  extra_levels : int;       (** 4 for the paper's capacity 16. *)
  base : Theorem1.result;   (** The underlying load-16 embedding. *)
}

val of_theorem1 : Theorem1.result -> result
(** Refine an existing Theorem 1 embedding. The number of extra levels is
    the smallest [k] with [2{^k}] at least the base capacity. *)

val embed : ?capacity:int -> ?cache:Theorem1.cache -> Xt_bintree.Bintree.t -> result
(** [embed t] runs Theorem 1 and refines it. [cache] memoises the
    Theorem 1 run by tree shape; the O(n) injective refinement is
    deterministic in the base placement, so a cached [embed] stays
    bit-identical to an uncached one whenever the underlying Theorem 1
    hit is (see {!Theorem1.cache}). *)

val distance_oracle : result -> int -> int -> int
