(** Theorem 1: every binary tree with [n = 16·(2{^r+1} - 1)] nodes embeds
    into the X-tree of height [r] with dilation 3 and load factor 16.

    The implementation follows the paper's iterative algorithm X-TREE
    (ADJUST sweeps top-down, then SPLIT over the previous leaf level, one
    round per X-tree level), generalised to arbitrary [n] by choosing the
    smallest sufficient height. Load <= capacity is {e enforced} — a full
    vertex diverts the placement to the nearest free slot (counted in
    [fallbacks]) — so dilation is the measured quantity. *)

type trace = {
  rounds : int array array;
  (** [rounds.(i-1).(j)] is the maximum weight difference [|w(a0) - w(a1)|]
      over level-[j] vertices [a] after round [i] — the quantity the paper
      bounds by [2·Δ(j+1, i)]. *)
  spreads : (int * int) array array;
  (** [spreads.(i-1).(j) = (nl(j,i), nh(j,i))]: the minimum and maximum
      number of guest nodes associated to a level-[j] X-subtree after
      round [i] — the paper bounds these by [n_{r-j} ∓ a(j,i)]. *)
}

type result = {
  embedding : Xt_embedding.Embedding.t;
  xt : Xt_topology.Xtree.t;
  height : int;
  capacity : int;
  fallbacks : int;     (** Placements diverted by a full vertex. *)
  wide_pieces : int;   (** Pieces created with more than two boundaries. *)
  trace : trace option;
}

val height_for : ?capacity:int -> int -> int
(** Smallest [r] with [capacity·(2{^r+1} - 1) >= n]. *)

val optimal_size : ?capacity:int -> int -> int
(** [capacity·(2{^r+1} - 1)], the paper's [n] for height [r]. *)

type cache
(** A canonical-shape memo of Theorem 1 results (placement plus shared
    host), keyed by tree fingerprint, capacity, height and options. See
    {!Xt_embedding.Shape_memo} for the exactness guarantee: for
    preorder-labelled trees (everything {!Xt_bintree.Codec} parses) a hit
    is bit-identical to the uncached run. *)

val make_cache : ?shards:int -> ?capacity:int -> ?max_bytes:int -> unit -> cache
(** Parameters as in {!Xt_prelude.Cache.create}; [capacity] counts cached
    results, not guest nodes. *)

val cache_length : cache -> int

val cache_stats : cache -> Xt_prelude.Cache.stats
(** Per-instance hit/miss/eviction/occupancy totals of the memo. *)

val cache_save : cache -> file:string -> int
(** Snapshot the memo to [file] (atomic rename-on-write, versioned
    header, per-entry checksum; see {!Xt_embedding.Shape_memo.save}).
    Returns the entry count written. Only the host height travels in the
    entry metadata — the [Xtree.t] is rebuilt (and shared per height) on
    load. *)

val cache_load : cache -> file:string -> (int, string) Stdlib.result
(** Restore a snapshot written by {!cache_save} into the memo; returns
    the entry count, or [Error] (atomically, inserting nothing) on a
    missing/corrupt/mis-versioned file. Hits on restored entries are
    bit-identical to hits on the original process's live entries. *)

val embed :
  ?capacity:int ->
  ?height:int ->
  ?record_trace:bool ->
  ?options:Options.t ->
  ?par:bool ->
  ?cache:cache ->
  Xt_bintree.Bintree.t ->
  result
(** Run algorithm X-TREE. [capacity] defaults to the paper's 16. [height]
    defaults to {!height_for}; raises [Invalid_argument] if an explicit
    height gives insufficient total capacity. [options] selects ablation
    variants (default: the full paper algorithm).

    [par] enables parallel ADJUST/SPLIT sweeps over the
    {!Xt_prelude.Parallel} domain pool; the default is on exactly when
    the domain budget exceeds 1 and the caller is not already inside a
    parallel region. The result is bit-identical to the sequential run —
    only calls proven confined to disjoint subtrees execute concurrently,
    on forked state views ({!State.fork}), and narrow levels skip the
    machinery entirely.

    [cache] memoises the whole run by tree shape: a repeated shape (same
    capacity, height and options) reuses the stored placement and host
    X-tree instead of re-running the pipeline. Traced runs
    ([record_trace]) bypass the cache, as traces are not stored. *)

val distance_oracle : result -> int -> int -> int
(** Memoised X-tree distance for use with {!Xt_embedding.Embedding}
    metrics. *)
