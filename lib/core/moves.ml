open Xt_topology
open Xt_bintree

let clamp_vertex st ~floor_level v =
  let rec down v =
    if Xtree.level v >= floor_level then v
    else begin
      let c0 = Xtree.child v 0 and c1 = Xtree.child v 1 in
      down (if State.weight_of st c0 <= State.weight_of st c1 then c0 else c1)
    end
  in
  down v

let reattach st ~floor_level ~fallback nodes =
  if nodes <> [] then begin
    let comps = Separator.components st.State.ws ~nodes ~removed:[] in
    List.iter
      (fun comp ->
        let piece = State.make_piece st comp in
        let vertex =
          match piece.State.bounds with
          | b :: _ -> clamp_vertex st ~floor_level b.State.anchor
          | [] -> fallback
        in
        State.attach st ~vertex piece)
      comps
  end

let reattach_to st ~vertex nodes =
  if nodes <> [] then begin
    let comps = Separator.components st.State.ws ~nodes ~removed:[] in
    List.iter
      (fun comp ->
        let piece = State.make_piece st comp in
        State.attach st ~vertex piece)
      comps
  end

let apply_split st ~max_level ~floor_level (sp : Separator.split) ~dest1 ~dest2 =
  List.iter (fun v -> State.lay st ~max_level ~node:v ~vertex:dest1) sp.s1;
  List.iter (fun v -> State.lay st ~max_level ~node:v ~vertex:dest2) sp.s2;
  reattach st ~floor_level ~fallback:dest1 sp.t1;
  reattach st ~floor_level ~fallback:dest2 sp.t2

let move_whole st ~max_level ~floor_level (piece : State.piece) ~dest =
  let designated = List.sort_uniq compare (List.map (fun b -> b.State.bnode) piece.bounds) in
  List.iter (fun v -> State.lay st ~max_level ~node:v ~vertex:dest) designated;
  let rest = List.filter (fun v -> not (List.mem v designated)) piece.nodes in
  reattach st ~floor_level ~fallback:dest rest

let laid_nodes_of_split (sp : Separator.split) = (List.length sp.s1, List.length sp.s2)
