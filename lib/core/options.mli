(** Ablation switches for algorithm X-TREE.

    The full algorithm is the paper's; each switch removes one mechanism
    so benchmark E12 can show what it buys. Load <= capacity stays
    enforced in every variant (the fallback count and the dilation absorb
    the damage instead). *)

type t = {
  adjust : bool;
  (** Run the ADJUST sweeps (the horizontal-edge rebalancing — the
      paper's key idea). Off: pure top-down splitting, like the
      recursive-bisection baseline but with the SPLIT machinery. *)
  pairing : bool;
  (** Size-aware pairing of pieces into the two SPLIT bags (larger piece
      to the lighter bag). Off: arbitrary alternating assignment. *)
  balance_split : bool;
  (** SPLIT's final Lemma 2 split over the free slots. *)
}

val default : t
(** All mechanisms on — the paper's algorithm. *)

val no_adjust : t
val no_pairing : t
val no_balance : t

val variants : (string * t) list
(** Named variants for the ablation bench. *)
