(** Shared piece-movement helpers for ADJUST and SPLIT: applying a
    separator split to the state, moving whole pieces, and re-attaching
    residual components at the right leaf level. *)

val clamp_vertex : State.t -> floor_level:int -> int -> int
(** Descend from a vertex to level >= [floor_level], following lighter
    children, so that no piece is ever attached above the current
    attachment level. Vertices already at or below the floor are
    returned unchanged. *)

val reattach : State.t -> floor_level:int -> fallback:int -> int list -> unit
(** Wrap the connected components of the given residual nodes as pieces
    and attach each at its first boundary's anchor (clamped to the floor
    level), or at [fallback] when it has no boundary. *)

val reattach_to : State.t -> vertex:int -> int list -> unit
(** Like {!reattach} but attaching every component at the given vertex,
    regardless of its anchors — used by SPLIT, which owns the assignment
    of pieces to the two child leaves. *)

val apply_split :
  State.t ->
  max_level:int ->
  floor_level:int ->
  Xt_bintree.Separator.split ->
  dest1:int ->
  dest2:int ->
  unit
(** Lay [s1] at [dest1] and [s2] at [dest2], then re-attach the residual
    components of both sides. The caller must already have detached the
    piece being split. *)

val move_whole : State.t -> max_level:int -> floor_level:int -> State.piece -> dest:int -> unit
(** Lay all boundary nodes of the piece at [dest] and re-attach the
    remaining components (which are then anchored at [dest]). The caller
    must already have detached the piece. *)

val laid_nodes_of_split : Xt_bintree.Separator.split -> int * int
(** [(|s1|, |s2|)] — for budget accounting. *)
