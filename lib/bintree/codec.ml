(* Iterative printer: a worklist of tokens-to-emit or nodes-to-expand. *)
type job = Emit of char | Expand of int option

let to_buffer buf t =
  let stack = Stack.create () in
  Stack.push (Expand (Some (Bintree.root t))) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | Emit c -> Buffer.add_char buf c
    | Expand None -> Buffer.add_char buf '.'
    | Expand (Some v) ->
        Buffer.add_char buf '(';
        (* push in reverse order of emission *)
        Stack.push (Emit ')') stack;
        Stack.push (Expand (Bintree.right t v)) stack;
        Stack.push (Expand (Bintree.left t v)) stack
  done

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

(* Iterative parser. Grammar: node ::= '(' child child ')' ; child ::=
   '.' | node. The stack holds the chain of open parent nodes together
   with how many children of each have been completed. *)
type frame = { id : int; mutable filled : int }

let of_string s =
  let b = Bintree.Builder.create () in
  let stack = Stack.create () in
  let error = ref None in
  let fail i msg = if !error = None then error := Some (Printf.sprintf "at %d: %s" i msg) in
  let attach i =
    (* allocate a node under the current top frame (or as root) *)
    if Stack.is_empty stack then
      if Bintree.Builder.size b = 0 then Some (Bintree.Builder.add_root b)
      else begin
        fail i "multiple roots";
        None
      end
    else begin
      let parent = Stack.top stack in
      match parent.filled with
      | 0 ->
          parent.filled <- 1;
          Some (Bintree.Builder.add_left b parent.id)
      | 1 ->
          parent.filled <- 2;
          Some (Bintree.Builder.add_right b parent.id)
      | _ ->
          fail i "node with more than two children";
          None
    end
  in
  let n = String.length s in
  let i = ref 0 in
  let finished = ref false in
  while !error = None && !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> ()
    | '(' ->
        if !finished then fail !i "trailing input after complete tree"
        else begin
          match attach !i with
          | Some id -> Stack.push { id; filled = 0 } stack
          | None -> ()
        end
    | '.' ->
        if !finished then fail !i "trailing input after complete tree"
        else if Stack.is_empty stack then fail !i "'.' outside any node"
        else begin
          let parent = Stack.top stack in
          if parent.filled >= 2 then fail !i "node with more than two children"
          else parent.filled <- parent.filled + 1
        end
    | ')' ->
        if Stack.is_empty stack then fail !i "unmatched ')'"
        else begin
          let frame = Stack.pop stack in
          if frame.filled <> 2 then fail !i "node closed with fewer than two child slots"
          else if Stack.is_empty stack then finished := true
        end
    | c -> fail !i (Printf.sprintf "unexpected character %C" c));
    incr i
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
      if not !finished then Error "unexpected end of input"
      else Ok (Bintree.Builder.finish b)

let of_channel ic =
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  of_string (Buffer.contents buf)
