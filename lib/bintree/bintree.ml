type node = int

type t = {
  root : node;
  parent : int array;
  left : int array;
  right : int array;
}

module Builder = struct
  type t = {
    mutable parent : int array;
    mutable left : int array;
    mutable right : int array;
    mutable size : int;
    mutable has_root : bool;
  }

  let create ?(capacity = 16) () =
    let capacity = max capacity 1 in
    {
      parent = Array.make capacity (-1);
      left = Array.make capacity (-1);
      right = Array.make capacity (-1);
      size = 0;
      has_root = false;
    }

  (* Grow to [max (2*cap) needed] in one blit, so a reserve for n nodes
     costs one copy instead of log n doublings. *)
  let ensure b needed =
    let cap = Array.length b.parent in
    if needed > cap then begin
      let cap' = max (2 * cap) needed in
      let extend a =
        let a' = Array.make cap' (-1) in
        Array.blit a 0 a' 0 cap;
        a'
      in
      b.parent <- extend b.parent;
      b.left <- extend b.left;
      b.right <- extend b.right
    end

  let grow b = ensure b (b.size + 1)

  let reserve b n = if n > 0 then ensure b (b.size + n)

  let fresh b =
    grow b;
    let v = b.size in
    b.size <- v + 1;
    v

  let add_root b =
    if b.has_root then invalid_arg "Bintree.Builder.add_root: root exists";
    b.has_root <- true;
    fresh b

  let add_left b p =
    if p < 0 || p >= b.size then invalid_arg "Bintree.Builder.add_left: bad parent";
    if b.left.(p) >= 0 then invalid_arg "Bintree.Builder.add_left: occupied";
    let v = fresh b in
    b.left.(p) <- v;
    b.parent.(v) <- p;
    v

  let add_right b p =
    if p < 0 || p >= b.size then invalid_arg "Bintree.Builder.add_right: bad parent";
    if b.right.(p) >= 0 then invalid_arg "Bintree.Builder.add_right: occupied";
    let v = fresh b in
    b.right.(p) <- v;
    b.parent.(v) <- p;
    v

  let size b = b.size

  let finish b =
    if not b.has_root then invalid_arg "Bintree.Builder.finish: empty";
    {
      root = 0;
      parent = Array.sub b.parent 0 b.size;
      left = Array.sub b.left 0 b.size;
      right = Array.sub b.right 0 b.size;
    }
end

let n t = Array.length t.parent
let root t = t.root

let opt v = if v < 0 then None else Some v

let parent t v = opt t.parent.(v)
let left t v = opt t.left.(v)
let right t v = opt t.right.(v)
let parent_id t v = t.parent.(v)
let left_id t v = t.left.(v)
let right_id t v = t.right.(v)

let children t v =
  match (opt t.left.(v), opt t.right.(v)) with
  | None, None -> []
  | Some a, None | None, Some a -> [ a ]
  | Some a, Some b -> [ a; b ]

let iter_neighbours t v f =
  if t.parent.(v) >= 0 then f t.parent.(v);
  if t.left.(v) >= 0 then f t.left.(v);
  if t.right.(v) >= 0 then f t.right.(v)

let neighbours t v =
  let acc = ref [] in
  iter_neighbours t v (fun w -> acc := w :: !acc);
  List.rev !acc

let degree t v = List.length (neighbours t v)

let edges t =
  let acc = ref [] in
  for v = 0 to n t - 1 do
    if t.left.(v) >= 0 then acc := (v, t.left.(v)) :: !acc;
    if t.right.(v) >= 0 then acc := (v, t.right.(v)) :: !acc
  done;
  !acc

let is_leaf t v = t.left.(v) < 0 && t.right.(v) < 0

(* Iterative preorder: avoids stack overflow on path-shaped trees. *)
let preorder t =
  let acc = ref [] in
  let stack = Stack.create () in
  Stack.push t.root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    acc := v :: !acc;
    (* push right first so left is visited first *)
    if t.right.(v) >= 0 then Stack.push t.right.(v) stack;
    if t.left.(v) >= 0 then Stack.push t.left.(v) stack
  done;
  List.rev !acc

(* Postorder = reverse of the (root, right, left) preorder. *)
let postorder t =
  let acc = ref [] in
  let stack = Stack.create () in
  Stack.push t.root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    acc := v :: !acc;
    if t.left.(v) >= 0 then Stack.push t.left.(v) stack;
    if t.right.(v) >= 0 then Stack.push t.right.(v) stack
  done;
  !acc

let fold_preorder t ~init ~f = List.fold_left f init (preorder t)

let depth t =
  let d = Array.make (n t) 0 in
  List.iter (fun v -> if v <> t.root then d.(v) <- d.(t.parent.(v)) + 1) (preorder t);
  d

let subtree_sizes t =
  let s = Array.make (n t) 1 in
  List.iter (fun v -> if v <> t.root then s.(t.parent.(v)) <- s.(t.parent.(v)) + s.(v)) (postorder t);
  s

let height t =
  let d = depth t in
  Array.fold_left max 0 d

type stats = { size : int; height : int; leaves : int; max_degree : int }

let stats t =
  let leaves = ref 0 and maxd = ref 0 in
  for v = 0 to n t - 1 do
    if is_leaf t v then incr leaves;
    let d = degree t v in
    if d > !maxd then maxd := d
  done;
  { size = n t; height = height t; leaves = !leaves; max_degree = !maxd }

let check t =
  let size = n t in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if size = 0 then fail "empty tree"
  else if t.root < 0 || t.root >= size then fail "root out of range"
  else if t.parent.(t.root) >= 0 then fail "root has a parent"
  else begin
    let bad = ref None in
    for v = 0 to size - 1 do
      let check_child c label =
        if c >= size then bad := Some (Printf.sprintf "%s child of %d out of range" label v)
        else if c >= 0 && t.parent.(c) <> v then
          bad := Some (Printf.sprintf "%s child of %d has wrong parent" label v)
      in
      check_child t.left.(v) "left";
      check_child t.right.(v) "right";
      if v <> t.root && t.parent.(v) < 0 then bad := Some (Printf.sprintf "node %d has no parent" v);
      if v <> t.root && t.parent.(v) >= 0 then begin
        let p = t.parent.(v) in
        if p >= size then bad := Some (Printf.sprintf "parent of %d out of range" v)
        else if t.left.(p) <> v && t.right.(p) <> v then
          bad := Some (Printf.sprintf "node %d not a child of its parent" v)
      end
    done;
    match !bad with
    | Some msg -> Error msg
    | None ->
        (* connectivity: preorder must reach everything *)
        let seen = Array.make size false in
        let count = ref 0 in
        List.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              incr count
            end)
          (preorder t);
        if !count <> size then fail "tree not connected (preorder reached %d of %d)" !count size
        else Ok ()
  end

let of_arrays ~root ~parent ~left ~right =
  let t = { root; parent; left; right } in
  if Array.length parent <> Array.length left || Array.length left <> Array.length right then
    invalid_arg "Bintree.of_arrays: array lengths differ";
  match check t with Ok () -> t | Error msg -> invalid_arg ("Bintree.of_arrays: " ^ msg)

let rec pp_node t fmt v =
  match (opt t.left.(v), opt t.right.(v)) with
  | None, None -> Format.fprintf fmt "%d" v
  | l, r ->
      let pp_opt fmt = function
        | None -> Format.fprintf fmt "_"
        | Some c -> pp_node t fmt c
      in
      Format.fprintf fmt "%d(%a,%a)" v pp_opt l pp_opt r

let pp fmt t = pp_node t fmt t.root
