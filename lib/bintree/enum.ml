let catalan n =
  if n < 0 || n > 30 then invalid_arg "Enum.catalan";
  (* C(0) = 1; C(n+1) = sum C(i)·C(n-i) *)
  let c = Array.make (n + 1) 0 in
  c.(0) <- 1;
  for k = 1 to n do
    for i = 0 to k - 1 do
      c.(k) <- c.(k) + (c.(i) * c.(k - 1 - i))
    done
  done;
  c.(n)

(* Shapes as a tiny algebraic type, converted to Bintree at the end. *)
type shape = { l : shape option; r : shape option }

let rec shapes_of_size n =
  if n = 0 then Seq.return None
  else
    Seq.concat_map
      (fun i ->
        Seq.concat_map
          (fun l -> Seq.map (fun r -> Some { l; r }) (shapes_of_size (n - 1 - i)))
          (shapes_of_size i))
      (List.to_seq (List.init n Fun.id))

let to_bintree shape =
  let b = Bintree.Builder.create () in
  let root = Bintree.Builder.add_root b in
  let rec fill node shape =
    (match shape.l with
    | Some s -> fill (Bintree.Builder.add_left b node) s
    | None -> ());
    match shape.r with
    | Some s -> fill (Bintree.Builder.add_right b node) s
    | None -> ()
  in
  fill root shape;
  Bintree.Builder.finish b

let all_shapes n =
  if n < 1 then invalid_arg "Enum.all_shapes: n must be positive";
  if n > 18 then invalid_arg "Enum.all_shapes: too many shapes to enumerate";
  Seq.filter_map (Option.map to_bintree) (shapes_of_size n)

let count_shapes n = Seq.fold_left (fun acc _ -> acc + 1) 0 (all_shapes n)
