open Xt_prelude

let positive n = if n <= 0 then invalid_arg "Gen: n must be positive"

(* Below this size the fork-join overhead of a parallel arena fill
   outweighs the arithmetic it distributes. *)
let par_fill_cutoff = 1 lsl 16

let complete n =
  positive n;
  let parent = Array.make n (-1) and left = Array.make n (-1) and right = Array.make n (-1) in
  let fill v =
    let l = (2 * v) + 1 and r = (2 * v) + 2 in
    if l < n then begin
      left.(v) <- l;
      parent.(l) <- v
    end;
    if r < n then begin
      right.(v) <- r;
      parent.(r) <- v
    end
  in
  (* Each index writes only its own children's cells, so chunks are
     independent and the filled arrays are identical at every budget. *)
  if n >= par_fill_cutoff then Parallel.parallel_for n fill
  else
    for v = 0 to n - 1 do
      fill v
    done;
  Bintree.of_arrays ~root:0 ~parent ~left ~right

let path n =
  positive n;
  let b = Bintree.Builder.create ~capacity:n () in
  let v = ref (Bintree.Builder.add_root b) in
  for _ = 2 to n do
    v := Bintree.Builder.add_left b !v
  done;
  Bintree.Builder.finish b

let zigzag n =
  positive n;
  let b = Bintree.Builder.create ~capacity:n () in
  let v = ref (Bintree.Builder.add_root b) in
  for i = 2 to n do
    v := if i mod 2 = 0 then Bintree.Builder.add_left b !v else Bintree.Builder.add_right b !v
  done;
  Bintree.Builder.finish b

let caterpillar n =
  positive n;
  let b = Bintree.Builder.create ~capacity:n () in
  let spine = ref (Bintree.Builder.add_root b) in
  let parity = ref true in
  while Bintree.Builder.size b < n do
    (* a leg on every other spine node, spine continues to the left *)
    if !parity && Bintree.Builder.size b + 1 < n then ignore (Bintree.Builder.add_right b !spine);
    parity := not !parity;
    if Bintree.Builder.size b < n then spine := Bintree.Builder.add_left b !spine
  done;
  Bintree.Builder.finish b

(* Attach leaves breadth-first under every free child slot until the tree
   has exactly [n] nodes. *)
let pad_to b n =
  let queue = Queue.create () in
  for v = 0 to Bintree.Builder.size b - 1 do
    Queue.add v queue
  done;
  while Bintree.Builder.size b < n do
    let v = Queue.pop queue in
    if Bintree.Builder.size b < n then begin
      (try Queue.add (Bintree.Builder.add_left b v) queue with Invalid_argument _ -> ());
      if Bintree.Builder.size b < n then
        try Queue.add (Bintree.Builder.add_right b v) queue with Invalid_argument _ -> ()
    end
  done

let broom n =
  positive n;
  let b = Bintree.Builder.create ~capacity:n () in
  let handle = max 1 (n / 2) in
  let v = ref (Bintree.Builder.add_root b) in
  for _ = 2 to handle do
    v := Bintree.Builder.add_left b !v
  done;
  (* bushy head: breadth-first fill below the handle end *)
  let queue = Queue.create () in
  Queue.add !v queue;
  while Bintree.Builder.size b < n do
    let u = Queue.pop queue in
    if Bintree.Builder.size b < n then Queue.add (Bintree.Builder.add_left b u) queue;
    if Bintree.Builder.size b < n then Queue.add (Bintree.Builder.add_right b u) queue
  done;
  Bintree.Builder.finish b

let fibonacci n =
  positive n;
  (* Fibonacci-tree sizes: s(0) = 1, s(1) = 2, s(h) = s(h-1) + s(h-2) + 1 *)
  let rec sizes acc a b = if b > n then List.rev acc else sizes (b :: acc) b (a + b + 1) in
  let table = Array.of_list (sizes [ 1 ] 1 2) in
  let h = Array.length table - 1 in
  let b = Bintree.Builder.create ~capacity:n () in
  let root = Bintree.Builder.add_root b in
  let rec build v h =
    if h >= 1 then begin
      let l = Bintree.Builder.add_left b v in
      build l (h - 1);
      if h >= 2 then begin
        let r = Bintree.Builder.add_right b v in
        build r (h - 2)
      end
    end
  in
  build root h;
  pad_to b n;
  Bintree.Builder.finish b

let random_bst rng n =
  positive n;
  let keys = Array.init n Fun.id in
  Rng.shuffle rng keys;
  let parent = Array.make n (-1) and left = Array.make n (-1) and right = Array.make n (-1) in
  let key = Array.make n 0 in
  key.(0) <- keys.(0);
  for i = 1 to n - 1 do
    let k = keys.(i) in
    let rec descend v =
      if k < key.(v) then
        if left.(v) < 0 then begin
          left.(v) <- i;
          parent.(i) <- v
        end
        else descend left.(v)
      else if right.(v) < 0 then begin
        right.(v) <- i;
        parent.(i) <- v
      end
      else descend right.(v)
    in
    key.(i) <- k;
    descend 0
  done;
  Bintree.of_arrays ~root:0 ~parent ~left ~right

(* Rémy's algorithm: a uniform full binary tree with [n] internal nodes,
   then delete the n+1 external leaves; the internal nodes form a uniform
   (Catalan) binary tree on n nodes. *)
let uniform rng n =
  positive n;
  let total = (2 * n) + 1 in
  let parent = Array.make total (-1) in
  let left = Array.make total (-1) in
  let right = Array.make total (-1) in
  (* node 0 is the initial lone leaf *)
  let count = ref 1 in
  let root = ref 0 in
  for _ = 1 to n do
    let x = Rng.int rng !count in
    let y = !count and leaf = !count + 1 in
    count := !count + 2;
    let p = parent.(x) in
    parent.(y) <- p;
    if p >= 0 then begin
      if left.(p) = x then left.(p) <- y else right.(p) <- y
    end
    else root := y;
    if Rng.bool rng then begin
      left.(y) <- x;
      right.(y) <- leaf
    end
    else begin
      left.(y) <- leaf;
      right.(y) <- x
    end;
    parent.(x) <- y;
    parent.(leaf) <- y
  done;
  (* strip external leaves: internal nodes are those with children *)
  let internal v = left.(v) >= 0 in
  let id = Array.make total (-1) in
  let next = ref 0 in
  let visit = Queue.create () in
  Queue.add !root visit;
  while not (Queue.is_empty visit) do
    let v = Queue.pop visit in
    if internal v then begin
      id.(v) <- !next;
      incr next;
      Queue.add left.(v) visit;
      Queue.add right.(v) visit
    end
  done;
  let parent' = Array.make n (-1) and left' = Array.make n (-1) and right' = Array.make n (-1) in
  for v = 0 to total - 1 do
    if internal v then begin
      let i = id.(v) in
      if parent.(v) >= 0 then parent'.(i) <- id.(parent.(v));
      if internal left.(v) then left'.(i) <- id.(left.(v));
      if internal right.(v) then right'.(i) <- id.(right.(v))
    end
  done;
  Bintree.of_arrays ~root:0 ~parent:parent' ~left:left' ~right:right'

type slot = { node : int; side : bool } (* true = left *)

let grow_with pick rng n =
  positive n;
  let b = Bintree.Builder.create ~capacity:n () in
  let root = Bintree.Builder.add_root b in
  let slots = ref [| { node = root; side = true }; { node = root; side = false } |] in
  let nslots = ref 2 in
  let push s =
    if !nslots >= Array.length !slots then begin
      let bigger = Array.make (2 * !nslots) s in
      Array.blit !slots 0 bigger 0 !nslots;
      slots := bigger
    end;
    !slots.(!nslots) <- s;
    incr nslots
  in
  while Bintree.Builder.size b < n do
    let i = pick rng !nslots in
    let s = !slots.(i) in
    !slots.(i) <- !slots.(!nslots - 1);
    decr nslots;
    let v = if s.side then Bintree.Builder.add_left b s.node else Bintree.Builder.add_right b s.node in
    push { node = v; side = true };
    push { node = v; side = false }
  done;
  Bintree.Builder.finish b

let random_grow rng n = grow_with (fun rng k -> Rng.int rng k) rng n

let skewed_grow rng ?(bias = 0.8) n =
  (* Newly created slots sit at the end of the array, so "last" = deepest. *)
  let pick rng k = if Rng.float rng 1.0 < bias then k - 1 else Rng.int rng k in
  grow_with pick rng n

(* Divide-and-conquer arena fill. A subtree occupies the contiguous index
   range [lo, lo+n) with its root at [lo]; the left-subtree size is drawn
   from a hash of (master seed, lo, n), so every range's shape is a pure
   function of the master seed and the two halves can be filled by
   different domains — the tree is bit-identical at every domain budget.
   Uniform split sizes give the random-BST shape distribution, so the
   expected depth is O(log n) and the recursion stack stays shallow even
   at a million nodes. *)
let random_split rng n =
  positive n;
  let master = Rng.int rng 0x3FFFFFFF in
  let parent = Array.make n (-1) and left = Array.make n (-1) and right = Array.make n (-1) in
  let rec fill lo n =
    if n > 0 then begin
      let k = if n = 1 then 0 else Hashtbl.hash (master, lo, n) mod n in
      (* left subtree: k nodes at [lo+1, lo+1+k); right: the rest *)
      if k > 0 then begin
        left.(lo) <- lo + 1;
        parent.(lo + 1) <- lo
      end;
      if n - 1 - k > 0 then begin
        let r = lo + 1 + k in
        right.(lo) <- r;
        parent.(r) <- lo
      end;
      ignore
        (Parallel.fork_cutoff ~size:n ~cutoff:par_fill_cutoff
           (fun () -> fill (lo + 1) k)
           (fun () -> fill (lo + 1 + k) (n - 1 - k)))
    end
  in
  fill 0 n;
  Bintree.of_arrays ~root:0 ~parent ~left ~right

type family = { name : string; generate : Xt_prelude.Rng.t -> int -> Bintree.t }

let families =
  [
    { name = "complete"; generate = (fun _ n -> complete n) };
    { name = "path"; generate = (fun _ n -> path n) };
    { name = "zigzag"; generate = (fun _ n -> zigzag n) };
    { name = "caterpillar"; generate = (fun _ n -> caterpillar n) };
    { name = "broom"; generate = (fun _ n -> broom n) };
    { name = "fibonacci"; generate = (fun _ n -> fibonacci n) };
    { name = "random-bst"; generate = random_bst };
    { name = "uniform"; generate = uniform };
    { name = "random-grow"; generate = random_grow };
    { name = "skewed"; generate = (fun rng n -> skewed_grow rng n) };
    { name = "random-split"; generate = random_split };
  ]

let family name = List.find (fun f -> f.name = name) families
