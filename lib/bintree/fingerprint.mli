(** Merkle-style structural fingerprints of binary trees.

    Two subtrees receive the same fingerprint exactly when they have the
    same {e shape} (up to hash collisions) — node ids play no role, so the
    fingerprint of a tree agrees with equality of its {!Codec.to_string}
    canonical form. Each fingerprint combines two independent 63-bit hash
    lanes (≈126 bits), driving the collision probability for realistic
    working sets far below anything a cache would notice; consumers that
    cannot tolerate collisions at all verify a hit against the stored
    canonical string (see {!Xt_prelude.Cache}).

    All of a tree's subtree fingerprints are computed bottom-up in one
    O(n) pass over the structure arrays, with no per-node allocation. *)

type t = { h0 : int; h1 : int }

val equal : t -> t -> bool
val compare : t -> t -> int

val to_hex : t -> string
(** 32 hex digits (two 16-digit lanes). *)

val of_tree : Bintree.t -> t
(** Fingerprint of the whole tree (the root's subtree). *)

val subtrees : Bintree.t -> t array
(** [a.(v)] is the fingerprint of the subtree rooted at [v]. *)

val canonical_key : Bintree.t -> string
(** ["<hex>:<n>"] — the cache key for the tree's shape. Appending the
    node count keeps accidental collisions strictly within one size
    class. *)

val preorder_ranks : Bintree.t -> int array
(** [r.(v)] is the position of node [v] in preorder — the isomorphism
    onto the canonically labelled tree that {!Codec.of_string} would
    return for {!Codec.to_string} of this tree. *)
