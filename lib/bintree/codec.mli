(** Textual serialisation of binary trees.

    The format is a preorder parenthesis string: every node is
    [ '(' left right ')' ] where an absent child is ['.'].
    A single node is ["(..)"], a root with one left leaf ["((..).)"]. Node
    ids are re-assigned in preorder on parsing, so the format captures the
    {e shape} (which is all an embedding cares about).

    Both directions are iterative, so trees of any depth round-trip
    without stack overflow. *)

val to_string : Bintree.t -> string

val of_string : string -> (Bintree.t, string) result
(** Parse; returns a descriptive error on malformed input. *)

val to_channel : out_channel -> Bintree.t -> unit

val of_channel : in_channel -> (Bintree.t, string) result
(** Reads the whole channel (whitespace between tokens is ignored). *)
