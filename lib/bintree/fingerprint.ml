type t = { h0 : int; h1 : int }

let equal a b = a.h0 = b.h0 && a.h1 = b.h1

let compare a b =
  let c = Int.compare a.h0 b.h0 in
  if c <> 0 then c else Int.compare a.h1 b.h1

(* %x prints a negative int as its unsigned 63-bit value, so each lane is
   at most 16 hex digits. *)
let to_hex fp = Printf.sprintf "%016x%016x" fp.h0 fp.h1

(* SplitMix-style finalizer; multipliers are odd and fit OCaml's 63-bit
   int. Run per lane after each combine so that shape information from
   deep subtrees keeps diffusing into the high bits. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x3F4A7C15ED558CCD in
  let x = x lxor (x lsr 27) in
  let x = x * 0x1B4B82F6A25E3A9D in
  x lxor (x lsr 31)

(* Distinct left/right multipliers per lane make the combine asymmetric:
   mirror trees hash differently (tested in test_cache.ml). *)
let a0 = 0x2545F4914F6CDD1D
let b0 = 0x369DEA0F31A53F85
let a1 = 0x106689D45497FDB5
let b1 = 0x1E3779B97F4A7C15

(* Hash of the absent child, per lane. *)
let nil0 = mix 0x5851F42D4C957F2D
let nil1 = mix 0x14057B7EF767814F

(* Fills [h0]/[h1] with every subtree hash, bottom-up. The postorder
   sequence is materialised as the reverse of a (root, right, left)
   preorder, using a plain int stack: no recursion, no list cells. *)
let fill_hashes t h0 h1 =
  let n = Bintree.n t in
  let order = Array.make n 0 in
  let stack = Array.make n 0 in
  let sp = ref 1 in
  stack.(0) <- Bintree.root t;
  let k = ref (n - 1) in
  while !sp > 0 do
    decr sp;
    let v = stack.(!sp) in
    order.(!k) <- v;
    decr k;
    let l = Bintree.left_id t v and r = Bintree.right_id t v in
    if l >= 0 then begin
      stack.(!sp) <- l;
      incr sp
    end;
    if r >= 0 then begin
      stack.(!sp) <- r;
      incr sp
    end
  done;
  for idx = 0 to n - 1 do
    let v = order.(idx) in
    let l = Bintree.left_id t v and r = Bintree.right_id t v in
    let l0 = if l < 0 then nil0 else h0.(l) in
    let r0 = if r < 0 then nil0 else h0.(r) in
    let l1 = if l < 0 then nil1 else h1.(l) in
    let r1 = if r < 0 then nil1 else h1.(r) in
    h0.(v) <- mix ((a0 * l0) + (b0 * r0) + 0x27220A95);
    h1.(v) <- mix ((a1 * l1) + (b1 * r1) + 0x165667B1)
  done

let subtrees t =
  let n = Bintree.n t in
  let h0 = Array.make n 0 and h1 = Array.make n 0 in
  fill_hashes t h0 h1;
  Array.init n (fun v -> { h0 = h0.(v); h1 = h1.(v) })

let of_tree t =
  let n = Bintree.n t in
  let h0 = Array.make n 0 and h1 = Array.make n 0 in
  fill_hashes t h0 h1;
  let r = Bintree.root t in
  { h0 = h0.(r); h1 = h1.(r) }

let canonical_key t = Printf.sprintf "%s:%d" (to_hex (of_tree t)) (Bintree.n t)

let preorder_ranks t =
  let n = Bintree.n t in
  let rank = Array.make n 0 in
  let stack = Array.make n 0 in
  let sp = ref 1 in
  stack.(0) <- Bintree.root t;
  let k = ref 0 in
  while !sp > 0 do
    decr sp;
    let v = stack.(!sp) in
    rank.(v) <- !k;
    incr k;
    (* push right first so left is ranked first *)
    let l = Bintree.left_id t v and r = Bintree.right_id t v in
    if r >= 0 then begin
      stack.(!sp) <- r;
      incr sp
    end;
    if l >= 0 then begin
      stack.(!sp) <- l;
      incr sp
    end
  done;
  rank
