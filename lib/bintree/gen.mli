(** Binary-tree generators.

    Every generator returns a tree with exactly [n] nodes. The random ones
    thread an explicit {!Xt_prelude.Rng.t}, so experiments are reproducible
    from a seed. *)

val complete : int -> Bintree.t
(** The first [n] nodes of the infinite complete binary tree in heap order
    (a "left-complete" tree). Raises [Invalid_argument] if [n <= 0]. *)

val path : int -> Bintree.t
(** A left spine of [n] nodes — the most unbalanced binary tree. *)

val zigzag : int -> Bintree.t
(** A spine alternating left and right children. *)

val caterpillar : int -> Bintree.t
(** A spine in which every other node also carries a leaf ("legs"), a
    classically hard instance for contiguous layouts. *)

val broom : int -> Bintree.t
(** A path of [n/2] nodes ending in a left-complete tree of the remaining
    nodes: mixes both extremes. *)

val fibonacci : int -> Bintree.t
(** The largest Fibonacci (AVL-minimal) tree with at most [n] nodes, padded
    back up to exactly [n] nodes by attaching leaves breadth-first. *)

val random_bst : Xt_prelude.Rng.t -> int -> Bintree.t
(** Shape of a binary search tree built from a uniform random permutation
    of [n] keys: expected height O(log n), unbalanced locally. *)

val uniform : Xt_prelude.Rng.t -> int -> Bintree.t
(** Uniformly random binary tree on [n] nodes (Catalan distribution) via
    Rémy's algorithm on full binary trees with [n] internal nodes followed
    by deletion of the external leaves. *)

val random_grow : Xt_prelude.Rng.t -> int -> Bintree.t
(** Grows from the root by repeatedly attaching a new leaf under a uniform
    random free child slot. Produces bushier trees than [uniform]. *)

val skewed_grow : Xt_prelude.Rng.t -> ?bias:float -> int -> Bintree.t
(** Like {!random_grow} but choosing among the deepest free slots with
    probability [bias] (default 0.8): produces long, stringy trees with
    random bursts. *)

val random_split : Xt_prelude.Rng.t -> int -> Bintree.t
(** Random-BST-shaped tree by divide and conquer over a contiguous index
    arena: each range draws its left-subtree size from a hash of the
    master seed and the range, so the two halves fill independently (in
    parallel past a cutoff) and the result is bit-identical at every
    domain budget. The fastest generator for million-node guests; draws
    exactly one value from [rng]. *)

(** {1 Families} — the named workloads used by tests and benchmarks. *)

type family = {
  name : string;
  generate : Xt_prelude.Rng.t -> int -> Bintree.t;
}

val families : family list
(** All generators above, with deterministic ones ignoring the RNG. *)

val family : string -> family
(** Look up by name. Raises [Not_found]. *)
