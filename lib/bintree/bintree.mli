(** Rooted binary trees — the guest graphs of every embedding in this
    library.

    A binary tree has nodes [0 .. n-1]; every node has an optional left and
    right child and (except the root) a parent, so the maximum degree is 3.
    This matches the paper's notion of an "arbitrary binary tree". *)

type t

type node = int

(** {1 Construction} *)

module Builder : sig
  type tree := t
  type t

  val create : ?capacity:int -> unit -> t

  val add_root : t -> node
  (** Allocates the root; must be called exactly once, first. *)

  val add_left : t -> node -> node
  (** [add_left b p] attaches a fresh left child to [p]. Raises
      [Invalid_argument] if [p] already has a left child. *)

  val add_right : t -> node -> node

  val size : t -> int

  val reserve : t -> int -> unit
  (** [reserve b n] ensures capacity for [n] more nodes beyond the current
      size, growing to [max (2*cap) needed] in a single blit. Million-node
      fills that know their size up front pay one copy instead of a
      doubling cascade. *)

  val finish : t -> tree
  (** Freezes the builder. Raises [Invalid_argument] on an empty builder. *)
end

val of_arrays : root:node -> parent:int array -> left:int array -> right:int array -> t
(** Validates and wraps explicit arrays ([-1] encodes absence). Raises
    [Invalid_argument] if the arrays do not describe a single rooted binary
    tree on [0..n-1]. *)

(** {1 Structure queries} *)

val n : t -> int
val root : t -> node

val parent : t -> node -> node option
val left : t -> node -> node option
val right : t -> node -> node option

val parent_id : t -> node -> int
val left_id : t -> node -> int
val right_id : t -> node -> int
(** Raw ids with [-1] for absence — allocation-free variants of
    [parent]/[left]/[right] for hot loops (the option constructors of the
    wrapped accessors allocate on every call). *)

val children : t -> node -> node list
(** Left child first. *)

val degree : t -> node -> int
(** Number of tree neighbours (parent plus children): at most 3. *)

val iter_neighbours : t -> node -> (node -> unit) -> unit

val neighbours : t -> node -> node list

val edges : t -> (node * node) list
(** All [n-1] edges as (parent, child) pairs. *)

val is_leaf : t -> node -> bool

(** {1 Global measures} *)

type stats = {
  size : int;
  height : int;     (** Edges on the longest root-to-leaf path; 0 for a single node. *)
  leaves : int;
  max_degree : int;
}

val stats : t -> stats

val height : t -> int

val subtree_sizes : t -> int array
(** [sizes.(v)] is the number of nodes in the subtree rooted at [v] (with
    respect to the tree's own root). *)

val depth : t -> int array
(** Depth of each node below the root (root has depth 0). *)

(** {1 Traversals} *)

val preorder : t -> node list
val postorder : t -> node list

val fold_preorder : t -> init:'a -> f:('a -> node -> 'a) -> 'a

(** {1 Invariant check} *)

val check : t -> (unit, string) result
(** Re-validates internal consistency; used by property tests after
    generation. *)

val pp : Format.formatter -> t -> unit
(** A compact parenthesised rendering, for debugging small trees. *)
