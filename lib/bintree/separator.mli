(** Tree-separator machinery: Lemma 1 and Lemma 2 of the paper.

    Both lemmas take a {e piece} — a connected subtree of a host binary
    tree, listed by its nodes, with one or two {e designated} nodes — and a
    target size [A], and split the piece into

    - side 1 of roughly [|piece| - A] nodes, containing the laid-out set
      [s1], and
    - side 2 of roughly [A] nodes, containing the laid-out set [s2],

    such that every edge between the two sides joins a node of [s1] with a
    node of [s2], both designated nodes land in [s1 ∪ s2], and each side is
    {e collinear}: every component of [t_i = side_i - s_i] is joined to
    [s_i] by at most two edges.

    Guarantees under the paper's preconditions (piece size [n > 4A/3] for
    Lemma 1, [1 <= A <= n] for Lemma 2, designated nodes with at most two
    neighbours inside the piece):

    - Lemma 1: [|side2| - A| <= (A+1)/3], [|s1| <= 4], [|s2| <= 2];
    - Lemma 2: [|side2| - A| <= (A+4)/9], [|s1|, |s2| <= 4].

    Out-of-precondition calls degrade gracefully (larger error, never an
    exception) — see the per-function notes. *)

type piece = {
  nodes : int list;      (** Nodes of the piece; must be connected in the tree. *)
  r1 : int;              (** First designated node; must occur in [nodes]. *)
  r2 : int option;       (** Optional second designated node. *)
}

type split = {
  s1 : int list;  (** Laid out on side 1; at most 4 nodes. *)
  t1 : int list;  (** Remaining nodes of side 1. *)
  s2 : int list;  (** Laid out on side 2; at most 4 nodes (2 for Lemma 1). *)
  t2 : int list;  (** Remaining nodes of side 2. *)
}

val side_sizes : split -> int * int
(** [(|s1|+|t1|, |s2|+|t2|)]. *)

type ws
(** A reusable workspace holding scratch arrays sized to one tree. Not
    thread-safe; each domain owns its own (see [Xt_prelude.Parallel]'s
    per-domain slots) and reuses it across calls — all transient sets are
    generation-stamped flat arrays, so reuse costs nothing and the hot
    path allocates no scratch at all. *)

val make_ws : Bintree.t -> ws

val rebind_ws : ws -> Bintree.t -> unit
(** Point an existing workspace at [tree], growing its arrays to
    [max (2*cap) n] when the tree is larger than anything seen before.
    Stamp generations survive the move, so no clearing pass is needed;
    a long-lived per-domain workspace amortises its arrays across every
    tree it serves. *)

val prepare : ws -> piece -> int
(** Load a piece into the workspace (membership, orientation, subtree
    sizes) and return its node count. Called internally by both lemmas;
    exposed because it is their O(n) hot path and is guaranteed
    allocation-free, which the test suite pins with a [Gc.minor_words]
    guard. *)

val lemma1 : ws -> piece -> target:int -> split
(** Lemma 1 split with side 2 aiming at [target] nodes. Raises
    [Invalid_argument] if [target <= 0] or a designated node is missing
    from [nodes]. If [target >= |piece|] the whole piece becomes side 2. *)

val lemma2 : ws -> piece -> target:int -> split
(** Lemma 2 split: same contract, tighter size error, both laid-out sets
    bounded by 4. *)

val components : ws -> nodes:int list -> removed:int list -> int list list
(** Connected components (in the underlying tree) of [nodes] minus
    [removed]. Used to re-form pieces after a split's [s1]/[s2] have been
    laid out. *)

val verify_split : ws -> piece -> split -> (unit, string) result
(** Structural check used by the test suite: partition, designated-node
    coverage, cut-edge discipline, and collinearity of both sides. *)
