(** Exhaustive enumeration of binary-tree shapes.

    There are Catalan(n) distinct binary trees with [n] nodes; for small
    [n] this module lists them all, which upgrades sampled experiments to
    exhaustive ones (bench E15 verifies Theorem 1 over {e every} tree of a
    given size). *)

val catalan : int -> int
(** [catalan n] for [n <= 30] (fits in 62-bit integers). *)

val all_shapes : int -> Bintree.t Seq.t
(** All binary trees with exactly [n >= 1] nodes, lazily. The sequence has
    [catalan n] elements; order is deterministic. Practical up to
    [n ~ 15] (9 694 845 shapes); raises [Invalid_argument] for [n > 18]
    as a footgun guard. *)

val count_shapes : int -> int
(** Forces the sequence and counts — test helper. *)
