type piece = { nodes : int list; r1 : int; r2 : int option }

type split = { s1 : int list; t1 : int list; s2 : int list; t2 : int list }

let side_sizes sp =
  (List.length sp.s1 + List.length sp.t1, List.length sp.s2 + List.length sp.t2)

(* Workspace: generation-stamped scratch arrays over the host tree, so that
   no per-call allocation proportional to the whole tree is needed. Every
   transient set (piece membership, DFS visited, exclusion prefix sums,
   ancestor marks) is an int-stamp array compared against its generation
   counter, the DFS stack and the preorder are preallocated int arrays —
   [prepare] (piece loading, the O(n) hot path of both lemmas) allocates
   nothing at all, so a workspace can serve one domain for the lifetime of
   the process and be [rebind_ws]-moved across trees. *)
type ws = {
  mutable tree : Bintree.t;
  mutable cap : int;       (* arrays are sized to [cap] >= n(tree) *)
  mutable mark : int array;    (* piece membership stamp *)
  mutable par : int array;     (* parent within the rooted piece *)
  mutable size : int array;    (* subtree size within the rooted piece *)
  mutable exq : int array;     (* stamp for exclusion prefix sums *)
  mutable exval : int array;   (* total excluded size inside T(v) *)
  mutable anc : int array;     (* stamp for ancestor marking / misc sets *)
  mutable vis : int array;     (* DFS visited stamp *)
  mutable ord : int array;     (* preorder of the loaded piece *)
  mutable stack : int array;   (* explicit DFS stack *)
  mutable ordn : int;          (* number of loaded nodes *)
  mutable gen : int;           (* current piece generation *)
  mutable exgen : int;         (* current exclusion generation *)
  mutable ancgen : int;        (* current ancestor-set generation *)
  mutable visgen : int;        (* current visited generation *)
}

let make_ws tree =
  let n = Bintree.n tree in
  {
    tree;
    cap = n;
    mark = Array.make n 0;
    par = Array.make n (-1);
    size = Array.make n 0;
    exq = Array.make n 0;
    exval = Array.make n 0;
    anc = Array.make n 0;
    vis = Array.make n 0;
    ord = Array.make n 0;
    stack = Array.make n 0;
    ordn = 0;
    gen = 0;
    exgen = 0;
    ancgen = 0;
    visgen = 0;
  }

let rebind_ws ws tree =
  ws.tree <- tree;
  let n = Bintree.n tree in
  if n > ws.cap then begin
    let cap = max (2 * ws.cap) n in
    ws.cap <- cap;
    ws.mark <- Array.make cap 0;
    ws.par <- Array.make cap (-1);
    ws.size <- Array.make cap 0;
    ws.exq <- Array.make cap 0;
    ws.exval <- Array.make cap 0;
    ws.anc <- Array.make cap 0;
    ws.vis <- Array.make cap 0;
    ws.ord <- Array.make cap 0;
    ws.stack <- Array.make cap 0;
    (* fresh zeroed stamps must not collide with current generations *)
    ws.gen <- ws.gen + 1;
    ws.exgen <- ws.exgen + 1;
    ws.ancgen <- ws.ancgen + 1;
    ws.visgen <- ws.visgen + 1
  end;
  ws.ordn <- 0

let member ws v = ws.mark.(v) = ws.gen

(* Root the piece at [r1]: set membership stamps, [par] orientation and
   subtree [size]s. Iterative DFS on the preallocated stack — pieces can
   be path-shaped. Allocation-free. *)
let load ws nodes r1 =
  ws.gen <- ws.gen + 1;
  List.iter (fun v -> ws.mark.(v) <- ws.gen) nodes;
  if not (member ws r1) then invalid_arg "Separator: designated node not in piece";
  ws.visgen <- ws.visgen + 1;
  ws.par.(r1) <- -1;
  ws.vis.(r1) <- ws.visgen;
  ws.stack.(0) <- r1;
  let sp = ref 1 in
  ws.ordn <- 0;
  (* one closure for the whole walk — a per-node [iter_neighbours] thunk
     would put ~6 words/node on the minor heap *)
  let push v w =
    if member ws w && ws.vis.(w) <> ws.visgen then begin
      ws.vis.(w) <- ws.visgen;
      ws.par.(w) <- v;
      ws.stack.(!sp) <- w;
      incr sp
    end
  in
  while !sp > 0 do
    decr sp;
    let v = ws.stack.(!sp) in
    ws.ord.(ws.ordn) <- v;
    ws.ordn <- ws.ordn + 1;
    (* same neighbour order as [Bintree.iter_neighbours]: parent, left,
       right — the preorder, and so every placement, depends on it *)
    let p = Bintree.parent_id ws.tree v in
    if p >= 0 then push v p;
    let l = Bintree.left_id ws.tree v in
    if l >= 0 then push v l;
    let r = Bintree.right_id ws.tree v in
    if r >= 0 then push v r
  done;
  (* sizes bottom-up: walk the preorder backwards *)
  for k = 0 to ws.ordn - 1 do
    ws.size.(ws.ord.(k)) <- 1
  done;
  for k = ws.ordn - 1 downto 0 do
    let v = ws.ord.(k) in
    if v <> r1 then ws.size.(ws.par.(v)) <- ws.size.(ws.par.(v)) + ws.size.(v)
  done;
  ws.ordn

let prepare ws piece = load ws piece.nodes piece.r1

let iter_children ws v f =
  Bintree.iter_neighbours ws.tree v (fun w -> if member ws w && ws.par.(w) = v then f w)

(* Exclusion bookkeeping: effective size of T(v) once some subtrees have
   been carved out. [exclude] walks the root path adding the carved size. *)
let reset_exclusions ws = ws.exgen <- ws.exgen + 1

let exclude ws u =
  let s = ws.size.(u) in
  let rec up v =
    if ws.exq.(v) = ws.exgen then ws.exval.(v) <- ws.exval.(v) + s
    else begin
      ws.exq.(v) <- ws.exgen;
      ws.exval.(v) <- s
    end;
    if ws.par.(v) >= 0 then up ws.par.(v)
  in
  up u

let eff ws v = ws.size.(v) - if ws.exq.(v) = ws.exgen then ws.exval.(v) else 0

(* Procedure find1 of the paper: starting at [start], descend into the
   child of maximal (effective) cardinality while the current subtree is
   bigger than 4A/3. Integer form of |T(u)| > 4A/3 is 3|T(u)| > 4A. *)
let find1 ws start ~target =
  let rec descend v =
    if 3 * eff ws v <= 4 * target then v
    else begin
      let best = ref (-1) and best_size = ref 0 in
      iter_children ws v (fun c ->
          let s = eff ws c in
          if s > !best_size then begin
            best := c;
            best_size := s
          end);
      if !best < 0 then v else descend !best
    end
  in
  descend start

(* Collect the nodes of T(u) minus currently excluded subtrees. The
   excluded subtree roots have effective size 0 and are skipped whole. *)
let subtree_nodes ws u =
  let acc = ref [] in
  let sp = ref 0 in
  if eff ws u > 0 then begin
    ws.stack.(0) <- u;
    sp := 1
  end;
  while !sp > 0 do
    decr sp;
    let v = ws.stack.(!sp) in
    acc := v :: !acc;
    iter_children ws v (fun c ->
        if eff ws c > 0 then begin
          ws.stack.(!sp) <- c;
          incr sp
        end)
  done;
  !acc

(* Mark the ancestors (inclusive) of u; returns the marking generation so
   lca can test membership. *)
let mark_root_path ws u =
  ws.ancgen <- ws.ancgen + 1;
  let rec up v =
    ws.anc.(v) <- ws.ancgen;
    if ws.par.(v) >= 0 then up ws.par.(v)
  in
  up u

let lca ws u v =
  mark_root_path ws u;
  let rec up w = if ws.anc.(w) = ws.ancgen then w else up ws.par.(w) in
  up v

let in_subtree ws ~root v =
  (* v ∈ T(root) iff root lies on v's root path *)
  let rec up w = if w = root then true else if ws.par.(w) >= 0 then up ws.par.(w) else false in
  up v

let uniq xs = List.sort_uniq compare xs

(* Assemble a split from the laid-out sets and the side-2 node collection.
   side2 is given stamped via [anc] marking by the caller. *)
let assemble ws nodes ~s1 ~s2 ~side2_nodes =
  ws.ancgen <- ws.ancgen + 1;
  List.iter (fun v -> ws.anc.(v) <- ws.ancgen) side2_nodes;
  let in2 v = ws.anc.(v) = ws.ancgen in
  let s1 = uniq s1 and s2 = uniq s2 in
  let t1 = List.filter (fun v -> (not (in2 v)) && not (List.mem v s1)) nodes in
  let t2 = List.filter (fun v -> in2 v && not (List.mem v s2)) side2_nodes in
  { s1; t1; s2; t2 }

let move_all piece =
  let s2 = uniq (piece.r1 :: Option.to_list piece.r2) in
  let t2 = List.filter (fun v -> not (List.mem v s2)) piece.nodes in
  { s1 = []; t1 = []; s2; t2 }

let swap_sides sp = { s1 = sp.s2; t1 = sp.t2; s2 = sp.s1; t2 = sp.t1 }

(* ------------------------------------------------------------------ *)
(* Lemma 1                                                             *)
(* ------------------------------------------------------------------ *)

(* Core carve for Lemma 1, assuming the piece is loaded, n > 4A/3. *)
let carve1 ws piece ~target =
  let r1 = piece.r1 in
  let r2 = match piece.r2 with Some r2 when r2 <> r1 -> Some r2 | _ -> None in
  reset_exclusions ws;
  let u = find1 ws r1 ~target in
  if u = r1 then
    (* No descent possible: piece is a single node or all children empty;
       degenerate, move everything. *)
    move_all piece
  else begin
    let z = ws.par.(u) in
    let side2 = subtree_nodes ws u in
    match r2 with
    | Some r2 when in_subtree ws ~root:u r2 ->
        assemble ws piece.nodes ~s1:[ r1; z ] ~s2:[ u; r2 ] ~side2_nodes:side2
    | Some r2 ->
        let y = lca ws u r2 in
        assemble ws piece.nodes ~s1:[ r1; r2; z; y ] ~s2:[ u ] ~side2_nodes:side2
    | None -> assemble ws piece.nodes ~s1:[ r1; z ] ~s2:[ u ] ~side2_nodes:side2
  end

let lemma1 ws piece ~target =
  if target <= 0 then invalid_arg "Separator.lemma1: target must be positive";
  let n = load ws piece.nodes piece.r1 in
  (match piece.r2 with
  | Some r2 when not (member ws r2) -> invalid_arg "Separator.lemma1: r2 not in piece"
  | _ -> ());
  if target >= n then move_all piece
  else if 3 * n > 4 * target then carve1 ws piece ~target
  else
    (* Precondition violated (target >= 3n/4): carve the complement and
       swap sides afterwards. *)
    swap_sides (carve1 ws piece ~target:(n - target))

(* ------------------------------------------------------------------ *)
(* Lemma 2                                                             *)
(* ------------------------------------------------------------------ *)

(* Two-stage carve: take T(u1) aiming at [target], then correct the error
   with a second find1 — either carving the overshoot back out of T(u1),
   or carving a second subtree next to it. [from_] is the descent start
   (r2 in case 1, x in case 2); [keep] are nodes that must not be swallowed
   (the carve is abandoned rather than including them).
   Returns (s1_extra, s2, side2_nodes). *)
let two_stage_carve ws ~from_ ~target =
  let u1 = find1 ws from_ ~target in
  if u1 = from_ then None
  else begin
    let z1 = ws.par.(u1) in
    let e = eff ws u1 - target in
    if e > 0 then begin
      (* carve the overshoot back out of T(u1) *)
      let u2 = find1 ws u1 ~target:e in
      if u2 = u1 then
        (* cannot correct; accept the coarse carve *)
        Some ([ z1 ], [ u1 ], subtree_nodes ws u1)
      else begin
        let p2 = ws.par.(u2) in
        exclude ws u2;
        let side2 = subtree_nodes ws u1 in
        Some ([ z1; u2 ], [ u1; p2 ], side2)
      end
    end
    else if e < 0 then begin
      (* Add a second subtree next to T(u1). The second descent starts at
         z1 (not at [from_]): this keeps z2 strictly below z1, so every
         component of side 1 touches at most two separator nodes. The
         descent always makes progress: eff(z1) > 4(-e)/3 follows from the
         first descent's invariant |T(z1)| > 4A/3. *)
      let side2a = subtree_nodes ws u1 in
      exclude ws u1;
      let u2 = find1 ws z1 ~target:(-e) in
      if u2 = z1 || eff ws u2 <= 0 then Some ([ z1 ], [ u1 ], side2a)
      else begin
        let z2 = ws.par.(u2) in
        let side2b = subtree_nodes ws u2 in
        Some ([ z1; z2 ], [ u1; u2 ], side2a @ side2b)
      end
    end
    else Some ([ z1 ], [ u1 ], subtree_nodes ws u1)
  end

let carve2 ws piece ~target =
  let r1 = piece.r1 in
  let r2 = match piece.r2 with Some r2 when r2 <> r1 -> r2 | _ -> r1 in
  reset_exclusions ws;
  (* procedure find2: walk from r1 towards r2 while |T(v)| > 4A/3 *)
  let path =
    (* nodes from r1 to r2 in order *)
    let rec up acc v = if v = r1 then v :: acc else up (v :: acc) ws.par.(v) in
    up [] r2
  in
  let rec walk = function
    | [] -> r2
    | [ v ] -> v
    | v :: rest -> if 3 * ws.size.(v) > 4 * target && v <> r2 then walk rest else v
  in
  let v = walk path in
  if v = r2 && 3 * ws.size.(v) > 4 * target then begin
    (* Case 1: both designated nodes stay in S1; carve inside T(r2). *)
    match two_stage_carve ws ~from_:r2 ~target with
    | Some (s1x, s2, side2) ->
        assemble ws piece.nodes ~s1:(r1 :: r2 :: s1x) ~s2 ~side2_nodes:side2
    | None -> move_all piece
  end
  else if ws.size.(v) < target then begin
    (* Case 2: T(v) (containing r2) moves entirely; top up from T(x,v). *)
    let x = ws.par.(v) in
    if x < 0 then move_all piece
    else begin
      let a2 = target - ws.size.(v) in
      let side2v = subtree_nodes ws v in
      exclude ws v;
      match two_stage_carve ws ~from_:x ~target:a2 with
      | Some (s1x, s2x, side2c) ->
          assemble ws piece.nodes ~s1:(r1 :: x :: s1x) ~s2:(r2 :: v :: s2x)
            ~side2_nodes:(side2v @ side2c)
      | None ->
          assemble ws piece.nodes ~s1:[ r1; x ] ~s2:[ r2; v ] ~side2_nodes:side2v
    end
  end
  else begin
    (* Case 3: A <= |T(v)| <= 4A/3. Carve |T(v)| - A nodes out of T(v)
       with Lemma 1 (designated v and r2); the carved part stays on
       side 1, the rest of T(v) moves. *)
    let x = ws.par.(v) in
    if x < 0 then move_all piece
    else begin
      let a' = ws.size.(v) - target in
      if a' = 0 then
        assemble ws piece.nodes ~s1:[ r1; x ] ~s2:[ r2; v ] ~side2_nodes:(subtree_nodes ws v)
      else begin
        let u' = find1 ws v ~target:a' in
        if u' = v then
          assemble ws piece.nodes ~s1:[ r1; x ] ~s2:[ r2; v ]
            ~side2_nodes:(subtree_nodes ws v)
        else begin
          let z' = ws.par.(u') in
          (* side 2 = T(v) minus T(u') *)
          exclude ws u';
          let side2 = subtree_nodes ws v in
          if in_subtree ws ~root:u' r2 then
            (* r2 is inside the carved part: it stays on side 1 *)
            assemble ws piece.nodes ~s1:(r1 :: x :: [ u'; r2 ]) ~s2:[ v; z' ]
              ~side2_nodes:side2
          else begin
            let y' = lca ws u' r2 in
            assemble ws piece.nodes ~s1:[ r1; x; u' ] ~s2:[ v; z'; r2; y' ]
              ~side2_nodes:side2
          end
        end
      end
    end
  end

let lemma2 ws piece ~target =
  if target <= 0 then invalid_arg "Separator.lemma2: target must be positive";
  let n = load ws piece.nodes piece.r1 in
  (match piece.r2 with
  | Some r2 when not (member ws r2) -> invalid_arg "Separator.lemma2: r2 not in piece"
  | _ -> ());
  if target >= n then move_all piece
  else if 3 * n > 4 * target then carve2 ws piece ~target
  else swap_sides (carve2 ws piece ~target:(n - target))

(* ------------------------------------------------------------------ *)
(* Components and verification                                         *)
(* ------------------------------------------------------------------ *)

let components ws ~nodes ~removed =
  ws.gen <- ws.gen + 1;
  List.iter (fun v -> ws.mark.(v) <- ws.gen) nodes;
  List.iter (fun v -> ws.mark.(v) <- ws.gen - 1) removed;
  ws.visgen <- ws.visgen + 1;
  let seen v = ws.vis.(v) = ws.visgen in
  let comps = ref [] in
  List.iter
    (fun v ->
      if member ws v && not (seen v) then begin
        let comp = ref [] in
        let sp = ref 1 in
        ws.stack.(0) <- v;
        ws.vis.(v) <- ws.visgen;
        while !sp > 0 do
          decr sp;
          let u = ws.stack.(!sp) in
          comp := u :: !comp;
          Bintree.iter_neighbours ws.tree u (fun w ->
              if member ws w && not (seen w) then begin
                ws.vis.(w) <- ws.visgen;
                ws.stack.(!sp) <- w;
                incr sp
              end)
        done;
        comps := !comp :: !comps
      end)
    nodes;
  !comps

let verify_split ws piece sp =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* partition: every split node is a distinct piece node, and the counts
     match — multiset equality without sorting *)
  ws.exgen <- ws.exgen + 1;
  let piece_n = ref 0 in
  List.iter
    (fun v ->
      ws.exq.(v) <- ws.exgen;
      ws.exval.(v) <- 0;
      incr piece_n)
    piece.nodes;
  let seen_n = ref 0 and dup = ref false in
  let scan = List.iter (fun v ->
      if v >= 0 && v < ws.cap && ws.exq.(v) = ws.exgen && ws.exval.(v) = 0 then begin
        ws.exval.(v) <- 1;
        incr seen_n
      end
      else dup := true)
  in
  scan sp.s1;
  scan sp.t1;
  scan sp.s2;
  scan sp.t2;
  if !dup || !seen_n <> !piece_n then fail "split is not a partition of the piece"
  else begin
    let designated = piece.r1 :: Option.to_list piece.r2 in
    let laid = sp.s1 @ sp.s2 in
    if not (List.for_all (fun r -> List.mem r laid) designated) then
      fail "designated node not laid out"
    else begin
      (* side and laid-set lookup, stamped into exq/exval: 1-4 encode
         (side, laid) as t1 s1 t2 s2 *)
      ws.exgen <- ws.exgen + 1;
      let put code = List.iter (fun v ->
          ws.exq.(v) <- ws.exgen;
          ws.exval.(v) <- code)
      in
      put 1 sp.t1;
      put 2 sp.s1;
      put 3 sp.t2;
      put 4 sp.s2;
      let side_of v = if ws.exval.(v) <= 2 then 1 else 2 in
      let laid_of v = ws.exval.(v) land 1 = 0 in
      let bad = ref None in
      List.iter
        (fun v ->
          let sv = side_of v and lv = laid_of v in
          Bintree.iter_neighbours ws.tree v (fun w ->
              if ws.exq.(w) = ws.exgen then begin
                let sw = side_of w and lw = laid_of w in
                if sv <> sw && not (lv && lw) then
                  bad := Some (Printf.sprintf "cut edge %d-%d not between s1 and s2" v w)
              end))
        piece.nodes;
      match !bad with
      | Some msg -> Error msg
      | None ->
          (* collinearity of each side; [components] only touches the
             mark/vis stamps, so the side encoding above survives it *)
          let collinear t_side s_side =
            let comps = components ws ~nodes:(t_side @ s_side) ~removed:s_side in
            List.for_all
              (fun comp ->
                let edges = ref 0 in
                List.iter
                  (fun v ->
                    Bintree.iter_neighbours ws.tree v (fun w ->
                        if List.mem w s_side then incr edges))
                  comp;
                !edges <= 2)
              comps
          in
          if not (collinear sp.t1 sp.s1) then fail "side 1 not collinear"
          else if not (collinear sp.t2 sp.s2) then fail "side 2 not collinear"
          else Ok ()
    end
  end
