type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t row =
  let ncols = List.length t.headers in
  let len = List.length row in
  if len > ncols then invalid_arg "Tab.add_row: too many cells";
  let padded = row @ List.init (ncols - len) (fun _ -> "") in
  t.rows <- padded :: t.rows

let add_int_row t label xs = add_row t (label :: List.map string_of_int xs)

let to_string t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print t = print_string (to_string t)

let title t = t.title

let csv_cell cell =
  let needs_quoting = String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  let row cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  row t.headers;
  List.iter row (List.rev t.rows);
  Buffer.contents buf
