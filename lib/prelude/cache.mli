(** Domain-safe sharded LRU cache.

    Keys are strings; values are arbitrary. The key space is split over a
    power-of-two number of shards (by key hash), each shard guarded by its
    own mutex and keeping its entries on an intrusive doubly-linked
    recency list — concurrent {!Xt_prelude.Parallel} workers touching
    different keys almost never contend, and every operation is O(1)
    inside its shard.

    Capacity is bounded both in entries and (approximately) in bytes;
    least-recently-used entries are evicted when either bound is
    exceeded. Global {!Xt_obs.Obs} counters [cache.hits], [cache.misses],
    [cache.evictions] and [cache.verify_rejects] aggregate over all cache
    instances in the process.

    {!with_memo} is the intended entry point: concurrent misses on the
    same key compute the value once (per-key in-flight latch) while
    misses on different keys proceed in parallel. *)

type 'a t

val create : ?shards:int -> ?capacity:int -> ?max_bytes:int -> unit -> 'a t
(** [shards] (default 8) is rounded up to a power of two. [capacity]
    (default 256) bounds the total entry count; [max_bytes] (default
    unlimited) bounds the sum of the per-entry byte estimates supplied at
    insertion. Both bounds are split evenly across shards. *)

val with_memo :
  'a t ->
  ?bytes:('a -> int) ->
  ?validate:('a -> bool) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_memo t key f] returns the cached value for [key], or computes
    [f ()], stores it and returns it. A hit for which [validate] returns
    [false] (hash collision, counted as a verify-reject) is dropped and
    recomputed. If another domain is already computing [key], the call
    waits on the in-flight latch instead of duplicating the work; [f] runs
    outside all locks. [bytes] estimates the stored size for the byte
    bound. Exceptions from [f] propagate (after waking any waiters) and
    cache nothing. *)

val find : 'a t -> string -> 'a option
(** Counts a hit or a miss, and promotes the entry on hit. *)

val mem : 'a t -> string -> bool
(** Neutral: no counters, no promotion. *)

val add : 'a t -> ?bytes:int -> string -> 'a -> unit
(** Insert or replace (replacement promotes), then evict as needed. *)

val remove : 'a t -> string -> unit
val length : 'a t -> int
val bytes : 'a t -> int

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  resident_bytes : int;
}
(** Per-instance totals since creation (the global Obs counters aggregate
    over every cache in the process; these do not). [entries] and
    [resident_bytes] are the current occupancy, the rest are monotone. *)

val stats : 'a t -> stats

val fold : 'a t -> init:'b -> f:('b -> key:string -> bytes:int -> 'a -> 'b) -> 'b
(** Fold over a point-in-time snapshot of the entries, shard by shard,
    least recently used first within each shard — replaying the fold
    through {!add} therefore reproduces each shard's recency order
    (same keys hash to the same shards, so cross-shard interleaving is
    immaterial). [bytes] is the size estimate given at insertion. [f]
    runs outside all shard locks and may use the cache. *)

val clear : 'a t -> unit
(** Drop all entries (not counted as evictions). *)
