open Xt_obs

let c_hits = Obs.counter "cache.hits"
let c_misses = Obs.counter "cache.misses"
let c_evictions = Obs.counter "cache.evictions"
let c_verify_rejects = Obs.counter "cache.verify_rejects"

type 'a entry = {
  key : string;
  value : 'a;
  size : int;
  mutable prev : 'a entry option; (* towards the head (more recent) *)
  mutable next : 'a entry option; (* towards the tail (less recent) *)
}

(* One latch per in-flight computation; waiters block on [cond] until the
   computing domain flips [done_] and broadcasts. *)
type latch = { lm : Mutex.t; lc : Condition.t; mutable done_ : bool }

type 'a shard = {
  lock : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  inflight : (string, latch) Hashtbl.t;
  mutable head : 'a entry option;
  mutable tail : 'a entry option;
  mutable count : int;
  mutable nbytes : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
  cap_entries : int;
  cap_bytes : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  resident_bytes : int;
}

type 'a t = { mask : int; shards : 'a shard array }

let rec pow2_at_least k n = if k >= n then k else pow2_at_least (2 * k) n

let create ?(shards = 8) ?(capacity = 256) ?max_bytes () =
  if shards < 1 then invalid_arg "Cache.create: shards < 1";
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  let nshards = pow2_at_least 1 shards in
  let cap_entries = max 1 ((capacity + nshards - 1) / nshards) in
  let cap_bytes =
    match max_bytes with
    | None -> max_int
    | Some b ->
        if b < 1 then invalid_arg "Cache.create: max_bytes < 1";
        max 1 (b / nshards)
  in
  {
    mask = nshards - 1;
    shards =
      Array.init nshards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            inflight = Hashtbl.create 8;
            head = None;
            tail = None;
            count = 0;
            nbytes = 0;
            n_hits = 0;
            n_misses = 0;
            n_evictions = 0;
            cap_entries;
            cap_bytes;
          });
  }

let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

(* List surgery; callers hold the shard lock. *)

let unlink sh e =
  (match e.prev with Some p -> p.next <- e.next | None -> sh.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> sh.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front sh e =
  e.prev <- None;
  e.next <- sh.head;
  (match sh.head with Some h -> h.prev <- Some e | None -> sh.tail <- Some e);
  sh.head <- Some e

let promote sh e =
  if sh.head != Some e then begin
    unlink sh e;
    push_front sh e
  end

let drop sh e =
  Hashtbl.remove sh.table e.key;
  unlink sh e;
  sh.count <- sh.count - 1;
  sh.nbytes <- sh.nbytes - e.size

let evict_over sh =
  while
    (sh.count > sh.cap_entries || sh.nbytes > sh.cap_bytes) && Option.is_some sh.tail
  do
    (match sh.tail with Some e -> drop sh e | None -> ());
    sh.n_evictions <- sh.n_evictions + 1;
    Obs.incr c_evictions
  done

let insert sh key value size =
  (match Hashtbl.find_opt sh.table key with Some old -> drop sh old | None -> ());
  let e = { key; value; size; prev = None; next = None } in
  Hashtbl.replace sh.table key e;
  push_front sh e;
  sh.count <- sh.count + 1;
  sh.nbytes <- sh.nbytes + size;
  evict_over sh

(* Public operations. *)

let add t ?(bytes = 0) key value =
  let sh = shard_of t key in
  Mutex.lock sh.lock;
  insert sh key value bytes;
  Mutex.unlock sh.lock

let find t key =
  let sh = shard_of t key in
  Mutex.lock sh.lock;
  let r =
    match Hashtbl.find_opt sh.table key with
    | Some e ->
        promote sh e;
        sh.n_hits <- sh.n_hits + 1;
        Some e.value
    | None ->
        sh.n_misses <- sh.n_misses + 1;
        None
  in
  Mutex.unlock sh.lock;
  (match r with Some _ -> Obs.incr c_hits | None -> Obs.incr c_misses);
  r

let mem t key =
  let sh = shard_of t key in
  Mutex.lock sh.lock;
  let r = Hashtbl.mem sh.table key in
  Mutex.unlock sh.lock;
  r

let remove t key =
  let sh = shard_of t key in
  Mutex.lock sh.lock;
  (match Hashtbl.find_opt sh.table key with Some e -> drop sh e | None -> ());
  Mutex.unlock sh.lock

let length t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let c = sh.count in
      Mutex.unlock sh.lock;
      acc + c)
    0 t.shards

let bytes t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let b = sh.nbytes in
      Mutex.unlock sh.lock;
      acc + b)
    0 t.shards

let stats t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let s =
        {
          hits = acc.hits + sh.n_hits;
          misses = acc.misses + sh.n_misses;
          evictions = acc.evictions + sh.n_evictions;
          entries = acc.entries + sh.count;
          resident_bytes = acc.resident_bytes + sh.nbytes;
        }
      in
      Mutex.unlock sh.lock;
      s)
    { hits = 0; misses = 0; evictions = 0; entries = 0; resident_bytes = 0 }
    t.shards

let fold t ~init ~f =
  (* Snapshot each shard's recency chain under its lock, then run [f]
     outside all locks so it may touch the cache (or block) freely. The
     least-recent entry comes first so that replaying the fold through
     [add] reproduces the recency order. *)
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let chain = ref [] in
      let cur = ref sh.head in
      (* Walk head->tail consing as we go: the finished list reads
         tail-first, i.e. least recent first. *)
      while Option.is_some !cur do
        (match !cur with
        | Some e ->
            chain := (e.key, e.value, e.size) :: !chain;
            cur := e.next
        | None -> ());
      done;
      Mutex.unlock sh.lock;
      List.fold_left (fun acc (key, value, size) -> f acc ~key ~bytes:size value) acc !chain)
    init t.shards

let clear t =
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      Hashtbl.reset sh.table;
      sh.head <- None;
      sh.tail <- None;
      sh.count <- 0;
      sh.nbytes <- 0;
      Mutex.unlock sh.lock)
    t.shards

let release latch =
  Mutex.lock latch.lm;
  latch.done_ <- true;
  Condition.broadcast latch.lc;
  Mutex.unlock latch.lm

let with_memo t ?bytes ?validate key f =
  let sh = shard_of t key in
  let size_of v = match bytes with Some g -> g v | None -> 0 in
  let valid v = match validate with Some g -> g v | None -> true in
  (* [allow_wait] is true only on the first pass: a waiter woken by a latch
     whose computation failed (or whose result was already evicted) computes
     the value itself instead of queueing behind yet another latch. *)
  let rec attempt allow_wait =
    Mutex.lock sh.lock;
    match Hashtbl.find_opt sh.table key with
    | Some e when valid e.value ->
        promote sh e;
        sh.n_hits <- sh.n_hits + 1;
        Mutex.unlock sh.lock;
        Obs.incr c_hits;
        e.value
    | Some e ->
        drop sh e;
        Obs.incr c_verify_rejects;
        miss allow_wait
    | None -> miss allow_wait
  (* Called with the shard lock held; always releases it. *)
  and miss allow_wait =
    match Hashtbl.find_opt sh.inflight key with
    | Some latch when allow_wait ->
        Mutex.unlock sh.lock;
        Mutex.lock latch.lm;
        while not latch.done_ do
          Condition.wait latch.lc latch.lm
        done;
        Mutex.unlock latch.lm;
        attempt false
    | _ ->
        let latch = { lm = Mutex.create (); lc = Condition.create (); done_ = false } in
        Hashtbl.replace sh.inflight key latch;
        sh.n_misses <- sh.n_misses + 1;
        Mutex.unlock sh.lock;
        Obs.incr c_misses;
        let cleanup () =
          Mutex.lock sh.lock;
          (* Only remove our own latch: a failed computation may have been
             superseded by another domain's in-flight entry. *)
          (match Hashtbl.find_opt sh.inflight key with
          | Some l when l == latch -> Hashtbl.remove sh.inflight key
          | _ -> ());
          Mutex.unlock sh.lock
        in
        let v =
          try f ()
          with exn ->
            cleanup ();
            release latch;
            raise exn
        in
        Mutex.lock sh.lock;
        insert sh key v (size_of v);
        (match Hashtbl.find_opt sh.inflight key with
        | Some l when l == latch -> Hashtbl.remove sh.inflight key
        | _ -> ());
        Mutex.unlock sh.lock;
        release latch;
        v
  in
  attempt true
