(* Persistent domain pool with chunked fork-join primitives.

   One pool per process, created lazily at the first parallel call and
   kept alive until exit (no Domain.spawn per call). The submitting
   domain participates in every batch, so a pool of [d] budgeted domains
   runs batches on [d-1] workers plus the caller.

   Batches live in a FIFO queue, so a call made from inside a batch body
   (nested parallelism) dispatches to the pool like any other instead of
   running inline. Deadlock-freedom: a submitter first claims every
   remaining chunk of its own batch itself, so when it blocks, each
   outstanding chunk is held by a domain actively executing it; a blocked
   domain always waits on a batch nested strictly deeper than the chunk
   it holds, so wait chains strictly increase nesting depth, are bounded
   by the number of domains, and end at a domain making progress. *)

open Xt_obs

(* Telemetry. [items]/[batches]/[chunks] count scheduled work (items are
   counted on the sequential fallback too, so their total is independent
   of the domain budget); [queue_wait_ns] is the time a pool worker spent
   blocked between batches; [forks_taken]/[forks_sequentialized] count
   {!fork_cutoff} decisions (where the cutoff bites). All of it is off
   unless Obs metrics are enabled. *)
let c_items = Obs.counter "parallel.items"
let c_batches = Obs.counter "parallel.batches"
let c_chunks = Obs.counter "parallel.chunks"
let c_forks_taken = Obs.counter "parallel.forks_taken"
let c_forks_seq = Obs.counter "parallel.forks_sequentialized"
let g_lanes = Obs.gauge "parallel.lanes"
let h_queue_wait = Obs.histogram "parallel.queue_wait_ns"

let recommended_domains () =
  let cores = Domain.recommended_domain_count () in
  min 8 (max 1 (cores - 1))

let override : int option ref = ref None

let env_domains =
  lazy
    (match Sys.getenv_opt "XT_DOMAINS" with
    | None -> None
    | Some s -> ( match int_of_string_opt (String.trim s) with Some d when d >= 1 -> Some d | _ -> None))

let domain_budget () =
  match !override with
  | Some d -> max 1 d
  | None -> ( match Lazy.force env_domains with Some d -> d | None -> recommended_domains ())

let set_domain_budget d = override := Some (max 1 d)

(* True while the current domain is executing a batch body (worker or
   participating caller). Nested calls still dispatch to the pool; this
   flag only informs callers that want a sequential default inside an
   already-parallel region (e.g. [Theorem1]'s sweep heuristic). *)
let busy_key = Domain.DLS.new_key (fun () -> false)

let in_parallel_region () = Domain.DLS.get busy_key

(* ------------------------------------------------------------------ *)
(* Per-domain slots                                                    *)
(* ------------------------------------------------------------------ *)

type 'a slots = 'a option ref Domain.DLS.key

let make_slots () : 'a slots = Domain.DLS.new_key (fun () -> ref None)

let slot (s : 'a slots) ~default =
  let r = Domain.DLS.get s in
  match !r with
  | Some v -> v
  | None ->
      let v = default () in
      r := Some v;
      v

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

type batch = {
  n : int;                      (* item count *)
  chunk : int;                  (* items per chunk *)
  chunks : int;                 (* ceil (n / chunk) *)
  body : int -> unit;
  next : int Atomic.t;          (* next unclaimed chunk *)
  completed : int Atomic.t;     (* chunks accounted for *)
  failed : (int * exn) option Atomic.t; (* lowest failed item index *)
}

let first_failed b = match Atomic.get b.failed with None -> max_int | Some (i, _) -> i

(* Keep the failure with the smallest item index: the propagated
   exception is then exactly the one sequential execution would raise
   first, because every item below the final minimum still runs. *)
let record_failure b i e =
  let rec cas () =
    let cur = Atomic.get b.failed in
    let better = match cur with None -> true | Some (j, _) -> i < j in
    if better && not (Atomic.compare_and_set b.failed cur (Some (i, e))) then cas ()
  in
  cas ()

(* Claim chunks until exhausted. Chunks entirely above the current first
   failure are skipped; a running chunk re-checks the failure frontier
   before every item, so workers stop promptly once something fails
   while still executing every item that precedes the failure. *)
let run_batch b =
  let continue_ = ref true in
  while !continue_ do
    let c = Atomic.fetch_and_add b.next 1 in
    if c >= b.chunks then continue_ := false
    else begin
      Obs.incr c_chunks;
      let lo = c * b.chunk in
      let hi = min b.n (lo + b.chunk) in
      let j = ref lo in
      while !j < hi && !j < first_failed b do
        (try b.body !j with e -> record_failure b !j e);
        incr j
      done;
      Atomic.incr b.completed
    end
  done

let exhausted b = Atomic.get b.next >= b.chunks
let complete b = Atomic.get b.completed >= b.chunks

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type pool = {
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable queue : batch list;   (* FIFO of batches with work left *)
  mutable shutdown : bool;
  mutable workers : unit Domain.t array;
}

(* Drop batches with no unclaimed chunks; serve the front of the rest.
   Called with [pool.m] held. *)
let pick_work pool =
  pool.queue <- List.filter (fun b -> not (exhausted b)) pool.queue;
  match pool.queue with b :: _ -> Some b | [] -> None

let worker_loop pool =
  Domain.DLS.set busy_key true;
  let running = ref true in
  while !running do
    let wait_from = if Obs.metrics_enabled () then Obs.now_ns () else 0 in
    Mutex.lock pool.m;
    let job = ref (pick_work pool) in
    while !job = None && not pool.shutdown do
      Condition.wait pool.work_cv pool.m;
      job := pick_work pool
    done;
    Mutex.unlock pool.m;
    match !job with
    | None -> running := false
    | Some b ->
        if wait_from <> 0 then Obs.observe h_queue_wait (Obs.now_ns () - wait_from);
        Obs.span "parallel.batch" (fun () -> run_batch b);
        if complete b then begin
          Mutex.lock pool.m;
          Condition.broadcast pool.done_cv;
          Mutex.unlock pool.m
        end
  done

(* The pool is sized once, at first use: enough workers for the budget in
   force, but never fewer than three — so a later, larger [--jobs] (or a
   test raising the budget after a sequential phase) still finds real
   lanes. Oversubscription is harmless: idle workers sleep on [work_cv]. *)
let the_pool =
  lazy
    (let pool =
       {
         m = Mutex.create ();
         work_cv = Condition.create ();
         done_cv = Condition.create ();
         queue = [];
         shutdown = false;
         workers = [||];
       }
     in
     let workers = max 3 (domain_budget () - 1) in
     pool.workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop pool));
     at_exit (fun () ->
         Mutex.lock pool.m;
         pool.shutdown <- true;
         Condition.broadcast pool.work_cv;
         Mutex.unlock pool.m;
         Array.iter Domain.join pool.workers);
     pool)

(* ------------------------------------------------------------------ *)
(* Fork-join primitives                                                *)
(* ------------------------------------------------------------------ *)

let sequential_for n body =
  for i = 0 to n - 1 do
    body i
  done

let parallel_for ?domains ?chunk n body =
  if n < 0 then invalid_arg "Parallel.parallel_for";
  Obs.add c_items n;
  let budget = match domains with Some d -> max 1 (min d (domain_budget ())) | None -> domain_budget () in
  if n = 0 then ()
  else if budget <= 1 || n = 1 then sequential_for n body
  else begin
    let pool = Lazy.force the_pool in
    if Array.length pool.workers = 0 then sequential_for n body
    else begin
      let lanes = min budget (Array.length pool.workers + 1) in
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 ((n + (4 * lanes) - 1) / (4 * lanes))
      in
      let chunks = (n + chunk - 1) / chunk in
      let b =
        {
          n;
          chunk;
          chunks;
          body;
          next = Atomic.make 0;
          completed = Atomic.make 0;
          failed = Atomic.make None;
        }
      in
      Obs.incr c_batches;
      Obs.set_gauge g_lanes lanes;
      Obs.span ~arg:n "parallel.for" @@ fun () ->
      Mutex.lock pool.m;
      pool.queue <- pool.queue @ [ b ];
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.m;
      (* Participate: claim our own batch's chunks to exhaustion before
         blocking, preserving the deadlock-freedom argument above. *)
      let was_busy = Domain.DLS.get busy_key in
      Domain.DLS.set busy_key true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set busy_key was_busy)
        (fun () -> Obs.span "parallel.batch" (fun () -> run_batch b));
      Mutex.lock pool.m;
      pool.queue <- List.filter (fun b' -> b' != b) pool.queue;
      while not (complete b) do
        Condition.wait pool.done_cv pool.m
      done;
      Mutex.unlock pool.m;
      match Atomic.get b.failed with Some (_, e) -> raise e | None -> ()
    end
  end

(* Binary fork over the same machinery: index 0 runs [fa], index 1 [fb].
   The failure protocol guarantees that if both raise, [fa]'s exception
   wins — exactly the sequential order. *)
let fork_join fa fb =
  let ra = ref None and rb = ref None in
  parallel_for ~chunk:1 2 (fun i ->
      if i = 0 then ra := Some (fa ()) else rb := Some (fb ()));
  match (!ra, !rb) with
  | Some a, Some b -> (a, b)
  | _ -> failwith "Parallel.fork_join: missing result"

let fork_cutoff ~size ~cutoff fa fb =
  if size < cutoff || domain_budget () <= 1 then begin
    Obs.incr c_forks_seq;
    let a = fa () in
    let b = fb () in
    (a, b)
  end
  else begin
    Obs.incr c_forks_taken;
    fork_join fa fb
  end

(* Per-cycle barrier combinator: a fixed team of [lanes] runs each
   phase in parallel, and no lane enters phase p+1 until every lane has
   finished phase p. Each phase is one [parallel_for] dispatch with one
   lane per chunk, so the join of the dispatch IS the barrier and the
   failure protocol carries over unchanged (the exception propagated is
   the lowest-lane one of the earliest failing phase; later phases are
   not started). Callers that drive a simulation loop keep the phase
   closures preallocated and pass the same list every cycle, so a cycle
   costs three pool dispatches and no closure allocation. *)
let phased ?domains ~lanes bodies =
  if lanes < 0 then invalid_arg "Parallel.phased";
  List.iter (fun body -> parallel_for ?domains ~chunk:1 lanes body) bodies

let map_array ?domains ?chunk f xs =
  let n = Array.length xs in
  let out = Array.make n None in
  parallel_for ?domains ?chunk n (fun i -> out.(i) <- Some (f xs.(i)));
  Array.map (function Some r -> r | None -> failwith "Parallel.map_array: missing result") out

let map ?domains f xs = Array.to_list (map_array ?domains f (Array.of_list xs))

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)

let map_reduce ?domains ~map:m ~combine init xs =
  let n = Array.length xs in
  if n = 0 then init
  else begin
    let budget = match domains with Some d -> max 1 d | None -> domain_budget () in
    let chunk = max 1 ((n + (4 * budget) - 1) / (4 * budget)) in
    let chunks = (n + chunk - 1) / chunk in
    let partials = Array.make chunks None in
    parallel_for ?domains ~chunk:1 chunks (fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) in
        let acc = ref (m xs.(lo)) in
        for i = lo + 1 to hi - 1 do
          acc := combine !acc (m xs.(i))
        done;
        partials.(c) <- Some !acc);
    Array.fold_left
      (fun acc p -> match p with Some v -> combine acc v | None -> acc)
      init partials
  end
