let recommended_domains () =
  let cores = Domain.recommended_domain_count () in
  min 8 (max 1 (cores - 1))

let map ?domains f xs =
  let domains = match domains with Some d -> max 1 d | None -> recommended_domains () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if domains = 1 || n = 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue_ := false
        else
          try results.(i) <- Some (f items.(i))
          with e -> ignore (Atomic.compare_and_set failure None (Some e))
      done
    in
    let workers = List.init (min domains n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join workers;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map (function Some r -> r | None -> failwith "Parallel.map: missing result") results)
  end

let iter ?domains f xs = ignore (map ?domains (fun x -> f x) xs)
