let pow2 l =
  if l < 0 || l >= 62 then invalid_arg "Bits.pow2";
  1 lsl l

let ilog2 n =
  if n <= 0 then invalid_arg "Bits.ilog2";
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let is_pow2 n = n > 0 && n land (n - 1) = 0

let popcount n =
  let rec loop acc n = if n = 0 then acc else loop (acc + 1) (n land (n - 1)) in
  loop 0 n

let trailing_ones ~width k =
  let rec loop i = if i >= width then width else if k land (1 lsl i) = 0 then i else loop (i + 1) in
  if width = 0 then 0 else loop 0

let trailing_zeros ~width k =
  let rec loop i = if i >= width then width else if k land (1 lsl i) <> 0 then i else loop (i + 1) in
  if width = 0 then 0 else loop 0

let bit k i = (k lsr i) land 1

let string_of_bits ~width k =
  String.init width (fun i -> if bit k (width - 1 - i) = 1 then '1' else '0')

let gray k = k lxor (k lsr 1)

let hamming a b = popcount (a lxor b)
