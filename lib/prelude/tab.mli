(** Plain-text table rendering for the experiment harness.

    Every experiment in [bench/main.ml] prints one table; this module keeps
    the formatting uniform (aligned columns, a rule under the header). *)

type t
(** A table under construction. *)

val create : title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells, long rows raise
    [Invalid_argument]. *)

val add_int_row : t -> string -> int list -> unit
(** [add_int_row t label xs] appends [label :: map string_of_int xs]. *)

val print : t -> unit
(** Render to stdout with aligned columns. *)

val to_string : t -> string
(** Render to a string (used by tests). *)

val title : t -> string

val to_csv : t -> string
(** RFC-4180-ish CSV: header row then data rows; cells containing commas,
    quotes or newlines are quoted. *)
