(** A mutable binary min-heap over integer-keyed items, used for Dijkstra
    in the congestion-aware router. Keys are compared as integers; ties
    break arbitrarily. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val clear : 'a t -> unit
(** Drop every item in O(1). Capacity is retained, so a cleared heap can
    be reused without reallocation. *)

val push : 'a t -> key:int -> 'a -> unit

val pop_min : 'a t -> (int * 'a) option
(** Remove and return the item with the smallest key. *)

val peek_min : 'a t -> (int * 'a) option
