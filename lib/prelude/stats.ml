type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
}

let of_floats xs =
  let n = Array.length xs in
  if n = 0 then { count = 0; min = 0.; max = 0.; mean = 0.; stddev = 0. }
  else begin
    let mn = ref xs.(0) and mx = ref xs.(0) and sum = ref 0. in
    Array.iter
      (fun x ->
        if x < !mn then mn := x;
        if x > !mx then mx := x;
        sum := !sum +. x)
      xs;
    let mean = !sum /. float_of_int n in
    let var = ref 0. in
    Array.iter (fun x -> var := !var +. ((x -. mean) *. (x -. mean))) xs;
    let stddev = sqrt (!var /. float_of_int n) in
    { count = n; min = !mn; max = !mx; mean; stddev }
  end

let of_ints xs = of_floats (Array.map float_of_int xs)

let max_int_array xs =
  if Array.length xs = 0 then invalid_arg "Stats.max_int_array";
  Array.fold_left max xs.(0) xs

let histogram ~width xs =
  if width <= 0 then invalid_arg "Stats.histogram";
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let b = (x / width) * width in
      let b = if x < 0 && x mod width <> 0 then b - width else b in
      Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    xs;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Nearest-rank index for percentile [p] over [n] sorted samples. *)
let rank_index p n =
  if n = 0 then invalid_arg "Stats.percentile";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile";
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1

let percentile p xs =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  sorted.(rank_index p (Array.length sorted))

let percentile_ints p xs =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  sorted.(rank_index p (Array.length sorted))

type quantiles = { p50 : float; p90 : float; p99 : float }

let quantiles_of_floats xs =
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let q p = sorted.(rank_index p n) in
  { p50 = q 50.; p90 = q 90.; p99 = q 99. }

let quantiles_of_ints xs = quantiles_of_floats (Array.map float_of_int xs)
