(** Fork–join parallelism over a persistent OCaml 5 domain pool.

    A single pool of worker domains is created lazily at the first
    parallel call and reused for the rest of the process (no
    [Domain.spawn] per call). The submitting domain always participates
    in its own batch, so a budget of [d] domains runs work on [d-1] pool
    workers plus the caller.

    Work items must be pure or own their mutable state — nothing here
    synchronises shared data beyond the work queue itself. Batches live
    in a FIFO queue, so calls made from {e inside} a batch body (nested
    parallelism) dispatch to the pool like any other call. Nesting is
    deadlock-free: a submitter claims all remaining chunks of its own
    batch before blocking, so blocked domains only ever wait on chunks
    another domain is actively executing, and wait chains strictly
    increase nesting depth.

    The domain budget resolves, in order: {!set_domain_budget} override,
    the [XT_DOMAINS] environment variable, {!recommended_domains}.
    [XT_DOMAINS=1] forces every primitive down its sequential path.

    When [Xt_obs.Obs] metrics are enabled the runtime records the
    [parallel.items] / [parallel.batches] / [parallel.chunks] counters,
    the {!fork_cutoff} decision counters [parallel.forks_taken] /
    [parallel.forks_sequentialized], and the [parallel.queue_wait_ns]
    worker-wait histogram; with tracing enabled each pool dispatch emits
    a [parallel.for] span on the caller track and one [parallel.batch]
    span per participating domain. [parallel.items] is counted on the
    sequential fallback too, so its total does not depend on the domain
    budget. *)

val recommended_domains : unit -> int
(** [max 1 (cores - 1)], capped at 8. *)

val domain_budget : unit -> int
(** The resolved number of domains a parallel call may use ([>= 1]). *)

val set_domain_budget : int -> unit
(** Process-wide override (e.g. a [--jobs N] flag). Values [< 1] clamp
    to 1. The pool is sized at its first use to at least 4 lanes, so
    raising the budget later still finds real workers; budgets beyond
    the pool size only cap per-call parallelism. *)

val in_parallel_region : unit -> bool
(** True while the calling domain is executing a batch body. Nested
    calls still run in parallel; this is a hint for callers that prefer
    a sequential default inside an already-parallel region. *)

val parallel_for : ?domains:int -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for n body] runs [body i] for [i = 0 .. n-1], distributing
    contiguous chunks of indices over the pool. [?domains] caps the
    parallelism of this call; [?chunk] fixes the chunk size (default:
    about four chunks per available domain).

    Failure protocol: once an item raises, no item above the lowest
    failed index is started (workers stop promptly), while every item
    {e below} it still runs — so the exception propagated after the join
    is deterministically the one sequential execution would raise
    first. *)

val fork_join : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [fork_join fa fb] evaluates both thunks, possibly on two domains,
    and returns both results. Follows the {!parallel_for} failure
    protocol: if both raise, [fa]'s exception is the one propagated. *)

val fork_cutoff : size:int -> cutoff:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** {!fork_join} gated by a work estimate: forks when [size >= cutoff]
    and the domain budget allows, otherwise runs [fa] then [fb] on the
    calling domain. Each decision bumps [parallel.forks_taken] or
    [parallel.forks_sequentialized], so traces show where the cutoff
    bites. *)

val phased : ?domains:int -> lanes:int -> (int -> unit) list -> unit
(** [phased ~lanes [p1; p2; …]] runs phase [p1] as [p1 lane] for every
    [lane = 0 .. lanes-1] in parallel, waits for {e all} lanes to finish
    (a full barrier), then runs [p2] the same way, and so on — the
    per-cycle barrier schedule of the sharded network simulator. Each
    phase is a single {!parallel_for} dispatch with one lane per chunk,
    so the {!parallel_for} failure protocol applies per phase and a
    failing phase prevents the ones after it from starting. With a
    domain budget of 1 the lanes of each phase run sequentially in lane
    order; either way every lane of phase [p] happens-before every lane
    of phase [p+1], so phase bodies that only write lane-owned state
    need no further synchronisation. *)

type 'a slots
(** Per-domain storage: one ['a] per domain that asks, created lazily.
    The canonical use is a scratch workspace (separator arrays, arena
    builders) allocated once per domain and reused across every batch
    it serves. Create one [slots] per static use site, at module
    initialisation — each call to {!make_slots} registers a fresh
    domain-local key and is never reclaimed. *)

val make_slots : unit -> 'a slots

val slot : 'a slots -> default:(unit -> 'a) -> 'a
(** The calling domain's value, created with [default] on first use.
    Distinct domains see distinct values; repeated calls from one
    domain return the same value. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map with the {!parallel_for} failure
    protocol. *)

val map_array : ?domains:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit

val map_reduce :
  ?domains:int -> map:('a -> 'b) -> combine:('b -> 'b -> 'b) -> 'b -> 'a array -> 'b
(** [map_reduce ~map ~combine init xs] folds [combine] over the mapped
    items in index order (chunk partials are combined left to right), so
    the result is deterministic for associative [combine] even when it
    is not commutative. *)
