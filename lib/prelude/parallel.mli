(** Minimal fork–join parallelism over OCaml 5 domains.

    Used by the experiment harness to run independent embeddings (one per
    family × size cell) on separate cores. Work items must be pure or own
    their mutable state — nothing here synchronises shared data beyond the
    work queue itself. *)

val recommended_domains : unit -> int
(** [max 1 (cores - 1)], capped at 8. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, distributing items over
    [domains] worker domains (default {!recommended_domains}; [1] runs
    sequentially in the calling domain). Order is preserved. The first
    exception raised by any item is re-raised after all workers join. *)

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
