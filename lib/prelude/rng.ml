type t = Random.State.t

let make ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66d |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; 0x2545f491 |]

let int t bound = Random.State.int t bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + Random.State.int t (hi - lo + 1)

let bool t = Random.State.bool t

let float t bound = Random.State.float t bound

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(Random.State.int t (Array.length a))
