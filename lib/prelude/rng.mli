(** Deterministic pseudo-random number generation.

    Thin wrapper around [Random.State] so that every generator in the
    library threads an explicit state and experiments are reproducible from
    a single integer seed. *)

type t
(** A mutable random state. *)

val make : seed:int -> t
(** Fresh state derived from [seed]. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] draws from [t] to create an independent child state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool
(** A fair coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] if the
    array is empty. *)
