(** Bit-level helpers used throughout the X-tree libraries.

    X-tree vertices are addressed by binary strings; we encode a string of
    length [l] with integer value [k] as the pair [(l, k)] and frequently
    need the little bit-fiddling operations below. *)

val pow2 : int -> int
(** [pow2 l] is [2{^l}]. Raises [Invalid_argument] if [l < 0] or [l >= 62]. *)

val ilog2 : int -> int
(** [ilog2 n] is [⌊log₂ n⌋] for [n >= 1]. Raises [Invalid_argument] on
    [n <= 0]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a positive power of two. *)

val popcount : int -> int
(** Number of set bits of a non-negative integer. *)

val trailing_ones : width:int -> int -> int
(** [trailing_ones ~width k] is the length of the maximal suffix of ones of
    the [width]-bit binary representation of [k]. For [width = 0] the result
    is 0. *)

val trailing_zeros : width:int -> int -> int
(** [trailing_zeros ~width k] is the length of the maximal suffix of zeros
    of the [width]-bit representation of [k]. For [width = 0] it is 0. *)

val bit : int -> int -> int
(** [bit k i] is bit [i] (0 = least significant) of [k], either 0 or 1. *)

val string_of_bits : width:int -> int -> string
(** [string_of_bits ~width k] renders the [width]-bit big-endian binary
    string of [k]; the empty string when [width = 0]. *)

val gray : int -> int
(** [gray k] is the binary-reflected Gray code of [k]. *)

val hamming : int -> int -> int
(** [hamming a b] is the Hamming distance [popcount (a lxor b)]. *)
