type 'a t = {
  mutable keys : int array;
  mutable items : 'a array;
  mutable size : int;
}

let create () = { keys = Array.make 16 0; items = [||]; size = 0 }

let is_empty h = h.size = 0
let size h = h.size
let clear h = h.size <- 0

let grow h item =
  if h.size = 0 && Array.length h.items = 0 then begin
    h.items <- Array.make (Array.length h.keys) item
  end
  else if h.size >= Array.length h.keys then begin
    let cap = 2 * Array.length h.keys in
    let keys = Array.make cap 0 and items = Array.make cap h.items.(0) in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.items 0 items 0 h.size;
    h.keys <- keys;
    h.items <- items
  end

let swap h i j =
  let k = h.keys.(i) and x = h.items.(i) in
  h.keys.(i) <- h.keys.(j);
  h.items.(i) <- h.items.(j);
  h.keys.(j) <- k;
  h.items.(j) <- x

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~key item =
  grow h item;
  h.keys.(h.size) <- key;
  h.items.(h.size) <- item;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek_min h = if h.size = 0 then None else Some (h.keys.(0), h.items.(0))

let pop_min h =
  if h.size = 0 then None
  else begin
    let top = (h.keys.(0), h.items.(0)) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.items.(0) <- h.items.(h.size);
      sift_down h 0
    end;
    Some top
  end
