(** Small summary statistics over integer and float samples, used by the
    experiment harness to aggregate per-edge and per-vertex measurements. *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
}
(** Five-number-ish summary of a sample. For an empty sample all fields are
    0 except [count]. *)

val of_floats : float array -> summary
val of_ints : int array -> summary

val max_int_array : int array -> int
(** Maximum of a non-empty int array. Raises [Invalid_argument] on empty. *)

val histogram : width:int -> int array -> (int * int) list
(** [histogram ~width xs] buckets values into intervals of size [width] and
    returns [(bucket_start, count)] pairs in increasing order, skipping
    empty buckets. *)

val percentile : float -> float array -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on a sorted copy.
    Raises [Invalid_argument] on an empty sample. *)
