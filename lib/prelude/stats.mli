(** Small summary statistics over integer and float samples, used by the
    experiment harness to aggregate per-edge and per-vertex measurements. *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  stddev : float;
}
(** Five-number-ish summary of a sample. For an empty sample all fields are
    0 except [count]. *)

val of_floats : float array -> summary
val of_ints : int array -> summary

val max_int_array : int array -> int
(** Maximum of a non-empty int array. Raises [Invalid_argument] on empty. *)

val histogram : width:int -> int array -> (int * int) list
(** [histogram ~width xs] buckets values into intervals of size [width] and
    returns [(bucket_start, count)] pairs in increasing order, skipping
    empty buckets. Negative values bucket by floor division: with
    [width = 10], [-1] lands in bucket [-10] and [-10] in bucket [-10]
    (every bucket covers [\[start, start + width)]). *)

val percentile : float -> float array -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on a sorted copy.
    Exact: the result is always one of the samples. Raises
    [Invalid_argument] on an empty sample. *)

val percentile_ints : float -> int array -> int
(** Nearest-rank percentile of an integer sample, without a float
    round-trip. Same contract as {!percentile}. *)

type quantiles = { p50 : float; p90 : float; p99 : float }
(** The latency-reporting quantiles, exact nearest-rank (each is one of
    the samples) — one sort per call, shared by all three. *)

val quantiles_of_floats : float array -> quantiles
val quantiles_of_ints : int array -> quantiles
(** Raise [Invalid_argument] on an empty sample, like {!percentile}. *)
