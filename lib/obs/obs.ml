(* Domain-sharded metrics + span tracing. See obs.mli for the contract.

   Layout notes. Every instrument keeps [nshards] cells; a recording
   domain writes cell [Domain.self () land (nshards - 1)], so distinct
   pool domains write distinct cells. Counter and gauge cells live in
   one int array padded to a cache line (8 words) per shard, so two
   domains bumping the same counter never share a line. Writes are
   plain (not atomic): each cell has a single writer, and every reader
   (drain, export) runs after the parallel region has joined, which the
   pool's mutex hand-off orders for us. *)

let nshards = 64
let shard_mask = nshards - 1
let pad = 8 (* ints per shard slot: one 64-byte line *)

let shard_index () = (Domain.self () :> int) land shard_mask

(* ------------------------------------------------------------------ *)
(* Flags and clock                                                     *)
(* ------------------------------------------------------------------ *)

let metrics_on = ref false
let tracing_on = ref false

(* The flight recorder is on by default: recording an event writes a few
   preallocated ring cells, so leaving it armed costs nothing measurable
   and a wedged process can always explain its recent past. *)
let recorder_on = ref true

(* Per-span GC sampling (Gc.quick_stat around every span). Off by
   default: the stat read allocates and the deltas are not deterministic,
   so only explicitly profiling runs turn it on. *)
let gc_on = ref false

let metrics_enabled () = !metrics_on
let tracing_enabled () = !tracing_on
let enable_metrics () = metrics_on := true
let disable_metrics () = metrics_on := false
let recorder_enabled () = !recorder_on
let enable_recorder () = recorder_on := true
let disable_recorder () = recorder_on := false
let gc_sampling_enabled () = !gc_on
let enable_gc_sampling () = gc_on := true
let disable_gc_sampling () = gc_on := false

let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)
let clock = ref default_clock
let set_clock f = clock := f
let now_ns () = !clock ()

(* XT_FAKE_CLOCK=1 injects a deterministic tick counter at load time —
   the knob the trace-smoke tests use to make CLI traces byte-stable.
   The atomic is shared by all domains, so multi-domain runs stay
   race-free (ticks are unique) even though their interleaving is not
   deterministic. *)
let () =
  match Sys.getenv_opt "XT_FAKE_CLOCK" with
  | Some s when s <> "" && s <> "0" ->
      let tick = Atomic.make 0 in
      clock := fun () -> Atomic.fetch_and_add tick 1 * 1000
  | _ -> ()

(* Trace timestamps are exported relative to this origin. *)
let trace_origin = ref 0

let disable_tracing () = tracing_on := false

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; cells : int array }
type gauge = { g_name : string; g_cells : int array (* min_int = unset *) }

type hshard = {
  hcounts : int array; (* bounds + overflow *)
  mutable hsum : int;
  mutable hcount : int;
  mutable hmin : int;
  mutable hmax : int;
}

type histogram = { name : string; bounds : int array; shards : hshard array }

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock registry_mutex;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.replace tbl name v;
        v
  in
  Mutex.unlock registry_mutex;
  v

let counter name =
  registered counters name (fun () -> { c_name = name; cells = Array.make (nshards * pad) 0 })

let add c n =
  if !metrics_on then begin
    let i = shard_index () * pad in
    c.cells.(i) <- c.cells.(i) + n
  end

let incr c = add c 1

let gauge name =
  registered gauges name (fun () ->
      { g_name = name; g_cells = Array.make (nshards * pad) min_int })

let set_gauge g v = if !metrics_on then g.g_cells.(shard_index () * pad) <- v

(* 1, 2, 4, ..., 2^29: thirty buckets covering ns latencies up to ~0.5 s
   and size distributions up to ~5e8. *)
let default_buckets = Array.init 30 (fun i -> 1 lsl i)

let histogram ?(buckets = default_buckets) name =
  registered histograms name (fun () ->
      if Array.length buckets = 0 then invalid_arg "Obs.histogram: empty buckets";
      Array.iteri
        (fun i b -> if i > 0 && buckets.(i - 1) >= b then invalid_arg "Obs.histogram: buckets not sorted")
        buckets;
      {
        name;
        bounds = Array.copy buckets;
        shards =
          Array.init nshards (fun _ ->
              {
                hcounts = Array.make (Array.length buckets + 1) 0;
                hsum = 0;
                hcount = 0;
                hmin = max_int;
                hmax = min_int;
              });
      })

(* First bucket whose inclusive upper bound is >= v, else the overflow
   slot. Binary search: bounds are small arrays but latency ladders have
   ~30 entries. *)
let bucket_of bounds v =
  let nb = Array.length bounds in
  if v > bounds.(nb - 1) then nb
  else begin
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v =
  if !metrics_on then begin
    let s = h.shards.(shard_index ()) in
    let b = bucket_of h.bounds v in
    s.hcounts.(b) <- s.hcounts.(b) + 1;
    s.hsum <- s.hsum + v;
    s.hcount <- s.hcount + 1;
    if v < s.hmin then s.hmin <- v;
    if v > s.hmax then s.hmax <- v
  end

let time_ns h f =
  if not !metrics_on then f ()
  else begin
    let t0 = now_ns () in
    let r = f () in
    observe h (now_ns () - t0);
    r
  end

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)
(* ------------------------------------------------------------------ *)

type histogram_row = {
  h_name : string;
  bounds : int array;
  counts : int array;
  count : int;
  sum : int;
  vmin : int;
  vmax : int;
}

type dump = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : histogram_row list;
}

let sorted_values tbl = Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let by_name name_of l = List.sort (fun a b -> compare (name_of a) (name_of b)) l

let snapshot () =
  Mutex.lock registry_mutex;
  let cs = sorted_values counters and gs = sorted_values gauges and hs = sorted_values histograms in
  Mutex.unlock registry_mutex;
  let counter_total (c : counter) =
    let t = ref 0 in
    for i = 0 to nshards - 1 do
      t := !t + c.cells.(i * pad)
    done;
    (c.c_name, !t)
  in
  let gauge_merged (g : gauge) =
    let t = ref min_int in
    for i = 0 to nshards - 1 do
      let v = g.g_cells.(i * pad) in
      if v > !t then t := v
    done;
    (g.g_name, if !t = min_int then 0 else !t)
  in
  let hist_merged (h : histogram) =
    let nb = Array.length h.bounds in
    let counts = Array.make (nb + 1) 0 in
    let sum = ref 0 and count = ref 0 and vmin = ref max_int and vmax = ref min_int in
    Array.iter
      (fun s ->
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.hcounts;
        sum := !sum + s.hsum;
        count := !count + s.hcount;
        if s.hmin < !vmin then vmin := s.hmin;
        if s.hmax > !vmax then vmax := s.hmax)
      h.shards;
    {
      h_name = h.name;
      bounds = Array.copy h.bounds;
      counts;
      count = !count;
      sum = !sum;
      vmin = (if !count = 0 then 0 else !vmin);
      vmax = (if !count = 0 then 0 else !vmax);
    }
  in
  {
    counters = by_name fst (List.map counter_total cs);
    gauges = by_name fst (List.map gauge_merged gs);
    histograms = by_name (fun r -> r.h_name) (List.map hist_merged hs);
  }

let reset_metrics () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ (c : counter) -> Array.fill c.cells 0 (Array.length c.cells) 0) counters;
  Hashtbl.iter (fun _ (g : gauge) -> Array.fill g.g_cells 0 (Array.length g.g_cells) min_int) gauges;
  Hashtbl.iter
    (fun _ (h : histogram) ->
      Array.iter
        (fun s ->
          Array.fill s.hcounts 0 (Array.length s.hcounts) 0;
          s.hsum <- 0;
          s.hcount <- 0;
          s.hmin <- max_int;
          s.hmax <- min_int)
        h.shards)
    histograms;
  Mutex.unlock registry_mutex

let drain () =
  let d = snapshot () in
  reset_metrics ();
  d

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let int_list b l =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    l;
  Buffer.add_char b ']'

let dump_json d =
  let b = Buffer.create 1024 in
  let obj kvs emit =
    Buffer.add_char b '{';
    List.iteri
      (fun i kv ->
        if i > 0 then Buffer.add_char b ',';
        emit kv)
      kvs;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  obj d.counters (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v));
  Buffer.add_string b ",\"gauges\":";
  obj d.gauges (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v));
  Buffer.add_string b ",\"histograms\":";
  obj d.histograms (fun r ->
      Buffer.add_string b (Printf.sprintf "\"%s\":{\"bounds\":" (json_escape r.h_name));
      int_list b r.bounds;
      Buffer.add_string b ",\"counts\":";
      int_list b r.counts;
      Buffer.add_string b
        (Printf.sprintf ",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d}" r.count r.sum r.vmin
           r.vmax));
  Buffer.add_string b "}";
  Buffer.contents b

(* Quantile estimate from bucketed counts. The answer is the upper bound
   of the bucket holding the rank-th sample, clamped to the observed
   [vmin, vmax] — clamping makes single-sample histograms exact and keeps
   the overflow bucket (no upper bound) finite. *)
let quantile r q =
  if r.count = 0 then 0
  else begin
    let rank = min r.count (max 1 (int_of_float (ceil (q *. float_of_int r.count)))) in
    let nb = Array.length r.bounds in
    let res = ref r.vmax and cum = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if c > 0 && !cum >= rank then begin
             res := (if i < nb then min r.bounds.(i) r.vmax else r.vmax);
             raise Exit
           end)
         r.counts
     with Exit -> ());
    max r.vmin !res
  end

let pp_dump b d =
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s = %d\n" k v)) d.counters;
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s = %d (gauge)\n" k v)) d.gauges;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s: count=%d sum=%d min=%d max=%d p50=%d p90=%d p99=%d\n" r.h_name
           r.count r.sum r.vmin r.vmax (quantile r 0.50) (quantile r 0.90) (quantile r 0.99)))
    d.histograms

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

type ev = {
  e_name : string;
  ph : char;
  ts : int;
  e_arg : int; (* min_int = none *)
  e_arg2 : int; (* min_int = none; major-words delta under GC sampling *)
}

let dummy_ev = { e_name = ""; ph = 'X'; ts = 0; e_arg = min_int; e_arg2 = min_int }

type track = { mutable evs : ev array; mutable len : int }

let tracks = Array.init nshards (fun _ -> { evs = [||]; len = 0 })

let push ph name arg arg2 =
  let t = tracks.(shard_index ()) in
  let cap = Array.length t.evs in
  if t.len = cap then begin
    let evs = Array.make (max 256 (2 * cap)) dummy_ev in
    Array.blit t.evs 0 evs 0 cap;
    t.evs <- evs
  end;
  t.evs.(t.len) <- { e_name = name; ph; ts = now_ns (); e_arg = arg; e_arg2 = arg2 };
  t.len <- t.len + 1

let reset_trace () = Array.iter (fun t -> t.len <- 0) tracks

let enable_tracing () =
  trace_origin := now_ns ();
  tracing_on := true

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-shard ring of the most recent events, stored as parallel
   preallocated arrays: appending overwrites one slot of each array
   (the name cell is a pointer write into a preexisting string array),
   so steady-state recording allocates nothing beyond whatever the
   clock itself costs. Capacity is a power of two so the slot index is
   a mask, and [r_total] keeps the lifetime append count so we can
   report how many events the ring has dropped. *)
type ring = {
  mutable r_names : string array;
  mutable r_ph : Bytes.t;
  mutable r_ts : int array;
  mutable r_arg : int array;
  mutable r_arg2 : int array;
  mutable r_total : int;
}

let pow2_ge n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let default_ring_capacity = 256

let make_ring cap =
  {
    r_names = Array.make cap "";
    r_ph = Bytes.make cap ' ';
    r_ts = Array.make cap 0;
    r_arg = Array.make cap min_int;
    r_arg2 = Array.make cap min_int;
    r_total = 0;
  }

let rings = Array.init nshards (fun _ -> make_ring default_ring_capacity)

let recorder_capacity () = Array.length (rings.(0)).r_ts

let reset_recorder () =
  Array.iter
    (fun r ->
      Array.fill r.r_names 0 (Array.length r.r_names) "";
      r.r_total <- 0)
    rings

let set_recorder_capacity n =
  let cap = pow2_ge (max 16 n) in
  Array.iter
    (fun r ->
      r.r_names <- Array.make cap "";
      r.r_ph <- Bytes.make cap ' ';
      r.r_ts <- Array.make cap 0;
      r.r_arg <- Array.make cap min_int;
      r.r_arg2 <- Array.make cap min_int;
      r.r_total <- 0)
    rings

let rec_push ph name arg arg2 =
  let r = rings.(shard_index ()) in
  let i = r.r_total land (Array.length r.r_ts - 1) in
  r.r_names.(i) <- name;
  Bytes.unsafe_set r.r_ph i ph;
  r.r_ts.(i) <- now_ns ();
  r.r_arg.(i) <- arg;
  r.r_arg2.(i) <- arg2;
  r.r_total <- r.r_total + 1

(* Route one event to whichever sinks are armed. *)
let emit ph name arg arg2 =
  if !tracing_on then push ph name arg arg2;
  if !recorder_on then rec_push ph name arg arg2

let gc_sample () =
  let s = Gc.quick_stat () in
  (int_of_float s.Gc.minor_words, int_of_float s.Gc.major_words)

let span ?(arg = min_int) name f =
  if not (!tracing_on || !recorder_on) then f ()
  else begin
    let gmin0, gmaj0 = if !gc_on then gc_sample () else (0, 0) in
    emit 'B' name arg min_int;
    Fun.protect
      ~finally:(fun () ->
        let a, a2 =
          if !gc_on then begin
            let gmin1, gmaj1 = gc_sample () in
            (gmin1 - gmin0, gmaj1 - gmaj0)
          end
          else (min_int, min_int)
        in
        emit 'E' name a a2)
      f
  end

let instant ?(arg = min_int) name =
  if !tracing_on || !recorder_on then emit 'i' name arg min_int

let counter_event name v = if !tracing_on || !recorder_on then emit 'C' name v min_int

let trace_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n" in
  sep ();
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"xtree\"}}";
  Array.iteri
    (fun tid t ->
      if t.len > 0 then begin
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
             tid tid)
      end)
    tracks;
  Array.iteri
    (fun tid t ->
      for i = 0 to t.len - 1 do
        let e = t.evs.(i) in
        let us = float_of_int (e.ts - !trace_origin) /. 1e3 in
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
             (json_escape e.e_name) e.ph us tid);
        (match e.ph with
        | 'C' -> Buffer.add_string b (Printf.sprintf ",\"args\":{\"value\":%d}" e.e_arg)
        | 'i' -> Buffer.add_string b ",\"s\":\"t\""
        | _ -> ());
        if e.ph <> 'C' && e.e_arg <> min_int then begin
          Buffer.add_string b (Printf.sprintf ",\"args\":{\"v\":%d" e.e_arg);
          if e.e_arg2 <> min_int then Buffer.add_string b (Printf.sprintf ",\"v2\":%d" e.e_arg2);
          Buffer.add_char b '}'
        end;
        Buffer.add_char b '}'
      done)
    tracks;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_trace file =
  let oc = open_out file in
  output_string oc (trace_json ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* Event export (analytics) and flight dumps                           *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_tid : int;
  ev_name : string;
  ev_ph : char;
  ev_ts : int; (* ns, relative to the trace origin *)
  ev_arg : int; (* min_int = none *)
  ev_arg2 : int; (* min_int = none *)
}

let events () =
  let acc = ref [] in
  for tid = nshards - 1 downto 0 do
    let t = tracks.(tid) in
    for i = t.len - 1 downto 0 do
      let e = t.evs.(i) in
      acc :=
        {
          ev_tid = tid;
          ev_name = e.e_name;
          ev_ph = e.ph;
          ev_ts = e.ts - !trace_origin;
          ev_arg = e.e_arg;
          ev_arg2 = e.e_arg2;
        }
        :: !acc
    done
  done;
  !acc

(* Oldest-to-newest retained entries of one ring. *)
let ring_fold r f acc =
  let cap = Array.length r.r_ts in
  let n = min r.r_total cap in
  let start = r.r_total - n in
  let acc = ref acc in
  for k = 0 to n - 1 do
    let i = (start + k) land (cap - 1) in
    acc := f !acc i
  done;
  !acc

let flight_events () =
  let acc = ref [] in
  Array.iteri
    (fun tid r ->
      acc :=
        ring_fold r
          (fun acc i ->
            {
              ev_tid = tid;
              ev_name = r.r_names.(i);
              ev_ph = Bytes.get r.r_ph i;
              ev_ts = r.r_ts.(i);
              ev_arg = r.r_arg.(i);
              ev_arg2 = r.r_arg2.(i);
            }
            :: acc)
          !acc)
    rings;
  List.rev !acc

let flight_recorded () = Array.fold_left (fun a r -> a + min r.r_total (Array.length r.r_ts)) 0 rings

let flight_dropped () =
  Array.fold_left (fun a r -> a + max 0 (r.r_total - Array.length r.r_ts)) 0 rings

let pp_flight b =
  let evs = flight_events () in
  Buffer.add_string b "== flight recorder ==\n";
  Buffer.add_string b
    (Printf.sprintf "capacity=%d/shard recorded=%d dropped=%d\n" (recorder_capacity ())
       (flight_recorded ()) (flight_dropped ()));
  (* Timestamps print relative to the earliest retained event, so dumps
     read as "how long before the end did this happen" without leaking
     the absolute epoch clock. *)
  let t0 = List.fold_left (fun a e -> min a e.ev_ts) max_int evs in
  let prev_tid = ref (-1) in
  List.iter
    (fun e ->
      if e.ev_tid <> !prev_tid then begin
        prev_tid := e.ev_tid;
        Buffer.add_string b (Printf.sprintf "-- shard %d --\n" e.ev_tid)
      end;
      Buffer.add_string b
        (Printf.sprintf "+%.3fms %c %s" (float_of_int (e.ev_ts - t0) /. 1e6) e.ev_ph e.ev_name);
      if e.ev_arg <> min_int then Buffer.add_string b (Printf.sprintf " v=%d" e.ev_arg);
      if e.ev_arg2 <> min_int then Buffer.add_string b (Printf.sprintf " v2=%d" e.ev_arg2);
      Buffer.add_char b '\n')
    evs

let write_flight file =
  let b = Buffer.create 4096 in
  pp_flight b;
  let oc = open_out file in
  Buffer.output_buffer oc b;
  close_out oc
