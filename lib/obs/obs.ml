(* Domain-sharded metrics + span tracing. See obs.mli for the contract.

   Layout notes. Every instrument keeps [nshards] cells; a recording
   domain writes cell [Domain.self () land (nshards - 1)], so distinct
   pool domains write distinct cells. Counter and gauge cells live in
   one int array padded to a cache line (8 words) per shard, so two
   domains bumping the same counter never share a line. Writes are
   plain (not atomic): each cell has a single writer, and every reader
   (drain, export) runs after the parallel region has joined, which the
   pool's mutex hand-off orders for us. *)

let nshards = 64
let shard_mask = nshards - 1
let pad = 8 (* ints per shard slot: one 64-byte line *)

let shard_index () = (Domain.self () :> int) land shard_mask

(* ------------------------------------------------------------------ *)
(* Flags and clock                                                     *)
(* ------------------------------------------------------------------ *)

let metrics_on = ref false
let tracing_on = ref false

let metrics_enabled () = !metrics_on
let tracing_enabled () = !tracing_on
let enable_metrics () = metrics_on := true
let disable_metrics () = metrics_on := false

let default_clock () = int_of_float (Unix.gettimeofday () *. 1e9)
let clock = ref default_clock
let set_clock f = clock := f
let now_ns () = !clock ()

(* Trace timestamps are exported relative to this origin. *)
let trace_origin = ref 0

let disable_tracing () = tracing_on := false

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; cells : int array }
type gauge = { g_name : string; g_cells : int array (* min_int = unset *) }

type hshard = {
  hcounts : int array; (* bounds + overflow *)
  mutable hsum : int;
  mutable hcount : int;
  mutable hmin : int;
  mutable hmax : int;
}

type histogram = { name : string; bounds : int array; shards : hshard array }

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let registered tbl name make =
  Mutex.lock registry_mutex;
  let v =
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
        let v = make () in
        Hashtbl.replace tbl name v;
        v
  in
  Mutex.unlock registry_mutex;
  v

let counter name =
  registered counters name (fun () -> { c_name = name; cells = Array.make (nshards * pad) 0 })

let add c n =
  if !metrics_on then begin
    let i = shard_index () * pad in
    c.cells.(i) <- c.cells.(i) + n
  end

let incr c = add c 1

let gauge name =
  registered gauges name (fun () ->
      { g_name = name; g_cells = Array.make (nshards * pad) min_int })

let set_gauge g v = if !metrics_on then g.g_cells.(shard_index () * pad) <- v

(* 1, 2, 4, ..., 2^29: thirty buckets covering ns latencies up to ~0.5 s
   and size distributions up to ~5e8. *)
let default_buckets = Array.init 30 (fun i -> 1 lsl i)

let histogram ?(buckets = default_buckets) name =
  registered histograms name (fun () ->
      if Array.length buckets = 0 then invalid_arg "Obs.histogram: empty buckets";
      Array.iteri
        (fun i b -> if i > 0 && buckets.(i - 1) >= b then invalid_arg "Obs.histogram: buckets not sorted")
        buckets;
      {
        name;
        bounds = Array.copy buckets;
        shards =
          Array.init nshards (fun _ ->
              {
                hcounts = Array.make (Array.length buckets + 1) 0;
                hsum = 0;
                hcount = 0;
                hmin = max_int;
                hmax = min_int;
              });
      })

(* First bucket whose inclusive upper bound is >= v, else the overflow
   slot. Binary search: bounds are small arrays but latency ladders have
   ~30 entries. *)
let bucket_of bounds v =
  let nb = Array.length bounds in
  if v > bounds.(nb - 1) then nb
  else begin
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if bounds.(mid) >= v then hi := mid else lo := mid + 1
    done;
    !lo
  end

let observe h v =
  if !metrics_on then begin
    let s = h.shards.(shard_index ()) in
    let b = bucket_of h.bounds v in
    s.hcounts.(b) <- s.hcounts.(b) + 1;
    s.hsum <- s.hsum + v;
    s.hcount <- s.hcount + 1;
    if v < s.hmin then s.hmin <- v;
    if v > s.hmax then s.hmax <- v
  end

let time_ns h f =
  if not !metrics_on then f ()
  else begin
    let t0 = now_ns () in
    let r = f () in
    observe h (now_ns () - t0);
    r
  end

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)
(* ------------------------------------------------------------------ *)

type histogram_row = {
  h_name : string;
  bounds : int array;
  counts : int array;
  count : int;
  sum : int;
  vmin : int;
  vmax : int;
}

type dump = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : histogram_row list;
}

let sorted_values tbl = Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let by_name name_of l = List.sort (fun a b -> compare (name_of a) (name_of b)) l

let snapshot () =
  Mutex.lock registry_mutex;
  let cs = sorted_values counters and gs = sorted_values gauges and hs = sorted_values histograms in
  Mutex.unlock registry_mutex;
  let counter_total (c : counter) =
    let t = ref 0 in
    for i = 0 to nshards - 1 do
      t := !t + c.cells.(i * pad)
    done;
    (c.c_name, !t)
  in
  let gauge_merged (g : gauge) =
    let t = ref min_int in
    for i = 0 to nshards - 1 do
      let v = g.g_cells.(i * pad) in
      if v > !t then t := v
    done;
    (g.g_name, if !t = min_int then 0 else !t)
  in
  let hist_merged (h : histogram) =
    let nb = Array.length h.bounds in
    let counts = Array.make (nb + 1) 0 in
    let sum = ref 0 and count = ref 0 and vmin = ref max_int and vmax = ref min_int in
    Array.iter
      (fun s ->
        Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.hcounts;
        sum := !sum + s.hsum;
        count := !count + s.hcount;
        if s.hmin < !vmin then vmin := s.hmin;
        if s.hmax > !vmax then vmax := s.hmax)
      h.shards;
    {
      h_name = h.name;
      bounds = Array.copy h.bounds;
      counts;
      count = !count;
      sum = !sum;
      vmin = (if !count = 0 then 0 else !vmin);
      vmax = (if !count = 0 then 0 else !vmax);
    }
  in
  {
    counters = by_name fst (List.map counter_total cs);
    gauges = by_name fst (List.map gauge_merged gs);
    histograms = by_name (fun r -> r.h_name) (List.map hist_merged hs);
  }

let reset_metrics () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ (c : counter) -> Array.fill c.cells 0 (Array.length c.cells) 0) counters;
  Hashtbl.iter (fun _ (g : gauge) -> Array.fill g.g_cells 0 (Array.length g.g_cells) min_int) gauges;
  Hashtbl.iter
    (fun _ (h : histogram) ->
      Array.iter
        (fun s ->
          Array.fill s.hcounts 0 (Array.length s.hcounts) 0;
          s.hsum <- 0;
          s.hcount <- 0;
          s.hmin <- max_int;
          s.hmax <- min_int)
        h.shards)
    histograms;
  Mutex.unlock registry_mutex

let drain () =
  let d = snapshot () in
  reset_metrics ();
  d

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let int_list b l =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    l;
  Buffer.add_char b ']'

let dump_json d =
  let b = Buffer.create 1024 in
  let obj kvs emit =
    Buffer.add_char b '{';
    List.iteri
      (fun i kv ->
        if i > 0 then Buffer.add_char b ',';
        emit kv)
      kvs;
    Buffer.add_char b '}'
  in
  Buffer.add_string b "{\"counters\":";
  obj d.counters (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v));
  Buffer.add_string b ",\"gauges\":";
  obj d.gauges (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v));
  Buffer.add_string b ",\"histograms\":";
  obj d.histograms (fun r ->
      Buffer.add_string b (Printf.sprintf "\"%s\":{\"bounds\":" (json_escape r.h_name));
      int_list b r.bounds;
      Buffer.add_string b ",\"counts\":";
      int_list b r.counts;
      Buffer.add_string b
        (Printf.sprintf ",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d}" r.count r.sum r.vmin
           r.vmax));
  Buffer.add_string b "}";
  Buffer.contents b

let pp_dump b d =
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s = %d\n" k v)) d.counters;
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s = %d (gauge)\n" k v)) d.gauges;
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s: count=%d sum=%d min=%d max=%d\n" r.h_name r.count r.sum r.vmin
           r.vmax))
    d.histograms

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

type ev = { e_name : string; ph : char; ts : int; e_arg : int (* min_int = none *) }

let dummy_ev = { e_name = ""; ph = 'X'; ts = 0; e_arg = min_int }

type track = { mutable evs : ev array; mutable len : int }

let tracks = Array.init nshards (fun _ -> { evs = [||]; len = 0 })

let push ph name arg =
  let t = tracks.(shard_index ()) in
  let cap = Array.length t.evs in
  if t.len = cap then begin
    let evs = Array.make (max 256 (2 * cap)) dummy_ev in
    Array.blit t.evs 0 evs 0 cap;
    t.evs <- evs
  end;
  t.evs.(t.len) <- { e_name = name; ph; ts = now_ns (); e_arg = arg };
  t.len <- t.len + 1

let reset_trace () = Array.iter (fun t -> t.len <- 0) tracks

let enable_tracing () =
  trace_origin := now_ns ();
  tracing_on := true

let span ?(arg = min_int) name f =
  if not !tracing_on then f ()
  else begin
    push 'B' name arg;
    Fun.protect ~finally:(fun () -> push 'E' name min_int) f
  end

let instant ?(arg = min_int) name = if !tracing_on then push 'i' name arg

let counter_event name v = if !tracing_on then push 'C' name v

let trace_json () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n" in
  sep ();
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"xtree\"}}";
  Array.iteri
    (fun tid t ->
      if t.len > 0 then begin
        sep ();
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain-%d\"}}"
             tid tid)
      end)
    tracks;
  Array.iteri
    (fun tid t ->
      for i = 0 to t.len - 1 do
        let e = t.evs.(i) in
        let us = float_of_int (e.ts - !trace_origin) /. 1e3 in
        sep ();
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
             (json_escape e.e_name) e.ph us tid);
        (match e.ph with
        | 'C' -> Buffer.add_string b (Printf.sprintf ",\"args\":{\"value\":%d}" e.e_arg)
        | 'i' -> Buffer.add_string b ",\"s\":\"t\""
        | _ -> ());
        if e.ph <> 'C' && e.e_arg <> min_int then
          Buffer.add_string b (Printf.sprintf ",\"args\":{\"v\":%d}" e.e_arg);
        Buffer.add_char b '}'
      done)
    tracks;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_trace file =
  let oc = open_out file in
  output_string oc (trace_json ());
  close_out oc
