(* Trace analytics: turn an event log (in-memory or re-read from a
   Chrome-trace JSON export) into deterministic summary tables.

   Per-tid B/E matching gives each span name its wall time and its self
   time (wall minus the wall of direct children); depth-0 spans give
   per-domain busy time, utilization, and idle gaps. Everything is
   aggregated by name and sorted, so two traces with the same events
   render the same bytes.

   The [deterministic] projection is stricter: it drops every
   time-derived column, the per-domain section, and all [parallel.*]
   events (whose counts depend on how work was scheduled), leaving only
   tables that are byte-identical across [--jobs] values for a
   deterministic computation. *)

module J = Tiny_json

type event = Obs.event

let of_trace_json s =
  match J.parse s with
  | Error e -> Error ("trace JSON: " ^ e)
  | Ok doc -> (
      match Option.bind (J.member "traceEvents" doc) J.to_list with
      | None -> Error "trace JSON: no traceEvents array"
      | Some items ->
          let evs =
            List.filter_map
              (fun it ->
                let ph =
                  match Option.bind (J.member "ph" it) J.to_string with
                  | Some p when String.length p = 1 -> p.[0]
                  | _ -> 'M'
                in
                if ph = 'M' then None
                else
                  let name =
                    Option.value ~default:"?" (Option.bind (J.member "name" it) J.to_string)
                  in
                  let tid =
                    Option.value ~default:0 (Option.bind (J.member "tid" it) J.to_int)
                  in
                  let us =
                    Option.value ~default:0.0 (Option.bind (J.member "ts" it) J.to_float)
                  in
                  let args = J.member "args" it in
                  let arg_field k fallback =
                    match Option.bind args (fun a -> Option.bind (J.member k a) J.to_int) with
                    | Some v -> v
                    | None -> fallback
                  in
                  let arg =
                    if ph = 'C' then arg_field "value" 0 else arg_field "v" min_int
                  in
                  Some
                    {
                      Obs.ev_tid = tid;
                      ev_name = name;
                      ev_ph = ph;
                      ev_ts = int_of_float (Float.round (us *. 1000.));
                      ev_arg = arg;
                      ev_arg2 = arg_field "v2" min_int;
                    })
              items
          in
          Ok evs)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type span_stat = {
  mutable s_count : int;
  mutable s_wall : int; (* ns *)
  mutable s_self : int; (* ns *)
  mutable s_gc_minor : int;
  mutable s_gc_major : int;
  mutable s_gc_samples : int;
}

type domain_stat = {
  d_tid : int;
  mutable d_events : int;
  mutable d_spans : int; (* depth-0 spans *)
  mutable d_busy : int; (* ns inside depth-0 spans *)
  mutable d_first : int;
  mutable d_last : int;
  mutable d_prev_end : int; (* end ts of the previous depth-0 span *)
  mutable d_gaps : int;
  mutable d_max_gap : int;
}

type series_stat = {
  mutable c_samples : int;
  mutable c_min : int;
  mutable c_max : int;
  mutable c_last : int;
}

type frame = { f_name : string; f_start : int; mutable f_child : int }

type analysis = {
  spans : (string, span_stat) Hashtbl.t;
  domains : (int, domain_stat) Hashtbl.t;
  series : (string, series_stat) Hashtbl.t;
  instants : (string, int ref) Hashtbl.t;
  mutable total_events : int;
}

let get tbl key make =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.replace tbl key v;
      v

let span_stat a name =
  get a.spans name (fun () ->
      { s_count = 0; s_wall = 0; s_self = 0; s_gc_minor = 0; s_gc_major = 0; s_gc_samples = 0 })

let domain_stat a tid =
  get a.domains tid (fun () ->
      {
        d_tid = tid;
        d_events = 0;
        d_spans = 0;
        d_busy = 0;
        d_first = max_int;
        d_last = min_int;
        d_prev_end = min_int;
        d_gaps = 0;
        d_max_gap = 0;
      })

let close_frame a d stack_rest fr t_end =
  let wall = max 0 (t_end - fr.f_start) in
  let st = span_stat a fr.f_name in
  st.s_count <- st.s_count + 1;
  st.s_wall <- st.s_wall + wall;
  st.s_self <- st.s_self + max 0 (wall - fr.f_child);
  (match stack_rest with
  | parent :: _ -> parent.f_child <- parent.f_child + wall
  | [] ->
      d.d_spans <- d.d_spans + 1;
      d.d_busy <- d.d_busy + wall;
      if d.d_prev_end <> min_int then begin
        let gap = fr.f_start - d.d_prev_end in
        if gap > 0 then begin
          d.d_gaps <- d.d_gaps + 1;
          if gap > d.d_max_gap then d.d_max_gap <- gap
        end
      end;
      d.d_prev_end <- t_end)

let analyse evs =
  let a =
    {
      spans = Hashtbl.create 32;
      domains = Hashtbl.create 8;
      series = Hashtbl.create 8;
      instants = Hashtbl.create 8;
      total_events = 0;
    }
  in
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : event) ->
      a.total_events <- a.total_events + 1;
      let d = domain_stat a e.Obs.ev_tid in
      d.d_events <- d.d_events + 1;
      if e.ev_ts < d.d_first then d.d_first <- e.ev_ts;
      if e.ev_ts > d.d_last then d.d_last <- e.ev_ts;
      let stack = get stacks e.ev_tid (fun () -> ref []) in
      match e.ev_ph with
      | 'B' -> stack := { f_name = e.ev_name; f_start = e.ev_ts; f_child = 0 } :: !stack
      | 'E' -> (
          (match !stack with
          | fr :: rest ->
              stack := rest;
              close_frame a d rest fr e.ev_ts
          | [] -> ());
          if e.ev_arg <> min_int then begin
            let st = span_stat a e.ev_name in
            st.s_gc_samples <- st.s_gc_samples + 1;
            st.s_gc_minor <- st.s_gc_minor + e.ev_arg;
            if e.ev_arg2 <> min_int then st.s_gc_major <- st.s_gc_major + e.ev_arg2
          end)
      | 'i' ->
          let c = get a.instants e.ev_name (fun () -> ref 0) in
          incr c
      | 'C' ->
          let s =
            get a.series e.ev_name (fun () ->
                { c_samples = 0; c_min = max_int; c_max = min_int; c_last = 0 })
          in
          s.c_samples <- s.c_samples + 1;
          if e.ev_arg < s.c_min then s.c_min <- e.ev_arg;
          if e.ev_arg > s.c_max then s.c_max <- e.ev_arg;
          s.c_last <- e.ev_arg
      | _ -> ())
    evs;
  (* Close anything still open (a truncated trace, or a flight dump cut
     mid-span) at the last timestamp seen on that domain. *)
  Hashtbl.iter
    (fun tid stack ->
      let d = domain_stat a tid in
      let rec drain = function
        | fr :: rest ->
            close_frame a d rest fr d.d_last;
            drain rest
        | [] -> ()
      in
      drain !stack)
    stacks;
  a

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* First column left-aligned, the rest right-aligned, two-space gutter. *)
let render_table b header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then Buffer.add_string b "  ";
          let w = widths.(i) in
          if i = 0 then begin
            Buffer.add_string b cell;
            if i < ncols - 1 then Buffer.add_string b (String.make (w - String.length cell) ' ')
          end
          else begin
            Buffer.add_string b (String.make (w - String.length cell) ' ');
            Buffer.add_string b cell
          end)
        row;
      Buffer.add_char b '\n')
    all

let ms ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e6)

let sorted_assoc tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let report ?(deterministic = false) ?dump evs =
  let evs =
    if deterministic then
      List.filter
        (fun (e : event) -> not (String.length e.Obs.ev_name >= 9 && String.sub e.ev_name 0 9 = "parallel."))
        evs
    else evs
  in
  let a = analyse evs in
  let b = Buffer.create 2048 in
  if a.total_events = 0 then Buffer.add_string b "(empty trace)\n"
  else begin
    let spans = sorted_assoc a.spans in
    if deterministic then begin
      Buffer.add_string b "== spans (deterministic) ==\n";
      render_table b [ "span"; "count" ]
        (List.map (fun (name, st) -> [ name; string_of_int st.s_count ]) spans)
    end
    else begin
      Buffer.add_string b "== spans ==\n";
      render_table b
        [ "span"; "count"; "wall_ms"; "self_ms"; "avg_us" ]
        (List.map
           (fun (name, st) ->
             [
               name;
               string_of_int st.s_count;
               ms st.s_wall;
               ms st.s_self;
               Printf.sprintf "%.1f" (float_of_int st.s_wall /. float_of_int st.s_count /. 1e3);
             ])
           spans);
      let domains = sorted_assoc a.domains in
      Buffer.add_string b "== domains ==\n";
      render_table b
        [ "tid"; "events"; "spans"; "busy_ms"; "util_pct"; "idle_gaps"; "max_gap_ms" ]
        (List.map
           (fun (tid, d) ->
             let range = d.d_last - d.d_first in
             let util =
               if range <= 0 then 100.0
               else 100.0 *. float_of_int (min d.d_busy range) /. float_of_int range
             in
             [
               string_of_int tid;
               string_of_int d.d_events;
               string_of_int d.d_spans;
               ms d.d_busy;
               Printf.sprintf "%.1f" util;
               string_of_int d.d_gaps;
               ms d.d_max_gap;
             ])
           domains)
    end;
    let instants = sorted_assoc a.instants in
    if instants <> [] then begin
      Buffer.add_string b "== instants ==\n";
      render_table b [ "name"; "count" ]
        (List.map (fun (name, c) -> [ name; string_of_int !c ]) instants)
    end;
    let series = sorted_assoc a.series in
    if series <> [] then begin
      if deterministic then begin
        Buffer.add_string b "== series (deterministic) ==\n";
        render_table b
          [ "series"; "samples"; "min"; "max" ]
          (List.map
             (fun (name, s) ->
               [
                 name;
                 string_of_int s.c_samples;
                 string_of_int s.c_min;
                 string_of_int s.c_max;
               ])
             series)
      end
      else begin
        Buffer.add_string b "== series ==\n";
        render_table b
          [ "series"; "samples"; "min"; "max"; "last" ]
          (List.map
             (fun (name, s) ->
               [
                 name;
                 string_of_int s.c_samples;
                 string_of_int s.c_min;
                 string_of_int s.c_max;
                 string_of_int s.c_last;
               ])
             series)
      end
    end;
    if not deterministic then begin
      let gc = List.filter (fun (_, st) -> st.s_gc_samples > 0) spans in
      if gc <> [] then begin
        Buffer.add_string b "== gc ==\n";
        render_table b
          [ "span"; "samples"; "minor_words"; "major_words" ]
          (List.map
             (fun (name, st) ->
               [
                 name;
                 string_of_int st.s_gc_samples;
                 string_of_int st.s_gc_minor;
                 string_of_int st.s_gc_major;
               ])
             gc)
      end
    end
  end;
  (match dump with
  | None -> ()
  | Some (d : Obs.dump) ->
      let find name = Option.value ~default:0 (List.assoc_opt name d.Obs.counters) in
      let taken = find "parallel.forks_taken" and seq = find "parallel.forks_sequentialized" in
      Buffer.add_string b "== parallel ==\n";
      Buffer.add_string b (Printf.sprintf "forks_taken = %d\n" taken);
      Buffer.add_string b (Printf.sprintf "forks_sequentialized = %d\n" seq);
      if taken + seq > 0 then
        Buffer.add_string b
          (Printf.sprintf "fork_efficiency_pct = %.1f\n"
             (100.0 *. float_of_int taken /. float_of_int (taken + seq))));
  Buffer.contents b
