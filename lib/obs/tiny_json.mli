(** A minimal JSON reader for documents this repo writes itself (Chrome
    trace exports, bench baselines). Not a general-purpose parser: all
    numbers become floats, [\u] escapes outside ASCII decode to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete document; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_string : t -> string option

val to_int : t -> int option
(** The number rounded to the nearest integer. *)
