(** Trace analytics: deterministic summary tables from a span/event log.

    Input is either {!Obs.events} (the live in-memory log) or a
    Chrome-trace JSON export re-read with {!of_trace_json} — the two
    produce identical reports for the same run because the JSON round
    trip preserves nanosecond timestamps.

    The full report renders, in order: per-span wall vs. self time
    ([== spans ==]), per-domain utilization and idle gaps
    ([== domains ==]), instant-event counts ([== instants ==]),
    counter-track series ([== series ==]), and — when spans carry GC
    deltas from {!Obs.enable_gc_sampling} — per-span GC pressure
    ([== gc ==]). With [?dump] it appends a [== parallel ==] section
    deriving fork efficiency from the
    [parallel.forks_taken]/[parallel.forks_sequentialized] counters.

    [~deterministic:true] projects away everything schedule-dependent:
    time columns, the domains section, series [last] values, and all
    [parallel.*] events — what remains is byte-identical across
    [--jobs] values for a deterministic computation. *)

val of_trace_json : string -> (Obs.event list, string) result
(** Parse a Chrome trace-event JSON document (as written by
    {!Obs.write_trace}) back into events, dropping ['M'] metadata. *)

val report : ?deterministic:bool -> ?dump:Obs.dump -> Obs.event list -> string
(** Render the analytics tables. [?dump] adds the [== parallel ==]
    fork-efficiency section from drained counters. *)
