(** Telemetry: domain-sharded metrics and Chrome-trace span tracing.

    This module sits below every other library of the repo (it depends
    only on [unix]) so that the parallel runtime, the embedding
    pipeline, and the network simulator can all record into it.

    {b Cost model.} Everything is gated on two process-wide flags.
    With metrics and tracing disabled (the default), every recording
    entry point reduces to one mutable-flag load and a conditional
    branch — no allocation, no clock read, no atomic operation. The
    instruments themselves ([counter], [histogram], …) are created once
    at module-initialisation time and registered in a global registry.

    {b Sharding.} Each instrument keeps one cell (or bucket array) per
    {e shard}; the recording domain writes the shard indexed by its
    [Domain.self] id, so concurrent workers of the
    {!Xt_prelude.Parallel} pool never contend on a cache line.
    {!drain} merges shards in increasing shard order and sorts
    instruments by name, so its output is deterministic whenever the
    recorded totals are (work counters of a deterministic algorithm
    merge to identical dumps whatever the domain count).

    {b Tracing.} {!span} brackets a computation with begin/end events
    stamped by an injectable monotonic clock ({!set_clock}); the event
    log is exported as Chrome trace-event JSON ({!trace_json}), loadable
    in Perfetto / [chrome://tracing], with one track (tid) per domain
    shard.

    {b Flight recorder.} Independently of tracing, every span/instant
    entry point also appends to a fixed-size per-shard ring of recent
    events. The rings are preallocated (appending is a handful of array
    stores), so the recorder is on by default and costs nothing at
    steady state; {!pp_flight} dumps the retained tail on demand, on
    fatal error, or at exit. *)

(** {1 Flags and clock} *)

val metrics_enabled : unit -> bool
val tracing_enabled : unit -> bool

val enable_metrics : unit -> unit
val disable_metrics : unit -> unit

val enable_tracing : unit -> unit
(** Also resets the trace clock origin to "now", so exported timestamps
    start near zero. *)

val disable_tracing : unit -> unit

val recorder_enabled : unit -> bool
val enable_recorder : unit -> unit
val disable_recorder : unit -> unit
(** The flight recorder starts enabled; disabling it reduces spans and
    instants back to a flag check when tracing is also off. *)

val gc_sampling_enabled : unit -> bool
val enable_gc_sampling : unit -> unit
val disable_gc_sampling : unit -> unit
(** When GC sampling is on, every span samples [Gc.quick_stat] at entry
    and exit and attaches the minor/major-words deltas to its end event
    ([args.v] / [args.v2] in the Chrome export). Off by default: the
    deltas are not deterministic and the stat read itself allocates. *)

val set_clock : (unit -> int) -> unit
(** Inject a monotonic nanosecond clock (used by spans and timed
    histograms). The default derives from [Unix.gettimeofday]. Tests
    inject a fake counter to make traces fully deterministic; setting
    [XT_FAKE_CLOCK=1] in the environment installs such a counter
    (1000 ns per reading) at module load, which the trace-smoke rules
    use to make whole-CLI traces byte-stable. *)

val now_ns : unit -> int
(** The current clock reading. *)

(** {1 Metrics} *)

type counter

val counter : string -> counter
(** Create-or-find the counter registered under this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** No-ops (single flag check) while metrics are disabled. *)

type gauge

val gauge : string -> gauge

val set_gauge : gauge -> int -> unit
(** Record the current value of the gauge on this domain's shard.
    {!drain} merges shards by taking the maximum recorded value. *)

type histogram

val histogram : ?buckets:int array -> string -> histogram
(** Fixed-bucket histogram of integer samples. [buckets] is the sorted
    array of inclusive upper bounds; samples above the last bound fall
    into an implicit overflow bucket. The default is a power-of-two
    exponential ladder [1, 2, 4, …, 2{^29}] suitable for nanosecond
    latencies and size distributions alike. Re-registering a name
    returns the existing histogram (the buckets of the first
    registration win). *)

val observe : histogram -> int -> unit

val time_ns : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its duration in nanoseconds. When metrics
    are disabled this is a flag check followed by a direct call. *)

(** {1 Drain} *)

type histogram_row = {
  h_name : string;
  bounds : int array;      (** inclusive upper bounds, as registered *)
  counts : int array;      (** length [Array.length bounds + 1]; last = overflow *)
  count : int;
  sum : int;
  vmin : int;              (** 0 when [count = 0] *)
  vmax : int;
}

type dump = {
  counters : (string * int) list;   (** sorted by name *)
  gauges : (string * int) list;     (** sorted by name; shard-max merge *)
  histograms : histogram_row list;  (** sorted by name *)
}

val snapshot : unit -> dump
(** Merge all shards of all registered instruments, deterministically:
    shards in index order, instruments sorted by name. Instruments that
    never recorded are included with zero totals. *)

val reset_metrics : unit -> unit
(** Zero every shard of every instrument (the registry is kept). *)

val drain : unit -> dump
(** [snapshot] followed by [reset_metrics]. *)

val dump_json : dump -> string
(** The dump as a stable JSON object:
    [{"counters":{…},"gauges":{…},"histograms":{…}}], keys in sorted
    order, histogram rows carrying bounds/counts/count/sum/min/max. *)

val pp_dump : Buffer.t -> dump -> unit
(** Human-readable [name = value] lines (counters and gauges), then one
    line per histogram with count/sum/min/max/p50/p90/p99 — the
    [--metrics] output of the CLI. *)

val quantile : histogram_row -> float -> int
(** [quantile r q] estimates the [q]-quantile ([0 < q <= 1]) of a merged
    histogram row as the upper bound of the bucket containing the
    ceil(q·count)-th sample, clamped to the observed [vmin, vmax] range
    (which makes the overflow bucket finite and single-sample rows
    exact). Returns 0 when the row is empty. *)

(** {1 Tracing} *)

val span : ?arg:int -> string -> (unit -> 'a) -> 'a
(** [span name f] records a begin event, runs [f], and records the
    matching end event even when [f] raises. [?arg] is attached to the
    begin event as [args.v]. The events go to the trace log when tracing
    is on and to the flight-recorder ring when the recorder is on; with
    both off, [f] is called directly after the flag check. *)

val instant : ?arg:int -> string -> unit
(** A zero-duration instant event. *)

val counter_event : string -> int -> unit
(** A Chrome counter-track sample ([ph = "C"]): a named time series,
    e.g. per-cycle queue depth in the network simulator. *)

val reset_trace : unit -> unit
(** Discard all recorded events. *)

val trace_json : unit -> string
(** The event log as a Chrome trace-event JSON document
    [{"traceEvents":[…]}]: thread-name metadata naming one track per
    domain shard, then every shard's events in recording order.
    Timestamps are microseconds (fractional, ns precision) since the
    clock origin. *)

val write_trace : string -> unit
(** Write {!trace_json} to a file. *)

(** {1 Event export}

    The in-memory trace log in a neutral form, for the analytics engine
    ({!Trace_report}) and anything else that post-processes events
    without a JSON round trip. *)

type event = {
  ev_tid : int;            (** shard / Chrome track id *)
  ev_name : string;
  ev_ph : char;            (** 'B' | 'E' | 'i' | 'C' *)
  ev_ts : int;             (** ns since the trace origin *)
  ev_arg : int;            (** [min_int] = none *)
  ev_arg2 : int;           (** [min_int] = none *)
}

val events : unit -> event list
(** Every recorded trace event, shards in index order, each shard's
    events in recording order. *)

(** {1 Flight recorder} *)

val recorder_capacity : unit -> int
(** Ring capacity per shard (a power of two; default 256). *)

val set_recorder_capacity : int -> unit
(** Resize every ring to the next power of two >= the argument (floor
    16), discarding current contents. *)

val reset_recorder : unit -> unit
(** Forget all retained events (capacity is kept). *)

val flight_events : unit -> event list
(** The retained ring contents, shards in index order, each shard
    oldest first. [ev_ts] here is the raw clock reading (the recorder
    runs even when tracing never set an origin). *)

val flight_dropped : unit -> int
(** Total events overwritten before they could be dumped, across all
    shards. *)

val pp_flight : Buffer.t -> unit
(** Render the retained events as a human-readable dump: a header with
    capacity/recorded/dropped, then per-shard blocks with timestamps
    relative to the earliest retained event. *)

val write_flight : string -> unit
(** Write {!pp_flight} to a file (the [--flight FILE] / [XT_FLIGHT]
    dump). *)
