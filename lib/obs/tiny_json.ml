(* A minimal JSON reader. The container ships no JSON library, and the
   repo only ever parses documents it wrote itself (trace exports, bench
   baselines), so a few dozen lines of recursive descent beat a
   dependency. Numbers are kept as floats — every field we read back is
   either small or written with six decimals. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Fail of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Fail (Printf.sprintf "%s at byte %d" msg st.pos))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  if peek st = Some c then st.pos <- st.pos + 1
  else error st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
            if st.pos + 4 >= String.length st.s then error st "bad \\u escape";
            let code = int_of_string ("0x" ^ String.sub st.s (st.pos + 1) 4) in
            st.pos <- st.pos + 4;
            if code < 0x80 then Buffer.add_char b (Char.chr code) else Buffer.add_char b '?'
        | Some c -> Buffer.add_char b c
        | None -> error st "unterminated escape");
        st.pos <- st.pos + 1;
        go ()
    | Some c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.s && num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some f -> f
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        Arr (elements [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)
  | None -> error st "unexpected end of input"

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error (Printf.sprintf "trailing bytes at %d" st.pos)
      else Ok v
  | exception Fail msg -> Error msg

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_int = function Num f -> Some (int_of_float (Float.round f)) | _ -> None
