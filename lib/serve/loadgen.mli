(** Shape-skewed load generation and replay for [xtree serve].

    [make_shapes] builds a pool of structurally distinct guest trees (as
    Codec payloads); [skewed_stream] samples a request sequence from the
    pool with a power-law shape bias; [replay] drives the sequence
    through a server connection in fixed-size windows, measuring one
    round-trip time per request. Everything is deterministic from the
    seed, so the same parameters always produce the same request bytes —
    the serve smoke test byte-diffs a replay against [embed-batch] on
    the identical stream.

    Instruments: [loadgen.requests] / [loadgen.errors] counters and the
    [loadgen.rtt_ns] histogram (metrics-gated; {!outcome} carries the
    exact per-request samples regardless). *)

val make_shapes : seed:int -> count:int -> size:int -> string array
(** [count] structurally distinct trees of roughly [size] nodes (sizes
    vary a few percent so deterministic generator families still yield
    distinct shapes), drawn round-robin from {!Xt_bintree.Gen.families}
    and deduplicated by canonical fingerprint. *)

val skewed_stream :
  seed:int -> shapes:string array -> requests:int -> skew:float -> string list
(** A request sequence over the pool. Shape index is drawn as
    [⌊k·u^(1+skew)⌋] for uniform [u): [skew = 0] is uniform over the
    pool; larger values concentrate the stream on the low-index shapes
    (the hot set). *)

type reply = { index : int; request : string; payload : string }
(** One response: the request's position in the stream, its payload, and
    the raw response payload (decode with {!Wire.decode_response}). *)

type outcome = {
  sent : int;
  errors : int;  (** Error responses received. *)
  wall_ns : int;
  rtt_ns : int array;  (** Send-to-response time per request, in stream order. *)
}

val replay :
  ?window:int ->
  ?on_reply:(reply -> unit) ->
  requests:string list ->
  in_channel * out_channel ->
  outcome
(** Write requests [window] (default 64) at a time, each window followed
    by a flush marker, and read the window's responses before sending
    the next — so pipe-buffer capacity bounds nothing but one window.
    [on_reply] sees every response in order. Raises {!Wire.Protocol} if
    the server closes mid-replay. *)

val write_requests : out_channel -> string list -> unit
(** Write a request file: every payload as a frame, no flush markers
    (a server batches such a file up to its own batch limit). *)

val read_requests : in_channel -> string list
(** Read a request file back, skipping flush markers. *)
