open Xt_obs
open Xt_prelude
open Xt_bintree
open Xt_core

let c_requests = Obs.counter "serve.requests"
let c_batches = Obs.counter "serve.batches"
let c_errors = Obs.counter "serve.errors"
let c_unique = Obs.counter "serve.unique_shapes"
let c_snapshot_loaded = Obs.counter "serve.snapshot_loaded"
let c_snapshot_saved = Obs.counter "serve.snapshot_saved"
let h_request_ns = Obs.histogram "serve.request_ns"

type config = {
  capacity : int;
  cache_entries : int;
  cache_bytes : int option;
  snapshot : string option;
  snapshot_every : int;
  max_batch : int;
  status : bool;
}

let default =
  {
    capacity = 16;
    cache_entries = 4096;
    cache_bytes = None;
    snapshot = None;
    snapshot_every = 0;
    max_batch = 512;
    status = false;
  }

type summary = {
  requests : int;
  batches : int;
  errors : int;
  loaded : int;
  saved : int;
  stats : Cache.stats;
}

let make_state config =
  let cache =
    Theorem1.make_cache ~capacity:config.cache_entries ?max_bytes:config.cache_bytes ()
  in
  let loaded =
    match config.snapshot with
    | None -> 0
    | Some file when not (Sys.file_exists file) -> 0
    | Some file -> (
        match Theorem1.cache_load cache ~file with
        | Ok n ->
            Obs.add c_snapshot_loaded n;
            n
        | Error msg ->
            Printf.eprintf "serve: ignoring snapshot %s: %s\n%!" file msg;
            0)
  in
  (cache, loaded)

let run ?(config = default) ?state ic oc =
  let cache, loaded = match state with Some s -> s | None -> make_state config in
  let requests = ref 0 and batches = ref 0 and errors = ref 0 in
  let saved = ref 0 and since_flush = ref 0 in
  let flush_snapshot () =
    match config.snapshot with
    | None -> ()
    | Some file ->
        let n = Theorem1.cache_save cache ~file in
        saved := n;
        since_flush := 0;
        Obs.add c_snapshot_saved n
  in
  let process batch =
    incr batches;
    Obs.incr c_batches;
    Obs.span "serve.batch" (fun () ->
        let metered = Obs.metrics_enabled () in
        let parsed = List.map Codec.of_string batch in
        let seen = Hashtbl.create 16 in
        let unique =
          List.filter_map
            (function
              | Error _ -> None
              | Ok t ->
                  let key = Fingerprint.canonical_key t in
                  if Hashtbl.mem seen key then None
                  else begin
                    Hashtbl.add seen key ();
                    Some t
                  end)
            parsed
        in
        Obs.add c_unique (List.length unique);
        (* Populate the cache for every unique shape in parallel; the
           per-request pass below then serves pure hits in input order. *)
        ignore
          (Parallel.map
             (fun t -> ignore (Theorem1.embed ~capacity:config.capacity ~cache t))
             unique);
        List.iter
          (fun p ->
            let t0 = if metered then Obs.now_ns () else 0 in
            let resp =
              match p with
              | Error msg ->
                  incr errors;
                  Obs.incr c_errors;
                  Wire.encode_error msg
              | Ok t ->
                  let r = Theorem1.embed ~capacity:config.capacity ~cache t in
                  Wire.encode_ok
                    {
                      Wire.height = r.Theorem1.height;
                      fallbacks = r.Theorem1.fallbacks;
                      place = r.Theorem1.embedding.Xt_embedding.Embedding.place;
                    }
            in
            Wire.write_frame oc resp;
            incr requests;
            Obs.incr c_requests;
            if metered then Obs.observe h_request_ns (Obs.now_ns () - t0))
          parsed;
        flush oc);
    if config.status then begin
      let s = Theorem1.cache_stats cache in
      Printf.eprintf
        "serve: batches=%d requests=%d errors=%d cache: hits=%d misses=%d evictions=%d \
         entries=%d bytes=%d\n\
         %!"
        !batches !requests !errors s.Cache.hits s.Cache.misses s.Cache.evictions
        s.Cache.entries s.Cache.resident_bytes
    end;
    since_flush := !since_flush + List.length batch;
    if config.snapshot_every > 0 && !since_flush >= config.snapshot_every then
      flush_snapshot ()
  in
  let pending = ref [] and npending = ref 0 in
  let flush_pending () =
    if !npending > 0 then begin
      let batch = List.rev !pending in
      pending := [];
      npending := 0;
      process batch
    end
  in
  (try
     let eof = ref false in
     while not !eof do
       match Wire.read_frame ic with
       | None -> eof := true
       | Some "" -> flush_pending ()
       | Some payload ->
           pending := payload :: !pending;
           incr npending;
           if !npending >= config.max_batch then flush_pending ()
     done
   with Wire.Protocol msg -> Printf.eprintf "serve: protocol error: %s\n%!" msg);
  flush_pending ();
  flush_snapshot ();
  {
    requests = !requests;
    batches = !batches;
    errors = !errors;
    loaded;
    saved = !saved;
    stats = Theorem1.cache_stats cache;
  }

let listen ?(config = default) ?max_conns ~path () =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try if Sys.file_exists path then Sys.remove path with Sys_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let state = make_state config in
  let conns = ref 0 in
  let more () = match max_conns with None -> true | Some m -> !conns < m in
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      while more () do
        let fd, _ = Unix.accept sock in
        incr conns;
        let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
        set_binary_mode_in ic true;
        set_binary_mode_out oc true;
        let summary = run ~config ~state ic oc in
        if config.status then
          Printf.eprintf "serve: connection %d closed after %d requests\n%!" !conns
            summary.requests;
        (try flush oc with Sys_error _ -> ());
        Unix.close fd
      done)

let in_process ?(config = default) ?state client =
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let resp_r, resp_w = Unix.pipe ~cloexec:false () in
  let server_ic = Unix.in_channel_of_descr req_r in
  let server_oc = Unix.out_channel_of_descr resp_w in
  let client_ic = Unix.in_channel_of_descr resp_r in
  let client_oc = Unix.out_channel_of_descr req_w in
  List.iter (fun c -> set_binary_mode_in c true) [ server_ic; client_ic ];
  List.iter (fun c -> set_binary_mode_out c true) [ server_oc; client_oc ];
  let dom =
    Domain.spawn (fun () ->
        let summary = run ~config ?state server_ic server_oc in
        close_in_noerr server_ic;
        close_out_noerr server_oc;
        summary)
  in
  let finish () =
    close_out_noerr client_oc;
    let summary = Domain.join dom in
    close_in_noerr client_ic;
    summary
  in
  match client (client_ic, client_oc) with
  | result -> (result, finish ())
  | exception exn ->
      ignore (finish ());
      raise exn
