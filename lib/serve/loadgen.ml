open Xt_obs
open Xt_prelude
open Xt_bintree

let c_requests = Obs.counter "loadgen.requests"
let c_errors = Obs.counter "loadgen.errors"
let h_rtt = Obs.histogram "loadgen.rtt_ns"

let make_shapes ~seed ~count ~size =
  if count < 1 then invalid_arg "Loadgen.make_shapes: count < 1";
  if size < 1 then invalid_arg "Loadgen.make_shapes: size < 1";
  let fams = Array.of_list Gen.families in
  let seen = Hashtbl.create count in
  let out = Array.make count "" in
  let filled = ref 0 and attempt = ref 0 in
  while !filled < count do
    if !attempt > 100 * count then
      invalid_arg "Loadgen.make_shapes: cannot find enough distinct shapes";
    let f = fams.(!attempt mod Array.length fams) in
    (* Nudge the size so deterministic families (complete, caterpillar …)
       still contribute distinct shapes to the pool. *)
    let sz = max 1 (size - (!attempt mod (1 + (size / 16)))) in
    let rng = Rng.make ~seed:(seed + (7919 * !attempt)) in
    let t = f.Gen.generate rng sz in
    incr attempt;
    let key = Fingerprint.canonical_key t in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out.(!filled) <- Codec.to_string t;
      incr filled
    end
  done;
  out

let skewed_stream ~seed ~shapes ~requests ~skew =
  let k = Array.length shapes in
  if k = 0 then invalid_arg "Loadgen.skewed_stream: empty shape pool";
  if skew < 0.0 then invalid_arg "Loadgen.skewed_stream: negative skew";
  let rng = Rng.make ~seed:(seed lxor 0x10adf) in
  List.init requests (fun _ ->
      let u = Rng.float rng 1.0 in
      let idx = int_of_float (float_of_int k *. (u ** (1.0 +. skew))) in
      shapes.(min (k - 1) idx))

type reply = { index : int; request : string; payload : string }

type outcome = { sent : int; errors : int; wall_ns : int; rtt_ns : int array }

let replay ?(window = 64) ?on_reply ~requests (ic, oc) =
  if window < 1 then invalid_arg "Loadgen.replay: window < 1";
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let rtt = Array.make n 0 in
  let sent_at = Array.make n 0 in
  let errors = ref 0 in
  let metered = Obs.metrics_enabled () in
  let t_start = Obs.now_ns () in
  let next_send = ref 0 and next_recv = ref 0 in
  while !next_recv < n do
    let upto = min n (!next_send + window) in
    while !next_send < upto do
      sent_at.(!next_send) <- Obs.now_ns ();
      Wire.write_frame oc reqs.(!next_send);
      Obs.incr c_requests;
      incr next_send
    done;
    Wire.write_flush oc;
    while !next_recv < !next_send do
      match Wire.read_frame ic with
      | None -> raise (Wire.Protocol "server closed mid-replay")
      | Some "" -> ()
      | Some payload ->
          let i = !next_recv in
          rtt.(i) <- Obs.now_ns () - sent_at.(i);
          if metered then Obs.observe h_rtt rtt.(i);
          if Wire.is_error payload then begin
            incr errors;
            Obs.incr c_errors
          end;
          (match on_reply with
          | Some f -> f { index = i; request = reqs.(i); payload }
          | None -> ());
          incr next_recv
    done
  done;
  { sent = n; errors = !errors; wall_ns = Obs.now_ns () - t_start; rtt_ns = rtt }

let write_requests oc payloads = List.iter (Wire.write_frame oc) payloads

let read_requests ic =
  let acc = ref [] in
  let eof = ref false in
  while not !eof do
    match Wire.read_frame ic with
    | None -> eof := true
    | Some "" -> ()
    | Some payload -> acc := payload :: !acc
  done;
  List.rev !acc
