exception Protocol of string

let max_frame = 1 lsl 26

let write_frame oc payload =
  let n = String.length payload in
  if n > max_frame then raise (Protocol "frame too large");
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int n);
  output_bytes oc hdr;
  output_string oc payload

let write_flush oc =
  write_frame oc "";
  flush oc

let read_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file ->
      (* EOF exactly at a frame boundary is a clean shutdown; anywhere
         else it is a protocol error, but [really_input_string] cannot
         tell us how many of the 4 bytes it consumed, so a torn length
         word also lands here. Torn payloads are caught below. *)
      None
  | hdr ->
      let n = Int32.to_int (String.get_int32_be hdr 0) in
      if n < 0 || n > max_frame then
        raise (Protocol (Printf.sprintf "bad frame length %d" n));
      if n = 0 then Some ""
      else (
        match really_input_string ic n with
        | payload -> Some payload
        | exception End_of_file -> raise (Protocol "EOF inside frame"))

type response = { height : int; fallbacks : int; place : int array }

let encode_ok r =
  let n = Array.length r.place in
  let b = Bytes.create (13 + (4 * n)) in
  Bytes.set b 0 '\x01';
  Bytes.set_int32_be b 1 (Int32.of_int r.height);
  Bytes.set_int32_be b 5 (Int32.of_int r.fallbacks);
  Bytes.set_int32_be b 9 (Int32.of_int n);
  Array.iteri (fun i p -> Bytes.set_int32_be b (13 + (4 * i)) (Int32.of_int p)) r.place;
  Bytes.unsafe_to_string b

let encode_error msg = "\x00" ^ msg

let is_error payload =
  if String.length payload = 0 then raise (Protocol "empty response payload");
  payload.[0] = '\x00'

let decode_response payload =
  if String.length payload = 0 then raise (Protocol "empty response payload");
  match payload.[0] with
  | '\x00' -> Error (String.sub payload 1 (String.length payload - 1))
  | '\x01' ->
      if String.length payload < 13 then raise (Protocol "short response payload");
      let u32 off = Int32.to_int (String.get_int32_be payload off) in
      let height = u32 1 and fallbacks = u32 5 and n = u32 9 in
      if n < 0 || String.length payload <> 13 + (4 * n) then
        raise (Protocol "response payload length mismatch");
      let place = Array.init n (fun i -> u32 (13 + (4 * i))) in
      Ok { height; fallbacks; place }
  | c -> raise (Protocol (Printf.sprintf "unknown response status 0x%02x" (Char.code c)))
