(** The [xtree serve] engine: a long-lived embedding service.

    Requests ({!Xt_bintree.Codec} strings, length-framed per {!Wire})
    are buffered until a flush marker, the batch limit or EOF, then the
    batch is deduplicated by {!Xt_bintree.Fingerprint} canonical shape,
    each unique shape is embedded once on the {!Xt_prelude.Parallel}
    domain pool through a shared {!Xt_core.Theorem1} shape cache, and
    one response per request is written back in input order — exactly
    the [embed-batch] pipeline, kept alive between batches. Codec
    numbers nodes in preorder, so every response is bit-identical to a
    direct [Theorem1.embed] on that request (the equivalence suite in
    [test/test_serve.ml] checks this).

    With [config.snapshot] set, the shape cache is restored from the
    snapshot file at startup and flushed back (atomically, see
    {!Xt_core.Theorem1.cache_save}) every [snapshot_every] requests and
    at EOF, so a restarted server resumes warm.

    Instruments: [serve.requests] / [serve.batches] / [serve.errors] /
    [serve.unique_shapes] / [serve.snapshot_loaded] /
    [serve.snapshot_saved] counters, the [serve.request_ns] histogram
    (per-response service time, metrics-gated) and a [serve.batch]
    trace span per batch. *)

type config = {
  capacity : int;  (** Embedding capacity (the paper's load factor). *)
  cache_entries : int;  (** Shape-cache entry bound. *)
  cache_bytes : int option;  (** Shape-cache byte bound. *)
  snapshot : string option;  (** Snapshot file; [None] disables persistence. *)
  snapshot_every : int;
      (** Flush the snapshot every this many requests (plus once at EOF);
          [0] flushes at EOF only. *)
  max_batch : int;  (** Embed at most this many buffered requests at once. *)
  status : bool;  (** Per-batch status line (with cache stats) on stderr. *)
}

val default : config
(** capacity 16, 4096 entries, no byte bound, no snapshot, batch 512,
    no status lines. *)

type summary = {
  requests : int;  (** Responses written. *)
  batches : int;
  errors : int;  (** Error responses (undecodable request payloads). *)
  loaded : int;  (** Snapshot entries restored at startup. *)
  saved : int;  (** Entries in the most recent snapshot flush. *)
  stats : Xt_prelude.Cache.stats;  (** Shape-cache stats at exit. *)
}

val make_state : config -> Xt_core.Theorem1.cache * int
(** Build the shape cache for [config], restoring the snapshot (if any;
    a missing or corrupt file logs to stderr and starts cold). Returns
    the cache and the number of entries restored. Use this to share one
    cache across {!run} calls — successive connections of a socket
    server, or a benchmark that wants to sample
    {!Xt_core.Theorem1.cache_stats} mid-run. *)

val run :
  ?config:config ->
  ?state:Xt_core.Theorem1.cache * int ->
  in_channel ->
  out_channel ->
  summary
(** Serve one request stream to EOF. [state] defaults to a fresh
    {!make_state}; pass it explicitly to keep the cache (and its
    snapshot warmth) across streams. *)

val listen :
  ?config:config -> ?max_conns:int -> path:string -> unit -> unit
(** Bind a Unix-domain stream socket at [path] (unlinking a stale one)
    and serve connections sequentially, sharing one cache across all of
    them. Stops after [max_conns] connections (default: forever). *)

val in_process :
  ?config:config ->
  ?state:Xt_core.Theorem1.cache * int ->
  (in_channel * out_channel -> 'a) ->
  'a * summary
(** Run a server over a pair of pipes in a spawned domain, call the
    client function with the client-side channels (read responses from
    the first, write requests to the second), close the request channel
    when it returns, and join the server. For tests and benchmarks. *)
