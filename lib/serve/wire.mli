(** Length-framed wire protocol for [xtree serve].

    Every message is one {e frame}: a 4-byte big-endian payload length
    followed by the payload. A zero-length frame is a {e flush marker} —
    the client asking the server to embed everything buffered so far and
    write the responses; it carries no payload and receives no response.

    Request payloads are {!Xt_bintree.Codec} strings. Response payloads
    are binary: a status byte ([0x01] success, [0x00] error), then for a
    success [u32 height], [u32 fallbacks], [u32 n] and [n] i32 placement
    entries (all big-endian, placement indexed by the request's preorder
    node numbering); for an error, the UTF-8 message. *)

exception Protocol of string
(** A malformed stream: EOF inside a frame, an oversized frame, or an
    undecodable response payload. *)

val max_frame : int
(** Upper bound on accepted payload length (2{^26} bytes — a hundred
    times the largest benchmarked guest); larger length words raise
    {!Protocol} rather than attempting the allocation. *)

val write_frame : out_channel -> string -> unit
(** Write one frame. Does not flush. *)

val write_flush : out_channel -> unit
(** Write a flush marker and flush the channel. *)

val read_frame : in_channel -> string option
(** Read one frame; [None] on a clean EOF at a frame boundary, [Some ""]
    for a flush marker. Raises {!Protocol} on EOF inside a frame or an
    oversized length word. *)

type response = { height : int; fallbacks : int; place : int array }

val encode_ok : response -> string
val encode_error : string -> string

val is_error : string -> bool
(** Status-byte peek, without decoding the payload. Raises {!Protocol}
    on an empty payload. *)

val decode_response : string -> (response, string) result
(** [Error] carries the server-reported message of an error response.
    Raises {!Protocol} if the payload itself is malformed. *)
