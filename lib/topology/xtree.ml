open Xt_prelude

type vertex = int

type t = {
  height : int;
  graph : Graph.t;
  (* Memoised BFS distance rows, filled on demand. *)
  dist_rows : int array option array;
}

let id ~level ~index =
  if level < 0 || level > 24 then invalid_arg "Xtree.id: bad level";
  if index < 0 || index >= Bits.pow2 level then invalid_arg "Xtree.id: bad index";
  Bits.pow2 level - 1 + index

let level v =
  if v < 0 then invalid_arg "Xtree.level";
  Bits.ilog2 (v + 1)

let index v = v + 1 - Bits.pow2 (level v)

let root = 0

let parent v = if v = 0 then None else Some ((v - 1) / 2)

let child v b =
  if b <> 0 && b <> 1 then invalid_arg "Xtree.child";
  (2 * v) + 1 + b

let successor v =
  let l = level v in
  if index v = Bits.pow2 l - 1 then None else Some (v + 1)

let predecessor v = if index v = 0 then None else Some (v - 1)

let is_ancestor a v =
  let la = level a and lv = level v in
  la <= lv && index v lsr (lv - la) = index a

let to_string v =
  let l = level v in
  if l = 0 then "e" else Bits.string_of_bits ~width:l (index v)

let of_string s =
  if s = "" || s = "e" then root
  else begin
    let l = String.length s in
    if l > 24 then invalid_arg "Xtree.of_string: too long";
    let k = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '0' -> k := 2 * !k
        | '1' -> k := (2 * !k) + 1
        | _ -> invalid_arg "Xtree.of_string: non-binary character")
      s;
    id ~level:l ~index:!k
  end

let order_of_height r = Bits.pow2 (r + 1) - 1

let build_graph r =
  let n = order_of_height r in
  let edges = ref [] in
  for v = 0 to n - 1 do
    let l = level v in
    if l < r then begin
      edges := (v, child v 0) :: (v, child v 1) :: !edges
    end;
    match successor v with
    | Some s -> edges := (v, s) :: !edges
    | None -> ()
  done;
  Graph.of_edges ~n !edges

let create ~height =
  if height < 0 || height > 24 then invalid_arg "Xtree.create";
  let graph = build_graph height in
  { height; graph; dist_rows = Array.make (Graph.n graph) None }

let height t = t.height
let order t = Graph.n t.graph
let graph t = t.graph

let vertices_at_level t l =
  if l < 0 || l > t.height then invalid_arg "Xtree.vertices_at_level";
  List.init (Bits.pow2 l) (fun k -> id ~level:l ~index:k)

let leaves t = vertices_at_level t t.height

let mem t v = v >= 0 && v < order t

(* Exact closed forms that need no BFS. Ancestor pairs: every edge
   changes the level by at most one, so the tree path of [level
   difference] edges is optimal. Same-level pairs: the climb-run-descend
   minimum over meeting levels is optimal (paths that dip below the
   common level only double the horizontal gap; see E17, which checks
   the analytic form against BFS on every pair up to height 8).

   Returns [-1] when neither form applies. Written with tail-recursive
   accumulators instead of refs/options: the embedding metric loops issue
   millions of these queries, and this shape keeps them allocation-free
   (asserted by a [Gc.minor_words] test). *)
(* Top-level so no closure is allocated per query (a local [let rec]
   capturing the indices would cost ~7 minor words per call). *)
let rec same_level_scan lu ku kv l best =
  if l > lu then best
  else begin
    let gap = abs ((ku lsr (lu - l)) - (kv lsr (lu - l))) in
    let cost = (2 * (lu - l)) + gap in
    same_level_scan lu ku kv (l + 1) (if cost < best then cost else best)
  end

let closed_form_distance u v =
  let lu = level u and lv = level v in
  if lu = lv then same_level_scan lu (index u) (index v) 0 max_int
  else if is_ancestor u v then lv - lu
  else if is_ancestor v u then lu - lv
  else -1

let distance t u v =
  if not (mem t u && mem t v) then invalid_arg "Xtree.distance";
  let d = closed_form_distance u v in
  if d >= 0 then d
  else begin
    let row =
      match t.dist_rows.(u) with
      | Some row -> row
      | None ->
          let row = Graph.bfs t.graph u in
          t.dist_rows.(u) <- Some row;
          row
    in
    row.(v)
  end

(* N(a), Figure 2: horizontal displacement by at most 3 on a's own level,
   or one/two downward steps followed by horizontal displacement by at most
   2. Descendants one level down span indices [2k, 2k+1]; two levels down
   [4k, 4k+3]. *)
let neighbourhood t a =
  if not (mem t a) then invalid_arg "Xtree.neighbourhood";
  let l = level a and k = index a in
  let acc = ref [] in
  let add_range lvl lo hi =
    if lvl <= t.height then begin
      let width = Bits.pow2 lvl in
      let lo = max 0 lo and hi = min (width - 1) hi in
      for i = lo to hi do
        acc := id ~level:lvl ~index:i :: !acc
      done
    end
  in
  add_range l (k - 3) (k + 3);
  add_range (l + 1) ((2 * k) - 2) ((2 * k) + 1 + 2);
  add_range (l + 2) ((4 * k) - 2) ((4 * k) + 3 + 2);
  List.sort_uniq compare !acc

let neighbourhood_closure_bound = 20

(* ------------------------------------------------------------------ *)
(* Table-free routing                                                  *)
(* ------------------------------------------------------------------ *)

(* Same allocation-free shape as [closed_form_distance]: the greedy
   router evaluates this for every neighbour at every hop. *)
let rec analytic_scan top la ka lb kb l best =
  if l > top then best
  else begin
    let gap = abs ((ka lsr (la - l)) - (kb lsr (lb - l))) in
    let cost = la - l + (lb - l) + gap in
    analytic_scan top la ka lb kb (l + 1) (if cost < best then cost else best)
  end

let analytic_distance a b =
  let la = level a and ka = index a in
  let lb = level b and kb = index b in
  analytic_scan (min la lb) la ka lb kb 0 max_int

let neighbours_of t v =
  let acc = ref [] in
  (match parent v with Some p -> acc := p :: !acc | None -> ());
  if level v < t.height then acc := child v 0 :: child v 1 :: !acc;
  (match predecessor v with Some p -> acc := p :: !acc | None -> ());
  (match successor v with Some s -> acc := s :: !acc | None -> ());
  !acc

let route_next_hop t ~src ~dst =
  if src = dst then invalid_arg "Xtree.route_next_hop: already there";
  if not (mem t src && mem t dst) then invalid_arg "Xtree.route_next_hop";
  let current = analytic_distance src dst in
  let candidates = neighbours_of t src in
  let best = ref (-1) and best_d = ref max_int in
  List.iter
    (fun w ->
      let d = analytic_distance w dst in
      if d < !best_d then begin
        best := w;
        best_d := d
      end)
    candidates;
  (* The greedy potential always admits a strictly decreasing step (see
     the interface documentation); assert it rather than loop forever. *)
  if !best_d >= current then invalid_arg "Xtree.route_next_hop: potential failed to decrease";
  !best

let route t ~src ~dst =
  let rec go acc v = if v = dst then List.rev (v :: acc) else go (v :: acc) (route_next_hop t ~src:v ~dst) in
  go [] src
