(** Immutable undirected graphs in compressed-sparse-row form.

    All host networks (X-trees, hypercubes, butterflies, …) and the
    universal graph of Theorem 4 are values of this type. Vertices are the
    integers [0 .. n-1]. Parallel edges and self-loops given to the
    constructor are removed. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on vertices [0..n-1]. Raises
    [Invalid_argument] if an endpoint is out of range or [n < 0]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of (undirected) edges after deduplication. *)

val degree : t -> int -> int

val max_degree : t -> int
(** 0 for an edgeless graph. *)

val neighbours : t -> int -> int array
(** Sorted adjacency of a vertex. The returned array must not be mutated. *)

val iter_neighbours : t -> int -> (int -> unit) -> unit

val iter_neighbours_e : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbours_e g v f] calls [f w eid] for every neighbour [w],
    where [eid] is the undirected edge id of [{v,w}] — a dense index in
    [0 .. m-1] shared by both directions, suitable for edge-keyed
    arrays. *)

val edge_index : t -> int -> int -> int
(** The undirected edge id of [{u,v}] (order-insensitive). O(log degree).
    Raises [Invalid_argument] if [{u,v}] is not an edge. *)

val has_edge : t -> int -> int -> bool
(** Binary search in the sorted adjacency: O(log degree). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate every undirected edge once, with [u < v]. *)

val bfs : t -> int -> int array
(** [bfs g s] is the array of hop distances from [s]; [-1] marks vertices
    unreachable from [s]. *)

val bfs_parents : t -> int -> int array * int array
(** [bfs_parents g s] returns [(dist, parent)] where [parent.(s) = s] and
    [parent.(v) = -1] for unreachable [v]; otherwise [parent.(v)] is the
    predecessor of [v] on some shortest path from [s]. *)

val distance : t -> int -> int -> int
(** Hop distance, [-1] if disconnected. A full BFS per call; for bulk
    queries prefer [bfs]. *)

val is_connected : t -> bool

val diameter : t -> int
(** Maximum eccentricity; [-1] if the graph is disconnected or empty.
    O(n·(n+m)). *)

val subgraph_respects : t -> (int * int) list -> bool
(** [subgraph_respects g edges] is [true] iff every pair in [edges] is an
    edge of [g] — used to check spanning-subgraph claims of Theorem 4. *)
