(** The (unwrapped) butterfly network [BF(d)]: vertices are pairs
    [(w, i)] with [w] a [d]-bit word and level [i] in [0..d]; level [i] is
    joined to level [i+1] by a {e straight} edge [(w,i)-(w,i+1)] and a
    {e cross} edge [(w,i)-(w xor 2{^i}, i+1)]. *)

type t

val create : dim:int -> t
(** Raises [Invalid_argument] if [dim < 1] or [dim > 20]. *)

val dim : t -> int
val order : t -> int
(** [(d+1)·2{^d}]. *)

val graph : t -> Graph.t

val vertex : t -> word:int -> level:int -> int
val word : t -> int -> int
val level : t -> int -> int
