(** The X-tree network [X(r)] of the paper.

    [X(r)] is the complete binary tree of height [r] (all binary strings of
    length at most [r], each string [x] connected to [x0] and [x1])
    augmented with the {e horizontal} edges connecting each vertex to its
    successor on the same level, i.e. the string whose binary value is one
    larger, provided [x] is not the last vertex of its level.

    Vertices are encoded in heap order: the string of length [l] and binary
    value [k] has id [2{^l} - 1 + k]. The root (empty string) is id 0. *)

type vertex = int
(** Heap-order id of an X-tree vertex. *)

type t
(** An X-tree of some height [r >= 0], with its graph built eagerly. *)

val create : height:int -> t
(** [create ~height:r] is [X(r)]. Raises [Invalid_argument] if [r < 0] or
    [r > 24]. *)

val height : t -> int

val order : t -> int
(** Number of vertices, [2{^r+1} - 1]. *)

val graph : t -> Graph.t
(** The underlying undirected graph (tree edges plus horizontal edges). *)

(** {1 Address arithmetic} — independent of any particular [t]. *)

val id : level:int -> index:int -> vertex
(** Raises [Invalid_argument] if [index] is out of range for [level]. *)

val level : vertex -> int
val index : vertex -> int

val root : vertex
(** Id 0, the empty string. *)

val parent : vertex -> vertex option
(** [None] for the root. *)

val child : vertex -> int -> vertex
(** [child v b] with [b] 0 or 1 appends bit [b] to the address. *)

val successor : vertex -> vertex option
(** Next vertex of the same level, [None] at the right end (all-ones). *)

val predecessor : vertex -> vertex option

val is_ancestor : vertex -> vertex -> bool
(** [is_ancestor a v]: the address of [a] is a prefix of that of [v]
    (including [a = v]). *)

val to_string : vertex -> string
(** Binary-string address; ["e"] for the root. *)

val of_string : string -> vertex
(** Inverse of [to_string]; accepts [""] or ["e"] for the root. Raises
    [Invalid_argument] on non-binary characters or length > 24. *)

(** {1 Per-tree queries} *)

val vertices_at_level : t -> int -> vertex list
(** Left-to-right vertex ids of one level. Raises [Invalid_argument] if the
    level exceeds the height. *)

val leaves : t -> vertex list
(** [vertices_at_level t (height t)]. *)

val mem : t -> vertex -> bool
(** Does this vertex id exist in [X(r)]? *)

val distance : t -> vertex -> vertex -> int
(** Exact hop distance in [X(r)]. Ancestor pairs (level difference) and
    same-level pairs (climb–run–descend minimum) are answered in closed
    form without touching the graph; other pairs fall back to BFS rows
    memoised per source. *)

val neighbourhood : t -> vertex -> vertex list
(** The set [N(a)] of the paper's Figure 2: vertices of [X(r)] reachable
    from [a] by a path of at most three horizontal edges, or by at most two
    downward edges followed by at most two horizontal edges. Contains [a]
    itself. Sorted, duplicate-free. *)

val neighbourhood_closure_bound : int
(** 20 — the paper's bound on [|N(a) - {a}|]. *)

(** {1 Table-free routing}

    Large X-trees make per-destination BFS tables expensive; the address
    structure supports an O(levels) alternative. The {e analytic distance}

    [D(a,b) = min over meeting levels l of
       (level a - l) + (level b - l) + gap_l(a,b)]

    (where [gap_l] is the index difference of the two level-[l] ancestors)
    is an upper bound on the true distance: climb, run horizontally, and
    descend. Greedily stepping to any neighbour that reduces [D] strictly
    decreases it, so routes have length at most [D(a,b)]. *)

val analytic_distance : vertex -> vertex -> int
(** The upper bound [D(a,b)], by pure address arithmetic in O(levels).
    Never less than the true distance; the test suite and bench E17 check
    it is in fact {e equal} to the BFS distance on every vertex pair up to
    height 8 (~261 000 pairs), so optimal X-tree paths have the
    climb–run–descend shape. *)

val route_next_hop : t -> src:vertex -> dst:vertex -> vertex
(** The neighbour of [src] chosen by the greedy [D]-descent. Raises
    [Invalid_argument] if [src = dst]. *)

val route : t -> src:vertex -> dst:vertex -> vertex list
(** The full greedy route, [src] inclusive to [dst] inclusive. Length is
    at most [analytic_distance src dst] edges. *)
