open Xt_prelude

type t = { dim : int; graph : Graph.t }

let vertex_raw dim ~word ~pos = (word * dim) + pos

let create ~dim =
  if dim < 1 || dim > 20 then invalid_arg "Ccc.create";
  let words = Bits.pow2 dim in
  let n = words * dim in
  let edges = ref [] in
  for w = 0 to words - 1 do
    for i = 0 to dim - 1 do
      let v = vertex_raw dim ~word:w ~pos:i in
      (* cycle edge to (w, i+1 mod dim); for dim = 1 or 2 this degenerates *)
      let j = (i + 1) mod dim in
      if j <> i then edges := (v, vertex_raw dim ~word:w ~pos:j) :: !edges;
      (* cube edge across dimension i *)
      let w' = w lxor (1 lsl i) in
      if w < w' then edges := (v, vertex_raw dim ~word:w' ~pos:i) :: !edges
    done
  done;
  { dim; graph = Graph.of_edges ~n !edges }

let dim t = t.dim
let order t = Graph.n t.graph
let graph t = t.graph

let vertex t ~word ~pos =
  if word < 0 || word >= Bits.pow2 t.dim || pos < 0 || pos >= t.dim then
    invalid_arg "Ccc.vertex";
  vertex_raw t.dim ~word ~pos

let word t v = v / t.dim
let pos t v = v mod t.dim
