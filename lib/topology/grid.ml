type t = { rows : int; cols : int; graph : Graph.t }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid.create";
  let n = rows * cols in
  let vertex r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (vertex r c, vertex r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (vertex r c, vertex (r + 1) c) :: !edges
    done
  done;
  { rows; cols; graph = Graph.of_edges ~n !edges }

let rows t = t.rows
let cols t = t.cols
let order t = t.rows * t.cols
let graph t = t.graph

let vertex t ~row ~col =
  if row < 0 || row >= t.rows || col < 0 || col >= t.cols then invalid_arg "Grid.vertex";
  (row * t.cols) + col

let row t v = v / t.cols
let col t v = v mod t.cols

let distance t u v =
  if u < 0 || v < 0 || u >= order t || v >= order t then invalid_arg "Grid.distance";
  abs (row t u - row t v) + abs (col t u - col t v)
