(** Two-dimensional mesh [rows × cols] with 4-neighbour connectivity.
    Included as a further guest/host topology for context benchmarks. *)

type t

val create : rows:int -> cols:int -> t
(** Raises [Invalid_argument] unless both dimensions are positive. *)

val rows : t -> int
val cols : t -> int
val order : t -> int
val graph : t -> Graph.t

val vertex : t -> row:int -> col:int -> int
val row : t -> int -> int
val col : t -> int -> int

val distance : t -> int -> int -> int
(** Manhattan distance. *)
