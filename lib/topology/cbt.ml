open Xt_prelude

type t = { height : int; graph : Graph.t }

let create ~height =
  if height < 0 || height > 24 then invalid_arg "Cbt.create";
  let n = Bits.pow2 (height + 1) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, (v - 1) / 2) :: !edges
  done;
  { height; graph = Graph.of_edges ~n !edges }

let height t = t.height
let order t = Graph.n t.graph
let graph t = t.graph

let level v = Bits.ilog2 (v + 1)

let lca u v =
  let rec lift x l target = if l = target then x else lift ((x - 1) / 2) (l - 1) target in
  let lu = level u and lv = level v in
  let common = min lu lv in
  let rec meet a b = if a = b then a else meet ((a - 1) / 2) ((b - 1) / 2) in
  meet (lift u lu common) (lift v lv common)

let distance t u v =
  let n = order t in
  if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Cbt.distance";
  let a = lca u v in
  level u + level v - (2 * level a)
