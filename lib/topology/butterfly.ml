open Xt_prelude

type t = { dim : int; graph : Graph.t }

let vertex_raw dim ~word ~level = (word * (dim + 1)) + level

let create ~dim =
  if dim < 1 || dim > 20 then invalid_arg "Butterfly.create";
  let words = Bits.pow2 dim in
  let n = words * (dim + 1) in
  let edges = ref [] in
  for w = 0 to words - 1 do
    for i = 0 to dim - 1 do
      let v = vertex_raw dim ~word:w ~level:i in
      edges := (v, vertex_raw dim ~word:w ~level:(i + 1)) :: !edges;
      let w' = w lxor (1 lsl i) in
      edges := (v, vertex_raw dim ~word:w' ~level:(i + 1)) :: !edges
    done
  done;
  { dim; graph = Graph.of_edges ~n !edges }

let dim t = t.dim
let order t = Graph.n t.graph
let graph t = t.graph

let vertex t ~word ~level =
  if word < 0 || word >= Bits.pow2 t.dim || level < 0 || level > t.dim then
    invalid_arg "Butterfly.vertex";
  vertex_raw t.dim ~word ~level

let word t v = v / (t.dim + 1)
let level t v = v mod (t.dim + 1)
