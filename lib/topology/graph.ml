type t = {
  n : int;
  m : int;
  row : int array; (* length n+1, CSR row offsets *)
  col : int array; (* length 2*m, sorted within each row *)
  eid : int array; (* length 2*m, edge id of (u, col.(k)); both directions share one id *)
}

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let check v = if v < 0 || v >= n then invalid_arg "Graph.of_edges: endpoint out of range" in
  (* Normalise: drop self-loops, orient u < v, dedupe. *)
  let normalised =
    List.filter_map
      (fun (u, v) ->
        check u;
        check v;
        if u = v then None else Some (min u v, max u v))
      edges
  in
  let sorted = List.sort_uniq compare normalised in
  let m = List.length sorted in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    sorted;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let col = Array.make (2 * m) 0 in
  let cursor = Array.copy row in
  let push u v =
    col.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1
  in
  List.iter
    (fun (u, v) ->
      push u v;
      push v u)
    sorted;
  for i = 0 to n - 1 do
    let lo = row.(i) and hi = row.(i + 1) in
    let slice = Array.sub col lo (hi - lo) in
    Array.sort compare slice;
    Array.blit slice 0 col lo (hi - lo)
  done;
  (* Edge ids: number the (u < v) edges in sorted order, then stamp both
     CSR directions so hot paths can index edge-keyed arrays in O(1). *)
  let eid = Array.make (2 * m) (-1) in
  let g = { n; m; row; col; eid } in
  let next = ref 0 in
  for u = 0 to n - 1 do
    for k = row.(u) to row.(u + 1) - 1 do
      if col.(k) > u then begin
        eid.(k) <- !next;
        incr next
      end
    done
  done;
  (* second pass: mirror ids onto the (v, u) direction *)
  let find g u v =
    let lo = ref g.row.(u) and hi = ref (g.row.(u + 1) - 1) in
    let pos = ref (-1) in
    while !pos < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let w = g.col.(mid) in
      if w = v then pos := mid else if w < v then lo := mid + 1 else hi := mid - 1
    done;
    !pos
  in
  for u = 0 to n - 1 do
    for k = row.(u) to row.(u + 1) - 1 do
      let v = col.(k) in
      if v > u then begin
        let back = find g v u in
        eid.(back) <- eid.(k)
      end
    done
  done;
  g

let n g = g.n
let m g = g.m
let degree g v = g.row.(v + 1) - g.row.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let neighbours g v = Array.sub g.col g.row.(v) (degree g v)

let iter_neighbours g v f =
  for i = g.row.(v) to g.row.(v + 1) - 1 do
    f g.col.(i)
  done

let iter_neighbours_e g v f =
  for i = g.row.(v) to g.row.(v + 1) - 1 do
    f g.col.(i) g.eid.(i)
  done

let edge_index g u v =
  let lo = ref g.row.(u) and hi = ref (g.row.(u + 1) - 1) in
  let pos = ref (-1) in
  while !pos < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.col.(mid) in
    if w = v then pos := mid else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  if !pos < 0 then invalid_arg "Graph.edge_index: not an edge" else g.eid.(!pos)

let has_edge g u v =
  let lo = ref g.row.(u) and hi = ref (g.row.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.col.(mid) in
    if w = v then found := true else if w < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let iter_edges g f =
  for u = 0 to g.n - 1 do
    iter_neighbours g u (fun v -> if u < v then f u v)
  done

let bfs g s =
  let dist = Array.make g.n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_neighbours g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let bfs_parents g s =
  let dist = Array.make g.n (-1) in
  let parent = Array.make g.n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  parent.(s) <- s;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_neighbours g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
  done;
  (dist, parent)

let distance g u v = (bfs g u).(v)

let is_connected g =
  if g.n = 0 then true
  else begin
    let dist = bfs g 0 in
    Array.for_all (fun d -> d >= 0) dist
  end

let diameter g =
  if g.n = 0 then -1
  else begin
    let best = ref 0 and disconnected = ref false in
    for s = 0 to g.n - 1 do
      let dist = bfs g s in
      Array.iter (fun d -> if d < 0 then disconnected := true else if d > !best then best := d) dist
    done;
    if !disconnected then -1 else !best
  end

let subgraph_respects g edges = List.for_all (fun (u, v) -> has_edge g u v) edges
