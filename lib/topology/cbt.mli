(** The complete binary tree of height [r] in heap order — the X-tree
    without its horizontal edges. Used as a guest topology and as a
    baseline host. *)

type t

val create : height:int -> t
val height : t -> int
val order : t -> int
val graph : t -> Graph.t

val distance : t -> int -> int -> int
(** Arithmetic tree distance: hops to the lowest common ancestor. *)

val lca : int -> int -> int
(** Lowest common ancestor of two heap-order ids. *)
