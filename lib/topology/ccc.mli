(** Cube-connected cycles [CCC(d)]: each hypercube vertex [w] of [Q_d] is
    replaced by a [d]-cycle of vertices [(w, 0) .. (w, d-1)]; [(w, i)] is
    joined to its cycle neighbours and, across the cube dimension [i], to
    [(w xor 2{^i}, i)]. Degree 3 throughout (for [d >= 3]).

    The paper cites Bhatt–Chung–Hong–Leighton–Rosenberg: X-trees need
    dilation Ω(log log n) in CCCs — we include the topology so benchmarks
    can contrast it with the X-tree host. *)

type t

val create : dim:int -> t
(** Raises [Invalid_argument] if [dim < 1] or [dim > 20]. *)

val dim : t -> int
val order : t -> int
val graph : t -> Graph.t

val vertex : t -> word:int -> pos:int -> int
(** Id of [(word, pos)]. *)

val word : t -> int -> int
val pos : t -> int -> int
