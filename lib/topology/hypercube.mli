(** The hypercube [Q_d]: vertices are the [2{^d}] bit strings of length
    [d], edges join strings at Hamming distance one. Distances are computed
    arithmetically, no BFS needed. *)

type t

val create : dim:int -> t
(** Raises [Invalid_argument] if [dim < 0] or [dim > 24]. *)

val dim : t -> int

val order : t -> int
(** [2{^dim}]. *)

val graph : t -> Graph.t

val distance : t -> int -> int -> int
(** Hamming distance between the two vertex labels. *)

val flip : int -> int -> int
(** [flip v i] toggles bit [i] of [v]. *)
