open Xt_prelude

type t = { dim : int; graph : Graph.t }

let create ~dim =
  if dim < 0 || dim > 24 then invalid_arg "Hypercube.create";
  let n = Bits.pow2 dim in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for i = 0 to dim - 1 do
      let w = v lxor (1 lsl i) in
      if v < w then edges := (v, w) :: !edges
    done
  done;
  { dim; graph = Graph.of_edges ~n !edges }

let dim t = t.dim
let order t = Graph.n t.graph
let graph t = t.graph

let distance t u v =
  if u < 0 || v < 0 || u >= order t || v >= order t then invalid_arg "Hypercube.distance";
  Bits.hamming u v

let flip v i = v lxor (1 lsl i)
