open Xt_topology
open Xt_bintree
open Xt_embedding
open Xt_core

type order = Dfs | Bfs

type result = { embedding : Embedding.t; xt : Xtree.t; height : int }

let bfs_order tree =
  let queue = Queue.create () in
  Queue.add (Bintree.root tree) queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    acc := v :: !acc;
    List.iter (fun c -> Queue.add c queue) (Bintree.children tree v)
  done;
  List.rev !acc

let embed ?(capacity = 16) ~order tree =
  let n = Bintree.n tree in
  let height = Theorem1.height_for ~capacity n in
  let xt = Xtree.create ~height in
  let sequence = match order with Dfs -> Bintree.preorder tree | Bfs -> bfs_order tree in
  let place = Array.make n (-1) in
  List.iteri (fun i v -> place.(v) <- i / capacity) sequence;
  let embedding = Embedding.make ~tree ~host:(Xtree.graph xt) ~place in
  { embedding; xt; height }
