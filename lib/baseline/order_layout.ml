open Xt_topology
open Xt_bintree
open Xt_embedding
open Xt_core

type order = Dfs | Bfs

type result = { embedding : Embedding.t; xt : Xtree.t; height : int }

type cache_meta = { m_xt : Xtree.t; m_height : int }

type cache = cache_meta Shape_memo.t

let make_cache ?shards ?capacity ?max_bytes () = Shape_memo.create ?shards ?capacity ?max_bytes ()

let bfs_order tree =
  let queue = Queue.create () in
  Queue.add (Bintree.root tree) queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    acc := v :: !acc;
    List.iter (fun c -> Queue.add c queue) (Bintree.children tree v)
  done;
  List.rev !acc

let embed_uncached ~capacity ~order tree =
  let n = Bintree.n tree in
  let height = Theorem1.height_for ~capacity n in
  let xt = Xtree.create ~height in
  let sequence = match order with Dfs -> Bintree.preorder tree | Bfs -> bfs_order tree in
  let place = Array.make n (-1) in
  List.iteri (fun i v -> place.(v) <- i / capacity) sequence;
  let embedding = Embedding.make ~tree ~host:(Xtree.graph xt) ~place in
  { embedding; xt; height }

let embed ?(capacity = 16) ?cache ~order tree =
  match cache with
  | None -> embed_uncached ~capacity ~order tree
  | Some memo ->
      let prefix =
        Printf.sprintf "base-%s|c=%d" (match order with Dfs -> "dfs" | Bfs -> "bfs") capacity
      in
      let place, m =
        Shape_memo.memo memo ~prefix ~tree ~compute:(fun () ->
            let r = embed_uncached ~capacity ~order tree in
            (r.embedding.Embedding.place, { m_xt = r.xt; m_height = r.height }))
      in
      {
        embedding = Embedding.make ~tree ~host:(Xtree.graph m.m_xt) ~place;
        xt = m.m_xt;
        height = m.m_height;
      }
