(** Contiguous-order baselines: write the guest nodes in DFS (preorder) or
    BFS order and cut the sequence into chunks of [capacity], one chunk per
    X-tree vertex in heap order.

    These are the "obvious" layouts a compiler might emit. They respect
    the load bound by construction but their dilation grows with the tree
    size — benchmark E6 contrasts this with Theorem 1's constant 3. *)

type order = Dfs | Bfs

type result = {
  embedding : Xt_embedding.Embedding.t;
  xt : Xt_topology.Xtree.t;
  height : int;
}

type cache
(** Canonical-shape memo shared by both orders (the order is part of the
    key); see {!Xt_embedding.Shape_memo}. *)

val make_cache : ?shards:int -> ?capacity:int -> ?max_bytes:int -> unit -> cache

val embed : ?capacity:int -> ?cache:cache -> order:order -> Xt_bintree.Bintree.t -> result
