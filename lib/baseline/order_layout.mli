(** Contiguous-order baselines: write the guest nodes in DFS (preorder) or
    BFS order and cut the sequence into chunks of [capacity], one chunk per
    X-tree vertex in heap order.

    These are the "obvious" layouts a compiler might emit. They respect
    the load bound by construction but their dilation grows with the tree
    size — benchmark E6 contrasts this with Theorem 1's constant 3. *)

type order = Dfs | Bfs

type result = {
  embedding : Xt_embedding.Embedding.t;
  xt : Xt_topology.Xtree.t;
  height : int;
}

val embed : ?capacity:int -> order:order -> Xt_bintree.Bintree.t -> result
