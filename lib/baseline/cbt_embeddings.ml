open Xt_prelude
open Xt_topology
open Xt_bintree
open Xt_embedding

(* The complete binary tree with 2^(r+1)-1 nodes as a Bintree, heap
   ordered, so node ids coincide with X-tree vertex ids. *)
let cbt_guest r = Gen.complete (Bits.pow2 (r + 1) - 1)

let cbt_into_xtree r =
  let tree = cbt_guest r in
  let xt = Xtree.create ~height:r in
  let place = Array.init (Bintree.n tree) Fun.id in
  Embedding.make ~tree ~host:(Xtree.graph xt) ~place

let inorder_vertex ~height a =
  let l = Xtree.level a and k = Xtree.index a in
  ((k * 2) + 1) * Bits.pow2 (height - l)

let inorder_into_hypercube r =
  let tree = cbt_guest r in
  let cube = Hypercube.create ~dim:(r + 1) in
  let place = Array.init (Bintree.n tree) (fun a -> inorder_vertex ~height:r a) in
  Embedding.make ~tree ~host:(Hypercube.graph cube) ~place

let inorder_distance_bound_holds ~height =
  let tree = cbt_guest height in
  let cbt = Cbt.create ~height in
  let ok = ref true in
  let n = Bintree.n tree in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let dq = Bits.hamming (inorder_vertex ~height a) (inorder_vertex ~height b) in
      if dq > Cbt.distance cbt a b + 1 then ok := false
    done
  done;
  !ok
