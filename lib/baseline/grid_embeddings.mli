(** The classical grid-into-hypercube embedding, included because the
    paper's introduction cites grids (with X-trees) as the graphs that
    embed efficiently into hypercubes but {e not} into CCCs/butterflies.

    Each grid coordinate is encoded by its binary-reflected Gray code;
    consecutive coordinates differ in one bit, so every grid edge maps to
    a hypercube edge: dilation 1, expansion
    [2^(⌈lg rows⌉+⌈lg cols⌉) / (rows·cols)]. *)

type t = {
  grid : Xt_topology.Grid.t;
  cube : Xt_topology.Hypercube.t;
  place : int array; (** grid vertex -> hypercube label *)
}

val embed : rows:int -> cols:int -> t

val dilation : t -> int
(** Always 1 for grids with at least one edge (checked, not assumed). *)

val is_injective : t -> bool

val expansion : t -> float
