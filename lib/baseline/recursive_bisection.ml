open Xt_topology
open Xt_bintree
open Xt_embedding
open Xt_core

type result = { embedding : Embedding.t; xt : Xtree.t; height : int }

type cache_meta = { m_xt : Xtree.t; m_height : int }

type cache = cache_meta Shape_memo.t

let make_cache ?shards ?capacity ?max_bytes () = Shape_memo.create ?shards ?capacity ?max_bytes ()

(* A piece here is just a component node list; boundaries are recomputed
   against [place] on demand. *)
let frontier_nodes tree place nodes =
  List.filter
    (fun v ->
      let adj = ref false in
      Bintree.iter_neighbours tree v (fun w -> if place.(w) >= 0 then adj := true);
      !adj)
    nodes

let embed_uncached ~capacity tree =
  let n = Bintree.n tree in
  let height = Theorem1.height_for ~capacity n in
  let xt = Xtree.create ~height in
  let place = Array.make n (-1) in
  let ws = Separator.make_ws tree in
  (* Peel up to [capacity] frontier nodes of [nodes] and place them at
     [vertex]; returns the remaining nodes. *)
  let fill vertex nodes =
    let remaining = ref nodes and placed = ref 0 in
    let continue_ = ref true in
    while !continue_ && !placed < capacity && !remaining <> [] do
      match frontier_nodes tree place !remaining with
      | [] ->
          (* nothing placed yet anywhere near: seed with the first node *)
          let v = List.hd !remaining in
          place.(v) <- vertex;
          incr placed;
          remaining := List.filter (fun w -> w <> v) !remaining
      | fs ->
          let take = min (capacity - !placed) (List.length fs) in
          let chosen = List.filteri (fun i _ -> i < take) fs in
          List.iter (fun v -> place.(v) <- vertex) chosen;
          placed := !placed + take;
          remaining := List.filter (fun v -> place.(v) < 0) !remaining;
          if take = 0 then continue_ := false
    done;
    !remaining
  in
  (* Split [nodes] into two bags of roughly equal size: greedy assignment
     of components, then one Lemma 2 correction on the largest piece of
     the heavy bag. No cross-boundary repair ever happens afterwards. *)
  let bisect nodes =
    let comps = Separator.components ws ~nodes ~removed:[] in
    let sized = List.map (fun c -> (List.length c, c)) comps in
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) sized in
    let s0 = ref 0 and s1 = ref 0 and b0 = ref [] and b1 = ref [] in
    List.iter
      (fun (s, c) ->
        if !s0 <= !s1 then begin
          s0 := !s0 + s;
          b0 := c :: !b0
        end
        else begin
          s1 := !s1 + s;
          b1 := c :: !b1
        end)
      sorted;
    let delta = (max !s0 !s1 - min !s0 !s1) / 2 in
    if delta > 0 then begin
      let heavy, light, hs, ls =
        if !s0 >= !s1 then (b0, b1, s0, s1) else (b1, b0, s1, s0)
      in
      match List.sort (fun a b -> compare (List.length b) (List.length a)) !heavy with
      | biggest :: rest when List.length biggest > 1 ->
          let r1 =
            match frontier_nodes tree place biggest with v :: _ -> v | [] -> List.hd biggest
          in
          let piece = { Separator.nodes = biggest; r1; r2 = None } in
          let target = min delta (List.length biggest - 1) in
          if target > 0 then begin
            let sp = Separator.lemma2 ws piece ~target in
            let keep = sp.Separator.s1 @ sp.Separator.t1
            and move = sp.Separator.s2 @ sp.Separator.t2 in
            heavy := keep :: rest;
            light := move :: !light;
            hs := !hs - List.length move;
            ls := !ls + List.length move
          end
      | _ -> ()
    end;
    (List.concat !b0, List.concat !b1)
  in
  let rec go vertex nodes =
    if nodes <> [] then begin
      if Xtree.level vertex = height then
        (* bottom: everything lands here, load grows *)
        List.iter (fun v -> place.(v) <- vertex) nodes
      else begin
        let rest = fill vertex nodes in
        let left, right = bisect rest in
        go (Xtree.child vertex 0) left;
        go (Xtree.child vertex 1) right
      end
    end
  in
  go Xtree.root (List.init n Fun.id);
  let embedding = Embedding.make ~tree ~host:(Xtree.graph xt) ~place in
  { embedding; xt; height }

let embed ?(capacity = 16) ?cache tree =
  match cache with
  | None -> embed_uncached ~capacity tree
  | Some memo ->
      let prefix = Printf.sprintf "base-bisect|c=%d" capacity in
      let place, m =
        Shape_memo.memo memo ~prefix ~tree ~compute:(fun () ->
            let r = embed_uncached ~capacity tree in
            (r.embedding.Embedding.place, { m_xt = r.xt; m_height = r.height }))
      in
      {
        embedding = Embedding.make ~tree ~host:(Xtree.graph m.m_xt) ~place;
        xt = m.m_xt;
        height = m.m_height;
      }
