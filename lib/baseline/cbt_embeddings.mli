(** Classical embeddings of the complete binary tree, used by the paper as
    context (its section 3 recalls both):

    - the identity embedding of [B_r] into [X(r)] (dilation 1 — [B_r] is a
      subgraph of its X-tree);
    - the {e inorder} embedding of [B_r] into its optimal hypercube
      [Q_{r+1}], [δ_io(a) = a·1·0^{r-|a|}], which has dilation 2 and the
      distance property [dist_Q <= dist_B + 1]. *)

val cbt_into_xtree : int -> Xt_embedding.Embedding.t
(** [cbt_into_xtree r]: the complete binary tree of height [r] into
    [X(r)], one node per vertex. Dilation 1, injective. *)

val inorder_into_hypercube : int -> Xt_embedding.Embedding.t
(** [inorder_into_hypercube r]: [B_r] into [Q_{r+1}] by the inorder map.
    Dilation 2, injective. *)

val inorder_vertex : height:int -> int -> int
(** The inorder image [a·1·0^{r-|a|}] of a heap-order CBT node. *)

val inorder_distance_bound_holds : height:int -> bool
(** Exhaustive check of [dist_Q(δ(a), δ(b)) <= dist_B(a, b) + 1]. *)
