(** The natural comparison point for Theorem 1: recursive bisection
    {e without} the paper's sideways ADJUST corrections.

    Each X-tree vertex keeps [capacity] guest nodes from the frontier of
    the pieces routed through it, and the remainder is split into two bags
    for the children using the same Lemma 2 separators — but split errors
    are never repaired across sibling boundaries, so they compound
    downwards and the {e load is unbounded}: it grows with the X-tree
    height (roughly like [(10/9)^r] in the adversarial direction). This is
    exactly the failure mode the paper's horizontal-edge adjustments
    eliminate, so benchmark E6 plots the two side by side. *)

type result = {
  embedding : Xt_embedding.Embedding.t;
  xt : Xt_topology.Xtree.t;
  height : int;
}

type cache
(** Canonical-shape memo; see {!Xt_embedding.Shape_memo}. *)

val make_cache : ?shards:int -> ?capacity:int -> ?max_bytes:int -> unit -> cache

val embed : ?capacity:int -> ?cache:cache -> Xt_bintree.Bintree.t -> result
(** Same host size as {!Xt_core.Theorem1.embed}, but per-vertex occupancy
    is allowed to exceed [capacity] (it is the measured quantity). *)
