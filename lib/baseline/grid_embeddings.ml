open Xt_prelude
open Xt_topology

type t = { grid : Grid.t; cube : Hypercube.t; place : int array }

let bits_for n =
  let rec go b = if Bits.pow2 b >= n then b else go (b + 1) in
  go 0

let embed ~rows ~cols =
  let grid = Grid.create ~rows ~cols in
  let row_bits = bits_for rows and col_bits = bits_for cols in
  let cube = Hypercube.create ~dim:(row_bits + col_bits) in
  let place =
    Array.init (Grid.order grid) (fun v ->
        let r = Grid.row grid v and c = Grid.col grid v in
        (Bits.gray r * Bits.pow2 col_bits) + Bits.gray c)
  in
  { grid; cube; place }

let dilation t =
  let best = ref 0 in
  Graph.iter_edges (Grid.graph t.grid) (fun u v ->
      let d = Hypercube.distance t.cube t.place.(u) t.place.(v) in
      if d > !best then best := d);
  !best

let is_injective t =
  let seen = Hashtbl.create (Array.length t.place) in
  Array.iter (fun p -> Hashtbl.replace seen p ()) t.place;
  Hashtbl.length seen = Array.length t.place

let expansion t = float_of_int (Hypercube.order t.cube) /. float_of_int (Grid.order t.grid)
