open Xt_prelude
open Xt_bintree

type 'meta entry = {
  canon : string;       (* Codec.to_string of the shape, for hit verification *)
  cplace : int array;   (* placement indexed by preorder rank *)
  meta : 'meta;
}

type 'meta t = 'meta entry Cache.t

let create ?shards ?capacity ?max_bytes () = Cache.create ?shards ?capacity ?max_bytes ()

let entry_bytes e =
  (* Rough heap footprint: header + fields, string bytes, one word per
     placement slot. The meta is charged a flat constant. *)
  64 + String.length e.canon + (8 * Array.length e.cplace)

let memo t ~prefix ~tree ~compute =
  let key = prefix ^ "|" ^ Fingerprint.canonical_key tree in
  let canon = Codec.to_string tree in
  let rank = Fingerprint.preorder_ranks tree in
  let n = Bintree.n tree in
  let e =
    Cache.with_memo t ~bytes:entry_bytes
      ~validate:(fun e -> String.equal e.canon canon)
      key
      (fun () ->
        let place, meta = compute () in
        let cplace = Array.make n (-1) in
        for v = 0 to n - 1 do
          cplace.(rank.(v)) <- place.(v)
        done;
        { canon; cplace; meta })
  in
  (Array.init n (fun v -> e.cplace.(rank.(v))), e.meta)

let length = Cache.length
let clear = Cache.clear
let stats = Cache.stats

(* -------------------------------------------------------------------- *)
(* Snapshot codec.

   Layout (all integers little-endian, fixed width):

     "XTSM" | u32 version | u32 entry count
     repeated per entry:
       u32 body length | body | u64 FNV-1a checksum of the body
     body:
       u32 key length | key | u32 canon length | canon
       u32 meta length | meta | u32 n | n x i32 cplace

   The whole file is parsed and verified before the first insertion, so
   a truncated or corrupted snapshot rejects atomically and leaves the
   memo untouched. *)

let magic = "XTSM"
let version = 1

(* 64-bit FNV-1a; Int64 keeps the wrap-around exact. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let encode_entry buf ~key ~encode_meta e =
  let body = Buffer.create (String.length key + String.length e.canon + 64) in
  let str s =
    Buffer.add_int32_le body (Int32.of_int (String.length s));
    Buffer.add_string body s
  in
  str key;
  str e.canon;
  str (encode_meta e.meta);
  Buffer.add_int32_le body (Int32.of_int (Array.length e.cplace));
  Array.iter (fun p -> Buffer.add_int32_le body (Int32.of_int p)) e.cplace;
  let body = Buffer.contents body in
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_string buf body;
  Buffer.add_int64_le buf (fnv1a body)

let save t ~encode_meta ~file =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int version);
  let entries =
    (* Least recent first per shard (Cache.fold order): re-adding in file
       order on load reproduces the recency order. *)
    Cache.fold t ~init:[] ~f:(fun acc ~key ~bytes:_ e -> (key, e) :: acc)
  in
  let entries = List.rev entries in
  Buffer.add_int32_le buf (Int32.of_int (List.length entries));
  List.iter (fun (key, e) -> encode_entry buf ~key ~encode_meta e) entries;
  let dir = Filename.dirname file in
  let tmp, oc = Filename.open_temp_file ~temp_dir:dir ~mode:[ Open_binary ] ".xtsm" ".tmp" in
  (try
     Buffer.output_buffer oc buf;
     close_out oc;
     Sys.rename tmp file
   with exn ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise exn);
  List.length entries

exception Bad of string

let load t ~decode_meta ~file =
  match
    let s = In_channel.with_open_bin file In_channel.input_all in
    let len = String.length s in
    let pos = ref 0 in
    let need n what = if !pos + n > len then raise (Bad ("truncated " ^ what)) in
    let u32 what =
      need 4 what;
      let v = Int32.to_int (String.get_int32_le s !pos) in
      pos := !pos + 4;
      if v < 0 then raise (Bad ("negative length in " ^ what));
      v
    in
    need 4 "header";
    if String.sub s 0 4 <> magic then raise (Bad "bad magic");
    pos := 4;
    let v = u32 "header" in
    if v <> version then raise (Bad (Printf.sprintf "unsupported version %d" v));
    let count = u32 "header" in
    let parsed = ref [] in
    for _ = 1 to count do
      let body_len = u32 "entry frame" in
      need body_len "entry body";
      let body = String.sub s !pos body_len in
      pos := !pos + body_len;
      need 8 "entry checksum";
      let sum = String.get_int64_le s !pos in
      pos := !pos + 8;
      if not (Int64.equal sum (fnv1a body)) then raise (Bad "entry checksum mismatch");
      (* Re-parse the verified body with its own cursor. *)
      let bpos = ref 0 in
      let bneed n = if !bpos + n > body_len then raise (Bad "malformed entry body") in
      let bu32 () =
        bneed 4;
        let v = Int32.to_int (String.get_int32_le body !bpos) in
        bpos := !bpos + 4;
        if v < 0 then raise (Bad "malformed entry body");
        v
      in
      let bstr () =
        let n = bu32 () in
        bneed n;
        let r = String.sub body !bpos n in
        bpos := !bpos + n;
        r
      in
      let key = bstr () in
      let canon = bstr () in
      let meta_s = bstr () in
      let n = bu32 () in
      bneed (4 * n);
      let cplace =
        Array.init n (fun i -> Int32.to_int (String.get_int32_le body (!bpos + (4 * i))))
      in
      bpos := !bpos + (4 * n);
      if !bpos <> body_len then raise (Bad "malformed entry body");
      let meta =
        match decode_meta meta_s with
        | Some m -> m
        | None -> raise (Bad "undecodable entry metadata")
      in
      parsed := (key, { canon; cplace; meta }) :: !parsed
    done;
    if !pos <> len then raise (Bad "trailing bytes");
    List.rev !parsed
  with
  | entries ->
      List.iter (fun (key, e) -> Cache.add t ~bytes:(entry_bytes e) key e) entries;
      Ok (List.length entries)
  | exception Bad msg -> Error msg
  | exception Sys_error msg -> Error msg
