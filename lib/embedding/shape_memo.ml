open Xt_prelude
open Xt_bintree

type 'meta entry = {
  canon : string;       (* Codec.to_string of the shape, for hit verification *)
  cplace : int array;   (* placement indexed by preorder rank *)
  meta : 'meta;
}

type 'meta t = 'meta entry Cache.t

let create ?shards ?capacity ?max_bytes () = Cache.create ?shards ?capacity ?max_bytes ()

let entry_bytes e =
  (* Rough heap footprint: header + fields, string bytes, one word per
     placement slot. The meta is charged a flat constant. *)
  64 + String.length e.canon + (8 * Array.length e.cplace)

let memo t ~prefix ~tree ~compute =
  let key = prefix ^ "|" ^ Fingerprint.canonical_key tree in
  let canon = Codec.to_string tree in
  let rank = Fingerprint.preorder_ranks tree in
  let n = Bintree.n tree in
  let e =
    Cache.with_memo t ~bytes:entry_bytes
      ~validate:(fun e -> String.equal e.canon canon)
      key
      (fun () ->
        let place, meta = compute () in
        let cplace = Array.make n (-1) in
        for v = 0 to n - 1 do
          cplace.(rank.(v)) <- place.(v)
        done;
        { canon; cplace; meta })
  in
  (Array.init n (fun v -> e.cplace.(rank.(v))), e.meta)

let length = Cache.length
let clear = Cache.clear
