(** Graphviz export, for eyeballing hosts and embeddings.

    [dot -Tsvg out.dot > out.svg] renders the results; X-tree hosts are
    ranked by level so the picture matches the paper's Figure 1. *)

val graph : ?name:string -> ?label:(int -> string) -> Xt_topology.Graph.t -> string
(** A plain undirected graph. [label] defaults to the vertex id. *)

val xtree : Xt_topology.Xtree.t -> string
(** The X-tree with binary-string labels and one rank per level. *)

val embedding : ?max_guests_shown:int -> Xt_topology.Xtree.t -> Embedding.t -> string
(** The host X-tree where every vertex is labelled with the guest nodes
    it carries (truncated to [max_guests_shown], default 6), and guest
    edges whose endpoints live on different host vertices appear as
    dashed edges weighted by multiplicity. *)
