open Xt_topology

let node_radius = 14.
let level_height = 70.
let margin = 30.

let width_for xt =
  let leaves = float_of_int (Xt_prelude.Bits.pow2 (Xtree.height xt)) in
  (2. *. margin) +. (leaves *. 3.2 *. node_radius)

let position xt v =
  let w = width_for xt -. (2. *. margin) in
  let l = Xtree.level v and k = Xtree.index v in
  let slots = float_of_int (Xt_prelude.Bits.pow2 l) in
  let x = margin +. ((float_of_int k +. 0.5) /. slots *. w) in
  let y = margin +. (float_of_int l *. level_height) in
  (x, y)

let header ~width ~height =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n\
     <style>text { font: 10px monospace; text-anchor: middle; dominant-baseline: central; }</style>\n"
    width height width height

let edge_svg xt buf u v ~colour ~dashed ~label =
  let x1, y1 = position xt u and x2, y2 = position xt v in
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\"%s stroke-width=\"1.2\"/>\n"
       x1 y1 x2 y2 colour
       (if dashed then " stroke-dasharray=\"4 3\"" else ""));
  match label with
  | Some text ->
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\" fill=\"%s\">%s</text>\n"
           ((x1 +. x2) /. 2.)
           (((y1 +. y2) /. 2.) -. 8.)
           colour text)
  | None -> ()

let vertex_svg xt buf v ~fill ~label =
  let x, y = position xt v in
  Buffer.add_string buf
    (Printf.sprintf
       "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\" stroke=\"black\"/>\n" x y
       node_radius fill);
  Buffer.add_string buf (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\">%s</text>\n" x y label)

let render xt ~vertex_fill ~vertex_label ~extra_edges =
  let buf = Buffer.create 4096 in
  let width = width_for xt in
  let height = (2. *. margin) +. (float_of_int (Xtree.height xt) *. level_height) in
  Buffer.add_string buf (header ~width ~height);
  Graph.iter_edges (Xtree.graph xt) (fun u v ->
      let horizontal = Xtree.level u = Xtree.level v in
      edge_svg xt buf u v ~colour:"#555" ~dashed:horizontal ~label:None);
  extra_edges buf;
  for v = 0 to Xtree.order xt - 1 do
    vertex_svg xt buf v ~fill:(vertex_fill v) ~label:(vertex_label v)
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let xtree xt =
  render xt
    ~vertex_fill:(fun _ -> "white")
    ~vertex_label:(fun v -> Xtree.to_string v)
    ~extra_edges:(fun _ -> ())

let embedding xt (e : Embedding.t) =
  let loads = Array.make (Graph.n e.host) 0 in
  Array.iter (fun p -> loads.(p) <- loads.(p) + 1) e.place;
  let max_load = max 1 (Array.fold_left max 0 loads) in
  let fill v =
    (* white (empty) to steel blue (full) *)
    let t = float_of_int loads.(v) /. float_of_int max_load in
    let channel base = int_of_float (float_of_int base +. ((255. -. float_of_int base) *. (1. -. t))) in
    Printf.sprintf "rgb(%d,%d,%d)" (channel 70) (channel 130) (channel 180)
  in
  let stretched buf =
    let dist = Hashtbl.create 64 in
    let d a b =
      match Hashtbl.find_opt dist a with
      | Some row -> (row : int array).(b)
      | None ->
          let row = Graph.bfs e.host a in
          Hashtbl.replace dist a row;
          row.(b)
    in
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (u, v) ->
        let a = e.place.(u) and b = e.place.(v) in
        if a <> b && d a b >= 2 then begin
          let key = (min a b, max a b) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            edge_svg xt buf a b ~colour:"#c0392b" ~dashed:false
              ~label:(Some (string_of_int (d a b)))
          end
        end)
      (Xt_bintree.Bintree.edges e.tree)
  in
  render xt ~vertex_fill:fill ~vertex_label:(fun v -> string_of_int loads.(v)) ~extra_edges:stretched
