(** Exact minimum-dilation embeddings for {e small} instances, by
    iterative-deepening branch and bound.

    This is a research probe, not a production path: it answers questions
    like "what is the best possible dilation of this 15-node tree in
    CCC(3)?" for guests up to ~12–15 nodes and hosts up to a few dozen
    vertices. Benchmark E13 uses it to sanity-check that Theorem 1's
    constant is close to optimal and to illustrate the
    Bhatt–Chung–Hong–Leighton–Rosenberg separation the paper cites (trees
    embed well into X-trees, X-trees do not embed well into
    CCC/butterflies). *)

val optimal_embedding :
  ?max_dilation:int ->
  guest:Xt_bintree.Bintree.t ->
  host:Xt_topology.Graph.t ->
  unit ->
  (int array * int) option
(** Search injective embeddings in order of dilation [1, 2, …,
    max_dilation] (default: the host diameter); return the first
    placement found together with its dilation, or [None] when the guest
    does not fit within the bound (or the host is too small /
    disconnected). Deterministic. *)

val optimal_dilation :
  ?max_dilation:int -> guest:Xt_bintree.Bintree.t -> host:Xt_topology.Graph.t -> unit -> int option

val brute_force_dilation :
  guest:Xt_bintree.Bintree.t -> host:Xt_topology.Graph.t -> int option
(** Reference oracle: try {e every} injective assignment (host
    permutations) — factorial time, only for cross-checking the solver in
    tests (guest and host at most ~7). *)

(** {1 General connected guests}

    The same search for an arbitrary connected guest graph — e.g. to ask
    for the optimal dilation of an {e X-tree} inside a CCC or butterfly,
    the separation result the paper builds on. *)

val optimal_embedding_graph :
  ?max_dilation:int ->
  guest:Xt_topology.Graph.t ->
  host:Xt_topology.Graph.t ->
  unit ->
  (int array * int) option
(** Returns [None] for disconnected or oversized guests. *)

val optimal_dilation_graph :
  ?max_dilation:int -> guest:Xt_topology.Graph.t -> host:Xt_topology.Graph.t -> unit -> int option

val brute_force_dilation_graph :
  guest:Xt_topology.Graph.t -> host:Xt_topology.Graph.t -> int option
