open Xt_prelude
open Xt_topology
open Xt_bintree

type result = { congestion : int; max_route_length : int; total_route_length : int }

(* How many extra hops a route may take to dodge congestion. *)
let detour_slack = 4

(* Load-aware Dijkstra from s to t over (vertex, hops-used) states, so
   that routes are guaranteed at most [shortest + detour_slack] hops long
   ([ds]/[dt] are hop-distance rows from s and t, used to prune states
   that cannot finish within budget). Edge cost (load+1)^2 gives shortest
   paths on an idle network and repels hot edges under load. *)
let dijkstra host load ~ds ~dt s t =
  let n = Graph.n host in
  let budget = ds.(t) + detour_slack in
  let states = n * (budget + 1) in
  let dist = Array.make states max_int in
  let parent = Array.make states (-1) in
  let id v h = (v * (budget + 1)) + h in
  let heap = Heap.create () in
  dist.(id s 0) <- 0;
  Heap.push heap ~key:0 (id s 0);
  let goal = ref (-1) in
  while !goal < 0 && not (Heap.is_empty heap) do
    match Heap.pop_min heap with
    | None -> goal := -2
    | Some (d, st) ->
        let u = st / (budget + 1) and h = st mod (budget + 1) in
        if u = t then goal := st
        else if d <= dist.(st) && h < budget then
          Graph.iter_neighbours host u (fun v ->
              if dt.(v) >= 0 && h + 1 + dt.(v) <= budget then begin
                let key = (min u v, max u v) in
                let l = Option.value ~default:0 (Hashtbl.find_opt load key) in
                let c = d + ((l + 1) * (l + 1)) in
                let st' = id v (h + 1) in
                if c < dist.(st') then begin
                  dist.(st') <- c;
                  parent.(st') <- st;
                  Heap.push heap ~key:c st'
                end
              end)
  done;
  if s = t then Some [ s ]
  else if !goal < 0 then None
  else begin
    let rec walk acc st =
      let v = st / (budget + 1) in
      if st = id s 0 then v :: acc else walk (v :: acc) parent.(st)
    in
    Some (walk [] !goal)
  end

let bump load a b =
  let key = (min a b, max a b) in
  Hashtbl.replace load key (1 + Option.value ~default:0 (Hashtbl.find_opt load key))

let demands (e : Embedding.t) =
  (* guest edges with distinct endpoint images, longest first *)
  let rows = Hashtbl.create 64 in
  let dist s v =
    let row =
      match Hashtbl.find_opt rows s with
      | Some r -> r
      | None ->
          let r = Graph.bfs e.host s in
          Hashtbl.replace rows s r;
          r
    in
    row.(v)
  in
  Bintree.edges e.tree
  |> List.filter_map (fun (u, v) ->
         let a = e.place.(u) and b = e.place.(v) in
         if a = b then None else Some (dist a b, a, b))
  |> List.sort (fun (d1, _, _) (d2, _, _) -> compare d2 d1)

let summarise load routes =
  let congestion = Hashtbl.fold (fun _ c acc -> max c acc) load 0 in
  let max_route_length = List.fold_left (fun acc r -> max acc r) 0 routes in
  let total_route_length = List.fold_left ( + ) 0 routes in
  { congestion; max_route_length; total_route_length }

let route (e : Embedding.t) =
  let load = Hashtbl.create 256 in
  let rows = Hashtbl.create 64 in
  let row s =
    match Hashtbl.find_opt rows s with
    | Some r -> r
    | None ->
        let r = Graph.bfs e.host s in
        Hashtbl.replace rows s r;
        r
  in
  let lengths =
    List.map
      (fun (_, a, b) ->
        match dijkstra e.host load ~ds:(row a) ~dt:(row b) a b with
        | None -> 0
        | Some path ->
            let rec charge = function
              | x :: (y :: _ as rest) ->
                  bump load x y;
                  1 + charge rest
              | _ -> 0
            in
            charge path)
      (demands e)
  in
  summarise load lengths

let baseline (e : Embedding.t) =
  let load = Hashtbl.create 256 in
  let parents = Hashtbl.create 64 in
  let parent_row s =
    match Hashtbl.find_opt parents s with
    | Some p -> p
    | None ->
        let _, p = Graph.bfs_parents e.host s in
        Hashtbl.replace parents s p;
        p
  in
  let lengths =
    List.map
      (fun (_, a, b) ->
        let p = parent_row a in
        let rec walk len v =
          if v = a then len
          else begin
            bump load v p.(v);
            walk (len + 1) p.(v)
          end
        in
        walk 0 b)
      (demands e)
  in
  summarise load lengths
