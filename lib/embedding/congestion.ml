open Xt_obs
open Xt_prelude
open Xt_topology
open Xt_bintree

(* Telemetry. Relaxations are tallied in a local accumulator and flushed
   once per Dijkstra call, so the inner loop stays free of flag checks. *)
let c_demands = Obs.counter "congestion.demands"
let c_relax = Obs.counter "congestion.relaxations"
let c_scratch_reuse = Obs.counter "congestion.scratch_reuse"
let c_scratch_alloc = Obs.counter "congestion.scratch_alloc"
let h_edge_load = Obs.histogram "congestion.edge_load"

type result = { congestion : int; max_route_length : int; total_route_length : int }

(* How many extra hops a route may take to dodge congestion. *)
let detour_slack = 4

(* Reusable Dijkstra scratch. One allocation serves every demand of a
   routing run: [stamp] generation-marks valid [dist] entries so nothing
   needs an O(states) clear between demands, and the heap empties in
   O(1). Arrays grow monotonically; demands are routed longest-first, so
   the first demand already needs the largest state space. *)
type scratch = {
  mutable dist : int array;
  mutable parent : int array;
  mutable stamp : int array;
  mutable gen : int;
  heap : int Heap.t;
}

let make_scratch () = { dist = [||]; parent = [||]; stamp = [||]; gen = 0; heap = Heap.create () }

let prepare scratch states =
  if Array.length scratch.dist < states then begin
    scratch.dist <- Array.make states max_int;
    scratch.parent <- Array.make states (-1);
    scratch.stamp <- Array.make states 0;
    scratch.gen <- 0;
    Obs.incr c_scratch_alloc
  end
  else Obs.incr c_scratch_reuse;
  scratch.gen <- scratch.gen + 1;
  Heap.clear scratch.heap

(* Load-aware Dijkstra from s to t over (vertex, hops-used) states, so
   that routes are guaranteed at most [shortest + detour_slack] hops long
   ([ds]/[dt] are hop-distance rows from s and t, used to prune states
   that cannot finish within budget). Edge cost (load+1)^2 gives shortest
   paths on an idle network and repels hot edges under load. Loads are
   read straight out of an edge-id-indexed array — no hashing on the
   relaxation path. *)
let dijkstra host (load : int array) scratch ~ds ~dt s t =
  let budget = ds.(t) + detour_slack in
  let width = budget + 1 in
  let states = Graph.n host * width in
  prepare scratch states;
  let dist = scratch.dist
  and parent = scratch.parent
  and stamp = scratch.stamp
  and gen = scratch.gen
  and heap = scratch.heap in
  let get st = if stamp.(st) = gen then dist.(st) else max_int in
  let set st d p =
    dist.(st) <- d;
    parent.(st) <- p;
    stamp.(st) <- gen
  in
  let id v h = (v * width) + h in
  set (id s 0) 0 (-1);
  Heap.push heap ~key:0 (id s 0);
  let goal = ref (-1) in
  let relaxed = ref 0 in
  while !goal < 0 && not (Heap.is_empty heap) do
    match Heap.pop_min heap with
    | None -> goal := -2
    | Some (d, st) ->
        let u = st / width and h = st mod width in
        if u = t then goal := st
        else if d <= get st && h < budget then
          Graph.iter_neighbours_e host u (fun v eid ->
              if dt.(v) >= 0 && h + 1 + dt.(v) <= budget then begin
                incr relaxed;
                let l = load.(eid) in
                let c = d + ((l + 1) * (l + 1)) in
                let st' = id v (h + 1) in
                if c < get st' then begin
                  set st' c st;
                  Heap.push heap ~key:c st'
                end
              end)
  done;
  Obs.add c_relax !relaxed;
  if s = t then Some [ s ]
  else if !goal < 0 then None
  else begin
    let rec walk acc st =
      let v = st / width in
      if st = id s 0 then v :: acc else walk (v :: acc) parent.(st)
    in
    Some (walk [] !goal)
  end

(* Memoised BFS rows, shared between demand sorting and routing (the
   previous version built a separate table for each). *)
let row_table host =
  let rows = Hashtbl.create 64 in
  fun s ->
    match Hashtbl.find_opt rows s with
    | Some r -> r
    | None ->
        let r = Graph.bfs host s in
        Hashtbl.replace rows s r;
        r

let summarise load routes =
  let congestion = Array.fold_left max 0 load in
  let max_route_length = List.fold_left (fun acc r -> max acc r) 0 routes in
  let total_route_length = List.fold_left ( + ) 0 routes in
  { congestion; max_route_length; total_route_length }

(* Route an explicit demand list over a bare host graph: longest demands
   first (ties keep list order), each along the load-aware Dijkstra
   path. This is the engine behind [route] and the public [analyse]. *)
let route_demands host pairs =
  Obs.span ~arg:(List.length pairs) "congestion.analyse" @@ fun () ->
  let row = row_table host in
  let load = Array.make (Graph.m host) 0 in
  let scratch = make_scratch () in
  let demands =
    pairs
    |> List.filter_map (fun (a, b) -> if a = b then None else Some ((row a).(b), a, b))
    |> List.sort (fun (d1, _, _) (d2, _, _) -> compare d2 d1)
  in
  Obs.add c_demands (List.length demands);
  let lengths =
    List.map
      (fun (_, a, b) ->
        match dijkstra host load scratch ~ds:(row a) ~dt:(row b) a b with
        | None -> 0
        | Some path ->
            let rec charge = function
              | x :: (y :: _ as rest) ->
                  let eidx = Graph.edge_index host x y in
                  load.(eidx) <- load.(eidx) + 1;
                  1 + charge rest
              | _ -> 0
            in
            charge path)
      demands
  in
  if Obs.metrics_enabled () then Array.iter (Obs.observe h_edge_load) load;
  summarise load lengths

let analyse host pairs = route_demands host pairs

let route (e : Embedding.t) =
  route_demands e.host
    (Bintree.edges e.tree |> List.map (fun (u, v) -> (e.place.(u), e.place.(v))))

let baseline (e : Embedding.t) =
  let host = e.host in
  (* one bfs_parents call per source supplies both the distance row used
     for sorting and the parent row walked when charging *)
  let tbl = Hashtbl.create 64 in
  let info s =
    match Hashtbl.find_opt tbl s with
    | Some p -> p
    | None ->
        let p = Graph.bfs_parents host s in
        Hashtbl.replace tbl s p;
        p
  in
  let load = Array.make (Graph.m host) 0 in
  let demands =
    Bintree.edges e.tree
    |> List.filter_map (fun (u, v) ->
           let a = e.place.(u) and b = e.place.(v) in
           if a = b then None else Some ((fst (info a)).(b), a, b))
    |> List.sort (fun (d1, _, _) (d2, _, _) -> compare d2 d1)
  in
  let lengths =
    List.map
      (fun (_, a, b) ->
        let p = snd (info a) in
        let rec walk len v =
          if v = a then len
          else begin
            let eidx = Graph.edge_index host v p.(v) in
            load.(eidx) <- load.(eidx) + 1;
            walk (len + 1) p.(v)
          end
        in
        walk 0 b)
      demands
  in
  summarise load lengths
