(** Self-contained SVG rendering of X-trees and embeddings — no Graphviz
    required; the output opens directly in a browser.

    Vertices are laid out by (level, index) exactly as in the paper's
    Figure 1; horizontal edges are drawn dotted; in embedding pictures
    the fill darkens with the vertex load and stretched guest edges
    (host distance >= 2) are overlaid in red. *)

val xtree : Xt_topology.Xtree.t -> string
(** The bare topology, Figure 1 style. *)

val embedding : Xt_topology.Xtree.t -> Embedding.t -> string
(** Host picture with per-vertex load shading and stretched guest edges. *)
