(** Shape-keyed memoisation of placements.

    The memo key is the {!Xt_bintree.Fingerprint.canonical_key} of the
    guest tree (prefixed with the embedder's parameters), so structurally
    equal trees share one cache entry regardless of how their nodes are
    numbered. The stored placement is indexed by {e preorder rank} — the
    canonical labelling {!Xt_bintree.Codec} would assign — and every
    lookup translates through the caller's preorder isomorphism:

    - a miss runs [compute] on the caller's tree and stores
      [cplace.(rank.(v)) = place.(v)];
    - a hit returns [place'.(v) = cplace.(rank.(v))].

    For a caller whose labelling matches the entry's creator (in
    particular {e every} tree parsed by [Codec.of_string], which numbers
    nodes in preorder) the two maps compose to the identity, so the
    cached placement is bit-identical to the uncached one. A hit from a
    differently-labelled tree of the same shape receives the creator's
    placement transported along the shape isomorphism: a valid embedding
    with identical dilation/load/congestion, though tie-breaks inside the
    pipeline may place individual nodes elsewhere than a from-scratch run
    would. Hits are verified against the stored canonical string, so a
    fingerprint collision can only cost a recomputation, never a wrong
    placement. *)

type 'meta t
(** A memo table whose entries carry a placement plus embedder-specific
    ['meta] (host topology, height, diagnostic counts …). *)

val create : ?shards:int -> ?capacity:int -> ?max_bytes:int -> unit -> 'meta t
(** Parameters as in {!Xt_prelude.Cache.create}; the byte estimate
    charged per entry is the canonical string plus the placement array. *)

val memo :
  'meta t ->
  prefix:string ->
  tree:Xt_bintree.Bintree.t ->
  compute:(unit -> int array * 'meta) ->
  int array * 'meta
(** [memo t ~prefix ~tree ~compute] returns [(place, meta)] for [tree],
    from the cache when possible. [prefix] must determine every
    behaviour-affecting parameter of the embedder (capacity, height,
    options …). The returned array is fresh; [meta] is shared between
    hits of one entry and must therefore be treated as immutable. *)

val length : 'meta t -> int
val clear : 'meta t -> unit

val stats : 'meta t -> Xt_prelude.Cache.stats
(** Per-instance hit/miss/eviction/occupancy totals. *)

val save : 'meta t -> encode_meta:('meta -> string) -> file:string -> int
(** Write a snapshot of every resident entry to [file] and return the
    entry count. The snapshot carries a versioned header and a 64-bit
    FNV-1a checksum per entry, and is written to a temporary file in the
    same directory then renamed into place, so readers never observe a
    half-written file. Entries are emitted least recently used first
    within each shard; loading in file order reproduces the recency
    order. [encode_meta] must round-trip with the [decode_meta] passed
    to {!load}. *)

val load : 'meta t -> decode_meta:(string -> 'meta option) -> file:string -> (int, string) result
(** Parse and verify the entire snapshot, then insert every entry into
    the memo; returns the entry count. Rejection is atomic: a missing
    file, bad magic, wrong version, truncation, checksum mismatch or
    undecodable metadata yields [Error] and leaves the memo untouched.
    Placements restored from a snapshot are byte-identical to the ones
    stored, so hits after a reload return exactly what the saving
    process would have returned. *)
