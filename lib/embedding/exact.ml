open Xt_topology
open Xt_bintree

(* All-pairs host distances, dense. *)
let distance_matrix host =
  Array.init (Graph.n host) (fun v -> Graph.bfs host v)

let tree_graph tree = Graph.of_edges ~n:(Bintree.n tree) (Bintree.edges tree)

(* Guest vertices in BFS order from vertex 0, with the BFS parent of each
   (so every vertex after the first has one earlier neighbour). Returns
   None if the guest is disconnected. *)
let bfs_order_graph guest =
  let n = Graph.n guest in
  let dist, parent = Graph.bfs_parents guest 0 in
  if Array.exists (fun d -> d < 0) dist then None
  else begin
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> compare (dist.(a), a) (dist.(b), b)) order;
    Some (order, parent)
  end

let try_dilation ~guest ~host ~dist ~order ~parent d =
  let n = Graph.n guest and m = Graph.n host in
  let place = Array.make n (-1) in
  let used = Array.make m false in
  let rec assign idx =
    if idx = n then true
    else begin
      let v = order.(idx) in
      let candidates =
        if idx = 0 then List.init m Fun.id
        else begin
          let pp = place.(parent.(v)) in
          let ball = ref [] in
          for w = m - 1 downto 0 do
            if dist.(pp).(w) >= 0 && dist.(pp).(w) <= d then ball := w :: !ball
          done;
          !ball
        end
      in
      List.exists
        (fun w ->
          if used.(w) then false
          else begin
            let ok = ref true in
            Graph.iter_neighbours guest v (fun u ->
                if place.(u) >= 0 && (dist.(w).(place.(u)) < 0 || dist.(w).(place.(u)) > d) then
                  ok := false);
            if not !ok then false
            else begin
              place.(v) <- w;
              used.(w) <- true;
              if assign (idx + 1) then true
              else begin
                place.(v) <- -1;
                used.(w) <- false;
                false
              end
            end
          end)
        candidates
    end
  in
  if assign 0 then Some (Array.copy place) else None

let optimal_embedding_graph ?max_dilation ~guest ~host () =
  let n = Graph.n guest and m = Graph.n host in
  if n > m || n = 0 then None
  else
    match bfs_order_graph guest with
    | None -> None
    | Some (order, parent) ->
        let dist = distance_matrix host in
        let bound =
          match max_dilation with
          | Some b -> b
          | None ->
              let diameter = Graph.diameter host in
              if diameter < 0 then Graph.n host else max diameter 1
        in
        let rec deepen d =
          if d > bound then None
          else
            match try_dilation ~guest ~host ~dist ~order ~parent d with
            | Some place -> Some (place, d)
            | None -> deepen (d + 1)
        in
        if n = 1 then Some ([| 0 |], 0) else deepen 1

let optimal_dilation_graph ?max_dilation ~guest ~host () =
  Option.map snd (optimal_embedding_graph ?max_dilation ~guest ~host ())

let optimal_embedding ?max_dilation ~guest ~host () =
  optimal_embedding_graph ?max_dilation ~guest:(tree_graph guest) ~host ()

let optimal_dilation ?max_dilation ~guest ~host () =
  Option.map snd (optimal_embedding ?max_dilation ~guest ~host ())

let brute_force_dilation_graph ~guest ~host =
  let n = Graph.n guest and m = Graph.n host in
  if n > m then None
  else begin
    let dist = distance_matrix host in
    let edges = ref [] in
    Graph.iter_edges guest (fun u v -> edges := (u, v) :: !edges);
    let edges = !edges in
    let best = ref None in
    let place = Array.make n (-1) in
    let used = Array.make m false in
    let rec go idx =
      if idx = n then begin
        let d =
          List.fold_left
            (fun acc (u, v) ->
              let duv = dist.(place.(u)).(place.(v)) in
              if duv < 0 then max_int else max acc duv)
            0 edges
        in
        match !best with
        | Some b when b <= d -> ()
        | _ -> if d < max_int then best := Some d
      end
      else
        for w = 0 to m - 1 do
          if not used.(w) then begin
            used.(w) <- true;
            place.(idx) <- w;
            go (idx + 1);
            used.(w) <- false;
            place.(idx) <- -1
          end
        done
    in
    go 0;
    !best
  end

let brute_force_dilation ~guest ~host = brute_force_dilation_graph ~guest:(tree_graph guest) ~host
