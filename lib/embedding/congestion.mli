(** Congestion-aware route assignment for the guest edges of an
    embedding.

    {!Embedding.congestion} routes every guest edge along a BFS-tree
    shortest path, which can pile many routes onto one host edge. This
    module instead assigns routes greedily — longest demands first, each
    along a path that avoids already-hot edges (Dijkstra with edge cost
    [(load+1)²], which preserves shortest paths on an idle network and
    spreads load under contention) — and reports the resulting maximum
    edge load. Routes may detour, but by at most 4 hops beyond their
    shortest path, so the congestion win has a bounded dilation cost;
    both numbers are returned. *)

type result = {
  congestion : int;       (** Max routes sharing one host edge. *)
  max_route_length : int; (** Longest assigned route (>= dilation). *)
  total_route_length : int;
}

val route : Embedding.t -> result
(** Deterministic: demands are processed longest-shortest-path first, ties
    by guest edge order. Edge loads live in a dense array indexed by
    {!Xt_topology.Graph.edge_index} and the Dijkstra scratch (distance,
    parent, heap) is reused across demands, so routing allocates no
    per-route tables. *)

val analyse : Xt_topology.Graph.t -> (int * int) list -> result
(** [analyse host pairs] routes an explicit demand list over a bare host
    graph with the same greedy scheme as {!route} (equal-endpoint pairs
    are dropped). Useful for benchmarking the router on synthetic
    workloads, e.g. all-pairs traffic on an X-tree. *)

val baseline : Embedding.t -> result
(** The same accounting for plain BFS-tree shortest-path routing, for
    comparison (its [congestion] equals {!Embedding.congestion}). *)
