open Xt_topology
open Xt_bintree

type t = { tree : Bintree.t; host : Graph.t; place : int array }

let make ~tree ~host ~place =
  if Array.length place <> Bintree.n tree then
    invalid_arg "Embedding.make: place size does not match guest size";
  Array.iter
    (fun v -> if v < 0 || v >= Graph.n host then invalid_arg "Embedding.make: place out of host range")
    place;
  { tree; host; place }

let guest_size e = Bintree.n e.tree
let host_size e = Graph.n e.host

(* Memoised per-source BFS distance oracle over the host. *)
let bfs_oracle host =
  let rows : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  fun u v ->
    let row =
      match Hashtbl.find_opt rows u with
      | Some row -> row
      | None ->
          let row = Graph.bfs host u in
          Hashtbl.replace rows u row;
          row
    in
    row.(v)

let edge_dilations ?dist e =
  let dist = match dist with Some d -> d | None -> bfs_oracle e.host in
  let edges = Bintree.edges e.tree in
  Array.of_list (List.map (fun (u, v) -> dist e.place.(u) e.place.(v)) edges)

let dilation ?dist e = Array.fold_left max 0 (edge_dilations ?dist e)

let average_dilation ?dist e =
  let ds = edge_dilations ?dist e in
  if Array.length ds = 0 then 0.
  else float_of_int (Array.fold_left ( + ) 0 ds) /. float_of_int (Array.length ds)

let loads e =
  let l = Array.make (Graph.n e.host) 0 in
  Array.iter (fun v -> l.(v) <- l.(v) + 1) e.place;
  l

let load e = Array.fold_left max 0 (loads e)

let expansion e = float_of_int (host_size e) /. float_of_int (guest_size e)

let is_injective e = load e <= 1

let congestion e =
  (* Route every guest edge along the BFS tree of its source's image;
     count per-host-edge usage. *)
  let parents : (int, int array) Hashtbl.t = Hashtbl.create 64 in
  let parent_row s =
    match Hashtbl.find_opt parents s with
    | Some p -> p
    | None ->
        let _, p = Graph.bfs_parents e.host s in
        Hashtbl.replace parents s p;
        p
  in
  let usage : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let bump a b =
    let key = (min a b, max a b) in
    Hashtbl.replace usage key (1 + Option.value ~default:0 (Hashtbl.find_opt usage key))
  in
  List.iter
    (fun (u, v) ->
      let s = e.place.(u) and t = e.place.(v) in
      if s <> t then begin
        let p = parent_row s in
        let rec walk w = if w <> s then begin
            bump w p.(w);
            walk p.(w)
          end
        in
        walk t
      end)
    (Bintree.edges e.tree);
  Hashtbl.fold (fun _ c acc -> max c acc) usage 0

type report = {
  dilation : int;
  average_dilation : float;
  load : int;
  expansion : float;
  congestion : int;
  injective : bool;
}

let report ?dist e =
  let ds = edge_dilations ?dist e in
  let dilation = Array.fold_left max 0 ds in
  let average_dilation =
    if Array.length ds = 0 then 0.
    else float_of_int (Array.fold_left ( + ) 0 ds) /. float_of_int (Array.length ds)
  in
  {
    dilation;
    average_dilation;
    load = load e;
    expansion = expansion e;
    congestion = congestion e;
    injective = is_injective e;
  }

let pp_report fmt r =
  Format.fprintf fmt "dilation=%d avg=%.2f load=%d expansion=%.3f congestion=%d%s" r.dilation
    r.average_dilation r.load r.expansion r.congestion
    (if r.injective then " injective" else "")

let verify ?dist ?max_dilation ?max_load e =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let d = dilation ?dist e in
  let l = load e in
  match (max_dilation, max_load) with
  | Some bound, _ when d > bound -> fail "dilation %d exceeds bound %d" d bound
  | _, Some bound when l > bound -> fail "load %d exceeds bound %d" l bound
  | _ -> Ok ()
