open Xt_topology

let graph ?(name = "g") ?label g =
  let label = match label with Some f -> f | None -> string_of_int in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label v))
  done;
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -- n%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let xtree xt =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph xtree {\n  node [shape=circle];\n  rankdir=TB;\n";
  for v = 0 to Xtree.order xt - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (Xtree.to_string v))
  done;
  (* one rank per level *)
  for l = 0 to Xtree.height xt do
    Buffer.add_string buf "  { rank=same;";
    List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " n%d;" v)) (Xtree.vertices_at_level xt l);
    Buffer.add_string buf " }\n"
  done;
  Graph.iter_edges (Xtree.graph xt) (fun u v ->
      let style = if Xtree.level u = Xtree.level v then " [style=dotted]" else "" in
      Buffer.add_string buf (Printf.sprintf "  n%d -- n%d%s;\n" u v style));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let embedding ?(max_guests_shown = 6) xt (e : Embedding.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph embedding {\n  node [shape=box];\n";
  (* group guests per host vertex *)
  let guests = Array.make (Graph.n e.host) [] in
  Array.iteri (fun v p -> guests.(p) <- v :: guests.(p)) e.place;
  for v = 0 to Graph.n e.host - 1 do
    let gs = List.rev guests.(v) in
    let shown = List.filteri (fun i _ -> i < max_guests_shown) gs in
    let suffix = if List.length gs > max_guests_shown then ",..." else "" in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\n{%s%s}\"];\n" v (Xtree.to_string v)
         (String.concat "," (List.map string_of_int shown))
         suffix)
  done;
  for l = 0 to Xtree.height xt do
    Buffer.add_string buf "  { rank=same;";
    List.iter (fun v -> Buffer.add_string buf (Printf.sprintf " n%d;" v)) (Xtree.vertices_at_level xt l);
    Buffer.add_string buf " }\n"
  done;
  Graph.iter_edges e.host (fun u v ->
      let style = if Xtree.level u = Xtree.level v then " [style=dotted]" else "" in
      Buffer.add_string buf (Printf.sprintf "  n%d -- n%d%s;\n" u v style));
  (* guest edges across host vertices, weighted by multiplicity *)
  let cross : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      let a = e.place.(u) and b = e.place.(v) in
      if a <> b then begin
        let key = (min a b, max a b) in
        Hashtbl.replace cross key (1 + Option.value ~default:0 (Hashtbl.find_opt cross key))
      end)
    (Xt_bintree.Bintree.edges e.tree);
  Hashtbl.iter
    (fun (a, b) count ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -- n%d [style=dashed color=red label=\"%d\"];\n" a b count))
    cross;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
