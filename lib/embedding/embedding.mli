(** Embeddings of a guest binary tree into a host graph, and their quality
    measures as defined in the paper:

    - {e dilation}: maximum host distance between the images of adjacent
      guest nodes — the number of clock cycles needed to simulate one guest
      communication step;
    - {e load factor}: maximum number of guest nodes mapped to one host
      vertex;
    - {e expansion}: host size divided by guest size;
    - {e congestion} (not in the paper, standard in the literature): when
      every guest edge is routed along one shortest host path, the maximum
      number of routes sharing a host edge. *)

type t = private {
  tree : Xt_bintree.Bintree.t;
  host : Xt_topology.Graph.t;
  place : int array; (** [place.(v)] is the host vertex of guest node [v]. *)
}

val make : tree:Xt_bintree.Bintree.t -> host:Xt_topology.Graph.t -> place:int array -> t
(** Validates that [place] has one in-range host vertex per guest node.
    Raises [Invalid_argument] otherwise. *)

val guest_size : t -> int
val host_size : t -> int

(** {1 Metrics}

    The optional [dist] argument supplies an O(1) host metric (for
    hypercubes, X-trees with memoised rows, …); by default distances come
    from per-source BFS, memoised across the call. *)

val edge_dilations : ?dist:(int -> int -> int) -> t -> int array
(** Host distance of every guest edge, in [Bintree.edges] order. *)

val dilation : ?dist:(int -> int -> int) -> t -> int
(** Maximum over {!edge_dilations}; 0 for a single-node guest. *)

val average_dilation : ?dist:(int -> int -> int) -> t -> float

val loads : t -> int array
(** Per-host-vertex multiplicities. *)

val load : t -> int

val expansion : t -> float

val is_injective : t -> bool

val congestion : t -> int
(** Shortest-path routing congestion (BFS-tree routes, deterministic). *)

type report = {
  dilation : int;
  average_dilation : float;
  load : int;
  expansion : float;
  congestion : int;
  injective : bool;
}

val report : ?dist:(int -> int -> int) -> t -> report

val pp_report : Format.formatter -> report -> unit

val verify :
  ?dist:(int -> int -> int) ->
  ?max_dilation:int ->
  ?max_load:int ->
  t ->
  (unit, string) result
(** Checks the stated bounds and that every guest node is placed; returns a
    human-readable reason on failure. *)
