open Xt_topology
open Xt_bintree
open Xt_embedding

(* The workload protocols are written once, against the minimal
   simulator interface below, and instantiated twice: over [Sim] (the
   active-set core everyone uses) and — in the equivalence tests and the
   bench speedup record — over [Sim_ref], the retained sweep core. *)

module type CORE = sig
  type t

  val create : ?link_capacity:int -> ?service_rate:int -> ?shards:int -> Graph.t -> t
  val send : t -> src:int -> dst:int -> tag:int -> unit
  val run : t -> on_deliver:(tag:int -> t -> unit) -> int
end

module Make (C : CORE) = struct
  type spec = {
    name : string;
    run : C.t -> place:int array -> tree:Bintree.t -> int;
  }

  (* Tags identify the receiving guest node; per-workload bookkeeping maps a
     delivery back to protocol state. *)

  let reduction =
    let run sim ~place ~tree =
      let pending = Array.make (Bintree.n tree) 0 in
      for v = 0 to Bintree.n tree - 1 do
        pending.(v) <- List.length (Bintree.children tree v)
      done;
      let send_up v sim =
        match Bintree.parent tree v with
        | Some p -> C.send sim ~src:place.(v) ~dst:place.(p) ~tag:p
        | None -> ()
      in
      for v = 0 to Bintree.n tree - 1 do
        if Bintree.is_leaf tree v then send_up v sim
      done;
      let on_deliver ~tag sim =
        pending.(tag) <- pending.(tag) - 1;
        if pending.(tag) = 0 then send_up tag sim
      in
      C.run sim ~on_deliver
    in
    { name = "reduction"; run }

  let broadcast =
    let run sim ~place ~tree =
      let send_down v sim =
        List.iter (fun c -> C.send sim ~src:place.(v) ~dst:place.(c) ~tag:c) (Bintree.children tree v)
      in
      send_down (Bintree.root tree) sim;
      C.run sim ~on_deliver:(fun ~tag sim -> send_down tag sim)
    in
    { name = "broadcast"; run }

  let all_reduce =
    let run sim ~place ~tree =
      let pending = Array.make (Bintree.n tree) 0 in
      for v = 0 to Bintree.n tree - 1 do
        pending.(v) <- List.length (Bintree.children tree v)
      done;
      let send_down v sim =
        List.iter
          (fun c -> C.send sim ~src:place.(v) ~dst:place.(c) ~tag:c)
          (Bintree.children tree v)
      in
      let send_up v sim =
        match Bintree.parent tree v with
        | Some p -> C.send sim ~src:place.(v) ~dst:place.(p) ~tag:p
        | None -> send_down v sim (* root turns the wave around *)
      in
      for v = 0 to Bintree.n tree - 1 do
        if Bintree.is_leaf tree v then send_up v sim
      done;
      let on_deliver ~tag sim =
        if pending.(tag) > 0 then begin
          (* still combining upwards *)
          pending.(tag) <- pending.(tag) - 1;
          if pending.(tag) = 0 then send_up tag sim
        end
        else send_down tag sim (* broadcast phase *)
      in
      C.run sim ~on_deliver
    in
    { name = "all-reduce"; run }

  let pingpong_sweep =
    let run sim ~place ~tree =
      let edges = Array.of_list (Bintree.edges tree) in
      let idx = ref 0 in
      let launch sim =
        if !idx < Array.length edges then begin
          let u, v = edges.(!idx) in
          incr idx;
          (* request tagged with the responder, reply handled on delivery *)
          C.send sim ~src:place.(u) ~dst:place.(v) ~tag:(Bintree.n tree + v)
        end
      in
      let on_deliver ~tag sim =
        if tag >= Bintree.n tree then begin
          (* request arrived: reply to the requester = parent of responder *)
          let v = tag - Bintree.n tree in
          match Bintree.parent tree v with
          | Some u -> C.send sim ~src:place.(v) ~dst:place.(u) ~tag:u
          | None -> launch sim
        end
        else launch sim (* reply arrived: next edge *)
      in
      launch sim;
      C.run sim ~on_deliver
    in
    { name = "pingpong-sweep"; run }

  let permutation =
    (* every guest node fires one message to its antipode in id space: a
       fixed derangement, dense all-to-all-ish traffic that is NOT aligned
       with the tree structure — a congestion stress test *)
    let run sim ~place ~tree =
      let n = Bintree.n tree in
      if n > 1 then
        for v = 0 to n - 1 do
          let w = (v + (n / 2)) mod n in
          if w <> v then C.send sim ~src:place.(v) ~dst:place.(w) ~tag:w
        done;
      C.run sim ~on_deliver:(fun ~tag:_ _ -> ())
    in
    { name = "permutation"; run }

  let workloads = [ reduction; broadcast; all_reduce; pingpong_sweep; permutation ]
  let guest_graph tree = Graph.of_edges ~n:(Bintree.n tree) (Bintree.edges tree)

  let run_native ?link_capacity ?service_rate ?shards spec tree =
    let sim = C.create ?link_capacity ?service_rate ?shards (guest_graph tree) in
    let place = Array.init (Bintree.n tree) Fun.id in
    spec.run sim ~place ~tree

  let run_embedded ?link_capacity ?service_rate ?shards spec (e : Embedding.t) =
    let sim = C.create ?link_capacity ?service_rate ?shards e.host in
    spec.run sim ~place:e.place ~tree:e.tree

  let run_on ?link_capacity ?service_rate ?shards spec (e : Embedding.t) =
    let sim = C.create ?link_capacity ?service_rate ?shards e.host in
    let cycles = spec.run sim ~place:e.place ~tree:e.tree in
    (sim, cycles)

  let slowdown spec e =
    let native = run_native spec e.Embedding.tree in
    let embedded = run_embedded spec e in
    if native = 0 then 1.0 else float_of_int embedded /. float_of_int native
end

include Make (Sim)

(* ------------------------------------------------------------------ *)
(* Suite replay                                                        *)
(* ------------------------------------------------------------------ *)

type case = {
  label : string;
  workload : spec;
  tree : Bintree.t;
  embedding : Embedding.t option;
}

type outcome = {
  case : case;
  cycles : int;
  delivered : int;
  hops : int;
  max_queue : int;
  max_inbox : int;
  seconds : float;
}

let native_case ?label workload tree =
  let label = match label with Some l -> l | None -> workload.name ^ "/native" in
  { label; workload; tree; embedding = None }

let embedded_case ?label workload (e : Embedding.t) =
  let label = match label with Some l -> l | None -> workload.name ^ "/embedded" in
  { label; workload; tree = e.tree; embedding = Some e }

let run_case ?link_capacity ?service_rate ?shards case =
  Xt_obs.Obs.span "netsim.case" @@ fun () ->
  let sim, place =
    match case.embedding with
    | None ->
        ( Sim.create ?link_capacity ?service_rate ?shards (guest_graph case.tree),
          Array.init (Bintree.n case.tree) Fun.id )
    | Some e -> (Sim.create ?link_capacity ?service_rate ?shards e.host, e.place)
  in
  let t0 = Xt_obs.Obs.now_ns () in
  let cycles = case.workload.run sim ~place ~tree:case.tree in
  let t1 = Xt_obs.Obs.now_ns () in
  let hops = Array.fold_left ( + ) 0 (Sim.link_loads sim) in
  {
    case;
    cycles;
    delivered = Sim.delivered sim;
    hops;
    max_queue = Sim.max_link_queue sim;
    max_inbox = Sim.max_inbox_queue sim;
    seconds = float_of_int (t1 - t0) *. 1e-9;
  }

let run_suite ?link_capacity ?service_rate ?shards ?domains cases =
  Xt_prelude.Parallel.map ?domains (run_case ?link_capacity ?service_rate ?shards) cases
