open Xt_topology
open Xt_bintree
open Xt_embedding

type spec = {
  name : string;
  run : Sim.t -> place:int array -> tree:Bintree.t -> int;
}

(* Tags identify the receiving guest node; per-workload bookkeeping maps a
   delivery back to protocol state. *)

let reduction =
  let run sim ~place ~tree =
    let pending = Array.make (Bintree.n tree) 0 in
    for v = 0 to Bintree.n tree - 1 do
      pending.(v) <- List.length (Bintree.children tree v)
    done;
    let send_up v sim =
      match Bintree.parent tree v with
      | Some p -> Sim.send sim ~src:place.(v) ~dst:place.(p) ~tag:p
      | None -> ()
    in
    for v = 0 to Bintree.n tree - 1 do
      if Bintree.is_leaf tree v then send_up v sim
    done;
    let on_deliver ~tag sim =
      pending.(tag) <- pending.(tag) - 1;
      if pending.(tag) = 0 then send_up tag sim
    in
    Sim.run sim ~on_deliver
  in
  { name = "reduction"; run }

let broadcast =
  let run sim ~place ~tree =
    let send_down v sim =
      List.iter (fun c -> Sim.send sim ~src:place.(v) ~dst:place.(c) ~tag:c) (Bintree.children tree v)
    in
    send_down (Bintree.root tree) sim;
    Sim.run sim ~on_deliver:(fun ~tag sim -> send_down tag sim)
  in
  { name = "broadcast"; run }

let all_reduce =
  let run sim ~place ~tree =
    let pending = Array.make (Bintree.n tree) 0 in
    for v = 0 to Bintree.n tree - 1 do
      pending.(v) <- List.length (Bintree.children tree v)
    done;
    let send_down v sim =
      List.iter
        (fun c -> Sim.send sim ~src:place.(v) ~dst:place.(c) ~tag:c)
        (Bintree.children tree v)
    in
    let send_up v sim =
      match Bintree.parent tree v with
      | Some p -> Sim.send sim ~src:place.(v) ~dst:place.(p) ~tag:p
      | None -> send_down v sim (* root turns the wave around *)
    in
    for v = 0 to Bintree.n tree - 1 do
      if Bintree.is_leaf tree v then send_up v sim
    done;
    let on_deliver ~tag sim =
      if pending.(tag) > 0 then begin
        (* still combining upwards *)
        pending.(tag) <- pending.(tag) - 1;
        if pending.(tag) = 0 then send_up tag sim
      end
      else send_down tag sim (* broadcast phase *)
    in
    Sim.run sim ~on_deliver
  in
  { name = "all-reduce"; run }

let pingpong_sweep =
  let run sim ~place ~tree =
    let edges = Array.of_list (Bintree.edges tree) in
    let idx = ref 0 in
    let launch sim =
      if !idx < Array.length edges then begin
        let u, v = edges.(!idx) in
        incr idx;
        (* request tagged with the responder, reply handled on delivery *)
        Sim.send sim ~src:place.(u) ~dst:place.(v) ~tag:(Bintree.n tree + v)
      end
    in
    let on_deliver ~tag sim =
      if tag >= Bintree.n tree then begin
        (* request arrived: reply to the requester = parent of responder *)
        let v = tag - Bintree.n tree in
        match Bintree.parent tree v with
        | Some u -> Sim.send sim ~src:place.(v) ~dst:place.(u) ~tag:u
        | None -> launch sim
      end
      else launch sim (* reply arrived: next edge *)
    in
    launch sim;
    Sim.run sim ~on_deliver
  in
  { name = "pingpong-sweep"; run }

let permutation =
  (* every guest node fires one message to its antipode in id space: a
     fixed derangement, dense all-to-all-ish traffic that is NOT aligned
     with the tree structure — a congestion stress test *)
  let run sim ~place ~tree =
    let n = Bintree.n tree in
    if n > 1 then
      for v = 0 to n - 1 do
        let w = (v + (n / 2)) mod n in
        if w <> v then Sim.send sim ~src:place.(v) ~dst:place.(w) ~tag:w
      done;
    Sim.run sim ~on_deliver:(fun ~tag:_ _ -> ())
  in
  { name = "permutation"; run }

let workloads = [ reduction; broadcast; all_reduce; pingpong_sweep; permutation ]

let guest_graph tree = Graph.of_edges ~n:(Bintree.n tree) (Bintree.edges tree)

let run_native ?link_capacity ?service_rate spec tree =
  let sim = Sim.create ?link_capacity ?service_rate (guest_graph tree) in
  let place = Array.init (Bintree.n tree) Fun.id in
  spec.run sim ~place ~tree

let run_embedded ?link_capacity ?service_rate spec (e : Embedding.t) =
  let sim = Sim.create ?link_capacity ?service_rate e.host in
  spec.run sim ~place:e.place ~tree:e.tree

let run_on ?link_capacity ?service_rate spec (e : Embedding.t) =
  let sim = Sim.create ?link_capacity ?service_rate e.host in
  let cycles = spec.run sim ~place:e.place ~tree:e.tree in
  (sim, cycles)

let slowdown spec e =
  let native = run_native spec e.Embedding.tree in
  let embedded = run_embedded spec e in
  if native = 0 then 1.0 else float_of_int embedded /. float_of_int native
