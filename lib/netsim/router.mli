(** Shortest-path next-hop routing over a host graph.

    Routes follow the BFS tree of each destination, so every message takes
    a true shortest path and routing is deterministic. Next-hop rows are
    computed lazily per destination and memoised. *)

type t

val create : Xt_topology.Graph.t -> t

val next_hop : t -> current:int -> dst:int -> int
(** The neighbour to forward to. Raises [Invalid_argument] if
    [current = dst] or the destination is unreachable. *)

val path_length : t -> src:int -> dst:int -> int
(** Hop count of the route ([-1] if unreachable). *)
