(** Shortest-path next-hop routing over a host graph.

    Routes follow the BFS tree of each destination, so every message takes
    a true shortest path and routing is deterministic. On general hosts
    next-hop rows are computed lazily per destination and memoised in
    dense arrays; on tree hosts (where the shortest path is unique, so
    the next hop is forced) a single binary-lifting ancestor table
    replaces the per-destination rows, keeping memory O(n log n) instead
    of O(n^2) for large native guests. Either way {!next_hop} is
    allocation-free after warm-up — the simulator calls it once per
    message hop. *)

type t

val create : ?dense:bool -> Xt_topology.Graph.t -> t
(** [~dense:true] (default false) forces the dense per-destination rows
    even on a tree host — the two modes provably agree on trees (the
    unique path is the BFS path; a qcheck suite pins it), so this only
    trades memory for the table-free lifting walk. Used by the
    equivalence tests and as the escape hatch for hosts about to lose
    tree-ness (fault injection). *)

val warm : t -> unit
(** Precompute every lazy next-hop row (fanned over the domain pool;
    no-op in tree mode). After [warm] the router is never mutated, so it
    can be shared read-only across the domains of a sharded
    simulation. *)

val next_hop : t -> current:int -> dst:int -> int
(** The neighbour to forward to. Raises [Invalid_argument] if
    [current = dst] or the destination is unreachable. *)

val path_length : t -> src:int -> dst:int -> int
(** Hop count of the route ([-1] if unreachable). *)
