open Xt_topology

(* The retained reference simulator: the original sweep-based core,
   kept verbatim (minus telemetry) as the semantic oracle for the
   active-set rewrite in [Sim]. Every cycle it scans ALL 2m directed
   links and ALL n inboxes — O(cycles x topology) — which is exactly
   the cost profile the rewrite removes; the qcheck equivalence suite
   ([test_netsim_ref.ml]) and the bench speedup record both run
   workloads through this module. Do not optimise it. *)

type message = { dst : int; tag : int; sent : int (* injection cycle *) }

let link_index g ~at ~hop = (2 * Graph.edge_index g at hop) + if at < hop then 0 else 1

type t = {
  graph : Graph.t;
  router : Router.t;
  link_capacity : int;
  service_rate : int;
  queues : message Queue.t array; (* FIFO per directed link *)
  link_dst : int array;           (* directed link -> its receiving endpoint *)
  link_load : int array;          (* messages that traversed each directed link *)
  inbox : message Queue.t array;  (* arrived messages awaiting CPU service *)
  mutable cycle : int;
  mutable in_flight : int;
  mutable delivered : int;
  mutable high_water : int;
  mutable inbox_high_water : int;
  mutable latencies : int array;  (* first [nlat] entries, delivery order *)
  mutable nlat : int;
}

(* [shards] is accepted so this module keeps satisfying [Workload.CORE]
   next to the sharded [Sim], and ignored: the sweep is the sequential
   specification, whatever the caller's shard setting. *)
let create ?(link_capacity = 1) ?(service_rate = max_int) ?shards:(_ = 1) graph =
  if link_capacity <= 0 then invalid_arg "Sim_ref.create: link capacity";
  if service_rate <= 0 then invalid_arg "Sim_ref.create: service rate";
  let m = Graph.m graph in
  let link_dst = Array.make (2 * m) (-1) in
  Graph.iter_edges graph (fun u v ->
      let eid = Graph.edge_index graph u v in
      link_dst.(2 * eid) <- max u v;
      link_dst.((2 * eid) + 1) <- min u v);
  {
    graph;
    router = Router.create graph;
    link_capacity;
    service_rate;
    queues = Array.init (2 * m) (fun _ -> Queue.create ());
    link_dst;
    link_load = Array.make (2 * m) 0;
    inbox = Array.init (Graph.n graph) (fun _ -> Queue.create ());
    cycle = 0;
    in_flight = 0;
    delivered = 0;
    high_water = 0;
    inbox_high_water = 0;
    latencies = [||];
    nlat = 0;
  }

let add_inbox t ~at msg =
  Queue.add msg t.inbox.(at);
  if Queue.length t.inbox.(at) > t.inbox_high_water then
    t.inbox_high_water <- Queue.length t.inbox.(at)

let enqueue t ~at msg =
  if at = msg.dst then add_inbox t ~at msg
  else begin
    let hop = Router.next_hop t.router ~current:at ~dst:msg.dst in
    let q = t.queues.(link_index t.graph ~at ~hop) in
    Queue.add msg q;
    if Queue.length q > t.high_water then t.high_water <- Queue.length q
  end

let send t ~src ~dst ~tag =
  if src < 0 || src >= Graph.n t.graph || dst < 0 || dst >= Graph.n t.graph then
    invalid_arg "Sim_ref.send: vertex out of range";
  t.in_flight <- t.in_flight + 1;
  enqueue t ~at:src { dst; tag; sent = t.cycle }

let record_latency t v =
  let cap = Array.length t.latencies in
  if t.nlat = cap then begin
    let a = Array.make (max 64 (2 * cap)) 0 in
    Array.blit t.latencies 0 a 0 cap;
    t.latencies <- a
  end;
  t.latencies.(t.nlat) <- v;
  t.nlat <- t.nlat + 1

let run t ~on_deliver =
  let start = t.cycle in
  while t.in_flight > 0 do
    t.cycle <- t.cycle + 1;
    (* 1. links: advance one batch per directed link (in link-index
       order); arrivals join the destination's inbox and may still be
       served this cycle *)
    let moved = ref [] in
    Array.iteri
      (fun idx q ->
        for _ = 1 to min t.link_capacity (Queue.length q) do
          t.link_load.(idx) <- t.link_load.(idx) + 1;
          moved := (t.link_dst.(idx), Queue.pop q) :: !moved
        done)
      t.queues;
    List.iter
      (fun (at, msg) ->
        if msg.dst = at then add_inbox t ~at msg else enqueue t ~at msg)
      (List.rev !moved);
    (* 2. CPU service: each vertex completes up to service_rate messages;
       completions may inject new traffic (carried next cycle) *)
    let served = ref [] in
    Array.iter
      (fun q ->
        for _ = 1 to min t.service_rate (Queue.length q) do
          served := Queue.pop q :: !served
        done)
      t.inbox;
    List.iter
      (fun msg ->
        t.in_flight <- t.in_flight - 1;
        t.delivered <- t.delivered + 1;
        record_latency t (t.cycle - msg.sent);
        on_deliver ~tag:msg.tag t)
      !served
  done;
  t.cycle - start

let delivered t = t.delivered
let max_link_queue t = t.high_water
let max_inbox_queue t = t.inbox_high_water
let link_loads t = Array.copy t.link_load
let latencies t = Array.sub t.latencies 0 t.nlat
