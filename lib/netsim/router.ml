open Xt_topology

(* Two routing modes, picked once at [create]:

   - Tree hosts (m = n-1, connected — in particular every native
     guest-tree run): shortest paths are unique, so the next hop is
     forced. One BFS gives parent and depth; a binary-lifting ancestor
     table gives the descend step. O(n log n) memory total, O(log n)
     per hop, no per-destination state — the dense rows below would
     cost O(n^2) memory on large native guests (tens of GB at n = 32k
     in the D2 sweep).

   - General hosts (X-trees, hypercubes, ...): next-hop rows are
     memoised in dense per-destination arrays (a shared zero-length
     sentinel marks the rows not yet computed), so the hot path is two
     array loads and a comparison: no hashing, no option allocation.
     Hosts are small (2^{r+1}-1 vertices), so the rows stay cheap.

   Both modes follow BFS-tree routes, so on a tree they agree exactly
   (the unique path *is* the BFS path) and routing stays deterministic.
   Neither mode allocates after warm-up — the lifting walks below are
   recursive functions over int arrays, not refs, so the simulator's
   Gc.minor_words guards hold in both modes. *)

type t = {
  graph : Graph.t;
  dist_rows : int array array;   (* dense: dst -> distance row *)
  parent_rows : int array array; (* dense: dst -> BFS parent towards dst *)
  tree : bool;
  parent : int array;            (* tree: parent.(root) = root *)
  depth : int array;
  up : int array array;          (* tree: up.(k).(v) = 2^k-th ancestor *)
  levels : int;
}

let absent : int array = [||]

let no_rows : int array array = [||]

let create ?(dense = false) graph =
  let n = Graph.n graph in
  if (not dense) && n > 0 && Graph.m graph = n - 1 && Graph.is_connected graph then begin
    let dist, parent = Graph.bfs_parents graph 0 in
    let max_depth = Array.fold_left (fun a d -> if d > a then d else a) 0 dist in
    let levels =
      let rec bits k = if 1 lsl k > max_depth then k else bits (k + 1) in
      max 1 (bits 0)
    in
    let up = Array.make levels parent in
    for k = 1 to levels - 1 do
      let prev = up.(k - 1) in
      let row = Array.make n 0 in
      for v = 0 to n - 1 do
        row.(v) <- prev.(prev.(v))
      done;
      up.(k) <- row
    done;
    {
      graph;
      dist_rows = no_rows;
      parent_rows = no_rows;
      tree = true;
      parent;
      depth = dist;
      up;
      levels;
    }
  end
  else
    {
      graph;
      dist_rows = Array.make n absent;
      parent_rows = Array.make n absent;
      tree = false;
      parent = absent;
      depth = absent;
      up = no_rows;
      levels = 0;
    }

(* [lift t v d] is the [d]-th ancestor of [v] (tree mode). The helpers
   are top-level (not closures over [t]) so the hot path allocates
   nothing — see the B9 note in EXPERIMENTS.md for the same trap. *)
let rec lift_go t v d k =
  if d = 0 then v
  else if d land (1 lsl k) <> 0 then
    lift_go t t.up.(k).(v) (d lxor (1 lsl k)) (k - 1)
  else lift_go t v d (k - 1)

let lift t v d = lift_go t v d (t.levels - 1)

let rec lca_go t u v k =
  if k < 0 then t.parent.(u)
  else if t.up.(k).(u) <> t.up.(k).(v) then
    lca_go t t.up.(k).(u) t.up.(k).(v) (k - 1)
  else lca_go t u v (k - 1)

(* requires depth u >= depth v *)
let lca_deep t u v =
  let u = lift t u (t.depth.(u) - t.depth.(v)) in
  if u = v then u else lca_go t u v (t.levels - 1)

let lca t u v =
  if t.depth.(u) >= t.depth.(v) then lca_deep t u v else lca_deep t v u

let build t dst =
  let dist, parent = Graph.bfs_parents t.graph dst in
  t.dist_rows.(dst) <- dist;
  t.parent_rows.(dst) <- parent

(* Prebuild every dense row so [next_hop] never mutates the router
   afterwards — required before sharing one router across the lanes of a
   sharded simulation (lazy building from two domains would race on the
   row slots). Each destination's rows are independent (distinct array
   slots, deterministic BFS content), so the fill itself fans out over
   the domain pool. Tree-mode routers are immutable after [create]
   already; warming one is a no-op. *)
let warm t =
  if not t.tree then
    Xt_prelude.Parallel.parallel_for (Graph.n t.graph) (fun dst ->
        if t.parent_rows.(dst) == absent then build t dst)

let next_hop t ~current ~dst =
  if current = dst then invalid_arg "Router.next_hop: already there";
  if t.tree then begin
    (* Descend iff [current] is a proper ancestor of [dst]: the
       ancestor of [dst] one level below [current] is then the forced
       child. Otherwise the unique path climbs towards the LCA. *)
    let d = t.depth.(dst) - t.depth.(current) - 1 in
    if d >= 0 then begin
      let c = lift t dst d in
      if t.parent.(c) = current then c else t.parent.(current)
    end
    else t.parent.(current)
  end
  else begin
    if t.parent_rows.(dst) == absent then build t dst;
    let hop = t.parent_rows.(dst).(current) in
    if hop < 0 then invalid_arg "Router.next_hop: unreachable";
    hop
  end

let path_length t ~src ~dst =
  if t.tree then t.depth.(src) + t.depth.(dst) - (2 * t.depth.(lca t src dst))
  else begin
    if t.dist_rows.(dst) == absent then build t dst;
    t.dist_rows.(dst).(src)
  end
