open Xt_topology

type t = {
  graph : Graph.t;
  rows : (int, int array * int array) Hashtbl.t; (* dst -> (dist, parent towards dst) *)
}

let create graph = { graph; rows = Hashtbl.create 64 }

let row t dst =
  match Hashtbl.find_opt t.rows dst with
  | Some r -> r
  | None ->
      let r = Graph.bfs_parents t.graph dst in
      Hashtbl.replace t.rows dst r;
      r

let next_hop t ~current ~dst =
  if current = dst then invalid_arg "Router.next_hop: already there";
  let _, parent = row t dst in
  if parent.(current) < 0 then invalid_arg "Router.next_hop: unreachable";
  parent.(current)

let path_length t ~src ~dst =
  let dist, _ = row t dst in
  dist.(src)
