open Xt_obs
open Xt_topology
module Parallel = Xt_prelude.Parallel

let c_sent = Obs.counter "netsim.sent"
let c_delivered = Obs.counter "netsim.delivered"
let c_hops = Obs.counter "netsim.hops"
let c_boundary = Obs.counter "netsim.shard.boundary_msgs"
let h_latency = Obs.histogram "netsim.latency_cycles"
let h_barrier_wait = Obs.histogram "netsim.shard.barrier_wait_ns"

(* Directed-link index: the undirected edge id from [Graph.edge_index]
   doubled, plus the direction bit (0 = towards the higher-numbered
   endpoint). Dense, so per-send queue lookup is a binary search in the
   sender's adjacency instead of a hash, and per-link series (loads,
   utilisation) are plain array sweeps. *)
let link_index g ~at ~hop = (2 * Graph.edge_index g at hop) + if at < hop then 0 else 1

(* The core is event-driven: instead of sweeping all 2m directed links
   and all n inboxes every cycle (the retained [Sim_ref] does exactly
   that), we keep dense worklists — "active sets" — of only the links
   and inboxes that currently hold messages, re-sorted into index order
   at the top of each cycle so the drain order, and therefore every
   observable (cycle counts, delivery order, link loads, high-water
   marks), is bit-identical to the sweep semantics. Messages live in
   flat arenas of parallel int arrays recycled through free lists, and
   each link/inbox FIFO is a growable power-of-two ring of message ids,
   so the steady-state loop moves only integers and allocates nothing
   (guarded by a [Gc.minor_words] test). When exactly one message is in
   flight on a link — the latency-bound regime, e.g. [pingpong_sweep] —
   [run] skips the idle cycles entirely and fast-forwards the message
   along its whole remaining route in one jump.

   Sharding. The host's vertices are partitioned into [nshards]
   contiguous shards (on an X-tree host the partition follows the
   recursive cut: each level's index range is split into equal wedges,
   so a shard owns a sub-X-tree-shaped slab and cross-shard edges are
   confined to the wedge boundaries; any other host falls back to equal
   contiguous id ranges). A directed link is owned by the shard of its
   RECEIVING endpoint, so the link drain — the pop side — touches only
   owner state. That choice is what makes the parallel schedule
   deterministic without any cross-shard ordering protocol: every
   message pushed into ring (at -> hop) during a cycle was popped this
   cycle at vertex [at], and all of [at]'s incoming links belong to
   shard(at) — so each ring receives pushes from exactly ONE shard per
   cycle, in that shard's drain order, which is the sequential
   link-index order restricted to its links. Cross-shard forwards
   (shard(at) <> shard(hop)) are staged in per-target outboxes as
   (link, dst, tag, sent) quads and applied by the TARGET shard after a
   barrier, in source-shard-then-FIFO order — again the sequential
   order, because a given ring only ever has one source shard.

   A stepped cycle is three barrier-separated phases on the
   [Xt_prelude.Parallel] pool (one lane per shard):

     1. links    — pop up to capacity per owned link in index order,
                   re-enqueue locally or stage boundary quads;
     2. boundary — adopt quads addressed to us (alloc in our arena,
                   push into our rings);
     3. service  — pop up to service_rate per owned inbox in vertex
                   order into the per-shard served batch.

   Phase bodies write only shard-owned state (rings, arenas, active
   sets are owned; [link_load] and ring slots are indexed by owned
   link), so the barriers are the only synchronisation needed. Delivery
   callbacks are user code and run on the calling domain only: after
   phase 3 the per-shard served batches are merged by walking each
   backwards and always taking the highest vertex — exactly the
   descending-vertex, reverse-pop order the sequential core produces.
   Results are therefore bit-identical at every shard count, which the
   equivalence suite checks against [Sim_ref] at shards {1,2,4}.

   The 1-shard path never touches outboxes or the pool — it IS the
   frozen PR 5 sequential core, and keeps its allocation-free
   steady-state guarantee. *)

type shard = {
  (* message arena: parallel fields indexed by shard-local message id *)
  mutable msg_dst : int array;
  mutable msg_tag : int array;
  mutable msg_sent : int array;   (* injection cycle *)
  mutable free_ids : int array;   (* recycled ids, stack of size [n_free] *)
  mutable n_free : int;
  mutable arena_top : int;        (* ids below this have been handed out *)
  (* active sets: dense stacks of the shard's non-empty links / inboxes;
     sized to the owned-link / owned-vertex counts, so they never grow *)
  act_link : int array;
  mutable n_act_link : int;
  act_inbox : int array;
  mutable n_act_inbox : int;
  (* per-cycle scratch, persistent so the run loop reallocates nothing *)
  mutable moved_id : int array;   (* message popped off a link this cycle *)
  mutable moved_at : int array;   (* ... and the endpoint it arrived at *)
  mutable nmoved : int;
  mutable served : int array;     (* messages completing service this cycle *)
  mutable served_at : int array;  (* ... at which vertex (for the merge) *)
  mutable nserved : int;
  mutable nkeep : int;            (* compaction cursor for the active sets *)
  mutable nboundary : int;        (* quads staged this cycle *)
  (* boundary outboxes: per target shard, (link, dst, tag, sent) quads *)
  out : int array array;
  out_len : int array;
  mutable high_water : int;
  mutable inbox_high_water : int;
  mutable busy_ns : int;          (* this cycle's phase work, for barrier-wait *)
}

type t = {
  graph : Graph.t;
  router : Router.t;
  link_capacity : int;
  service_rate : int;
  nshards : int;
  vshard : int array;             (* vertex -> owning shard *)
  lshard : int array;             (* directed link -> shard of its receiver *)
  shards : shard array;
  (* FIFO ring per directed link, holding message ids; slots are only
     ever touched by the owning shard's lane *)
  lring : int array array;
  lhead : int array;
  llen : int array;
  link_dst : int array;           (* directed link -> its receiving endpoint *)
  link_load : int array;          (* messages that traversed each directed link *)
  (* FIFO ring per vertex inbox: arrived messages awaiting CPU service *)
  iring : int array array;
  ihead : int array;
  ilen : int array;
  (* in-set flags for the active sets. These are int (word) arrays, not
     Bytes: distinct shards write distinct indices concurrently, and
     per-element word stores are unambiguously race-free under the
     OCaml memory model, where adjacent byte stores would rely on the
     hardware's byte-granular atomicity. *)
  link_in_set : int array;
  inbox_in_set : int array;
  cursor : int array;             (* delivery-merge cursor, one per shard *)
  mutable phases : (int -> unit) list; (* preallocated; one closure per phase *)
  mutable cycle : int;
  mutable in_flight : int;
  mutable delivered : int;
  mutable latencies : int array;  (* first [nlat] entries, delivery order *)
  mutable nlat : int;
  (* Adaptive sparse-cycle cutoff (see [step_par]): the phase bodies time
     themselves into [busy_ns] when [measure_cycle] is set — on every
     metered cycle, plus a 1-in-64 sample otherwise — and the EWMA cost
     models below turn those samples into the break-even active-queue
     count for a pool dispatch. *)
  mutable measure_cycle : bool;
  mutable cutoff_active : int;    (* dispatch to the pool at >= this many active queues *)
  mutable barrier_ns : int;       (* EWMA dispatch overhead: wall minus critical lane *)
  mutable queue_ns : int;         (* EWMA inline cost per active queue *)
  mutable sample_tick : int;
}

type handler = tag:int -> t -> unit

let empty_ring : int array = [||]

(* ------------------------------------------------------------------ *)
(* Message arena (one per shard)                                       *)
(* ------------------------------------------------------------------ *)

let grow_arena sh =
  let cap = Array.length sh.msg_dst in
  let grow a =
    let b = Array.make (2 * cap) 0 in
    Array.blit a 0 b 0 cap;
    b
  in
  sh.msg_dst <- grow sh.msg_dst;
  sh.msg_tag <- grow sh.msg_tag;
  sh.msg_sent <- grow sh.msg_sent;
  sh.free_ids <- grow sh.free_ids

let alloc_msg sh ~dst ~tag ~sent =
  let id =
    if sh.n_free > 0 then begin
      sh.n_free <- sh.n_free - 1;
      sh.free_ids.(sh.n_free)
    end
    else begin
      if sh.arena_top = Array.length sh.msg_dst then grow_arena sh;
      let id = sh.arena_top in
      sh.arena_top <- id + 1;
      id
    end
  in
  sh.msg_dst.(id) <- dst;
  sh.msg_tag.(id) <- tag;
  sh.msg_sent.(id) <- sent;
  id

(* [free_ids] is grown alongside the arena, so the push can't overflow *)
let free_msg sh id =
  sh.free_ids.(sh.n_free) <- id;
  sh.n_free <- sh.n_free + 1

(* ------------------------------------------------------------------ *)
(* Power-of-two ring buffers (shared across links and inboxes)         *)
(* ------------------------------------------------------------------ *)

let rpush rings heads lens i v =
  let buf = rings.(i) in
  let cap = Array.length buf in
  let len = lens.(i) in
  if len = cap then begin
    (* grow, unwrapping the ring to the front of the new buffer *)
    let nbuf = Array.make (if cap = 0 then 4 else 2 * cap) 0 in
    let h = heads.(i) in
    for k = 0 to len - 1 do
      nbuf.(k) <- buf.((h + k) land (cap - 1))
    done;
    rings.(i) <- nbuf;
    heads.(i) <- 0;
    nbuf.(len) <- v;
    lens.(i) <- len + 1
  end
  else begin
    buf.((heads.(i) + len) land (cap - 1)) <- v;
    lens.(i) <- len + 1
  end

let rpop rings heads lens i =
  let buf = rings.(i) in
  let v = buf.(heads.(i)) in
  heads.(i) <- (heads.(i) + 1) land (Array.length buf - 1);
  lens.(i) <- lens.(i) - 1;
  v

(* ------------------------------------------------------------------ *)
(* Active-set sort: in-place quicksort over a prefix of an int array.
   Written with recursion instead of refs so sorting allocates nothing
   (a local [ref] is a minor-heap cell in vanilla ocamlopt); recursing
   on the smaller half first keeps the stack at O(log n).              *)
(* ------------------------------------------------------------------ *)

let rec scan_up a p i = if a.(i) < p then scan_up a p (i + 1) else i
let rec scan_down a p j = if a.(j) > p then scan_down a p (j - 1) else j

let rec partition a p i j =
  let i = scan_up a p i and j = scan_down a p j in
  if i >= j then j
  else begin
    let v = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- v;
    partition a p (i + 1) (j - 1)
  end

let rec sort_range a lo hi =
  if lo < hi then begin
    let mid = partition a a.((lo + hi) / 2) lo hi in
    if mid - lo < hi - mid then begin
      sort_range a lo mid;
      sort_range a (mid + 1) hi
    end
    else begin
      sort_range a (mid + 1) hi;
      sort_range a lo mid
    end
  end

(* ------------------------------------------------------------------ *)
(* Vertex partition                                                    *)
(* ------------------------------------------------------------------ *)

(* level of a heap-order id: v sits on level l iff 2^l - 1 <= v < 2^{l+1} - 1 *)
let level_of v =
  let rec go l = if v + 1 < 1 lsl (l + 1) then l else go (l + 1) in
  go 0

(* Recognise X(r) in heap order (2^{r+1}-1 vertices; heap parent edges
   plus a left-to-right chain on every level) and return the wedge
   partition: the vertex at index i of level l goes to shard
   i*S / 2^l, i.e. each level's index range is cut into S equal wedges
   aligned with the recursive structure. A shard therefore owns a
   contiguous slab of every level — a sub-X-tree-shaped wedge — and
   cross-shard edges occur only at the O(r) wedge seams, which keeps
   boundary traffic a small fraction of a cycle's work. *)
let xtree_wedges graph ~shards =
  let n = Graph.n graph in
  if n < 3 || n land (n + 1) <> 0 then None
  else begin
    let r = level_of (n - 1) in
    if Graph.m graph <> (2 * n) - r - 2 then None
    else begin
      let ok = ref true in
      for v = 1 to n - 1 do
        if not (Graph.has_edge graph v ((v - 1) / 2)) then ok := false
      done;
      for l = 0 to r do
        let base = (1 lsl l) - 1 in
        for i = 0 to (1 lsl l) - 2 do
          if not (Graph.has_edge graph (base + i) (base + i + 1)) then ok := false
        done
      done;
      if not !ok then None
      else
        Some
          (Array.init n (fun v ->
               let l = level_of v in
               ((v - ((1 lsl l) - 1)) * shards) / (1 lsl l)))
    end
  end

(* ------------------------------------------------------------------ *)
(* Enqueue paths. Callers guarantee [sh] owns the target slot: the
   inbox's vertex, or the link's receiving endpoint.                   *)
(* ------------------------------------------------------------------ *)

let push_inbox t sh ~at id =
  rpush t.iring t.ihead t.ilen at id;
  if t.ilen.(at) > sh.inbox_high_water then sh.inbox_high_water <- t.ilen.(at);
  if t.inbox_in_set.(at) = 0 then begin
    t.inbox_in_set.(at) <- 1;
    sh.act_inbox.(sh.n_act_inbox) <- at;
    sh.n_act_inbox <- sh.n_act_inbox + 1
  end

let push_link t sh l id =
  rpush t.lring t.lhead t.llen l id;
  if t.llen.(l) > sh.high_water then sh.high_water <- t.llen.(l);
  if t.link_in_set.(l) = 0 then begin
    t.link_in_set.(l) <- 1;
    sh.act_link.(sh.n_act_link) <- l;
    sh.n_act_link <- sh.n_act_link + 1
  end

let send t ~src ~dst ~tag =
  if src < 0 || src >= Graph.n t.graph || dst < 0 || dst >= Graph.n t.graph then
    invalid_arg "Sim.send: vertex out of range";
  t.in_flight <- t.in_flight + 1;
  Obs.incr c_sent;
  if src = dst then begin
    let sh = t.shards.(t.vshard.(src)) in
    push_inbox t sh ~at:src (alloc_msg sh ~dst ~tag ~sent:t.cycle)
  end
  else begin
    let hop = Router.next_hop t.router ~current:src ~dst in
    let l = link_index t.graph ~at:src ~hop in
    let sh = t.shards.(t.lshard.(l)) in
    push_link t sh l (alloc_msg sh ~dst ~tag ~sent:t.cycle)
  end

let record_latency t v =
  let cap = Array.length t.latencies in
  if t.nlat = cap then begin
    let a = Array.make (max 64 (2 * cap)) 0 in
    Array.blit t.latencies 0 a 0 cap;
    t.latencies <- a
  end;
  t.latencies.(t.nlat) <- v;
  t.nlat <- t.nlat + 1;
  Obs.observe h_latency v

(* ------------------------------------------------------------------ *)
(* Scratch buffers                                                     *)
(* ------------------------------------------------------------------ *)

let push_moved sh at id =
  let cap = Array.length sh.moved_id in
  if sh.nmoved = cap then begin
    let a = Array.make (2 * cap) 0 and b = Array.make (2 * cap) 0 in
    Array.blit sh.moved_id 0 a 0 cap;
    Array.blit sh.moved_at 0 b 0 cap;
    sh.moved_id <- a;
    sh.moved_at <- b
  end;
  sh.moved_id.(sh.nmoved) <- id;
  sh.moved_at.(sh.nmoved) <- at;
  sh.nmoved <- sh.nmoved + 1

let push_served sh at id =
  let cap = Array.length sh.served in
  if sh.nserved = cap then begin
    let a = Array.make (2 * cap) 0 and b = Array.make (2 * cap) 0 in
    Array.blit sh.served 0 a 0 cap;
    Array.blit sh.served_at 0 b 0 cap;
    sh.served <- a;
    sh.served_at <- b
  end;
  sh.served.(sh.nserved) <- id;
  sh.served_at.(sh.nserved) <- at;
  sh.nserved <- sh.nserved + 1

let push_quad sh tgt l dst tag sent =
  let len = sh.out_len.(tgt) in
  let buf =
    let b = sh.out.(tgt) in
    if len + 4 > Array.length b then begin
      let nb = Array.make (max 32 (2 * Array.length b)) 0 in
      Array.blit b 0 nb 0 len;
      sh.out.(tgt) <- nb;
      nb
    end
    else b
  in
  buf.(len) <- l;
  buf.(len + 1) <- dst;
  buf.(len + 2) <- tag;
  buf.(len + 3) <- sent;
  sh.out_len.(tgt) <- len + 4

(* ------------------------------------------------------------------ *)
(* The three phases of a stepped cycle. Each runs as one lane of a
   [Parallel.phased] dispatch (or inline, on the 1-shard path and on
   sparse cycles) and writes only shard-owned state.                   *)
(* ------------------------------------------------------------------ *)

(* 1. links: advance one batch per non-empty owned link, in link-index
   order (hence the sort) so runs are deterministic; arrivals join the
   destination's inbox (always owned: the inbox's vertex IS the link's
   receiver) and may still be served this cycle, forwards re-enter an
   owned ring directly or are staged as boundary quads for the owning
   shard. Links drained dry drop out of the active set in place. *)
let phase_links t s =
  let sh = t.shards.(s) in
  let t0 = if t.measure_cycle then Obs.now_ns () else 0 in
  if sh.n_act_link > 1 then sort_range sh.act_link 0 (sh.n_act_link - 1);
  sh.nmoved <- 0;
  sh.nboundary <- 0;
  sh.nkeep <- 0;
  for j = 0 to sh.n_act_link - 1 do
    let l = sh.act_link.(j) in
    let npop = if t.link_capacity < t.llen.(l) then t.link_capacity else t.llen.(l) in
    for _ = 1 to npop do
      t.link_load.(l) <- t.link_load.(l) + 1;
      push_moved sh t.link_dst.(l) (rpop t.lring t.lhead t.llen l)
    done;
    if t.llen.(l) > 0 then begin
      sh.act_link.(sh.nkeep) <- l;
      sh.nkeep <- sh.nkeep + 1
    end
    else t.link_in_set.(l) <- 0
  done;
  sh.n_act_link <- sh.nkeep;
  for k = 0 to sh.nmoved - 1 do
    let at = sh.moved_at.(k) in
    let id = sh.moved_id.(k) in
    let dst = sh.msg_dst.(id) in
    if dst = at then push_inbox t sh ~at id
    else begin
      let hop = Router.next_hop t.router ~current:at ~dst in
      let l = link_index t.graph ~at ~hop in
      let tgt = t.lshard.(l) in
      if tgt = s then push_link t sh l id
      else begin
        push_quad sh tgt l dst sh.msg_tag.(id) sh.msg_sent.(id);
        free_msg sh id;
        sh.nboundary <- sh.nboundary + 1
      end
    end
  done;
  if t0 <> 0 then sh.busy_ns <- sh.busy_ns + (Obs.now_ns () - t0)

(* 2. boundary: adopt the quads other shards staged for us, scanning
   source shards in index order. Any single ring only ever receives
   quads from ONE source shard in a cycle (all pushes into ring
   (at -> hop) come from messages that were at [at], whose incoming
   links all belong to shard(at)), so this order reproduces the
   sequential per-ring FIFO contents exactly. Writing [out_len.(s)]
   back to zero is safe: distinct lanes touch distinct indices. *)
let phase_boundary t s =
  let sh = t.shards.(s) in
  let t0 = if t.measure_cycle then Obs.now_ns () else 0 in
  for src = 0 to t.nshards - 1 do
    let o = t.shards.(src) in
    let len = o.out_len.(s) in
    if len > 0 then begin
      let buf = o.out.(s) in
      for q = 0 to (len / 4) - 1 do
        let k = 4 * q in
        push_link t sh buf.(k)
          (alloc_msg sh ~dst:buf.(k + 1) ~tag:buf.(k + 2) ~sent:buf.(k + 3))
      done;
      o.out_len.(s) <- 0
    end
  done;
  if t0 <> 0 then sh.busy_ns <- sh.busy_ns + (Obs.now_ns () - t0)

(* 3. CPU service: each non-empty owned inbox completes up to
   service_rate messages, swept in ascending vertex order. Delivery
   callbacks do NOT run here — they are user code and run only on the
   calling domain, after the barrier (see [deliver_batch] and
   [deliver_merged]). *)
let phase_service t s =
  let sh = t.shards.(s) in
  let t0 = if t.measure_cycle then Obs.now_ns () else 0 in
  if sh.n_act_inbox > 1 then sort_range sh.act_inbox 0 (sh.n_act_inbox - 1);
  sh.nserved <- 0;
  sh.nkeep <- 0;
  for j = 0 to sh.n_act_inbox - 1 do
    let x = sh.act_inbox.(j) in
    let npop = if t.service_rate < t.ilen.(x) then t.service_rate else t.ilen.(x) in
    for _ = 1 to npop do
      push_served sh x (rpop t.iring t.ihead t.ilen x)
    done;
    if t.ilen.(x) > 0 then begin
      sh.act_inbox.(sh.nkeep) <- x;
      sh.nkeep <- sh.nkeep + 1
    end
    else t.inbox_in_set.(x) <- 0
  done;
  sh.n_act_inbox <- sh.nkeep;
  if t0 <> 0 then sh.busy_ns <- sh.busy_ns + (Obs.now_ns () - t0)

(* ------------------------------------------------------------------ *)
(* Delivery: callbacks run on the calling domain, in the order the
   reference core's list-consing produces — descending vertex, reverse
   pop order within a vertex.                                          *)
(* ------------------------------------------------------------------ *)

let deliver_one t sh id ~on_deliver =
  let tag = sh.msg_tag.(id) in
  let sent = sh.msg_sent.(id) in
  free_msg sh id;
  t.in_flight <- t.in_flight - 1;
  t.delivered <- t.delivered + 1;
  Obs.incr c_delivered;
  record_latency t (t.cycle - sent);
  on_deliver ~tag t

(* 1-shard path: the served batch was built in ascending vertex order,
   so iterating it backwards is already the reference order. *)
let deliver_batch t sh ~on_deliver =
  for k = sh.nserved - 1 downto 0 do
    deliver_one t sh sh.served.(k) ~on_deliver
  done

(* Sharded path: each shard's batch, walked backwards, yields vertices
   in descending order; vertices are uniquely owned, so merging by
   "largest current vertex wins" linearises the batches into the exact
   global reference order with no ties to break. *)
let deliver_merged t ~on_deliver =
  let cur = t.cursor in
  for s = 0 to t.nshards - 1 do
    cur.(s) <- t.shards.(s).nserved - 1
  done;
  let continue_ = ref true in
  while !continue_ do
    let best = ref (-1) in
    let bestv = ref (-1) in
    for s = 0 to t.nshards - 1 do
      if cur.(s) >= 0 then begin
        let v = t.shards.(s).served_at.(cur.(s)) in
        if v > !bestv then begin
          bestv := v;
          best := s
        end
      end
    done;
    if !best < 0 then continue_ := false
    else begin
      let sh = t.shards.(!best) in
      let k = cur.(!best) in
      cur.(!best) <- k - 1;
      deliver_one t sh sh.served.(k) ~on_deliver
    end
  done

(* ------------------------------------------------------------------ *)
(* Per-cycle series for the trace viewer; only non-empty queues can
   contribute, so sweeping the active sets sees every message. Only
   called with tracing enabled (it allocates).                         *)
(* ------------------------------------------------------------------ *)

let trace_series t ~moved ~boundary =
  let links = Array.length t.link_load in
  let maxq = ref 0 and queued = ref 0 and maxinbox = ref 0 in
  for s = 0 to t.nshards - 1 do
    let sh = t.shards.(s) in
    for j = 0 to sh.n_act_link - 1 do
      let l = t.llen.(sh.act_link.(j)) in
      if l > !maxq then maxq := l;
      queued := !queued + l
    done;
    for j = 0 to sh.n_act_inbox - 1 do
      let l = t.ilen.(sh.act_inbox.(j)) in
      if l > !maxinbox then maxinbox := l
    done
  done;
  Obs.counter_event "netsim.in_flight" t.in_flight;
  Obs.counter_event "netsim.queued" !queued;
  Obs.counter_event "netsim.queue_depth_max" !maxq;
  Obs.counter_event "netsim.inbox_depth_max" !maxinbox;
  Obs.counter_event "netsim.link_util_pct"
    (if links = 0 then 0 else 100 * moved / (links * t.link_capacity));
  if t.nshards > 1 then begin
    Obs.counter_event "netsim.shard.boundary" boundary;
    for s = 0 to t.nshards - 1 do
      Obs.counter_event ("netsim.shard.moved_" ^ string_of_int s) t.shards.(s).nmoved
    done
  end

(* ------------------------------------------------------------------ *)
(* One simulated cycle, semantics identical to the [Sim_ref] sweep      *)
(* ------------------------------------------------------------------ *)

let step_seq t ~on_deliver =
  t.cycle <- t.cycle + 1;
  let sh = t.shards.(0) in
  phase_links t 0;
  Obs.add c_hops sh.nmoved;
  phase_service t 0;
  deliver_batch t sh ~on_deliver;
  if Obs.tracing_enabled () then trace_series t ~moved:sh.nmoved ~boundary:0

(* Sparse cycles (a handful of active queues per shard) run the phase
   bodies inline in lane order — same writes, same results, no pool
   dispatch. The cutoff only picks who executes the lanes, never what
   they compute, so determinism is unaffected.

   Where to put the cutoff is a cost question, so it is answered with
   measured costs instead of a constant: sampled cycles (all metered
   ones, plus 1 in 64 otherwise) time their phase work per lane, and two
   EWMA estimates accumulate — [barrier_ns], what a pool dispatch costs
   beyond its critical lane (wall minus max lane busy, the quantity the
   [netsim.shard.barrier_wait_ns] histogram reports per lane), and
   [queue_ns], what one active queue costs inline. Dispatching S lanes
   saves at most busy·(S-1)/S ≈ active·queue_ns·(S-1)/S and pays
   [barrier_ns], so the break-even point is
   active ≈ barrier_ns·S / (queue_ns·(S-1)). Until both estimates have a
   sample the cutoff stays at the historical 16·S prior; it is clamped
   to [2·S, 1024·S] so one outlier sample can never pin the simulation
   to either path. *)
let initial_sparse_cutoff = 16

let ewma old sample = if old = 0 then sample else old + ((sample - old) / 8)

let step_par t ~on_deliver =
  t.cycle <- t.cycle + 1;
  let active = ref 0 in
  for s = 0 to t.nshards - 1 do
    let sh = t.shards.(s) in
    active := !active + sh.n_act_link + sh.n_act_inbox
  done;
  let metered = Obs.metrics_enabled () in
  t.sample_tick <- t.sample_tick + 1;
  let timed = metered || t.sample_tick land 63 = 0 in
  t.measure_cycle <- timed;
  let t0 = if timed then Obs.now_ns () else 0 in
  let dispatched = !active >= t.cutoff_active in
  if not dispatched then
    List.iter
      (fun phase ->
        for s = 0 to t.nshards - 1 do
          phase s
        done)
      t.phases
  else Parallel.phased ~lanes:t.nshards t.phases;
  if timed then begin
    let wall = Obs.now_ns () - t0 in
    let busy_max = ref 0 in
    for s = 0 to t.nshards - 1 do
      let sh = t.shards.(s) in
      if sh.busy_ns > !busy_max then busy_max := sh.busy_ns;
      if metered && dispatched then begin
        (* a lane's barrier wait is the cycle's wall time minus its own work *)
        let w = wall - sh.busy_ns in
        Obs.observe h_barrier_wait (if w < 0 then 0 else w)
      end;
      sh.busy_ns <- 0
    done;
    if dispatched then begin
      let over = wall - !busy_max in
      if over > 0 then t.barrier_ns <- ewma t.barrier_ns over
    end
    else if !active > 0 then t.queue_ns <- ewma t.queue_ns (max 1 (wall / !active));
    if t.barrier_ns > 0 && t.queue_ns > 0 then begin
      let s = t.nshards in
      let c = t.barrier_ns * s / (t.queue_ns * max 1 (s - 1)) in
      t.cutoff_active <- min (max c (2 * s)) (1024 * s)
    end
  end;
  let moved = ref 0 and boundary = ref 0 in
  for s = 0 to t.nshards - 1 do
    moved := !moved + t.shards.(s).nmoved;
    boundary := !boundary + t.shards.(s).nboundary
  done;
  Obs.add c_hops !moved;
  Obs.add c_boundary !boundary;
  deliver_merged t ~on_deliver;
  if Obs.tracing_enabled () then trace_series t ~moved:!moved ~boundary:!boundary

(* ------------------------------------------------------------------ *)
(* Idle-cycle skipping                                                 *)
(* ------------------------------------------------------------------ *)

(* Walk the remaining route, charging each link traversed; the hop
   count is the number of cycles the stepped simulation would spend. *)
let rec walk_route t at dst =
  if at = dst then 0
  else begin
    let hop = Router.next_hop t.router ~current:at ~dst in
    let l = link_index t.graph ~at ~hop in
    t.link_load.(l) <- t.link_load.(l) + 1;
    1 + walk_route t hop dst
  end

(* Exactly one message in flight, sitting on a link: every cycle until
   it arrives would move it one hop and touch nothing else, so jump the
   clock over all of them at once. Per-hop queue lengths never exceed 1
   (the originating push already raised the owner's [high_water]); the
   arrival passes through the destination inbox, raising its shard's
   high-water to at least 1; the message is served on its arrival
   cycle, as in the stepped semantics. Runs on the calling domain. *)
let fast_forward t ~on_deliver =
  let rec find s = if t.shards.(s).n_act_link = 1 then s else find (s + 1) in
  let sh = t.shards.(find 0) in
  let l = sh.act_link.(0) in
  let id = rpop t.lring t.lhead t.llen l in
  sh.n_act_link <- 0;
  t.link_in_set.(l) <- 0;
  t.link_load.(l) <- t.link_load.(l) + 1;
  let dst = sh.msg_dst.(id) in
  let hops = 1 + walk_route t t.link_dst.(l) dst in
  let dsh = t.shards.(t.vshard.(dst)) in
  if dsh.inbox_high_water < 1 then dsh.inbox_high_water <- 1;
  Obs.add c_hops hops;
  t.cycle <- t.cycle + hops;
  if Obs.tracing_enabled () then Obs.instant ~arg:hops "netsim.idle_skip";
  deliver_one t sh id ~on_deliver

let run t ~on_deliver =
  Obs.span "netsim.run" @@ fun () ->
  let start = t.cycle in
  if t.nshards = 1 then begin
    let sh = t.shards.(0) in
    while t.in_flight > 0 do
      if t.in_flight = 1 && sh.n_act_link = 1 && sh.n_act_inbox = 0 then
        fast_forward t ~on_deliver
      else step_seq t ~on_deliver
    done
  end
  else begin
    let nl = ref 0 and ni = ref 0 in
    while t.in_flight > 0 do
      nl := 0;
      ni := 0;
      for s = 0 to t.nshards - 1 do
        nl := !nl + t.shards.(s).n_act_link;
        ni := !ni + t.shards.(s).n_act_inbox
      done;
      if t.in_flight = 1 && !nl = 1 && !ni = 0 then fast_forward t ~on_deliver
      else step_par t ~on_deliver
    done
  end;
  t.cycle - start

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ?(link_capacity = 1) ?(service_rate = max_int) ?(shards = 1) graph =
  if link_capacity <= 0 then invalid_arg "Sim.create: link capacity";
  if service_rate <= 0 then invalid_arg "Sim.create: service rate";
  if shards < 1 then invalid_arg "Sim.create: shards";
  let n = Graph.n graph in
  let m = Graph.m graph in
  let nshards = min shards (max 1 n) in
  let link_dst = Array.make (2 * m) (-1) in
  Graph.iter_edges graph (fun u v ->
      let eid = Graph.edge_index graph u v in
      link_dst.(2 * eid) <- max u v;
      link_dst.((2 * eid) + 1) <- min u v);
  let vshard =
    if nshards = 1 then Array.make n 0
    else
      match xtree_wedges graph ~shards:nshards with
      | Some a -> a
      | None -> Array.init n (fun v -> v * nshards / n)
  in
  let lshard = Array.map (fun d -> vshard.(d)) link_dst in
  let router = Router.create graph in
  (* lazy dense rows would race when two lanes route concurrently *)
  if nshards > 1 then Router.warm router;
  let owned_links = Array.make nshards 0 in
  Array.iter (fun s -> owned_links.(s) <- owned_links.(s) + 1) lshard;
  let owned_verts = Array.make nshards 0 in
  Array.iter (fun s -> owned_verts.(s) <- owned_verts.(s) + 1) vshard;
  let mk_shard sid =
    {
      msg_dst = Array.make 64 0;
      msg_tag = Array.make 64 0;
      msg_sent = Array.make 64 0;
      free_ids = Array.make 64 0;
      n_free = 0;
      arena_top = 0;
      act_link = Array.make owned_links.(sid) 0;
      n_act_link = 0;
      act_inbox = Array.make owned_verts.(sid) 0;
      n_act_inbox = 0;
      moved_id = Array.make 64 0;
      moved_at = Array.make 64 0;
      nmoved = 0;
      served = Array.make 64 0;
      served_at = Array.make 64 0;
      nserved = 0;
      nkeep = 0;
      nboundary = 0;
      out = Array.make nshards empty_ring;
      out_len = Array.make nshards 0;
      high_water = 0;
      inbox_high_water = 0;
      busy_ns = 0;
    }
  in
  let t =
    {
      graph;
      router;
      link_capacity;
      service_rate;
      nshards;
      vshard;
      lshard;
      shards = Array.init nshards mk_shard;
      lring = Array.make (2 * m) empty_ring;
      lhead = Array.make (2 * m) 0;
      llen = Array.make (2 * m) 0;
      link_dst;
      link_load = Array.make (2 * m) 0;
      iring = Array.make n empty_ring;
      ihead = Array.make n 0;
      ilen = Array.make n 0;
      link_in_set = Array.make (2 * m) 0;
      inbox_in_set = Array.make n 0;
      cursor = Array.make nshards 0;
      phases = [];
      cycle = 0;
      in_flight = 0;
      delivered = 0;
      latencies = [||];
      nlat = 0;
      measure_cycle = false;
      cutoff_active = initial_sparse_cutoff * nshards;
      barrier_ns = 0;
      queue_ns = 0;
      sample_tick = 0;
    }
  in
  t.phases <- [ phase_links t; phase_boundary t; phase_service t ];
  t

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let delivered t = t.delivered

let max_link_queue t =
  Array.fold_left (fun acc sh -> if sh.high_water > acc then sh.high_water else acc) 0 t.shards

let max_inbox_queue t =
  Array.fold_left
    (fun acc sh -> if sh.inbox_high_water > acc then sh.inbox_high_water else acc)
    0 t.shards

let link_loads t = Array.copy t.link_load
let latencies t = Array.sub t.latencies 0 t.nlat
let shards t = t.nshards
let sparse_cutoff t = t.cutoff_active

let shard_of t v =
  if v < 0 || v >= Graph.n t.graph then invalid_arg "Sim.shard_of: vertex out of range";
  t.vshard.(v)
