open Xt_obs
open Xt_topology

let c_sent = Obs.counter "netsim.sent"
let c_delivered = Obs.counter "netsim.delivered"
let c_hops = Obs.counter "netsim.hops"
let h_latency = Obs.histogram "netsim.latency_cycles"

type message = { dst : int; tag : int; sent : int (* injection cycle *) }

(* Directed-link index: the undirected edge id from [Graph.edge_index]
   doubled, plus the direction bit (0 = towards the higher-numbered
   endpoint). Dense, so per-send queue lookup is a binary search in the
   sender's adjacency instead of a hash, and per-link series (loads,
   utilisation) are plain array sweeps. *)
let link_index g ~at ~hop = (2 * Graph.edge_index g at hop) + if at < hop then 0 else 1

type t = {
  graph : Graph.t;
  router : Router.t;
  link_capacity : int;
  service_rate : int;
  queues : message Queue.t array; (* FIFO per directed link *)
  link_dst : int array;           (* directed link -> its receiving endpoint *)
  link_load : int array;          (* messages that traversed each directed link *)
  inbox : message Queue.t array;  (* arrived messages awaiting CPU service *)
  mutable cycle : int;
  mutable in_flight : int;
  mutable delivered : int;
  mutable high_water : int;
  mutable latencies : int array;  (* first [nlat] entries, delivery order *)
  mutable nlat : int;
}

type handler = tag:int -> t -> unit

let create ?(link_capacity = 1) ?(service_rate = max_int) graph =
  if link_capacity <= 0 then invalid_arg "Sim.create: link capacity";
  if service_rate <= 0 then invalid_arg "Sim.create: service rate";
  let m = Graph.m graph in
  let link_dst = Array.make (2 * m) (-1) in
  Graph.iter_edges graph (fun u v ->
      let eid = Graph.edge_index graph u v in
      link_dst.(2 * eid) <- max u v;
      link_dst.((2 * eid) + 1) <- min u v);
  {
    graph;
    router = Router.create graph;
    link_capacity;
    service_rate;
    queues = Array.init (2 * m) (fun _ -> Queue.create ());
    link_dst;
    link_load = Array.make (2 * m) 0;
    inbox = Array.init (Graph.n graph) (fun _ -> Queue.create ());
    cycle = 0;
    in_flight = 0;
    delivered = 0;
    high_water = 0;
    latencies = [||];
    nlat = 0;
  }

let enqueue t ~at msg =
  if at = msg.dst then Queue.add msg t.inbox.(at)
  else begin
    let hop = Router.next_hop t.router ~current:at ~dst:msg.dst in
    let q = t.queues.(link_index t.graph ~at ~hop) in
    Queue.add msg q;
    if Queue.length q > t.high_water then t.high_water <- Queue.length q
  end

let send t ~src ~dst ~tag =
  if src < 0 || src >= Graph.n t.graph || dst < 0 || dst >= Graph.n t.graph then
    invalid_arg "Sim.send: vertex out of range";
  t.in_flight <- t.in_flight + 1;
  Obs.incr c_sent;
  enqueue t ~at:src { dst; tag; sent = t.cycle }

let record_latency t v =
  let cap = Array.length t.latencies in
  if t.nlat = cap then begin
    let a = Array.make (max 64 (2 * cap)) 0 in
    Array.blit t.latencies 0 a 0 cap;
    t.latencies <- a
  end;
  t.latencies.(t.nlat) <- v;
  t.nlat <- t.nlat + 1;
  Obs.observe h_latency v

let run t ~on_deliver =
  let start = t.cycle in
  while t.in_flight > 0 do
    t.cycle <- t.cycle + 1;
    (* 1. links: advance one batch per directed link (in link-index
       order, so runs are deterministic); arrivals join the destination's
       inbox and may still be served this cycle *)
    let moved = ref [] and nmoved = ref 0 in
    Array.iteri
      (fun idx q ->
        for _ = 1 to min t.link_capacity (Queue.length q) do
          t.link_load.(idx) <- t.link_load.(idx) + 1;
          incr nmoved;
          moved := (t.link_dst.(idx), Queue.pop q) :: !moved
        done)
      t.queues;
    Obs.add c_hops !nmoved;
    List.iter
      (fun (at, msg) ->
        if msg.dst = at then Queue.add msg t.inbox.(at) else enqueue t ~at msg)
      (List.rev !moved);
    (* 2. CPU service: each vertex completes up to service_rate messages;
       completions may inject new traffic (carried next cycle) *)
    let served = ref [] in
    Array.iter
      (fun q ->
        for _ = 1 to min t.service_rate (Queue.length q) do
          served := Queue.pop q :: !served
        done)
      t.inbox;
    List.iter
      (fun msg ->
        t.in_flight <- t.in_flight - 1;
        t.delivered <- t.delivered + 1;
        Obs.incr c_delivered;
        record_latency t (t.cycle - msg.sent);
        on_deliver ~tag:msg.tag t)
      !served;
    (* 3. per-cycle series for the trace viewer *)
    if Obs.tracing_enabled () then begin
      let links = Array.length t.queues in
      let maxq = ref 0 and queued = ref 0 in
      Array.iter
        (fun q ->
          let l = Queue.length q in
          if l > !maxq then maxq := l;
          queued := !queued + l)
        t.queues;
      Obs.counter_event "netsim.in_flight" t.in_flight;
      Obs.counter_event "netsim.queued" !queued;
      Obs.counter_event "netsim.queue_depth_max" !maxq;
      Obs.counter_event "netsim.link_util_pct"
        (if links = 0 then 0 else 100 * !nmoved / (links * t.link_capacity))
    end
  done;
  t.cycle - start

let delivered t = t.delivered
let max_link_queue t = t.high_water
let link_loads t = Array.copy t.link_load
let latencies t = Array.sub t.latencies 0 t.nlat
