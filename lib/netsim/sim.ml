open Xt_obs
open Xt_topology

let c_sent = Obs.counter "netsim.sent"
let c_delivered = Obs.counter "netsim.delivered"
let c_hops = Obs.counter "netsim.hops"
let h_latency = Obs.histogram "netsim.latency_cycles"

(* Directed-link index: the undirected edge id from [Graph.edge_index]
   doubled, plus the direction bit (0 = towards the higher-numbered
   endpoint). Dense, so per-send queue lookup is a binary search in the
   sender's adjacency instead of a hash, and per-link series (loads,
   utilisation) are plain array sweeps. *)
let link_index g ~at ~hop = (2 * Graph.edge_index g at hop) + if at < hop then 0 else 1

(* The core is event-driven: instead of sweeping all 2m directed links
   and all n inboxes every cycle (the retained [Sim_ref] does exactly
   that), we keep dense worklists — "active sets" — of only the links
   and inboxes that currently hold messages, re-sorted into index order
   at the top of each cycle so the drain order, and therefore every
   observable (cycle counts, delivery order, link loads, high-water
   marks), is bit-identical to the sweep semantics. Messages live in a
   flat arena of parallel int arrays recycled through a free list, and
   each link/inbox FIFO is a growable power-of-two ring of message ids,
   so the steady-state loop moves only integers and allocates nothing
   (guarded by a [Gc.minor_words] test). When exactly one message is in
   flight on a link — the latency-bound regime, e.g. [pingpong_sweep] —
   [run] skips the idle cycles entirely and fast-forwards the message
   along its whole remaining route in one jump. *)

type t = {
  graph : Graph.t;
  router : Router.t;
  link_capacity : int;
  service_rate : int;
  (* message arena: parallel fields indexed by message id *)
  mutable msg_dst : int array;
  mutable msg_tag : int array;
  mutable msg_sent : int array;   (* injection cycle *)
  mutable free_ids : int array;   (* recycled ids, stack of size [n_free] *)
  mutable n_free : int;
  mutable arena_top : int;        (* ids below this have been handed out *)
  (* FIFO ring per directed link, holding message ids *)
  lring : int array array;
  lhead : int array;
  llen : int array;
  link_dst : int array;           (* directed link -> its receiving endpoint *)
  link_load : int array;          (* messages that traversed each directed link *)
  (* FIFO ring per vertex inbox: arrived messages awaiting CPU service *)
  iring : int array array;
  ihead : int array;
  ilen : int array;
  (* active sets: dense stacks of non-empty links / inboxes, with an
     in-set byte per slot so activation is O(1) and duplicate-free *)
  act_link : int array;
  mutable n_act_link : int;
  link_in_set : Bytes.t;
  act_inbox : int array;
  mutable n_act_inbox : int;
  inbox_in_set : Bytes.t;
  (* per-cycle scratch, persistent so the run loop reallocates nothing *)
  mutable moved_id : int array;   (* message popped off a link this cycle *)
  mutable moved_at : int array;   (* ... and the endpoint it arrived at *)
  mutable served : int array;     (* messages completing service this cycle *)
  mutable nmoved : int;
  mutable nserved : int;
  mutable nkeep : int;            (* compaction cursor for the active sets *)
  mutable cycle : int;
  mutable in_flight : int;
  mutable delivered : int;
  mutable high_water : int;
  mutable inbox_high_water : int;
  mutable latencies : int array;  (* first [nlat] entries, delivery order *)
  mutable nlat : int;
}

type handler = tag:int -> t -> unit

let empty_ring : int array = [||]

let create ?(link_capacity = 1) ?(service_rate = max_int) graph =
  if link_capacity <= 0 then invalid_arg "Sim.create: link capacity";
  if service_rate <= 0 then invalid_arg "Sim.create: service rate";
  let n = Graph.n graph in
  let m = Graph.m graph in
  let link_dst = Array.make (2 * m) (-1) in
  Graph.iter_edges graph (fun u v ->
      let eid = Graph.edge_index graph u v in
      link_dst.(2 * eid) <- max u v;
      link_dst.((2 * eid) + 1) <- min u v);
  {
    graph;
    router = Router.create graph;
    link_capacity;
    service_rate;
    msg_dst = Array.make 64 0;
    msg_tag = Array.make 64 0;
    msg_sent = Array.make 64 0;
    free_ids = Array.make 64 0;
    n_free = 0;
    arena_top = 0;
    lring = Array.make (2 * m) empty_ring;
    lhead = Array.make (2 * m) 0;
    llen = Array.make (2 * m) 0;
    link_dst;
    link_load = Array.make (2 * m) 0;
    iring = Array.make n empty_ring;
    ihead = Array.make n 0;
    ilen = Array.make n 0;
    act_link = Array.make (2 * m) 0;
    n_act_link = 0;
    link_in_set = Bytes.make (2 * m) '\000';
    act_inbox = Array.make n 0;
    n_act_inbox = 0;
    inbox_in_set = Bytes.make n '\000';
    moved_id = Array.make 64 0;
    moved_at = Array.make 64 0;
    served = Array.make 64 0;
    nmoved = 0;
    nserved = 0;
    nkeep = 0;
    cycle = 0;
    in_flight = 0;
    delivered = 0;
    high_water = 0;
    inbox_high_water = 0;
    latencies = [||];
    nlat = 0;
  }

(* ------------------------------------------------------------------ *)
(* Message arena                                                       *)
(* ------------------------------------------------------------------ *)

let grow_arena t =
  let cap = Array.length t.msg_dst in
  let grow a =
    let b = Array.make (2 * cap) 0 in
    Array.blit a 0 b 0 cap;
    b
  in
  t.msg_dst <- grow t.msg_dst;
  t.msg_tag <- grow t.msg_tag;
  t.msg_sent <- grow t.msg_sent;
  t.free_ids <- grow t.free_ids

let alloc_msg t ~dst ~tag =
  let id =
    if t.n_free > 0 then begin
      t.n_free <- t.n_free - 1;
      t.free_ids.(t.n_free)
    end
    else begin
      if t.arena_top = Array.length t.msg_dst then grow_arena t;
      let id = t.arena_top in
      t.arena_top <- id + 1;
      id
    end
  in
  t.msg_dst.(id) <- dst;
  t.msg_tag.(id) <- tag;
  t.msg_sent.(id) <- t.cycle;
  id

(* [free_ids] is grown alongside the arena, so the push can't overflow *)
let free_msg t id =
  t.free_ids.(t.n_free) <- id;
  t.n_free <- t.n_free + 1

(* ------------------------------------------------------------------ *)
(* Power-of-two ring buffers (shared across links and inboxes)         *)
(* ------------------------------------------------------------------ *)

let rpush rings heads lens i v =
  let buf = rings.(i) in
  let cap = Array.length buf in
  let len = lens.(i) in
  if len = cap then begin
    (* grow, unwrapping the ring to the front of the new buffer *)
    let nbuf = Array.make (if cap = 0 then 4 else 2 * cap) 0 in
    let h = heads.(i) in
    for k = 0 to len - 1 do
      nbuf.(k) <- buf.((h + k) land (cap - 1))
    done;
    rings.(i) <- nbuf;
    heads.(i) <- 0;
    nbuf.(len) <- v;
    lens.(i) <- len + 1
  end
  else begin
    buf.((heads.(i) + len) land (cap - 1)) <- v;
    lens.(i) <- len + 1
  end

let rpop rings heads lens i =
  let buf = rings.(i) in
  let v = buf.(heads.(i)) in
  heads.(i) <- (heads.(i) + 1) land (Array.length buf - 1);
  lens.(i) <- lens.(i) - 1;
  v

(* ------------------------------------------------------------------ *)
(* Active-set sort: in-place quicksort over a prefix of an int array.
   Written with recursion instead of refs so sorting allocates nothing
   (a local [ref] is a minor-heap cell in vanilla ocamlopt); recursing
   on the smaller half first keeps the stack at O(log n).              *)
(* ------------------------------------------------------------------ *)

let rec scan_up a p i = if a.(i) < p then scan_up a p (i + 1) else i
let rec scan_down a p j = if a.(j) > p then scan_down a p (j - 1) else j

let rec partition a p i j =
  let i = scan_up a p i and j = scan_down a p j in
  if i >= j then j
  else begin
    let v = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- v;
    partition a p (i + 1) (j - 1)
  end

let rec sort_range a lo hi =
  if lo < hi then begin
    let mid = partition a a.((lo + hi) / 2) lo hi in
    if mid - lo < hi - mid then begin
      sort_range a lo mid;
      sort_range a (mid + 1) hi
    end
    else begin
      sort_range a (mid + 1) hi;
      sort_range a lo mid
    end
  end

(* ------------------------------------------------------------------ *)
(* Enqueue paths                                                       *)
(* ------------------------------------------------------------------ *)

let push_inbox t ~at id =
  rpush t.iring t.ihead t.ilen at id;
  if t.ilen.(at) > t.inbox_high_water then t.inbox_high_water <- t.ilen.(at);
  if Bytes.get t.inbox_in_set at = '\000' then begin
    Bytes.set t.inbox_in_set at '\001';
    t.act_inbox.(t.n_act_inbox) <- at;
    t.n_act_inbox <- t.n_act_inbox + 1
  end

let push_link t l id =
  rpush t.lring t.lhead t.llen l id;
  if t.llen.(l) > t.high_water then t.high_water <- t.llen.(l);
  if Bytes.get t.link_in_set l = '\000' then begin
    Bytes.set t.link_in_set l '\001';
    t.act_link.(t.n_act_link) <- l;
    t.n_act_link <- t.n_act_link + 1
  end

let enqueue t ~at id =
  let dst = t.msg_dst.(id) in
  if at = dst then push_inbox t ~at id
  else begin
    let hop = Router.next_hop t.router ~current:at ~dst in
    push_link t (link_index t.graph ~at ~hop) id
  end

let send t ~src ~dst ~tag =
  if src < 0 || src >= Graph.n t.graph || dst < 0 || dst >= Graph.n t.graph then
    invalid_arg "Sim.send: vertex out of range";
  t.in_flight <- t.in_flight + 1;
  Obs.incr c_sent;
  enqueue t ~at:src (alloc_msg t ~dst ~tag)

let record_latency t v =
  let cap = Array.length t.latencies in
  if t.nlat = cap then begin
    let a = Array.make (max 64 (2 * cap)) 0 in
    Array.blit t.latencies 0 a 0 cap;
    t.latencies <- a
  end;
  t.latencies.(t.nlat) <- v;
  t.nlat <- t.nlat + 1;
  Obs.observe h_latency v

(* ------------------------------------------------------------------ *)
(* Scratch buffers                                                     *)
(* ------------------------------------------------------------------ *)

let push_moved t l id =
  let cap = Array.length t.moved_id in
  if t.nmoved = cap then begin
    let a = Array.make (2 * cap) 0 and b = Array.make (2 * cap) 0 in
    Array.blit t.moved_id 0 a 0 cap;
    Array.blit t.moved_at 0 b 0 cap;
    t.moved_id <- a;
    t.moved_at <- b
  end;
  t.moved_id.(t.nmoved) <- id;
  t.moved_at.(t.nmoved) <- t.link_dst.(l);
  t.nmoved <- t.nmoved + 1

let push_served t id =
  let cap = Array.length t.served in
  if t.nserved = cap then begin
    let a = Array.make (2 * cap) 0 in
    Array.blit t.served 0 a 0 cap;
    t.served <- a
  end;
  t.served.(t.nserved) <- id;
  t.nserved <- t.nserved + 1

(* ------------------------------------------------------------------ *)
(* One simulated cycle, semantics identical to the [Sim_ref] sweep      *)
(* ------------------------------------------------------------------ *)

let step t ~on_deliver =
  t.cycle <- t.cycle + 1;
  (* 1. links: advance one batch per non-empty directed link, in
     link-index order (hence the sort) so runs are deterministic;
     arrivals join the destination's inbox and may still be served this
     cycle. Links drained dry drop out of the active set in place. *)
  if t.n_act_link > 1 then sort_range t.act_link 0 (t.n_act_link - 1);
  t.nmoved <- 0;
  t.nkeep <- 0;
  for j = 0 to t.n_act_link - 1 do
    let l = t.act_link.(j) in
    let npop = if t.link_capacity < t.llen.(l) then t.link_capacity else t.llen.(l) in
    for _ = 1 to npop do
      t.link_load.(l) <- t.link_load.(l) + 1;
      push_moved t l (rpop t.lring t.lhead t.llen l)
    done;
    if t.llen.(l) > 0 then begin
      t.act_link.(t.nkeep) <- l;
      t.nkeep <- t.nkeep + 1
    end
    else Bytes.set t.link_in_set l '\000'
  done;
  t.n_act_link <- t.nkeep;
  Obs.add c_hops t.nmoved;
  for k = 0 to t.nmoved - 1 do
    let at = t.moved_at.(k) in
    let id = t.moved_id.(k) in
    if t.msg_dst.(id) = at then push_inbox t ~at id else enqueue t ~at id
  done;
  (* 2. CPU service: each non-empty inbox completes up to service_rate
     messages, swept in ascending vertex order; completions may inject
     new traffic (carried next cycle). Delivery callbacks run after all
     pops, iterating the batch backwards — the order the reference
     core's list-consing produces. *)
  if t.n_act_inbox > 1 then sort_range t.act_inbox 0 (t.n_act_inbox - 1);
  t.nserved <- 0;
  t.nkeep <- 0;
  for j = 0 to t.n_act_inbox - 1 do
    let x = t.act_inbox.(j) in
    let npop = if t.service_rate < t.ilen.(x) then t.service_rate else t.ilen.(x) in
    for _ = 1 to npop do
      push_served t (rpop t.iring t.ihead t.ilen x)
    done;
    if t.ilen.(x) > 0 then begin
      t.act_inbox.(t.nkeep) <- x;
      t.nkeep <- t.nkeep + 1
    end
    else Bytes.set t.inbox_in_set x '\000'
  done;
  t.n_act_inbox <- t.nkeep;
  for k = t.nserved - 1 downto 0 do
    let id = t.served.(k) in
    let tag = t.msg_tag.(id) in
    let sent = t.msg_sent.(id) in
    free_msg t id;
    t.in_flight <- t.in_flight - 1;
    t.delivered <- t.delivered + 1;
    Obs.incr c_delivered;
    record_latency t (t.cycle - sent);
    on_deliver ~tag t
  done;
  (* 3. per-cycle series for the trace viewer; only non-empty queues can
     contribute, so sweeping the active sets sees every message *)
  if Obs.tracing_enabled () then begin
    let links = Array.length t.link_load in
    let maxq = ref 0 and queued = ref 0 in
    for j = 0 to t.n_act_link - 1 do
      let l = t.llen.(t.act_link.(j)) in
      if l > !maxq then maxq := l;
      queued := !queued + l
    done;
    let maxinbox = ref 0 in
    for j = 0 to t.n_act_inbox - 1 do
      let l = t.ilen.(t.act_inbox.(j)) in
      if l > !maxinbox then maxinbox := l
    done;
    Obs.counter_event "netsim.in_flight" t.in_flight;
    Obs.counter_event "netsim.queued" !queued;
    Obs.counter_event "netsim.queue_depth_max" !maxq;
    Obs.counter_event "netsim.inbox_depth_max" !maxinbox;
    Obs.counter_event "netsim.link_util_pct"
      (if links = 0 then 0 else 100 * t.nmoved / (links * t.link_capacity))
  end

(* ------------------------------------------------------------------ *)
(* Idle-cycle skipping                                                 *)
(* ------------------------------------------------------------------ *)

(* Walk the remaining route, charging each link traversed; the hop
   count is the number of cycles the stepped simulation would spend. *)
let rec walk_route t at dst =
  if at = dst then 0
  else begin
    let hop = Router.next_hop t.router ~current:at ~dst in
    let l = link_index t.graph ~at ~hop in
    t.link_load.(l) <- t.link_load.(l) + 1;
    1 + walk_route t hop dst
  end

(* Exactly one message in flight, sitting on a link: every cycle until
   it arrives would move it one hop and touch nothing else, so jump the
   clock over all of them at once. Per-hop queue lengths never exceed 1
   (the originating push already raised [high_water]); the arrival
   passes through the destination inbox, raising its high-water to at
   least 1; the message is served on its arrival cycle, as in the
   stepped semantics. *)
let fast_forward t ~on_deliver =
  let l = t.act_link.(0) in
  let id = rpop t.lring t.lhead t.llen l in
  t.n_act_link <- 0;
  Bytes.set t.link_in_set l '\000';
  t.link_load.(l) <- t.link_load.(l) + 1;
  let dst = t.msg_dst.(id) in
  let hops = 1 + walk_route t t.link_dst.(l) dst in
  if t.inbox_high_water < 1 then t.inbox_high_water <- 1;
  Obs.add c_hops hops;
  t.cycle <- t.cycle + hops;
  if Obs.tracing_enabled () then Obs.instant ~arg:hops "netsim.idle_skip";
  let tag = t.msg_tag.(id) in
  let sent = t.msg_sent.(id) in
  free_msg t id;
  t.in_flight <- t.in_flight - 1;
  t.delivered <- t.delivered + 1;
  Obs.incr c_delivered;
  record_latency t (t.cycle - sent);
  on_deliver ~tag t

let run t ~on_deliver =
  Obs.span "netsim.run" @@ fun () ->
  let start = t.cycle in
  while t.in_flight > 0 do
    if t.in_flight = 1 && t.n_act_link = 1 && t.n_act_inbox = 0 then
      fast_forward t ~on_deliver
    else step t ~on_deliver
  done;
  t.cycle - start

let delivered t = t.delivered
let max_link_queue t = t.high_water
let max_inbox_queue t = t.inbox_high_water
let link_loads t = Array.copy t.link_load
let latencies t = Array.sub t.latencies 0 t.nlat
