open Xt_topology

type message = { dst : int; tag : int }

type t = {
  graph : Graph.t;
  router : Router.t;
  link_capacity : int;
  service_rate : int;
  (* FIFO queue per directed link, keyed (from, to) *)
  queues : (int * int, message Queue.t) Hashtbl.t;
  (* arrived messages awaiting CPU service, per vertex *)
  inbox : message Queue.t array;
  mutable cycle : int;
  mutable in_flight : int;
  mutable delivered : int;
  mutable high_water : int;
}

type handler = tag:int -> t -> unit

let create ?(link_capacity = 1) ?(service_rate = max_int) graph =
  if link_capacity <= 0 then invalid_arg "Sim.create: link capacity";
  if service_rate <= 0 then invalid_arg "Sim.create: service rate";
  {
    graph;
    router = Router.create graph;
    link_capacity;
    service_rate;
    queues = Hashtbl.create 256;
    inbox = Array.init (Graph.n graph) (fun _ -> Queue.create ());
    cycle = 0;
    in_flight = 0;
    delivered = 0;
    high_water = 0;
  }

let queue_of t key =
  match Hashtbl.find_opt t.queues key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues key q;
      q

let enqueue t ~at msg =
  if at = msg.dst then Queue.add msg t.inbox.(at)
  else begin
    let hop = Router.next_hop t.router ~current:at ~dst:msg.dst in
    let q = queue_of t (at, hop) in
    Queue.add msg q;
    if Queue.length q > t.high_water then t.high_water <- Queue.length q
  end

let send t ~src ~dst ~tag =
  if src < 0 || src >= Graph.n t.graph || dst < 0 || dst >= Graph.n t.graph then
    invalid_arg "Sim.send: vertex out of range";
  t.in_flight <- t.in_flight + 1;
  enqueue t ~at:src { dst; tag }

let run t ~on_deliver =
  let start = t.cycle in
  while t.in_flight > 0 do
    t.cycle <- t.cycle + 1;
    (* 1. links: advance one batch per directed link; arrivals join the
       destination's inbox and may still be served this cycle *)
    let moved = ref [] in
    Hashtbl.iter
      (fun (_, hop) q ->
        for _ = 1 to min t.link_capacity (Queue.length q) do
          moved := (hop, Queue.pop q) :: !moved
        done)
      t.queues;
    List.iter
      (fun (at, msg) ->
        if msg.dst = at then Queue.add msg t.inbox.(at) else enqueue t ~at msg)
      !moved;
    (* 2. CPU service: each vertex completes up to service_rate messages;
       completions may inject new traffic (carried next cycle) *)
    let served = ref [] in
    Array.iter
      (fun q ->
        for _ = 1 to min t.service_rate (Queue.length q) do
          served := Queue.pop q :: !served
        done)
      t.inbox;
    List.iter
      (fun msg ->
        t.in_flight <- t.in_flight - 1;
        t.delivered <- t.delivered + 1;
        on_deliver ~tag:msg.tag t)
      !served
  done;
  t.cycle - start

let delivered t = t.delivered
let max_link_queue t = t.high_water
