(** Divide-and-conquer communication workloads over a guest binary tree,
    executed on an arbitrary host through an embedding.

    Each workload is a dependency-driven message protocol between guest
    nodes; guest messages travel between the images of the nodes under the
    placement, so running the same workload on the guest itself (identity
    placement) and on an embedded host measures the {e slowdown} that the
    paper's dilation bounds: constant dilation and bounded congestion give
    constant-factor slowdown. Passing a finite [service_rate] additionally
    charges the computation side of the load factor.

    The protocols are defined once against the {!CORE} interface and
    instantiated by {!Make}; the toplevel values below are
    [Make (Sim)] — the instantiation over the active-set core. The
    equivalence tests and the bench harness also instantiate
    [Make (Sim_ref)] to replay identical workloads on the retained
    reference core. *)

(** The minimal simulator interface a workload needs. Both {!Sim} and
    {!Sim_ref} satisfy it. *)
module type CORE = sig
  type t

  val create :
    ?link_capacity:int -> ?service_rate:int -> ?shards:int -> Xt_topology.Graph.t -> t
  val send : t -> src:int -> dst:int -> tag:int -> unit
  val run : t -> on_deliver:(tag:int -> t -> unit) -> int
end

module Make (C : CORE) : sig
  type spec = {
    name : string;
    run : C.t -> place:int array -> tree:Xt_bintree.Bintree.t -> int;
  }

  val reduction : spec
  val broadcast : spec
  val all_reduce : spec
  val pingpong_sweep : spec
  val permutation : spec
  val workloads : spec list
  val guest_graph : Xt_bintree.Bintree.t -> Xt_topology.Graph.t

  val run_native :
    ?link_capacity:int -> ?service_rate:int -> ?shards:int -> spec -> Xt_bintree.Bintree.t -> int

  val run_embedded :
    ?link_capacity:int ->
    ?service_rate:int ->
    ?shards:int ->
    spec ->
    Xt_embedding.Embedding.t ->
    int

  val run_on :
    ?link_capacity:int ->
    ?service_rate:int ->
    ?shards:int ->
    spec ->
    Xt_embedding.Embedding.t ->
    C.t * int

  val slowdown : spec -> Xt_embedding.Embedding.t -> float
end

type spec = {
  name : string;
  run : Sim.t -> place:int array -> tree:Xt_bintree.Bintree.t -> int;
  (** Drives the protocol on a caller-supplied simulator; returns the
      cycle count. *)
}

val reduction : spec
(** Leaves send to parents; every internal node forwards once all its
    children have arrived (one combine wave, as in parallel reduce). *)

val broadcast : spec
(** The root sends to its children, each node forwards downwards. *)

val all_reduce : spec
(** A reduction followed by a broadcast of the result. *)

val pingpong_sweep : spec
(** Every guest edge, one after another, carries a request/reply pair —
    latency-bound, measures raw dilation without overlap. *)

val permutation : spec
(** Every guest node sends one message to its antipode in id space — a
    fixed derangement unrelated to the tree structure, stressing
    congestion rather than dilation. *)

val workloads : spec list

val guest_graph : Xt_bintree.Bintree.t -> Xt_topology.Graph.t
(** The guest tree as a host graph (identity placement target). *)

val run_native :
  ?link_capacity:int -> ?service_rate:int -> ?shards:int -> spec -> Xt_bintree.Bintree.t -> int
(** Cycles on the guest tree itself (identity placement). [shards]
    partitions the simulated host as in {!Sim.create} — the result is
    identical at every setting. *)

val run_embedded :
  ?link_capacity:int -> ?service_rate:int -> ?shards:int -> spec -> Xt_embedding.Embedding.t -> int
(** Cycles on the embedding's host. *)

val run_on :
  ?link_capacity:int ->
  ?service_rate:int ->
  ?shards:int ->
  spec ->
  Xt_embedding.Embedding.t ->
  Sim.t * int
(** Like {!run_embedded} but also returns the finished simulator, for
    queue statistics. *)

val slowdown : spec -> Xt_embedding.Embedding.t -> float
(** [run_embedded / run_native] for the embedding's guest. *)

(** {2 Suite replay}

    A batch of independent (workload × tree × host) replays fanned
    across the {!Xt_prelude.Parallel} domain pool — each case builds its
    own simulator, so replays share nothing and scale with cores. *)

type case = {
  label : string;
  workload : spec;
  tree : Xt_bintree.Bintree.t;
  embedding : Xt_embedding.Embedding.t option;
      (** [None] replays natively on the guest tree itself. The layering
          puts embedding construction above this library, so callers
          supply ready-made embeddings. *)
}

type outcome = {
  case : case;
  cycles : int;
  delivered : int;
  hops : int;      (** total link traversals, [sum link_loads] *)
  max_queue : int;
  max_inbox : int;
  seconds : float; (** wall-clock of this replay alone *)
}

val native_case : ?label:string -> spec -> Xt_bintree.Bintree.t -> case
val embedded_case : ?label:string -> spec -> Xt_embedding.Embedding.t -> case

val run_case : ?link_capacity:int -> ?service_rate:int -> ?shards:int -> case -> outcome
(** Replay one case on a fresh simulator ([shards] as in
    {!Sim.create}). *)

val run_suite :
  ?link_capacity:int ->
  ?service_rate:int ->
  ?shards:int ->
  ?domains:int ->
  case list ->
  outcome list
(** Replay every case, outcomes in input order; independent cases run on
    the domain pool ([domains] as in {!Xt_prelude.Parallel.map}).
    [shards] additionally parallelises {e within} each replay — useful
    when one big replay dominates the suite. *)
