(** Divide-and-conquer communication workloads over a guest binary tree,
    executed on an arbitrary host through an embedding.

    Each workload is a dependency-driven message protocol between guest
    nodes; guest messages travel between the images of the nodes under the
    placement, so running the same workload on the guest itself (identity
    placement) and on an embedded host measures the {e slowdown} that the
    paper's dilation bounds: constant dilation and bounded congestion give
    constant-factor slowdown. Passing a finite [service_rate] additionally
    charges the computation side of the load factor. *)

type spec = {
  name : string;
  run : Sim.t -> place:int array -> tree:Xt_bintree.Bintree.t -> int;
  (** Drives the protocol on a caller-supplied simulator; returns the
      cycle count. *)
}

val reduction : spec
(** Leaves send to parents; every internal node forwards once all its
    children have arrived (one combine wave, as in parallel reduce). *)

val broadcast : spec
(** The root sends to its children, each node forwards downwards. *)

val all_reduce : spec
(** A reduction followed by a broadcast of the result. *)

val pingpong_sweep : spec
(** Every guest edge, one after another, carries a request/reply pair —
    latency-bound, measures raw dilation without overlap. *)

val permutation : spec
(** Every guest node sends one message to its antipode in id space — a
    fixed derangement unrelated to the tree structure, stressing
    congestion rather than dilation. *)

val workloads : spec list

val run_native : ?link_capacity:int -> ?service_rate:int -> spec -> Xt_bintree.Bintree.t -> int
(** Cycles on the guest tree itself (identity placement). *)

val run_embedded : ?link_capacity:int -> ?service_rate:int -> spec -> Xt_embedding.Embedding.t -> int
(** Cycles on the embedding's host. *)

val run_on :
  ?link_capacity:int -> ?service_rate:int -> spec -> Xt_embedding.Embedding.t -> Sim.t * int
(** Like {!run_embedded} but also returns the finished simulator, for
    queue statistics. *)

val slowdown : spec -> Xt_embedding.Embedding.t -> float
(** [run_embedded / run_native] for the embedding's guest. *)
