(** A synchronous, cycle-accurate store-and-forward network simulator.

    Every directed link transmits at most [link_capacity] messages per
    cycle (FIFO per link). A message sent at cycle [t] starts moving at
    cycle [t+1]; a message to the sender's own vertex is delivered at
    [t+1] without using any link. Delivery callbacks may inject further
    messages, so dependency chains (reductions, broadcasts) unfold
    naturally. [run] executes until the network is quiescent and returns
    the cycle count — the quantity the paper's dilation is a proxy for.

    The core is event-driven: dense active sets track only the links
    and inboxes that currently hold messages (drained in link-index
    order, so results are bit-identical to a full sweep — the retained
    {!Sim_ref} is the executable specification), message FIFOs are
    growable int rings over a flat arena, and the steady-state loop
    allocates nothing. When the network is latency-bound — exactly one
    message in flight, sitting on a link — [run] skips the idle cycles
    and fast-forwards the message along its whole remaining route, so
    serial workloads cost O(total hops) instead of
    O(cycles × topology).

    With [?shards] > 1 the host vertices are partitioned into
    contiguous shards (following the X-tree's recursive cut when the
    host is an X-tree, equal id ranges otherwise) and each stepped
    cycle runs as three barrier-separated phases on the
    [Xt_prelude.Parallel] domain pool — link drain, boundary exchange,
    inbox service — with delivery callbacks replayed on the calling
    domain in the reference order. Every observable is bit-identical at
    every shard count; see the determinism argument in sim.ml and the
    "Sharded simulation" section of EXPERIMENTS.md. The 1-shard path is
    the frozen sequential core and never touches the pool.

    The simulator records through [Xt_obs.Obs]: the [netsim.sent] /
    [netsim.delivered] / [netsim.hops] counters and the
    [netsim.latency_cycles] histogram when metrics are enabled
    (sharded runs add the [netsim.shard.boundary_msgs] counter and the
    [netsim.shard.barrier_wait_ns] histogram), and per-cycle
    [netsim.in_flight] / [netsim.queued] / [netsim.queue_depth_max] /
    [netsim.inbox_depth_max] / [netsim.link_util_pct] counter tracks
    when tracing is enabled (sharded runs add [netsim.shard.boundary]
    and a per-shard [netsim.shard.moved_<s>] utilization track; all
    emitted only on stepped cycles; a skipped stretch leaves a
    [netsim.idle_skip] instant carrying the number of cycles
    jumped). *)

type t

type handler = tag:int -> t -> unit
(** Called when a message with the given [tag] is delivered; may call
    {!send} to continue the protocol. *)

val create :
  ?link_capacity:int -> ?service_rate:int -> ?shards:int -> Xt_topology.Graph.t -> t
(** [service_rate] (default unlimited) caps how many arrived messages one
    vertex can {e complete} per cycle — the computation side of the
    paper's load factor: a vertex carrying 16 guest nodes serialises their
    work. Arrivals beyond the rate wait in the vertex inbox.

    [shards] (default 1) partitions the host across that many domain
    lanes; it is clamped to the vertex count. Raises [Invalid_argument]
    if [< 1]. Results are bit-identical at every setting — shards only
    changes who executes the work, never what is computed. *)

val send : t -> src:int -> dst:int -> tag:int -> unit
(** Inject a message at the current cycle. *)

val run : t -> on_deliver:handler -> int
(** Drive the network to quiescence; returns the number of cycles taken
    (0 if nothing was ever sent). Raises [Invalid_argument] if a message
    has an unreachable destination. *)

val delivered : t -> int
(** Total messages delivered so far. *)

val max_link_queue : t -> int
(** High-water mark of any link queue — a congestion indicator. *)

val max_inbox_queue : t -> int
(** High-water mark of any vertex inbox — the computation-side backlog
    that builds up whenever [service_rate] is finite. Every delivered
    message passes through its destination inbox, so this is at least 1
    once anything has arrived. *)

val link_loads : t -> int array
(** Total messages that traversed each directed link, indexed by
    [2 * edge_id + direction] (direction 0 points at the
    higher-numbered endpoint). Sums to the total hop count. *)

val latencies : t -> int array
(** Per-message end-to-end latency in cycles (injection to service
    completion), in delivery order — feed to [Stats.of_ints] /
    [Stats.quantiles_of_ints] for p50/p90/p99. *)

val shards : t -> int
(** The number of shards the host was partitioned into (>= 1). *)

val sparse_cutoff : t -> int
(** The current active-queue count at which a stepped cycle dispatches
    to the domain pool rather than running its lanes inline. Sized from
    measured costs: sampled cycles feed EWMA estimates of the pool
    dispatch overhead (the quantity behind [netsim.shard.barrier_wait_ns])
    and of the per-active-queue inline cost, and the cutoff sits at
    their break-even point, clamped to [2·S, 1024·S]. Starts at [16·S]
    until both estimates have a sample. The cutoff only selects who
    executes a cycle's lanes, never what they compute, so every
    observable stays bit-identical whatever value it takes. *)

val shard_of : t -> int -> int
(** The shard owning a vertex. On an X-tree host shards are wedges of
    the recursive cut (each level's index range split into equal
    contiguous bands); otherwise contiguous vertex-id ranges. Raises
    [Invalid_argument] if the vertex is out of range. *)
