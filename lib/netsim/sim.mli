(** A synchronous, cycle-accurate store-and-forward network simulator.

    Every directed link transmits at most [link_capacity] messages per
    cycle (FIFO per link). A message sent at cycle [t] starts moving at
    cycle [t+1]; a message to the sender's own vertex is delivered at
    [t+1] without using any link. Delivery callbacks may inject further
    messages, so dependency chains (reductions, broadcasts) unfold
    naturally. [run] executes until the network is quiescent and returns
    the cycle count — the quantity the paper's dilation is a proxy for.

    The core is event-driven: dense active sets track only the links
    and inboxes that currently hold messages (drained in link-index
    order, so results are bit-identical to a full sweep — the retained
    {!Sim_ref} is the executable specification), message FIFOs are
    growable int rings over a flat arena, and the steady-state loop
    allocates nothing. When the network is latency-bound — exactly one
    message in flight, sitting on a link — [run] skips the idle cycles
    and fast-forwards the message along its whole remaining route, so
    serial workloads cost O(total hops) instead of
    O(cycles × topology).

    The simulator records through [Xt_obs.Obs]: the [netsim.sent] /
    [netsim.delivered] / [netsim.hops] counters and the
    [netsim.latency_cycles] histogram when metrics are enabled, and
    per-cycle [netsim.in_flight] / [netsim.queued] /
    [netsim.queue_depth_max] / [netsim.inbox_depth_max] /
    [netsim.link_util_pct] counter tracks when tracing is enabled
    (emitted only on stepped cycles; a skipped stretch leaves a
    [netsim.idle_skip] instant carrying the number of cycles
    jumped). *)

type t

type handler = tag:int -> t -> unit
(** Called when a message with the given [tag] is delivered; may call
    {!send} to continue the protocol. *)

val create : ?link_capacity:int -> ?service_rate:int -> Xt_topology.Graph.t -> t
(** [service_rate] (default unlimited) caps how many arrived messages one
    vertex can {e complete} per cycle — the computation side of the
    paper's load factor: a vertex carrying 16 guest nodes serialises their
    work. Arrivals beyond the rate wait in the vertex inbox. *)

val send : t -> src:int -> dst:int -> tag:int -> unit
(** Inject a message at the current cycle. *)

val run : t -> on_deliver:handler -> int
(** Drive the network to quiescence; returns the number of cycles taken
    (0 if nothing was ever sent). Raises [Invalid_argument] if a message
    has an unreachable destination. *)

val delivered : t -> int
(** Total messages delivered so far. *)

val max_link_queue : t -> int
(** High-water mark of any link queue — a congestion indicator. *)

val max_inbox_queue : t -> int
(** High-water mark of any vertex inbox — the computation-side backlog
    that builds up whenever [service_rate] is finite. Every delivered
    message passes through its destination inbox, so this is at least 1
    once anything has arrived. *)

val link_loads : t -> int array
(** Total messages that traversed each directed link, indexed by
    [2 * edge_id + direction] (direction 0 points at the
    higher-numbered endpoint). Sums to the total hop count. *)

val latencies : t -> int array
(** Per-message end-to-end latency in cycles (injection to service
    completion), in delivery order — feed to [Stats.of_ints] /
    [Stats.quantiles_of_ints] for p50/p90/p99. *)
