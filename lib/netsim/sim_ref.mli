(** The retained reference simulator core.

    This is the original sweep-based implementation of {!Sim}: every
    cycle it scans {e all} [2m] directed-link queues and {e all} [n]
    vertex inboxes, allocating intermediate lists as it goes — O(cycles
    × topology) instead of the active-set core's O(traffic). It is kept,
    unoptimised and telemetry-free, as the executable specification of
    the cycle semantics: the qcheck equivalence suite
    ([test/test_netsim_ref.ml]) replays every workload through both
    cores via {!Workload.Make} and demands identical cycle counts,
    delivery totals, link loads and latencies, and the bench harness
    records the measured speedup of {!Sim} over this module in
    [BENCH_1.json].

    The interface is the {!Workload.CORE} subset of {!Sim}'s, with the
    same defaults and the same [Invalid_argument] conditions. [shards]
    is accepted for signature compatibility and ignored — the sweep is
    the sequential specification at every shard setting, which is
    exactly what makes it the oracle for the sharded core. *)

type t

val create :
  ?link_capacity:int -> ?service_rate:int -> ?shards:int -> Xt_topology.Graph.t -> t
val send : t -> src:int -> dst:int -> tag:int -> unit
val run : t -> on_deliver:(tag:int -> t -> unit) -> int
val delivered : t -> int
val max_link_queue : t -> int
val max_inbox_queue : t -> int
val link_loads : t -> int array
val latencies : t -> int array
