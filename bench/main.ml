(* Full experiment harness: regenerates every table/figure object of the
   paper (tables F1..E19, see DESIGN.md section 4), then runs the
   bechamel micro-benchmarks.

   Usage: dune exec bench/main.exe [-- OPTIONS]

     --tables-only      skip the micro-benchmarks
     --micro-only       skip the tables
     --csv DIR          also write one CSV per table into DIR
     --jobs N           domain budget for the parallelism inside each
                        table job (default 1; the rendered output is
                        byte-identical for every N)
     --json FILE        write per-table wall-clock timings, domain count
                        and estimated speedup to FILE as JSON
     --smoke            only the cheap smoke-marked tables (seconds, not
                        minutes; used by the @bench-smoke dune alias)
     --no-timings       blank live wall-clock cells (E18) so two runs
                        can be diffed byte-for-byte *)

let rec find_value key = function
  | k :: v :: _ when k = key -> Some v
  | _ :: rest -> find_value key rest
  | [] -> None

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ISSUE 5 acceptance record: measured speedup of the active-set
   simulator core over the retained sweep-based reference on the
   latency-bound pingpong workload, r = 9 X-tree host. Runs with
   metrics disabled (before the table pass enables them) so the replays
   don't pollute the counters block. *)

module RefW = Xt_netsim.Workload.Make (Xt_netsim.Sim_ref)

type sim_record = {
  sim_r : int;
  sim_host : string;
  active_set_seconds : float;
  ref_core_seconds : float;
  cycles_identical : bool;
}

let measure_sim_speedup () =
  let r = 9 in
  let tree = Tables.tree_of "uniform" (Xt_core.Theorem1.optimal_size r) in
  let res = Xt_core.Theorem1.embed tree in
  let e = res.Xt_core.Theorem1.embedding in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let fast_cycles, fast_s =
    time (fun () ->
        Xt_netsim.Workload.run_embedded Xt_netsim.Workload.pingpong_sweep e)
  in
  let ref_cycles, ref_s =
    time (fun () -> RefW.run_embedded RefW.pingpong_sweep e)
  in
  {
    sim_r = r;
    sim_host = Printf.sprintf "X(%d)" res.Xt_core.Theorem1.height;
    active_set_seconds = fast_s;
    ref_core_seconds = ref_s;
    cycles_identical = fast_cycles = ref_cycles;
  }

(* Machine-readable run record. Jobs run sequentially (the parallelism
   is inside each job), so every stage time is the true cost of that
   table at the configured budget and the sum matches the wall clock up
   to bookkeeping. [speedup_vs_sequential] (sum / wall, ~1.0 since the
   job loop went sequential) is kept for comparability with earlier
   records; [speedup_estimate_reliable] records whether the machine has
   a core per domain, without which intra-job parallelism time-slices. *)
let write_json file ~jobs_flag ~smoke ~wall ~sim timings =
  let sum = List.fold_left (fun acc t -> acc +. t.Tables.seconds) 0. timings in
  let cores = Domain.recommended_domain_count () in
  let domains = Xt_prelude.Parallel.domain_budget () in
  let counters = (Xt_obs.Obs.drain ()).Xt_obs.Obs.counters in
  let oc = open_out file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"tables\",\n";
  Printf.fprintf oc "  \"cores\": %d,\n" cores;
  Printf.fprintf oc "  \"domains\": %d,\n" domains;
  Printf.fprintf oc "  \"jobs_flag\": %d,\n" jobs_flag;
  Printf.fprintf oc "  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"stages\": [\n";
  List.iteri
    (fun i t ->
      Printf.fprintf oc "    { \"name\": \"%s\", \"seconds\": %.6f }%s\n"
        (json_escape t.Tables.job) t.Tables.seconds
        (if i = List.length timings - 1 then "" else ","))
    timings;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"counters\": {\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    \"%s\": %d%s\n" (json_escape name) v
        (if i = List.length counters - 1 then "" else ","))
    counters;
  Printf.fprintf oc "  },\n";
  (match sim with
  | None -> ()
  | Some s ->
      Printf.fprintf oc "  \"sim\": {\n";
      Printf.fprintf oc "    \"workload\": \"pingpong-sweep\",\n";
      Printf.fprintf oc "    \"r\": %d,\n" s.sim_r;
      Printf.fprintf oc "    \"host\": \"%s\",\n" (json_escape s.sim_host);
      Printf.fprintf oc "    \"ref_core_seconds\": %.6f,\n" s.ref_core_seconds;
      Printf.fprintf oc "    \"active_set_seconds\": %.6f,\n" s.active_set_seconds;
      Printf.fprintf oc "    \"speedup\": %.2f,\n"
        (if s.active_set_seconds > 0. then s.ref_core_seconds /. s.active_set_seconds else 0.);
      Printf.fprintf oc "    \"cycles_identical\": %b\n" s.cycles_identical;
      Printf.fprintf oc "  },\n");
  Printf.fprintf oc "  \"sum_seconds\": %.6f,\n" sum;
  Printf.fprintf oc "  \"wall_seconds\": %.6f,\n" wall;
  Printf.fprintf oc "  \"speedup_vs_sequential\": %.3f,\n" (if wall > 0. then sum /. wall else 1.);
  Printf.fprintf oc "  \"speedup_estimate_reliable\": %b\n" (cores >= domains);
  Printf.fprintf oc "}\n";
  close_out oc

let () =
  let args = Array.to_list Sys.argv in
  let tables = not (List.mem "--micro-only" args) in
  let micro = not (List.mem "--tables-only" args) in
  let smoke = List.mem "--smoke" args in
  if List.mem "--no-timings" args then Tables.live_timings := false;
  let jobs_flag =
    match find_value "--jobs" args with
    | None -> 1
    | Some n -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> n
        | _ -> failwith "main: --jobs expects a positive integer")
  in
  Xt_prelude.Parallel.set_domain_budget jobs_flag;
  (match find_value "--csv" args with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Tables.csv_dir := Some dir
  | None -> ());
  print_endline "Simulating Binary Trees on X-Trees (Monien, SPAA 1991) - reproduction harness";
  print_endline "==============================================================================";
  print_newline ();
  if tables then begin
    let json_file = find_value "--json" args in
    (* Metrics are still off here, so the speedup replays leave no
       trace in the counters block below. *)
    let sim = if json_file <> None && not smoke then Some (measure_sim_speedup ()) else None in
    (* The JSON record carries the work counters, so count while the
       tables run; without --json the harness stays instrumentation-free. *)
    if json_file <> None then Xt_obs.Obs.enable_metrics ();
    let t0 = Unix.gettimeofday () in
    let timings = Tables.run_jobs ~smoke () in
    let wall = Unix.gettimeofday () -. t0 in
    match json_file with
    | Some file -> write_json file ~jobs_flag ~smoke ~wall ~sim timings
    | None -> ()
  end;
  if micro then Micro.run ()
