(* Full experiment harness: regenerates every table/figure object of the
   paper (tables F1..E19, see DESIGN.md section 4), then runs the
   bechamel micro-benchmarks.

   Usage: dune exec bench/main.exe [-- OPTIONS]

     --tables-only      skip the micro-benchmarks
     --micro-only       skip the tables
     --csv DIR          also write one CSV per table into DIR
     --jobs N           domain budget for the parallelism inside each
                        table job (default 1; the rendered output is
                        byte-identical for every N)
     --json FILE        write per-table wall-clock timings, domain count
                        and estimated speedup to FILE as JSON
     --smoke            only the cheap smoke-marked tables (seconds, not
                        minutes; used by the @bench-smoke dune alias)
     --no-timings       blank live wall-clock cells (E18) so two runs
                        can be diffed byte-for-byte
     --trace FILE       record span tracing (with GC sampling) across the
                        table jobs and write a Chrome trace to FILE
     --baseline FILE    compare per-stage times against a stored --json
                        record (e.g. BENCH_1.json) and print a ratio table
     --check            exit non-zero if any stage regressed past the
                        threshold vs. --baseline (the perf gate)
     --check-threshold R  ratio above which a stage counts as regressed
                        (default 1.5)
     --check-min-seconds S  ignore stages where both baseline and current
                        are below S (default 0.05: timer noise, not perf)
     --history FILE     append one JSON line per invocation (default
                        BENCH_HISTORY.jsonl)
     --no-history       skip the history append (hermetic runs) *)

let rec find_value key = function
  | k :: v :: _ when k = key -> Some v
  | _ :: rest -> find_value key rest
  | [] -> None

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ISSUE 5 acceptance record: measured speedup of the active-set
   simulator core over the retained sweep-based reference on the
   latency-bound pingpong workload, r = 9 X-tree host. Runs with
   metrics disabled (before the table pass enables them) so the replays
   don't pollute the counters block. *)

module RefW = Xt_netsim.Workload.Make (Xt_netsim.Sim_ref)

type sim_record = {
  sim_r : int;
  sim_host : string;
  active_set_seconds : float;
  ref_core_seconds : float;
  cycles_identical : bool;
}

let measure_sim_speedup () =
  let r = 9 in
  let tree = Tables.tree_of "uniform" (Xt_core.Theorem1.optimal_size r) in
  let res = Xt_core.Theorem1.embed tree in
  let e = res.Xt_core.Theorem1.embedding in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let fast_cycles, fast_s =
    time (fun () ->
        Xt_netsim.Workload.run_embedded Xt_netsim.Workload.pingpong_sweep e)
  in
  let ref_cycles, ref_s =
    time (fun () -> RefW.run_embedded RefW.pingpong_sweep e)
  in
  {
    sim_r = r;
    sim_host = Printf.sprintf "X(%d)" res.Xt_core.Theorem1.height;
    active_set_seconds = fast_s;
    ref_core_seconds = ref_s;
    cycles_identical = fast_cycles = ref_cycles;
  }

(* The embedding-service warmth probe behind the JSON "serve" block: one
   cold session and one snapshot-warm restart over the same request
   stream. The hit rates are measured on the stream's first pass over
   the distinct shapes — near 0% cold, 100% warm — and the responses
   must be byte-identical across the restart. *)
type serve_session = {
  sv_hit_rate : float;
  sv_loaded : int;
  sv_rps : float;
  sv_p50_us : float;
  sv_p90_us : float;
  sv_p99_us : float;
}

type serve_probe = {
  serve_shapes : int;
  serve_requests : int;
  cold : serve_session;
  warm : serve_session;
  responses_identical : bool;
}

let measure_serve_warmth () =
  let open Xt_serve in
  let snapshot = Filename.temp_file "xtree-bench-serve" ".xtsm" in
  Sys.remove snapshot;
  let config = { Serve.default with Serve.snapshot = Some snapshot } in
  let k = 8 in
  let pool = Loadgen.make_shapes ~seed:41 ~count:k ~size:240 in
  (* a first pass over the distinct shapes (the warmth measurement) plus
     a skewed tail (the throughput measurement), like table D4 *)
  let requests =
    Array.to_list pool @ Loadgen.skewed_stream ~seed:41 ~shapes:pool ~requests:64 ~skew:1.2
  in
  let session () =
    let ((cache, loaded) as state) = Serve.make_state config in
    let replies = ref [] in
    let on_reply (r : Loadgen.reply) = replies := r.Loadgen.payload :: !replies in
    let o, _summary =
      Serve.in_process ~config ~state (fun ch -> Loadgen.replay ~on_reply ~requests ch)
    in
    let s = Xt_core.Theorem1.cache_stats cache in
    (* every miss is a distinct shape the snapshot did not already hold *)
    let q = Xt_prelude.Stats.quantiles_of_ints o.Loadgen.rtt_ns in
    ( {
        sv_hit_rate = 1. -. (float_of_int s.Xt_prelude.Cache.misses /. float_of_int k);
        sv_loaded = loaded;
        sv_rps =
          float_of_int o.Loadgen.sent /. (float_of_int o.Loadgen.wall_ns /. 1e9);
        sv_p50_us = q.Xt_prelude.Stats.p50 /. 1e3;
        sv_p90_us = q.Xt_prelude.Stats.p90 /. 1e3;
        sv_p99_us = q.Xt_prelude.Stats.p99 /. 1e3;
      },
      List.rev !replies )
  in
  let cold, cold_replies = session () in
  let warm, warm_replies = session () in
  if Sys.file_exists snapshot then Sys.remove snapshot;
  {
    serve_shapes = k;
    serve_requests = List.length requests;
    cold;
    warm;
    responses_identical = cold_replies = warm_replies;
  }

(* Machine-readable run record. Jobs run sequentially (the parallelism
   is inside each job), so every stage time is the true cost of that
   table at the configured budget and the sum matches the wall clock up
   to bookkeeping. [speedup_vs_sequential] (sum / wall, ~1.0 since the
   job loop went sequential) is kept for comparability with earlier
   records; [speedup_estimate_reliable] records whether the machine has
   a core per domain, without which intra-job parallelism time-slices. *)
let write_json file ~jobs_flag ~smoke ~wall ~sim ~serve timings =
  let sum = List.fold_left (fun acc t -> acc +. t.Tables.seconds) 0. timings in
  let cores = Domain.recommended_domain_count () in
  let domains = Xt_prelude.Parallel.domain_budget () in
  let counters = (Xt_obs.Obs.drain ()).Xt_obs.Obs.counters in
  let oc = open_out file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"tables\",\n";
  Printf.fprintf oc "  \"cores\": %d,\n" cores;
  Printf.fprintf oc "  \"domains\": %d,\n" domains;
  Printf.fprintf oc "  \"jobs_flag\": %d,\n" jobs_flag;
  Printf.fprintf oc "  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"stages\": [\n";
  List.iteri
    (fun i t ->
      Printf.fprintf oc
        "    { \"name\": \"%s\", \"seconds\": %.6f, \"minor_words\": %d, \"major_words\": %d }%s\n"
        (json_escape t.Tables.job) t.Tables.seconds t.Tables.minor_words t.Tables.major_words
        (if i = List.length timings - 1 then "" else ","))
    timings;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"counters\": {\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    \"%s\": %d%s\n" (json_escape name) v
        (if i = List.length counters - 1 then "" else ","))
    counters;
  Printf.fprintf oc "  },\n";
  (match sim with
  | None -> ()
  | Some s ->
      Printf.fprintf oc "  \"sim\": {\n";
      Printf.fprintf oc "    \"workload\": \"pingpong-sweep\",\n";
      Printf.fprintf oc "    \"r\": %d,\n" s.sim_r;
      Printf.fprintf oc "    \"host\": \"%s\",\n" (json_escape s.sim_host);
      Printf.fprintf oc "    \"ref_core_seconds\": %.6f,\n" s.ref_core_seconds;
      Printf.fprintf oc "    \"active_set_seconds\": %.6f,\n" s.active_set_seconds;
      Printf.fprintf oc "    \"speedup\": %.2f,\n"
        (if s.active_set_seconds > 0. then s.ref_core_seconds /. s.active_set_seconds else 0.);
      Printf.fprintf oc "    \"cycles_identical\": %b\n" s.cycles_identical;
      Printf.fprintf oc "  },\n");
  (match serve with
  | None -> ()
  | Some p ->
      let session name s tail =
        Printf.fprintf oc "    \"%s\": {\n" name;
        Printf.fprintf oc "      \"first_pass_hit_rate\": %.3f,\n" s.sv_hit_rate;
        Printf.fprintf oc "      \"snapshot_loaded\": %d,\n" s.sv_loaded;
        Printf.fprintf oc "      \"rps\": %.0f,\n" s.sv_rps;
        Printf.fprintf oc "      \"p50_us\": %.1f,\n" s.sv_p50_us;
        Printf.fprintf oc "      \"p90_us\": %.1f,\n" s.sv_p90_us;
        Printf.fprintf oc "      \"p99_us\": %.1f\n" s.sv_p99_us;
        Printf.fprintf oc "    }%s\n" tail
      in
      Printf.fprintf oc "  \"serve\": {\n";
      Printf.fprintf oc "    \"shapes\": %d,\n" p.serve_shapes;
      Printf.fprintf oc "    \"requests\": %d,\n" p.serve_requests;
      session "cold" p.cold ",";
      session "warm" p.warm ",";
      Printf.fprintf oc "    \"responses_identical\": %b\n" p.responses_identical;
      Printf.fprintf oc "  },\n");
  Printf.fprintf oc "  \"sum_seconds\": %.6f,\n" sum;
  Printf.fprintf oc "  \"wall_seconds\": %.6f,\n" wall;
  Printf.fprintf oc "  \"speedup_vs_sequential\": %.3f,\n" (if wall > 0. then sum /. wall else 1.);
  Printf.fprintf oc "  \"speedup_estimate_reliable\": %b\n" (cores >= domains);
  Printf.fprintf oc "}\n";
  close_out oc

(* ---------------- perf-regression gate ---------------- *)

module J = Xt_obs.Tiny_json

let read_file file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Stage name -> seconds from a --json record (tolerates records written
   before the minor/major-words fields existed). *)
let load_baseline file =
  match J.parse (read_file file) with
  | Error msg -> Error msg
  | Ok doc -> (
      match Option.bind (J.member "stages" doc) J.to_list with
      | None -> Error "no stages array"
      | Some stages ->
          Ok
            (List.filter_map
               (fun st ->
                 match
                   ( Option.bind (J.member "name" st) J.to_string,
                     Option.bind (J.member "seconds" st) J.to_float )
                 with
                 | Some name, Some seconds -> Some (name, seconds)
                 | _ -> None)
               stages))

(* Print the per-stage ratio table and return the number of stages that
   regressed past [threshold]. Stages where both sides sit below
   [min_seconds] never count: at that scale the timer measures noise.
   Stages absent from the baseline report as "new" and never fail the
   gate, so adding a table does not require regenerating the baseline. *)
let check_baseline ~baseline_file ~threshold ~min_seconds timings =
  match load_baseline baseline_file with
  | Error msg ->
      Printf.eprintf "cannot read baseline %s: %s\n" baseline_file msg;
      exit 2
  | Ok base ->
      let t =
        Xt_prelude.Tab.create
          ~title:(Printf.sprintf "perf gate vs %s (threshold %.2fx)" baseline_file threshold)
          [ "stage"; "baseline_s"; "current_s"; "ratio"; "status" ]
      in
      let slow = ref 0 in
      List.iter
        (fun (tm : Tables.timing) ->
          match List.assoc_opt tm.Tables.job base with
          | None ->
              Xt_prelude.Tab.add_row t
                [ tm.Tables.job; "-"; Printf.sprintf "%.3f" tm.Tables.seconds; "-"; "new" ]
          | Some b ->
              let ratio = if b > 0. then tm.Tables.seconds /. b else infinity in
              let measurable = b >= min_seconds || tm.Tables.seconds >= min_seconds in
              let status =
                if ratio > threshold && measurable then begin
                  incr slow;
                  "SLOW"
                end
                else "ok"
              in
              Xt_prelude.Tab.add_row t
                [
                  tm.Tables.job;
                  Printf.sprintf "%.3f" b;
                  Printf.sprintf "%.3f" tm.Tables.seconds;
                  Printf.sprintf "%.2f" ratio;
                  status;
                ])
        timings;
      Xt_prelude.Tab.print t;
      if !slow > 0 then
        Printf.printf "perf gate: FAIL (%d stage(s) beyond %.2fx)\n" !slow threshold
      else Printf.printf "perf gate: PASS\n";
      !slow

(* One compact JSON line per invocation, so the perf trajectory survives
   baseline regeneration. *)
let append_history file ~jobs_flag ~smoke ~wall timings =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file in
  Printf.fprintf oc "{\"utc\":%.0f,\"bench\":\"tables\",\"smoke\":%b,\"jobs\":%d,\"domains\":%d"
    (Unix.time ()) smoke jobs_flag
    (Xt_prelude.Parallel.domain_budget ());
  Printf.fprintf oc ",\"wall_seconds\":%.6f,\"stages\":{" wall;
  List.iteri
    (fun i (tm : Tables.timing) ->
      Printf.fprintf oc "%s\"%s\":%.6f"
        (if i = 0 then "" else ",")
        (json_escape tm.Tables.job) tm.Tables.seconds)
    timings;
  Printf.fprintf oc "}}\n";
  close_out oc

let () =
  let args = Array.to_list Sys.argv in
  let tables = not (List.mem "--micro-only" args) in
  let micro = not (List.mem "--tables-only" args) in
  let smoke = List.mem "--smoke" args in
  if List.mem "--no-timings" args then Tables.live_timings := false;
  let jobs_flag =
    match find_value "--jobs" args with
    | None -> 1
    | Some n -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> n
        | _ -> failwith "main: --jobs expects a positive integer")
  in
  Xt_prelude.Parallel.set_domain_budget jobs_flag;
  (match find_value "--csv" args with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Tables.csv_dir := Some dir
  | None -> ());
  print_endline "Simulating Binary Trees on X-Trees (Monien, SPAA 1991) - reproduction harness";
  print_endline "==============================================================================";
  print_newline ();
  let check = List.mem "--check" args in
  let baseline_file = find_value "--baseline" args in
  let threshold =
    match find_value "--check-threshold" args with
    | None -> 1.5
    | Some s -> (
        match float_of_string_opt s with
        | Some r when r > 0. -> r
        | _ -> failwith "main: --check-threshold expects a positive number")
  in
  let min_seconds =
    match find_value "--check-min-seconds" args with
    | None -> 0.05
    | Some s -> (
        match float_of_string_opt s with
        | Some r when r >= 0. -> r
        | _ -> failwith "main: --check-min-seconds expects a non-negative number")
  in
  let history_file =
    if List.mem "--no-history" args then None
    else Some (Option.value ~default:"BENCH_HISTORY.jsonl" (find_value "--history" args))
  in
  let trace_file = find_value "--trace" args in
  if tables then begin
    let json_file = find_value "--json" args in
    (* Metrics are still off here, so the speedup replays leave no
       trace in the counters block below. *)
    let sim = if json_file <> None && not smoke then Some (measure_sim_speedup ()) else None in
    let serve =
      if json_file <> None && not smoke then Some (measure_serve_warmth ()) else None
    in
    (* The JSON record carries the work counters, so count while the
       tables run; without --json the harness stays instrumentation-free. *)
    if json_file <> None then Xt_obs.Obs.enable_metrics ();
    if trace_file <> None then begin
      Xt_obs.Obs.enable_gc_sampling ();
      Xt_obs.Obs.enable_tracing ()
    end;
    let t0 = Unix.gettimeofday () in
    let timings = Tables.run_jobs ~smoke () in
    let wall = Unix.gettimeofday () -. t0 in
    (match trace_file with
    | Some file ->
        Xt_obs.Obs.write_trace file;
        Printf.printf "trace written to %s\n" file
    | None -> ());
    (match history_file with
    | Some file -> append_history file ~jobs_flag ~smoke ~wall timings
    | None -> ());
    (match json_file with
    | Some file -> write_json file ~jobs_flag ~smoke ~wall ~sim ~serve timings
    | None -> ());
    match baseline_file with
    | Some bfile ->
        let slow = check_baseline ~baseline_file:bfile ~threshold ~min_seconds timings in
        if check && slow > 0 then exit 1
    | None -> ()
  end;
  if micro then Micro.run ()
