(* Full experiment harness: regenerates every table/figure object of the
   paper (tables F1..E14, see DESIGN.md section 4), then runs the
   bechamel micro-benchmarks.

   Usage: dune exec bench/main.exe [-- --tables-only | --micro-only | --csv DIR] *)

let () =
  let args = Array.to_list Sys.argv in
  let tables = not (List.mem "--micro-only" args) in
  let micro = not (List.mem "--tables-only" args) in
  let rec find_csv = function
    | "--csv" :: dir :: _ -> Some dir
    | _ :: rest -> find_csv rest
    | [] -> None
  in
  (match find_csv args with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Tables.csv_dir := Some dir
  | None -> ());
  print_endline "Simulating Binary Trees on X-Trees (Monien, SPAA 1991) - reproduction harness";
  print_endline "==============================================================================";
  print_newline ();
  if tables then Tables.run_all ();
  if micro then Micro.run ()
