(* Bechamel micro-benchmarks B1..B6: wall-clock cost of each pipeline
   stage, one Test.make per stage. *)

open Bechamel
open Toolkit
open Xt_prelude
open Xt_bintree
open Xt_core

let n_bench = Theorem1.optimal_size 5 (* 1008 nodes *)

let prepared_tree =
  lazy
    (let rng = Rng.make ~seed:99 in
     Gen.uniform rng n_bench)

(* B8 exercises the dense-array congestion router end to end: every
   unordered vertex pair of X(6) as a unit demand, one Dijkstra each,
   loads accumulated in the shared edge-indexed array. *)
let congestion_workload =
  lazy
    (let xt = Xt_topology.Xtree.create ~height:6 in
     let g = Xt_topology.Xtree.graph xt in
     let n = Xt_topology.Graph.n g in
     let pairs = ref [] in
     for u = 0 to n - 1 do
       for v = u + 1 to n - 1 do
         pairs := (u, v) :: !pairs
       done
     done;
     (g, !pairs))

let leaf_sweep_xt = lazy (Xt_topology.Xtree.create ~height:10)

(* B10 measures a pure cache hit: the fingerprint, the canonical-string
   verify, the rank remap and Embedding.make — everything but the
   pipeline. Contrast with B3. *)
let warm_cache =
  lazy
    (let tree = Lazy.force prepared_tree in
     let cache = Theorem1.make_cache () in
     ignore (Theorem1.embed ~cache tree);
     (cache, tree))

(* B11 measures the sim's single-message hot path end to end on X(9):
   one send plus a fast-forwarded run across the host — arena alloc,
   ring push, idle-skip route walk, delivery. The active-set core makes
   this O(route length); on the old sweep core it was O(cycles x 2m). *)
let pingpong_host =
  lazy
    (let xt = Xt_topology.Xtree.create ~height:9 in
     let g = Xt_topology.Xtree.graph xt in
     let sim = Xt_netsim.Sim.create g in
     (* warm the router rows and size the arena outside the measurement *)
     Xt_netsim.Sim.send sim ~src:511 ~dst:1022 ~tag:0;
     ignore (Xt_netsim.Sim.run sim ~on_deliver:(fun ~tag:_ _ -> ()));
     sim)

let tests =
  Test.make_grouped ~name:"xtree"
    [
      Test.make ~name:"B1 generate uniform n=1008"
        (Staged.stage (fun () ->
             let rng = Rng.make ~seed:1 in
             ignore (Gen.uniform rng n_bench)));
      Test.make ~name:"B2 lemma2 split n=1008"
        (Staged.stage (fun () ->
             let tree = Lazy.force prepared_tree in
             let ws = Separator.make_ws tree in
             let piece = { Separator.nodes = List.init n_bench Fun.id; r1 = 0; r2 = None } in
             ignore (Separator.lemma2 ws piece ~target:(n_bench / 2))));
      Test.make ~name:"B3 theorem1 embed n=1008"
        (Staged.stage (fun () ->
             let tree = Lazy.force prepared_tree in
             ignore (Theorem1.embed tree)));
      Test.make ~name:"B4 hypercube transfer n=1008"
        (Staged.stage (fun () ->
             let tree = Lazy.force prepared_tree in
             ignore (Hypercube_transfer.embed tree)));
      Test.make ~name:"B5 N(a) sweep X(8)"
        (Staged.stage (fun () ->
             let xt = Xt_topology.Xtree.create ~height:8 in
             for a = 0 to Xt_topology.Xtree.order xt - 1 do
               ignore (Xt_topology.Xtree.neighbourhood xt a)
             done));
      Test.make ~name:"B6 reduction sim n=1008"
        (Staged.stage (fun () ->
             let tree = Lazy.force prepared_tree in
             ignore (Xt_netsim.Workload.run_native Xt_netsim.Workload.reduction tree)));
      Test.make ~name:"B7 analytic distance sweep X(10)"
        (Staged.stage (fun () ->
             (* 2047 vertices, all distances from one source, no BFS *)
             let xt = Xt_topology.Xtree.create ~height:10 in
             let total = ref 0 in
             for v = 0 to Xt_topology.Xtree.order xt - 1 do
               total := !total + Xt_topology.Xtree.analytic_distance 1000 v
             done;
             ignore !total));
      Test.make ~name:"B8 congestion analyse X(6) all-pairs"
        (Staged.stage (fun () ->
             let g, pairs = Lazy.force congestion_workload in
             ignore (Xt_embedding.Congestion.analyse g pairs)));
      (* Same-level pairs stay on the closed form: no BFS rows, and (as
         asserted by the Gc test in test_topology.ml) no allocation —
         bechamel's minor-words column should read 0 per query. *)
      Test.make ~name:"B9 closed-form distance leaf sweep X(10)"
        (Staged.stage (fun () ->
             let xt = Lazy.force leaf_sweep_xt in
             let lo = 1023 and hi = 2046 in
             let total = ref 0 in
             for v = lo to hi do
               total := !total + Xt_topology.Xtree.distance xt lo v
             done;
             ignore !total));
      Test.make ~name:"B10 theorem1 cached hit n=1008"
        (Staged.stage (fun () ->
             let cache, tree = Lazy.force warm_cache in
             ignore (Theorem1.embed ~cache tree)));
      Test.make ~name:"B11 single-message hot path X(9)"
        (Staged.stage (fun () ->
             let sim = Lazy.force pingpong_host in
             Xt_netsim.Sim.send sim ~src:511 ~dst:1022 ~tag:0;
             ignore (Xt_netsim.Sim.run sim ~on_deliver:(fun ~tag:_ _ -> ()))));
      (* Contrast with B2: same split, but on a long-lived workspace —
         what every Theorem 1 pipeline call pays per piece now that
         workspaces live in per-domain slots. The gap is the cost of
         allocating and re-touching the scratch arrays. *)
      Test.make ~name:"B12 lemma2 split reused ws n=1008"
        (Staged.stage
           (let tree = Lazy.force prepared_tree in
            let ws = Separator.make_ws tree in
            let piece = { Separator.nodes = List.init n_bench Fun.id; r1 = 0; r2 = None } in
            fun () -> ignore (Separator.lemma2 ws piece ~target:(n_bench / 2))));
      (* The price of leaving the flight recorder armed: one span with
         tracing and metrics off is two clock reads plus a handful of
         ring stores. This is the default-on overhead every span-wrapped
         call site pays. *)
      Test.make ~name:"B13 flight-recorder span (no-op body)"
        (Staged.stage (fun () -> Xt_obs.Obs.span "bench.noop" (fun () -> ())));
    ]

let run () =
  print_endline "== Micro-benchmarks (bechamel; ns per run) ==";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%12.0f ns/run" e
        | _ -> "(no estimate)"
      in
      Printf.printf "%-32s %s\n" name est)
    (List.sort compare rows)
