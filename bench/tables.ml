(* Experiment tables F1..E19 — one per paper object, as indexed in
   DESIGN.md section 4. Each function builds one table; the job registry
   at the bottom runs them (optionally through the Parallel pool) and
   prints the rendered tables in registry order, so the output is
   byte-identical whatever the job count. EXPERIMENTS.md records the
   paper-vs-measured comparison of a reference run. *)

open Xt_prelude
open Xt_topology
open Xt_bintree
open Xt_embedding
open Xt_core
open Xt_baseline
open Xt_netsim
open Xt_serve

let families = [ "complete"; "path"; "caterpillar"; "random-bst"; "uniform"; "skewed" ]

(* Where tables go: always stdout; optionally also one CSV per table. *)
let csv_dir : string option ref = ref None

(* "E13b Exact optimal ..." -> "e13b" *)
let slug title =
  let first_token =
    match String.index_opt title ' ' with Some i -> String.sub title 0 i | None -> title
  in
  String.lowercase_ascii first_token

(* Render a finished table (and drop its CSV if requested). Jobs may run
   concurrently, but each writes its own CSV file, so no locking needed. *)
let render t =
  (match !csv_dir with
  | None -> ()
  | Some dir ->
      let file = Filename.concat dir (slug (Tab.title t) ^ ".csv") in
      let oc = open_out file in
      output_string oc (Tab.to_csv t);
      close_out oc);
  Tab.to_string t

(* E18 stamps wall-clock cells; [--no-timings] blanks them so two runs of
   the harness can be diffed byte-for-byte. *)
let live_timings = ref true

let tree_of name n =
  (* a fresh deterministic stream per (name, n) keeps tables stable under
     reordering *)
  let rng = Rng.make ~seed:(Hashtbl.hash (name, n, 20260704)) in
  (Gen.family name).generate rng n

(* ------------------------------------------------------------------ *)

let f1_xtree_structure () =
  let t = Tab.create ~title:"F1  X-tree structure (Figure 1)" [ "r"; "vertices"; "edges"; "tree-edges"; "horiz-edges"; "max-deg"; "diameter" ] in
  List.iter
    (fun r ->
      let xt = Xtree.create ~height:r in
      let g = Xtree.graph xt in
      let tree_edges = Xtree.order xt - 1 in
      let horiz = Graph.m g - tree_edges in
      Tab.add_int_row t (string_of_int r)
        [ Xtree.order xt; Graph.m g; tree_edges; horiz; Graph.max_degree g; Graph.diameter g ])
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
  t

let f2_neighbourhood () =
  let t =
    Tab.create ~title:"F2  Neighbourhood N(a) (Figure 2; paper: |N(a)-a| <= 20, asym <= 5)"
      [ "r"; "max |N(a)-a|"; "max asym in-nbrs" ]
  in
  List.iter
    (fun r ->
      let xt = Xtree.create ~height:r in
      let order = Xtree.order xt in
      let n_of = Array.init order (fun a -> Xtree.neighbourhood xt a) in
      let maxn = ref 0 and maxasym = ref 0 in
      for a = 0 to order - 1 do
        let sz = List.length n_of.(a) - 1 in
        if sz > !maxn then maxn := sz;
        let asym = ref 0 in
        for b = 0 to order - 1 do
          if b <> a && List.mem a n_of.(b) && not (List.mem b n_of.(a)) then incr asym
        done;
        if !asym > !maxasym then maxasym := !asym
      done;
      Tab.add_int_row t (string_of_int r) [ !maxn; !maxasym ])
    [ 2; 3; 4; 5; 6; 7 ];
  t

let f3_network_zoo () =
  let t =
    Tab.create
      ~title:"F3  Network zoo at comparable sizes (context for the paper's introduction)"
      [ "network"; "vertices"; "edges"; "max-deg"; "diameter" ]
  in
  let add name g =
    Tab.add_row t
      [
        name;
        string_of_int (Graph.n g);
        string_of_int (Graph.m g);
        string_of_int (Graph.max_degree g);
        string_of_int (Graph.diameter g);
      ]
  in
  add "X-tree X(7)" (Xtree.graph (Xtree.create ~height:7));
  add "CBT B(7)" (Cbt.graph (Cbt.create ~height:7));
  add "hypercube Q8" (Hypercube.graph (Hypercube.create ~dim:8));
  add "CCC(5)" (Ccc.graph (Ccc.create ~dim:5));
  add "butterfly BF(5)" (Butterfly.graph (Butterfly.create ~dim:5));
  add "grid 16x16" (Grid.graph (Grid.create ~rows:16 ~cols:16));
  t

(* ------------------------------------------------------------------ *)

(* One separator workspace per domain, rebound to whatever tree the
   current cell works on — the parallel trial loops below never allocate
   scratch proportional to the tree. *)
let sep_slots : Separator.ws Parallel.slots = Parallel.make_slots ()

let domain_ws tree =
  let ws = Parallel.slot sep_slots ~default:(fun () -> Separator.make_ws tree) in
  Separator.rebind_ws ws tree;
  ws

let lemma_table ~title ~seed ~lemma ~bound_of ~max_target () =
  let t =
    Tab.create ~title
      [ "family"; "n"; "trials"; "max err"; "err bound"; "max |s1|"; "max |s2|"; "all valid" ]
  in
  (* each lemma table owns its stream: sharing one rng across tables would
     make the numbers depend on execution order, which parallel runs break *)
  let rng = Rng.make ~seed in
  List.iter
    (fun name ->
      List.iter
        (fun n ->
          let tree = tree_of name n in
          let nodes = List.init n Fun.id in
          let low_degree = List.filter (fun v -> Bintree.degree tree v <= 2) nodes in
          let trials = 60 in
          (* draw every trial's parameters up front, in the exact order the
             sequential loop drew them, then evaluate the trials over the
             pool: the folds below are max/and, so the cell is independent
             of evaluation order *)
          let params =
            Array.init trials (fun _ ->
                let r1 = List.nth low_degree (Rng.int rng (List.length low_degree)) in
                let r2_raw = Rng.int rng n in
                let r2 = if r2_raw = r1 then None else Some r2_raw in
                let target = 1 + Rng.int rng (max_target n) in
                (r1, r2, target))
          in
          let outcomes =
            Parallel.map_array
              (fun (r1, r2, target) ->
                let ws = domain_ws tree in
                let piece = { Separator.nodes; r1; r2 } in
                let sp = lemma ws piece ~target in
                let _, n2 = Separator.side_sizes sp in
                let ok = Separator.verify_split ws piece sp = Ok () in
                ( abs (n2 - target),
                  bound_of target,
                  List.length sp.Separator.s1,
                  List.length sp.Separator.s2,
                  ok ))
              params
          in
          let max_err = ref 0 and max_s1 = ref 0 and max_s2 = ref 0 in
          let worst_bound = ref 0 and valid = ref true in
          Array.iter
            (fun (err, bound, s1, s2, ok) ->
              if err > !max_err then max_err := err;
              if err > bound then valid := false;
              if bound > !worst_bound then worst_bound := bound;
              if s1 > !max_s1 then max_s1 := s1;
              if s2 > !max_s2 then max_s2 := s2;
              if not ok then valid := false)
            outcomes;
          Tab.add_row t
            [
              name;
              string_of_int n;
              string_of_int trials;
              string_of_int !max_err;
              string_of_int !worst_bound;
              string_of_int !max_s1;
              string_of_int !max_s2;
              string_of_bool !valid;
            ])
        [ 100; 1000; 8000 ])
    families;
  t

let l1_lemma1 () =
  lemma_table
    ~title:"L1  Lemma 1 splits (paper: |n2-A| <= (A+1)/3, |s1| <= 4, |s2| <= 2)"
    ~seed:20260704 ~lemma:Separator.lemma1
    ~bound_of:(fun target -> (target + 1) / 3)
    ~max_target:(fun n -> max 1 ((3 * n / 4) - 1))
    ()

let l2_lemma2 () =
  lemma_table
    ~title:"L2  Lemma 2 splits (paper: |n2-A| <= (A+4)/9, |s1|,|s2| <= 4)"
    ~seed:20260705 ~lemma:Separator.lemma2
    ~bound_of:(fun target -> (target + 4) / 9)
    ~max_target:(fun n -> n)
    ()

(* ------------------------------------------------------------------ *)

let e1_theorem1 () =
  let t =
    Tab.create
      ~title:"E1  Theorem 1: arbitrary trees into the optimal X-tree (paper: dilation 3, load 16)"
      [ "family"; "r"; "n"; "dilation"; "avg-dil"; "load"; "slots"; "congestion"; "fallbacks" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun r ->
          let n = Theorem1.optimal_size r in
          let tree = tree_of name n in
          let res = Theorem1.embed tree in
          let dist = Theorem1.distance_oracle res in
          let rep = Embedding.report ~dist res.Theorem1.embedding in
          Tab.add_row t
            [
              name;
              string_of_int r;
              string_of_int n;
              string_of_int rep.Embedding.dilation;
              Printf.sprintf "%.2f" rep.Embedding.average_dilation;
              string_of_int rep.Embedding.load;
              string_of_int (16 * Xtree.order res.Theorem1.xt);
              string_of_int rep.Embedding.congestion;
              string_of_int res.Theorem1.fallbacks;
            ])
        [ 3; 5; 7; 9 ])
    families;
  t

let e2_theorem2 () =
  let t =
    Tab.create ~title:"E2  Theorem 2: injective into X(r+4) (paper: dilation <= 11)"
      [ "family"; "r"; "n"; "dilation"; "injective"; "host" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun r ->
          let n = Theorem1.optimal_size r in
          let tree = tree_of name n in
          let res = Theorem2.embed tree in
          let d = Embedding.dilation ~dist:(Theorem2.distance_oracle res) res.Theorem2.embedding in
          Tab.add_row t
            [
              name;
              string_of_int r;
              string_of_int n;
              string_of_int d;
              string_of_bool (Embedding.is_injective res.Theorem2.embedding);
              Printf.sprintf "X(%d)" res.Theorem2.height;
            ])
        [ 3; 5; 7 ])
    families;
  t

let e3_lemma3 () =
  let t =
    Tab.create ~title:"E3  Lemma 3: X(r) -> Q(r+1) (paper: dist <= Delta+1; siblings adjacent)"
      [ "r"; "vertices"; "siblings adjacent"; "distance bound holds" ]
  in
  List.iter
    (fun r ->
      Tab.add_row t
        [
          string_of_int r;
          string_of_int ((2 * Bits.pow2 r) - 1);
          string_of_bool (Hypercube_transfer.siblings_adjacent ~height:r);
          string_of_bool (Hypercube_transfer.lemma3_distance_bound_holds ~height:r);
        ])
    [ 1; 2; 3; 4; 5; 6; 7 ];
  t

let e4_theorem3 () =
  let t =
    Tab.create
      ~title:"E4  Theorem 3: optimal hypercube (paper: load 16 dilation 4; injective dilation 8)"
      [ "family"; "r"; "n"; "dim"; "dilation"; "load"; "inj-dim"; "inj-dilation" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun r ->
          let n = Theorem1.optimal_size r in
          let tree = tree_of name n in
          let res = Hypercube_transfer.embed tree in
          let d =
            Embedding.dilation ~dist:(Hypercube_transfer.distance_oracle res)
              res.Hypercube_transfer.embedding
          in
          let inj = Hypercube_transfer.embed_injective tree in
          let di =
            Embedding.dilation ~dist:(Hypercube_transfer.distance_oracle inj)
              inj.Hypercube_transfer.embedding
          in
          Tab.add_row t
            [
              name;
              string_of_int r;
              string_of_int n;
              string_of_int res.Hypercube_transfer.dim;
              string_of_int d;
              string_of_int (Embedding.load res.Hypercube_transfer.embedding);
              string_of_int inj.Hypercube_transfer.dim;
              string_of_int di;
            ])
        [ 3; 5; 7 ])
    families;
  t

let e5_universal () =
  let t =
    Tab.create ~title:"E5  Theorem 4: universal graph (paper: degree <= 415, every tree spans)"
      [ "height"; "n"; "edges"; "max-degree"; "families ok" ]
  in
  List.iter
    (fun h ->
      let u = Universal.create h in
      let ok = ref 0 in
      List.iter
        (fun name ->
          let tree = tree_of name (Universal.order u) in
          match Universal.spanning_tree_of u tree with Ok _ -> incr ok | Error _ -> ())
        families;
      Tab.add_row t
        [
          string_of_int h;
          string_of_int (Universal.order u);
          string_of_int (Graph.m u.Universal.graph);
          string_of_int (Graph.max_degree u.Universal.graph);
          Printf.sprintf "%d/%d" !ok (List.length families);
        ])
    [ 2; 3; 4; 5 ];
  t

let e6_constant_vs_growing () =
  let t =
    Tab.create
      ~title:"E6  Who wins: Theorem 1 vs baselines (dilation/load; paper: only X-TREE keeps both constant)"
      [ "family"; "r"; "T1 dil"; "T1 load"; "bisect dil"; "bisect load"; "dfs dil"; "dfs load"; "bfs dil"; "bfs load" ]
  in
  (* cells are independent and deterministic per (family, r): fan out over
     the pool, then add the rows in registry order *)
  let cells =
    List.concat_map
      (fun name -> List.map (fun r -> (name, r)) [ 3; 5; 7; 9 ])
      [ "path"; "caterpillar"; "uniform"; "random-bst" ]
  in
  let rows =
    Parallel.map
      (fun (name, r) ->
        let n = Theorem1.optimal_size r in
        let tree = tree_of name n in
        let t1 = Theorem1.embed tree in
        let d1 = Embedding.dilation ~dist:(Theorem1.distance_oracle t1) t1.Theorem1.embedding in
        let rb = Recursive_bisection.embed tree in
        let dfs = Order_layout.embed ~order:Order_layout.Dfs tree in
        let bfs = Order_layout.embed ~order:Order_layout.Bfs tree in
        [
          name;
          string_of_int r;
          string_of_int d1;
          string_of_int (Embedding.load t1.Theorem1.embedding);
          string_of_int (Embedding.dilation rb.Recursive_bisection.embedding);
          string_of_int (Embedding.load rb.Recursive_bisection.embedding);
          string_of_int (Embedding.dilation dfs.Order_layout.embedding);
          string_of_int (Embedding.load dfs.Order_layout.embedding);
          string_of_int (Embedding.dilation bfs.Order_layout.embedding);
          string_of_int (Embedding.load bfs.Order_layout.embedding);
        ])
      cells
  in
  List.iter (Tab.add_row t) rows;
  t

let e7_simulation () =
  let t =
    Tab.create
      ~title:"E7  Clock-cycle simulation: guest tree vs X-tree host (dilation as cycles)"
      [ "family"; "workload"; "native"; "x-tree"; "slowdown"; "peak queue" ]
  in
  List.iter
    (fun name ->
      let n = Theorem1.optimal_size 7 in
      let tree = tree_of name n in
      let res = Theorem1.embed tree in
      List.iter
        (fun (w : Workload.spec) ->
          let native = Workload.run_native w tree in
          let sim, embedded = Workload.run_on w res.Theorem1.embedding in
          Tab.add_row t
            [
              name;
              w.Workload.name;
              string_of_int native;
              string_of_int embedded;
              Printf.sprintf "%.2fx" (float_of_int embedded /. float_of_int (max 1 native));
              string_of_int (Sim.max_link_queue sim);
            ])
        Workload.workloads)
    [ "complete"; "caterpillar"; "uniform"; "random-bst" ];
  t

let e7b_host_comparison () =
  let t =
    Tab.create
      ~title:
        "E7b Host comparison: the same reduction, different hosts/layouts (quality -> cycles)"
      [ "family"; "host/layout"; "cycles"; "slowdown" ]
  in
  List.iter
    (fun name ->
      let n = Theorem1.optimal_size 7 in
      let tree = tree_of name n in
      let native = Workload.run_native Workload.reduction tree in
      let add label e =
        let cycles = Workload.run_embedded Workload.reduction e in
        Tab.add_row t
          [
            name;
            label;
            string_of_int cycles;
            Printf.sprintf "%.2fx" (float_of_int cycles /. float_of_int (max 1 native));
          ]
      in
      Tab.add_row t [ name; "native tree"; string_of_int native; "1.00x" ];
      let t1 = Theorem1.embed tree in
      add "X-tree (Theorem 1)" t1.Theorem1.embedding;
      let t3 = Hypercube_transfer.embed tree in
      add "hypercube (Theorem 3)" t3.Hypercube_transfer.embedding;
      let dfs = Order_layout.embed ~order:Order_layout.Dfs tree in
      add "X-tree (DFS layout)" dfs.Order_layout.embedding;
      let rb = Recursive_bisection.embed tree in
      add "X-tree (bisection)" rb.Recursive_bisection.embedding)
    [ "caterpillar"; "uniform" ];
  t

let e9b_spread () =
  let t =
    Tab.create
      ~title:
        "E9b Subtree-population spread nh-nl per level after the final round (paper: -> 0 above the last two levels)"
      [ "family"; "level j"; "nl(j,r)"; "nh(j,r)"; "target n(r-j)" ]
  in
  let r = 6 in
  List.iter
    (fun name ->
      let tree = tree_of name (Theorem1.optimal_size r) in
      let res = Theorem1.embed ~record_trace:true tree in
      match res.Theorem1.trace with
      | None -> ()
      | Some tr ->
          let last = tr.Theorem1.spreads.(Array.length tr.Theorem1.spreads - 1) in
          Array.iteri
            (fun j (lo, hi) ->
              Tab.add_row t
                [
                  name;
                  string_of_int j;
                  string_of_int lo;
                  string_of_int hi;
                  string_of_int (Theorem1.optimal_size (r - j));
                ])
            last)
    [ "path"; "uniform" ];
  t

let e7c_compute_bound () =
  let t =
    Tab.create
      ~title:
        "E7c Compute-bound regime (service rate 1/cycle): the load factor becomes the serialisation cost"
      [ "family"; "workload"; "native (n CPUs)"; "x-tree (n/16 CPUs)"; "slowdown" ]
  in
  List.iter
    (fun name ->
      let n = Theorem1.optimal_size 6 in
      let tree = tree_of name n in
      let res = Theorem1.embed tree in
      List.iter
        (fun (w : Workload.spec) ->
          let native = Workload.run_native ~service_rate:1 w tree in
          let embedded = Workload.run_embedded ~service_rate:1 w res.Theorem1.embedding in
          Tab.add_row t
            [
              name;
              w.Workload.name;
              string_of_int native;
              string_of_int embedded;
              Printf.sprintf "%.2fx" (float_of_int embedded /. float_of_int (max 1 native));
            ])
        [ Workload.reduction; Workload.broadcast; Workload.permutation ])
    [ "complete"; "uniform" ];
  t

let e13b_structural_guests () =
  let t =
    Tab.create
      ~title:
        "E13b Exact optimal dilation, structural guests (BCHLR separation is asymptotic; tiny X-trees already need 2)"
      [ "guest"; "Q3"; "Q4"; "CCC(3)"; "BF(2)"; "BF(3)"; "grid 4x4" ]
  in
  let hosts =
    [
      Hypercube.graph (Hypercube.create ~dim:3);
      Hypercube.graph (Hypercube.create ~dim:4);
      Ccc.graph (Ccc.create ~dim:3);
      Butterfly.graph (Butterfly.create ~dim:2);
      Butterfly.graph (Butterfly.create ~dim:3);
      Grid.graph (Grid.create ~rows:4 ~cols:4);
    ]
  in
  let probe name guest =
    let cells =
      List.map
        (fun host ->
          match Exact.optimal_dilation_graph ~max_dilation:5 ~guest ~host () with
          | Some d -> string_of_int d
          | None -> "-")
        hosts
    in
    Tab.add_row t (name :: cells)
  in
  probe "X(1) (3)" (Xtree.graph (Xtree.create ~height:1));
  probe "X(2) (7)" (Xtree.graph (Xtree.create ~height:2));
  probe "X(3) (15)" (Xtree.graph (Xtree.create ~height:3));
  probe "grid 2x4 (8)" (Grid.graph (Grid.create ~rows:2 ~cols:4));
  probe "grid 3x3 (9)" (Grid.graph (Grid.create ~rows:3 ~cols:3));
  t

let e14_seed_robustness () =
  let t =
    Tab.create
      ~title:"E14 Robustness over 20 random instances per family (Theorem 1 dilation)"
      [ "family"; "r"; "min dil"; "mean dil"; "max dil"; "max fallbacks" ]
  in
  (* cells are independent: fan out over domains *)
  let cells =
    List.concat_map
      (fun name -> List.map (fun r -> (name, r)) [ 4; 6 ])
      [ "uniform"; "random-bst"; "skewed"; "random-grow" ]
  in
  let rows =
    Parallel.map
      (fun (name, r) ->
        let n = Theorem1.optimal_size r in
        let dils = ref [] and worst_fb = ref 0 in
        for seed = 1 to 20 do
          let rng = Rng.make ~seed:(seed * 7919) in
          let tree = (Gen.family name).generate rng n in
          let res = Theorem1.embed tree in
          let d = Embedding.dilation ~dist:Xtree.analytic_distance res.Theorem1.embedding in
          dils := d :: !dils;
          if res.Theorem1.fallbacks > !worst_fb then worst_fb := res.Theorem1.fallbacks
        done;
        let s = Stats.of_ints (Array.of_list !dils) in
        [
          name;
          string_of_int r;
          Printf.sprintf "%.0f" s.Stats.min;
          Printf.sprintf "%.2f" s.Stats.mean;
          Printf.sprintf "%.0f" s.Stats.max;
          string_of_int !worst_fb;
        ])
      cells
  in
  List.iter (Tab.add_row t) rows;
  t

let e18_scaling () =
  let t =
    Tab.create
      ~title:
        "E18 Scaling: Theorem 1 up to a quarter-million nodes (dilation via the analytic oracle)"
      [ "r"; "n"; "embed seconds"; "dilation"; "load"; "fallbacks"; "fallback rate" ]
  in
  List.iter
    (fun r ->
      let n = Theorem1.optimal_size r in
      let tree = Gen.uniform (Rng.make ~seed:1) n in
      let t0 = Sys.time () in
      let res = Theorem1.embed tree in
      let dt = Sys.time () -. t0 in
      let d = Embedding.dilation ~dist:Xtree.analytic_distance res.Theorem1.embedding in
      Tab.add_row t
        [
          string_of_int r;
          string_of_int n;
          (if !live_timings then Printf.sprintf "%.2f" dt else "-");
          string_of_int d;
          string_of_int (Embedding.load res.Theorem1.embedding);
          string_of_int res.Theorem1.fallbacks;
          Printf.sprintf "%.4f%%" (100. *. float_of_int res.Theorem1.fallbacks /. float_of_int n);
        ])
    [ 8; 9; 10; 11; 12 ];
  t

let e8_cbt_classics () =
  let t =
    Tab.create ~title:"E8  Complete-tree classics (context: identity dil 1; inorder dil 2)"
      [ "r"; "B_r -> X(r) dilation"; "B_r -> Q(r+1) dilation"; "inorder dist property" ]
  in
  List.iter
    (fun r ->
      Tab.add_row t
        [
          string_of_int r;
          string_of_int (Embedding.dilation (Cbt_embeddings.cbt_into_xtree r));
          string_of_int (Embedding.dilation (Cbt_embeddings.inorder_into_hypercube r));
          string_of_bool (Cbt_embeddings.inorder_distance_bound_holds ~height:(min r 6));
        ])
    [ 2; 4; 6; 8 ];
  t

let e9_trace_decay () =
  let t =
    Tab.create
      ~title:"E9  ADJUST convergence: max sibling weight gap per round (paper: Delta(j,i) decays to 0)"
      [ "family"; "round"; "max gap"; "paper envelope 2^(r+2-i)" ]
  in
  let r = 7 in
  List.iter
    (fun name ->
      let tree = tree_of name (Theorem1.optimal_size r) in
      let res = Theorem1.embed ~record_trace:true tree in
      match res.Theorem1.trace with
      | None -> ()
      | Some tr ->
          Array.iteri
            (fun i row ->
              let worst = Array.fold_left max 0 row in
              let envelope = if r + 2 - (i + 1) >= 0 then Bits.pow2 (min 20 (r + 2 - (i + 1))) else 1 in
              Tab.add_row t
                [ name; string_of_int (i + 1); string_of_int worst; string_of_int envelope ])
            tr.Theorem1.rounds)
    [ "path"; "uniform" ];
  t

let e10_conditions () =
  let t =
    Tab.create
      ~title:
        "E10 Conditions (3') and (4), before and after the repair pass (paper invariants, measured)"
      [ "family"; "r"; "edges"; "(3') raw"; "(3') repaired"; "dil raw"; "dil repaired"; "(4) violations" ]
  in
  (* same fan-out as E6: every (family, r) cell is its own job *)
  let cells = List.concat_map (fun name -> List.map (fun r -> (name, r)) [ 3; 5; 7; 9 ]) families in
  let rows =
    Parallel.map
      (fun (name, r) ->
        let tree = tree_of name (Theorem1.optimal_size r) in
        let res = Theorem1.embed tree in
        let c = Conditions.check_theorem1 res in
        let repaired, rep = Repair.improve_theorem1 res in
        let c' = Conditions.check_theorem1 repaired in
        [
          name;
          string_of_int r;
          string_of_int c.Conditions.edges;
          string_of_int c.Conditions.cond3_violations;
          string_of_int c'.Conditions.cond3_violations;
          string_of_int rep.Repair.dilation_before;
          string_of_int rep.Repair.dilation_after;
          string_of_int c.Conditions.cond4_violations;
        ])
      cells
  in
  List.iter (Tab.add_row t) rows;
  t

let e12_ablation () =
  let t =
    Tab.create
      ~title:
        "E12 Ablation: which mechanism buys what (load stays enforced; damage shows in dilation/fallbacks/(3'))"
      [ "family"; "variant"; "dilation"; "avg-dil"; "fallbacks"; "(3') violations" ]
  in
  List.iter
    (fun name ->
      let tree = tree_of name (Theorem1.optimal_size 7) in
      List.iter
        (fun (vname, options) ->
          let res = Theorem1.embed ~options tree in
          let dist = Theorem1.distance_oracle res in
          let c = Conditions.check_theorem1 res in
          Tab.add_row t
            [
              name;
              vname;
              string_of_int (Embedding.dilation ~dist res.Theorem1.embedding);
              Printf.sprintf "%.2f" (Embedding.average_dilation ~dist res.Theorem1.embedding);
              string_of_int res.Theorem1.fallbacks;
              string_of_int c.Conditions.cond3_violations;
            ])
        Options.variants)
    [ "path"; "caterpillar"; "uniform" ];
  t

let e11_online () =
  let t =
    Tab.create
      ~title:
        "E11 Online growth: incremental placement vs offline rebuild (Theorem 1 is the offline bound)"
      [ "n"; "incremental dil"; "after rebuild"; "incr host"; "optimal host"; "load" ]
  in
  let rng = Rng.make ~seed:424242 in
  let d = Dynamic.create () in
  let slots = ref [ Dynamic.root d; Dynamic.root d ] in
  let grow_one () =
    let idx = Rng.int rng (List.length !slots) in
    let parent = List.nth !slots idx in
    match Dynamic.add_child d ~parent with
    | v -> slots := v :: v :: List.filteri (fun i _ -> i <> idx) !slots
    | exception Invalid_argument _ -> slots := List.filteri (fun i _ -> i <> idx) !slots
  in
  List.iter
    (fun checkpoint ->
      while Dynamic.size d < checkpoint do
        grow_one ()
      done;
      let incr_dil = Dynamic.dilation d in
      let incr_host = Dynamic.host_height d in
      let load = Dynamic.load d in
      (* measure the rebuilt quality on a snapshot without disturbing the
         online run *)
      let tree = Dynamic.to_tree d in
      let res = Theorem1.embed tree in
      let res, _ = Repair.improve_theorem1 res in
      let rebuilt = Embedding.dilation ~dist:(Theorem1.distance_oracle res) res.Theorem1.embedding in
      Tab.add_int_row t (string_of_int checkpoint)
        [ incr_dil; rebuilt; incr_host; res.Theorem1.height; load ])
    [ 100; 500; 1000; 2000; 4000; 8000 ];
  t

let e13_exact_optimal () =
  let t =
    Tab.create
      ~title:
        "E13 Exact optimal dilation on small instances (branch & bound; '-' = does not fit)"
      [ "guest"; "X(3)"; "CBT(3)"; "Q4"; "CCC(3)"; "BF(3)"; "grid 4x4" ]
  in
  let hosts =
    [
      Xtree.graph (Xtree.create ~height:3);
      Cbt.graph (Cbt.create ~height:3);
      Hypercube.graph (Hypercube.create ~dim:4);
      Ccc.graph (Ccc.create ~dim:3);
      Butterfly.graph (Butterfly.create ~dim:3);
      Grid.graph (Grid.create ~rows:4 ~cols:4);
    ]
  in
  let probe name guest =
    let cells =
      List.map
        (fun host ->
          match Exact.optimal_dilation ~max_dilation:6 ~guest ~host () with
          | Some d -> string_of_int d
          | None -> "-")
        hosts
    in
    Tab.add_row t (name :: cells)
  in
  probe "complete B_3 (15)" (Gen.complete 15);
  probe "path (15)" (Gen.path 15);
  probe "caterpillar (15)" (Gen.caterpillar 15);
  probe "fibonacci (12)" (Gen.fibonacci 12);
  let rng = Rng.make ~seed:7 in
  probe "uniform (12)" (Gen.uniform rng 12);
  probe "uniform (14)" (Gen.uniform rng 14);
  t

let e15_exhaustive () =
  let t =
    Tab.create
      ~title:
        "E15 Exhaustive verification over ALL binary trees of a size (Catalan(n) guests per row)"
      [ "n"; "capacity"; "host"; "shapes"; "max dilation"; "max load" ]
  in
  List.iter
    (fun (n, capacity) ->
      let maxdil = ref 0 and maxload = ref 0 and count = ref 0 in
      let height = ref 0 in
      Seq.iter
        (fun tree ->
          incr count;
          let res = Theorem1.embed ~capacity tree in
          height := res.Theorem1.height;
          let d = Embedding.dilation ~dist:(Theorem1.distance_oracle res) res.Theorem1.embedding in
          let l = Embedding.load res.Theorem1.embedding in
          if d > !maxdil then maxdil := d;
          if l > !maxload then maxload := l)
        (Enum.all_shapes n);
      Tab.add_row t
        [
          string_of_int n;
          string_of_int capacity;
          Printf.sprintf "X(%d)" !height;
          string_of_int !count;
          string_of_int !maxdil;
          string_of_int !maxload;
        ])
    [ (6, 2); (7, 1); (9, 2); (10, 4); (11, 16) ];
  t

let e16_congestion_routing () =
  let t =
    Tab.create
      ~title:
        "E16 Congestion-aware routing vs BFS shortest paths (detour budget 4; host = Theorem 1 X-tree)"
      [ "family"; "r"; "bfs congestion"; "smart congestion"; "bfs maxlen"; "smart maxlen" ]
  in
  List.iter
    (fun name ->
      List.iter
        (fun r ->
          let tree = tree_of name (Theorem1.optimal_size r) in
          let res = Theorem1.embed tree in
          let base = Congestion.baseline res.Theorem1.embedding in
          let smart = Congestion.route res.Theorem1.embedding in
          Tab.add_row t
            [
              name;
              string_of_int r;
              string_of_int base.Congestion.congestion;
              string_of_int smart.Congestion.congestion;
              string_of_int base.Congestion.max_route_length;
              string_of_int smart.Congestion.max_route_length;
            ])
        [ 5; 7 ])
    [ "caterpillar"; "uniform"; "random-bst"; "complete" ];
  t

let e17_analytic_routing () =
  let t =
    Tab.create
      ~title:
        "E17 Table-free analytic routing on X(r): exactness vs BFS and route quality (exhaustive per height)"
      [ "r"; "pairs"; "analytic = BFS"; "max ratio"; "routes shortest"; "max route excess" ]
  in
  List.iter
    (fun r ->
      let xt = Xtree.create ~height:r in
      let g = Xtree.graph xt in
      let n = Xtree.order xt in
      let pairs = ref 0 and exact = ref 0 and max_excess = ref 0 in
      let max_ratio = ref 1.0 in
      for a = 0 to n - 1 do
        let row = Graph.bfs g a in
        for b = 0 to n - 1 do
          if a <> b then begin
            incr pairs;
            let d = Xtree.analytic_distance a b in
            if d = row.(b) then incr exact;
            let ratio = float_of_int d /. float_of_int row.(b) in
            if ratio > !max_ratio then max_ratio := ratio;
            let len = List.length (Xtree.route xt ~src:a ~dst:b) - 1 in
            if len - row.(b) > !max_excess then max_excess := len - row.(b)
          end
        done
      done;
      Tab.add_row t
        [
          string_of_int r;
          string_of_int !pairs;
          Printf.sprintf "%d/%d" !exact !pairs;
          Printf.sprintf "%.2f" !max_ratio;
          string_of_bool (!max_excess <= 0);
          string_of_int !max_excess;
        ])
    [ 3; 4; 5; 6; 7 ];
  t

let e19_weighted () =
  let t =
    Tab.create
      ~title:
        "E19 Weighted guests (skewed node costs, budget 128/vertex): weight-aware embed vs weight-blind Theorem 1"
      [ "family"; "total weight"; "host"; "aware max"; "aware imbalance"; "aware dil"; "blind max" ]
  in
  let rng = Rng.make ~seed:555 in
  List.iter
    (fun name ->
      let n = Theorem1.optimal_size 7 in
      let tree = tree_of name n in
      let weights =
        Array.init n (fun _ ->
            let u = Rng.float rng 1.0 in
            1 + int_of_float (31.0 *. u *. u *. u))
      in
      let res = Weighted.embed ~budget:128 ~weights tree in
      let blind = Theorem1.embed ~height:res.Weighted.height tree in
      Tab.add_row t
        [
          name;
          string_of_int res.Weighted.total_weight;
          Printf.sprintf "X(%d)" res.Weighted.height;
          string_of_int res.Weighted.max_vertex_weight;
          Printf.sprintf "%.2f" (Weighted.imbalance res);
          string_of_int (Embedding.dilation ~dist:Xtree.analytic_distance res.Weighted.embedding);
          string_of_int (Weighted.evaluate_placement ~weights blind.Theorem1.embedding);
        ])
    [ "uniform"; "caterpillar"; "random-bst"; "path" ];
  t

let d1_dedup () =
  let t =
    Tab.create
      ~title:
        "D1  Canonical-shape cache: dedup workload (N requests over K unique shapes, cold vs warm)"
      [ "n"; "trees"; "unique"; "cold s"; "first s"; "warm s"; "speedup"; "hit rate"; "identical" ]
  in
  let reparse tree =
    match Codec.of_string (Codec.to_string tree) with Ok t -> t | Error _ -> assert false
  in
  List.iter
    (fun (r, total, k) ->
      let n = Theorem1.optimal_size r in
      let shapes =
        Array.init k (fun i -> tree_of (List.nth families (i mod List.length families)) (n - i))
      in
      (* Each request is its own Codec-parsed value (preorder labels,
         fresh arrays), as a deduplicating front-end would see them —
         and exactly the labelling for which cache hits are guaranteed
         bit-identical to uncached runs. *)
      let instances = Array.init total (fun j -> reparse shapes.(j mod k)) in
      let time f =
        let t0 = Sys.time () in
        let v = f () in
        (v, Sys.time () -. t0)
      in
      let place (res : Theorem1.result) = res.Theorem1.embedding.Embedding.place in
      let cold, cold_s =
        time (fun () -> Array.map (fun tree -> place (Theorem1.embed tree)) instances)
      in
      let cache = Theorem1.make_cache ~capacity:64 () in
      let first, first_s =
        time (fun () -> Array.map (fun tree -> place (Theorem1.embed ~cache tree)) instances)
      in
      let warm, warm_s =
        time (fun () -> Array.map (fun tree -> place (Theorem1.embed ~cache tree)) instances)
      in
      let identical = cold = first && cold = warm in
      let unique = Theorem1.cache_length cache in
      (* Of the 2N cached lookups, only the first pass's K unique shapes
         miss; the rate is arithmetic, the cache.* counters in the JSON
         dump confirm it. *)
      let hit_rate = float_of_int ((2 * total) - unique) /. float_of_int (2 * total) in
      let cell v = if !live_timings then Printf.sprintf "%.3f" v else "-" in
      Tab.add_row t
        [
          string_of_int n;
          string_of_int total;
          string_of_int unique;
          cell cold_s;
          cell first_s;
          cell warm_s;
          (if !live_timings then Printf.sprintf "%.1fx" (cold_s /. warm_s) else "-");
          Printf.sprintf "%.1f%%" (100. *. hit_rate);
          string_of_bool identical;
        ])
    [ (4, 120, 12); (5, 160, 12) ];
  t

let d2_sim_throughput () =
  let t =
    Tab.create
      ~title:
        "D2  Simulator throughput: sharded active-set core, native vs Theorem 1 X-tree vs Theorem 3 hypercube hosts"
      [
        "r"; "workload"; "host"; "shards"; "cycles"; "delivered"; "hops";
        "max queue"; "kmsg/s"; "Mcycle/s";
      ]
  in
  List.iter
    (fun r ->
      let n = Theorem1.optimal_size r in
      let tree = tree_of "uniform" n in
      let t1 = Theorem1.embed tree in
      let t3 = Hypercube_transfer.embed tree in
      (* The domains axis: the large instances re-run under the sharded
         cycle-barrier core. Every non-timing column is bit-identical
         across the sweep — only the throughput columns move. Cases run
         sequentially (domains:1) so the shard pool owns the domain
         budget and the per-case wall clocks are undistorted. *)
      let shard_axis = if r >= 10 then [ 1; 2; 4 ] else [ 1 ] in
      List.iter
        (fun (w : Workload.spec) ->
          let cases =
            [
              Workload.native_case ~label:"native" w tree;
              Workload.embedded_case
                ~label:(Printf.sprintf "X(%d)" t1.Theorem1.height)
                w t1.Theorem1.embedding;
              Workload.embedded_case
                ~label:(Printf.sprintf "Q_%d" t3.Hypercube_transfer.dim)
                w t3.Hypercube_transfer.embedding;
            ]
          in
          List.iter
            (fun shards ->
              List.iter
                (fun (o : Workload.outcome) ->
                  let rate scale v =
                    if !live_timings && o.Workload.seconds > 0. then
                      Printf.sprintf "%.1f" (float_of_int v /. o.Workload.seconds /. scale)
                    else "-"
                  in
                  Tab.add_row t
                    [
                      string_of_int r;
                      w.Workload.name;
                      o.Workload.case.Workload.label;
                      string_of_int shards;
                      string_of_int o.Workload.cycles;
                      string_of_int o.Workload.delivered;
                      string_of_int o.Workload.hops;
                      string_of_int o.Workload.max_queue;
                      rate 1e3 o.Workload.delivered;
                      rate 1e6 o.Workload.cycles;
                    ])
                (Workload.run_suite ~shards ~domains:1 cases))
            shard_axis)
        [ Workload.reduction; Workload.pingpong_sweep; Workload.permutation ])
    [ 5; 7; 9; 10 ];
  t

let d3_parallel_scaling () =
  let t =
    Tab.create
      ~title:
        "D3  Parallel embedding construction over a domains axis (placements bit-identical at every budget)"
      [ "r"; "n"; "jobs"; "gen s"; "embed s"; "knodes/s"; "dilation"; "fallbacks" ]
  in
  let saved = Parallel.domain_budget () in
  Fun.protect ~finally:(fun () -> Parallel.set_domain_budget saved) @@ fun () ->
  List.iter
    (fun (r, jobs_list) ->
      let n = Theorem1.optimal_size r in
      (* the new divide-and-conquer arena generator: also parallel, also
         budget-independent *)
      Parallel.set_domain_budget (List.fold_left max 1 jobs_list);
      let t0 = Unix.gettimeofday () in
      let tree = Gen.random_split (Rng.make ~seed:(Hashtbl.hash ("d3", r))) n in
      let gen_s = Unix.gettimeofday () -. t0 in
      List.iter
        (fun jobs ->
          Parallel.set_domain_budget jobs;
          let t0 = Unix.gettimeofday () in
          let res = Theorem1.embed ~par:(jobs > 1) tree in
          let dt = Unix.gettimeofday () -. t0 in
          let d = Embedding.dilation ~dist:Xtree.analytic_distance res.Theorem1.embedding in
          let cell v = if !live_timings then Printf.sprintf "%.2f" v else "-" in
          Tab.add_row t
            [
              string_of_int r;
              string_of_int n;
              string_of_int jobs;
              cell gen_s;
              cell dt;
              (if !live_timings then Printf.sprintf "%.0f" (float_of_int n /. dt /. 1e3) else "-");
              string_of_int d;
              string_of_int res.Theorem1.fallbacks;
            ])
        jobs_list)
    [ (10, [ 1; 2; 4 ]); (12, [ 1; 2; 4 ]); (14, [ 4 ]) ];
  t

let d4_serve_latency () =
  let t =
    Tab.create
      ~title:
        "D4  Embedding service: cold start vs snapshot-warm restart (first-pass hit rate, throughput, RTT quantiles)"
      [
        "n"; "shapes"; "requests"; "session"; "loaded"; "first-pass hits";
        "rps"; "p50 us"; "p90 us"; "p99 us"; "identical";
      ]
  in
  List.iter
    (fun (size, k, total) ->
      let snapshot = Filename.temp_file "xtree-d4" ".xtsm" in
      (* the cold session must find no snapshot on disk *)
      Sys.remove snapshot;
      let config = { Serve.default with Serve.snapshot = Some snapshot } in
      let seed = Hashtbl.hash ("d4", size) in
      let pool = Loadgen.make_shapes ~seed ~count:k ~size in
      (* Two replays per session over one connection: the first pass
         sends each distinct shape once — its hit rate is the warmth
         measurement (a cold cache misses every shape, a snapshot-warm
         one hits every shape) — then a skewed tail measures the
         steady-state request rate and RTT quantiles. *)
      let first_pass = Array.to_list pool in
      let tail = Loadgen.skewed_stream ~seed ~shapes:pool ~requests:total ~skew:1.2 in
      let session () =
        let ((cache, loaded) as state) = Serve.make_state config in
        let replies = ref [] in
        let on_reply (r : Loadgen.reply) = replies := r.Loadgen.payload :: !replies in
        let (warmth, o1, o2), _summary =
          Serve.in_process ~config ~state (fun ch ->
              let o1 = Loadgen.replay ~window:32 ~on_reply ~requests:first_pass ch in
              (* the replay has read every first-pass response, so the
                 server has finished counting its misses: each one is a
                 distinct shape the snapshot did not already hold *)
              let s = Theorem1.cache_stats cache in
              let hit_rate =
                1. -. (float_of_int s.Cache.misses /. float_of_int k)
              in
              (hit_rate, o1, Loadgen.replay ~window:32 ~on_reply ~requests:tail ch))
        in
        (loaded, warmth, o1, o2, List.rev !replies)
      in
      (* lets, not a list literal: the cold session must run first *)
      let cold = session () in
      let warm = session () in
      let _, _, _, _, cold_replies = cold in
      List.iter
        (fun (label, (loaded, warmth, (o1 : Loadgen.outcome), (o2 : Loadgen.outcome), replies)) ->
          (* rps and RTT quantiles cover the whole session — first pass
             plus skewed tail — so a cold restart pays its re-embedding
             in these columns and a warm one doesn't *)
          let rtt = Array.append o1.Loadgen.rtt_ns o2.Loadgen.rtt_ns in
          let q = Stats.quantiles_of_ints rtt in
          let sent = o1.Loadgen.sent + o2.Loadgen.sent in
          let wall_s = float_of_int (o1.Loadgen.wall_ns + o2.Loadgen.wall_ns) /. 1e9 in
          let cell v = if !live_timings then Printf.sprintf "%.1f" v else "-" in
          Tab.add_row t
            [
              string_of_int size;
              string_of_int k;
              string_of_int (k + total);
              label;
              string_of_int loaded;
              Printf.sprintf "%.1f%%" (100. *. warmth);
              (if !live_timings then Printf.sprintf "%.0f" (float_of_int sent /. wall_s)
               else "-");
              cell (q.Stats.p50 /. 1e3);
              cell (q.Stats.p90 /. 1e3);
              cell (q.Stats.p99 /. 1e3);
              string_of_bool (replies = cold_replies);
            ])
        [ ("cold", cold); ("warm", warm) ];
      if Sys.file_exists snapshot then Sys.remove snapshot)
    [ (496, 12, 120); (1008, 16, 160) ];
  t

(* ------------------------------------------------------------------ *)
(* Job registry: every table as an independent, order-free job. [smoke]
   marks the cheap ones the @bench-smoke alias runs in a few seconds. *)

type job = { name : string; smoke : bool; table : unit -> Tab.t }

let jobs =
  [
    { name = "F1"; smoke = true; table = f1_xtree_structure };
    { name = "F2"; smoke = true; table = f2_neighbourhood };
    { name = "F3"; smoke = true; table = f3_network_zoo };
    { name = "L1"; smoke = false; table = l1_lemma1 };
    { name = "L2"; smoke = false; table = l2_lemma2 };
    { name = "E1"; smoke = true; table = e1_theorem1 };
    { name = "E2"; smoke = false; table = e2_theorem2 };
    { name = "E3"; smoke = true; table = e3_lemma3 };
    { name = "E4"; smoke = false; table = e4_theorem3 };
    { name = "E5"; smoke = false; table = e5_universal };
    { name = "E6"; smoke = false; table = e6_constant_vs_growing };
    { name = "E7"; smoke = false; table = e7_simulation };
    { name = "E7b"; smoke = false; table = e7b_host_comparison };
    { name = "E7c"; smoke = false; table = e7c_compute_bound };
    { name = "E8"; smoke = true; table = e8_cbt_classics };
    { name = "E9"; smoke = true; table = e9_trace_decay };
    { name = "E9b"; smoke = false; table = e9b_spread };
    { name = "E10"; smoke = false; table = e10_conditions };
    { name = "E11"; smoke = false; table = e11_online };
    { name = "E12"; smoke = false; table = e12_ablation };
    { name = "E13"; smoke = false; table = e13_exact_optimal };
    { name = "E13b"; smoke = false; table = e13b_structural_guests };
    { name = "E14"; smoke = false; table = e14_seed_robustness };
    { name = "E15"; smoke = false; table = e15_exhaustive };
    { name = "E16"; smoke = true; table = e16_congestion_routing };
    { name = "E17"; smoke = false; table = e17_analytic_routing };
    { name = "E18"; smoke = false; table = e18_scaling };
    { name = "E19"; smoke = false; table = e19_weighted };
    { name = "D1"; smoke = false; table = d1_dedup };
    { name = "D2"; smoke = false; table = d2_sim_throughput };
    { name = "D3"; smoke = false; table = d3_parallel_scaling };
    { name = "D4"; smoke = false; table = d4_serve_latency };
  ]

type timing = { job : string; seconds : float; minor_words : int; major_words : int }

(* Run the selected jobs one after another — the parallelism lives
   {e inside} each job (Theorem1 sweeps, the lemma-trial and cell
   fan-outs above), where it speeds the table up instead of overlapping
   unrelated jobs' wall clocks. A job's recorded time is therefore the
   real cost of producing that table at the current domain budget, and
   every table is deterministic for every [--jobs] value, so the printed
   output stays byte-identical. Returns per-job timings (with GC-pressure
   deltas from the running domain) in registry order; each job also runs
   under a [bench.NAME] span, so [--trace] profiles the whole harness. *)
let run_jobs ?(smoke = false) () =
  let selected = if smoke then List.filter (fun j -> j.smoke) jobs else jobs in
  List.map
    (fun j ->
      let g0 = Gc.quick_stat () in
      let t0 = Unix.gettimeofday () in
      let out = Xt_obs.Obs.span ("bench." ^ j.name) (fun () -> render (j.table ())) in
      let seconds = Unix.gettimeofday () -. t0 in
      let g1 = Gc.quick_stat () in
      let timing =
        {
          job = j.name;
          seconds;
          minor_words = int_of_float (g1.Gc.minor_words -. g0.Gc.minor_words);
          major_words = int_of_float (g1.Gc.major_words -. g0.Gc.major_words);
        }
      in
      print_string out;
      print_newline ();
      timing)
    selected

let run_all () = ignore (run_jobs ())
