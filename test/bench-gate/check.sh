#!/usr/bin/env bash
# Perf-regression gate assertions for the @bench-gate alias.
set -eu
MAIN="$1"

run_bench() {
  XT_DOMAINS=1 "$MAIN" --tables-only --smoke --no-timings --jobs 1 "$@"
}

# Fresh record + first history line.
run_bench --json fresh.json --history hist.jsonl >/dev/null
test "$(wc -l < hist.jsonl)" -eq 1
grep -q '"bench":"tables"' hist.jsonl
grep -q '"stages":{' hist.jsonl

# A clean self-comparison passes the gate (generous threshold: the two
# runs are seconds apart on the same machine, but CI boxes are noisy).
run_bench --history hist.jsonl --baseline fresh.json --check --check-threshold 50 \
  > clean.out
grep -q 'perf gate: PASS' clean.out
test "$(wc -l < hist.jsonl)" -eq 2

# Doctor one measurable stage down to ~zero: the rerun now looks like a
# huge regression on E1 and the gate must trip with a non-zero exit.
sed 's/"name": "E1", "seconds": [0-9.]*/"name": "E1", "seconds": 0.000001/' \
  fresh.json > doctored.json
if run_bench --no-history --baseline doctored.json --check --check-threshold 3 \
  > doctored.out; then
  echo "gate failed to trip on a doctored baseline" >&2
  exit 1
fi
grep -q 'SLOW' doctored.out
grep -q 'perf gate: FAIL' doctored.out

# --no-history really skipped the append.
test "$(wc -l < hist.jsonl)" -eq 2

# The JSON record carries the per-stage GC-pressure fields.
grep -q '"minor_words":' fresh.json
grep -q '"major_words":' fresh.json
