#!/usr/bin/env bash
# Canonical-shape cache smoke assertions for the @cache-smoke alias.
set -eu

# one result line per input line, in input order
test "$(grep -c '^[0-9]*: n=31 ' cache-smoke.out)" -eq 6
for i in 0 1 2 3 4 5; do
  grep -q "^$i: n=31 " cache-smoke.out
done

# identical shapes must report identical embeddings
test "$(grep '^0: ' cache-smoke.out | sed 's/^0//')" = \
  "$(grep '^2: ' cache-smoke.out | sed 's/^2//')"

grep -q '^batch: trees=6 unique=2$' cache-smoke.out

# the dedupe shows up in the counters: one miss per unique shape, and
# every served line a hit
grep -q '^cache.misses = 2$' cache-smoke.out
grep -q '^cache.hits = 6$' cache-smoke.out
grep -q '^cache.verify_rejects = 0$' cache-smoke.out
