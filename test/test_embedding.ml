open Xt_topology
open Xt_bintree
open Xt_embedding

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* guest: path 0-1-2; host: path of 4 vertices *)
let tiny () =
  let tree = Gen.path 3 in
  let host = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  (tree, host)

let test_make_validates () =
  let tree, host = tiny () in
  Alcotest.check_raises "size" (Invalid_argument "Embedding.make: place size does not match guest size")
    (fun () -> ignore (Embedding.make ~tree ~host ~place:[| 0; 1 |]));
  Alcotest.check_raises "range" (Invalid_argument "Embedding.make: place out of host range")
    (fun () -> ignore (Embedding.make ~tree ~host ~place:[| 0; 1; 9 |]))

let test_identityish_metrics () =
  let tree, host = tiny () in
  let e = Embedding.make ~tree ~host ~place:[| 0; 1; 2 |] in
  check "dilation" 1 (Embedding.dilation e);
  check "load" 1 (Embedding.load e);
  checkb "injective" true (Embedding.is_injective e);
  Alcotest.(check (float 1e-9)) "expansion" (4. /. 3.) (Embedding.expansion e);
  check "congestion" 1 (Embedding.congestion e)

let test_stretched_metrics () =
  let tree, host = tiny () in
  (* 0 -> 0, 1 -> 3, 2 -> 0: edges dilate to 3 and 3 *)
  let e = Embedding.make ~tree ~host ~place:[| 0; 3; 0 |] in
  check "dilation" 3 (Embedding.dilation e);
  Alcotest.(check (float 1e-9)) "avg" 3.0 (Embedding.average_dilation e);
  check "load" 2 (Embedding.load e);
  checkb "not injective" false (Embedding.is_injective e);
  (* both guest edges route over every host edge *)
  check "congestion" 2 (Embedding.congestion e)

let test_collapsed_embedding () =
  let tree, host = tiny () in
  let e = Embedding.make ~tree ~host ~place:[| 1; 1; 1 |] in
  check "dilation 0" 0 (Embedding.dilation e);
  check "congestion 0" 0 (Embedding.congestion e);
  check "load 3" 3 (Embedding.load e)

let test_custom_distance () =
  let tree, host = tiny () in
  let e = Embedding.make ~tree ~host ~place:[| 0; 1; 2 |] in
  (* an (incorrect) metric that doubles distances, to prove dist is used *)
  let dist u v = 2 * abs (u - v) in
  check "custom dilation" 2 (Embedding.dilation ~dist e)

let test_loads_vector () =
  let tree, host = tiny () in
  let e = Embedding.make ~tree ~host ~place:[| 0; 0; 2 |] in
  Alcotest.(check (array int)) "loads" [| 2; 0; 1; 0 |] (Embedding.loads e)

let test_verify_bounds () =
  let tree, host = tiny () in
  let e = Embedding.make ~tree ~host ~place:[| 0; 3; 0 |] in
  checkb "dilation bound fails" true (Embedding.verify ~max_dilation:2 e <> Ok ());
  checkb "load bound fails" true (Embedding.verify ~max_load:1 e <> Ok ());
  checkb "loose bounds pass" true (Embedding.verify ~max_dilation:3 ~max_load:2 e = Ok ())

let test_report_consistent () =
  let tree, host = tiny () in
  let e = Embedding.make ~tree ~host ~place:[| 0; 2; 3 |] in
  let r = Embedding.report e in
  check "dilation" (Embedding.dilation e) r.Embedding.dilation;
  check "load" (Embedding.load e) r.Embedding.load;
  check "congestion" (Embedding.congestion e) r.Embedding.congestion;
  checkb "pp works" true (String.length (Format.asprintf "%a" Embedding.pp_report r) > 0)

let test_single_node_guest () =
  let tree = Gen.path 1 in
  let host = Graph.of_edges ~n:1 [] in
  let e = Embedding.make ~tree ~host ~place:[| 0 |] in
  check "dilation" 0 (Embedding.dilation e);
  check "congestion" 0 (Embedding.congestion e);
  Alcotest.(check (float 1e-9)) "avg" 0.0 (Embedding.average_dilation e)

let suite =
  [
    ("make validates", `Quick, test_make_validates);
    ("identity metrics", `Quick, test_identityish_metrics);
    ("stretched metrics", `Quick, test_stretched_metrics);
    ("collapsed embedding", `Quick, test_collapsed_embedding);
    ("custom distance", `Quick, test_custom_distance);
    ("loads vector", `Quick, test_loads_vector);
    ("verify bounds", `Quick, test_verify_bounds);
    ("report consistent", `Quick, test_report_consistent);
    ("single node guest", `Quick, test_single_node_guest);
  ]
