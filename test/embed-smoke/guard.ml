(* Allocation guard for the @embed-smoke alias: [Separator.prepare] — the
   O(n) hot path under every lemma call of the Theorem 1 pipeline — must
   not allocate on a warm workspace. Prints one parseable line for
   check.sh; the richer equivalence suite lives in test_theorem1_ref.ml. *)

let () =
  let open Xt_prelude in
  let open Xt_bintree in
  let tree = Gen.uniform (Rng.make ~seed:11) 4093 in
  let ws = Separator.make_ws tree in
  let piece = { Separator.nodes = Bintree.preorder tree; r1 = Bintree.root tree; r2 = None } in
  for _ = 1 to 4 do
    ignore (Separator.prepare ws piece)
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  ignore (Separator.prepare ws piece);
  let allocated = Gc.minor_words () -. before in
  Printf.printf "prepare-minor-words = %.0f\n" allocated;
  print_endline (if allocated < 256. then "guard PASS" else "guard FAIL")
