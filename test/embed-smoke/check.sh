#!/usr/bin/env bash
# Embedding smoke assertions for the @embed-smoke alias.
set -eu

# parallel-vs-sequential equivalence: the whole embed report (dilation,
# load, congestion, fallbacks, condition counts) must be byte-identical
diff -u embed-jobs1.out embed-jobs4.out

# the report is the one we expect, not an empty file that trivially diffs
grep -q '^theorem1: ' embed-jobs1.out
grep -q '^host: X(' embed-jobs1.out

# workspace hot path allocates nothing
grep -q '^guard PASS$' guard.out
