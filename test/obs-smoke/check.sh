#!/usr/bin/env bash
# Telemetry smoke assertions for the @obs-smoke alias.
set -eu

grep -q '^theorem1.rounds = [1-9]' obs-smoke.out
grep -q '^split.calls = [1-9]' obs-smoke.out
grep -q '^parallel' obs-smoke.out
grep -q 'trace written to obs-smoke-trace.json' obs-smoke.out

head -c 16 obs-smoke-trace.json | grep -q '{"traceEvents":\['
begins=$(grep -c '"ph":"B"' obs-smoke-trace.json)
ends=$(grep -c '"ph":"E"' obs-smoke-trace.json)
test "$begins" -gt 0
test "$begins" -eq "$ends"
