open Xt_bintree

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_single_node () =
  Alcotest.(check string) "print" "(..)" (Codec.to_string (Gen.complete 1));
  match Codec.of_string "(..)" with
  | Ok t -> check "size" 1 (Bintree.n t)
  | Error e -> Alcotest.fail e

let test_small_shapes () =
  (* root with left leaf only *)
  let t = Gen.path 2 in
  Alcotest.(check string) "left leaf" "((..).)" (Codec.to_string t);
  (* complete 3 *)
  Alcotest.(check string) "two leaves" "((..)(..))" (Codec.to_string (Gen.complete 3))

let test_whitespace_tolerated () =
  match Codec.of_string " ( ( . . )\n . )\t" with
  | Ok t -> check "size" 2 (Bintree.n t)
  | Error e -> Alcotest.fail e

let shape_signature t = Codec.to_string t

let test_roundtrip_families () =
  let rng = Xt_prelude.Rng.make ~seed:4 in
  List.iter
    (fun (f : Gen.family) ->
      let t = f.generate rng 300 in
      match Codec.of_string (Codec.to_string t) with
      | Ok t' ->
          check (f.name ^ " size") (Bintree.n t) (Bintree.n t');
          Alcotest.(check string) (f.name ^ " shape") (shape_signature t) (shape_signature t')
      | Error e -> Alcotest.failf "%s: %s" f.name e)
    Gen.families

let test_deep_path_no_overflow () =
  let t = Gen.path 200_000 in
  match Codec.of_string (Codec.to_string t) with
  | Ok t' -> check "size" 200_000 (Bintree.n t')
  | Error e -> Alcotest.fail e

let test_errors () =
  let bad input =
    match Codec.of_string input with
    | Ok _ -> Alcotest.failf "%S should not parse" input
    | Error _ -> ()
  in
  bad "";
  bad "(";
  bad ")";
  bad "(.)";
  bad "(...)";
  bad "(..)(..)";
  bad "(..)x";
  bad "((..)";
  bad "x"

let test_right_only_child () =
  (* a root whose single child is on the right: (.(..)) *)
  match Codec.of_string "(.(..))" with
  | Ok t ->
      check "size" 2 (Bintree.n t);
      Alcotest.(check (option int)) "no left" None (Bintree.left t (Bintree.root t));
      checkb "has right" true (Bintree.right t (Bintree.root t) <> None);
      Alcotest.(check string) "reprints" "(.(..))" (Codec.to_string t)
  | Error e -> Alcotest.fail e

let qcheck_tests =
  let gen_tree =
    QCheck2.Gen.(
      map
        (fun (seed, n) ->
          let rng = Xt_prelude.Rng.make ~seed in
          Gen.uniform rng (n + 1))
        (pair (int_bound 1_000_000) (int_bound 300)))
  in
  [
    QCheck2.Test.make ~count:200 ~name:"codec roundtrip preserves shape" gen_tree (fun t ->
        match Codec.of_string (Codec.to_string t) with
        | Ok t' -> Codec.to_string t' = Codec.to_string t && Bintree.n t' = Bintree.n t
        | Error _ -> false);
    QCheck2.Test.make ~count:200 ~name:"codec output is balanced" gen_tree (fun t ->
        let s = Codec.to_string t in
        let depth = ref 0 and ok = ref true in
        String.iter
          (fun c ->
            match c with
            | '(' -> incr depth
            | ')' ->
                decr depth;
                if !depth < 0 then ok := false
            | _ -> ())
          s;
        !ok && !depth = 0);
  ]

let suite =
  [
    ("single node", `Quick, test_single_node);
    ("small shapes", `Quick, test_small_shapes);
    ("whitespace tolerated", `Quick, test_whitespace_tolerated);
    ("roundtrip families", `Quick, test_roundtrip_families);
    ("deep path no overflow", `Quick, test_deep_path_no_overflow);
    ("errors", `Quick, test_errors);
    ("right-only child", `Quick, test_right_only_child);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* Fuzz: the parser must never raise on arbitrary input, only Ok/Error. *)
let fuzz_tests =
  let gen_junk =
    QCheck2.Gen.(
      let* len = int_bound 60 in
      let* chars = list_size (return len) (oneofl [ '('; ')'; '.'; ' '; 'x'; '\n' ]) in
      return (String.init (List.length chars) (List.nth chars)))
  in
  [
    QCheck2.Test.make ~count:500 ~name:"codec parser is total" ~print:(fun s -> String.escaped s)
      gen_junk (fun s ->
        match Codec.of_string s with
        | Ok t -> Bintree.check t = Ok ()
        | Error _ -> true);
  ]

let suite = suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) fuzz_tests
