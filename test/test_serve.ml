(* Embedding-as-a-service (ISSUE 10): wire framing, the Shape_memo
   snapshot codec, and the serve loop's bit-identity with direct
   Theorem1.embed calls — the equivalence suite the snapshot and serve
   paths are held to. *)

open Xt_prelude
open Xt_bintree
open Xt_embedding
open Xt_core
open Xt_serve

let place (r : Theorem1.result) = r.Theorem1.embedding.Embedding.place

let roundtrip tree =
  match Codec.of_string (Codec.to_string tree) with
  | Ok t -> t
  | Error msg -> Alcotest.failf "roundtrip: %s" msg

let tmp_snapshot () = Filename.temp_file "xtsm_test" ".snap"

(* ---------------- wire ---------------- *)

let test_wire_frames () =
  let file = Filename.temp_file "wire_test" ".bin" in
  let payloads = [ "hello"; ""; String.make 1000 'x'; "(()())" ] in
  Out_channel.with_open_bin file (fun oc ->
      List.iter (Wire.write_frame oc) payloads;
      Wire.write_flush oc);
  In_channel.with_open_bin file (fun ic ->
      List.iter
        (fun want ->
          match Wire.read_frame ic with
          | Some got -> Alcotest.(check string) "frame round-trips" want got
          | None -> Alcotest.fail "premature EOF")
        (payloads @ [ "" ]);
      Alcotest.(check bool) "clean EOF" true (Wire.read_frame ic = None));
  (* Torn payload: a frame announcing more bytes than the stream holds. *)
  Out_channel.with_open_bin file (fun oc ->
      let hdr = Bytes.create 4 in
      Bytes.set_int32_be hdr 0 99l;
      output_bytes oc hdr;
      output_string oc "short");
  In_channel.with_open_bin file (fun ic ->
      Alcotest.check_raises "EOF inside frame" (Wire.Protocol "EOF inside frame")
        (fun () -> ignore (Wire.read_frame ic)));
  Sys.remove file

let wire_response_prop =
  QCheck2.Test.make ~count:200 ~name:"wire: response payload round-trips"
    QCheck2.Gen.(
      triple (int_bound 30) (int_bound 1000) (array_size (int_bound 200) (int_bound 10000)))
    (fun (height, fallbacks, plc) ->
      let r = { Wire.height; fallbacks; place = plc } in
      match Wire.decode_response (Wire.encode_ok r) with
      | Ok r' ->
          r'.Wire.height = height && r'.Wire.fallbacks = fallbacks && r'.Wire.place = plc
      | Error _ -> false)

let test_wire_error_response () =
  let p = Wire.encode_error "no parse" in
  Alcotest.(check bool) "status peek" true (Wire.is_error p);
  match Wire.decode_response p with
  | Error msg -> Alcotest.(check string) "message carried" "no parse" msg
  | Ok _ -> Alcotest.fail "error payload decoded as success"

(* ---------------- snapshot codec ---------------- *)

let snapshot_roundtrip_prop =
  QCheck2.Test.make ~count:25 ~name:"snapshot: reload serves bit-identical placements"
    QCheck2.Gen.(list_size (int_range 1 8) (pair (int_range 1 140) (int_bound 1000)))
    (fun specs ->
      let trees =
        List.map (fun (n, seed) -> roundtrip (Gen.uniform (Rng.make ~seed) n)) specs
      in
      let c1 = Theorem1.make_cache () in
      let direct = List.map (fun t -> place (Theorem1.embed ~capacity:8 ~cache:c1 t)) trees in
      let file = tmp_snapshot () in
      let saved = Theorem1.cache_save c1 ~file in
      let c2 = Theorem1.make_cache () in
      let loaded = Theorem1.cache_load c2 ~file in
      Sys.remove file;
      (match loaded with
      | Ok n ->
          if n <> saved then
            QCheck2.Test.fail_reportf "loaded %d entries of %d saved" n saved
      | Error msg -> QCheck2.Test.fail_reportf "load failed: %s" msg);
      let again = List.map (fun t -> place (Theorem1.embed ~capacity:8 ~cache:c2 t)) trees in
      let st = Theorem1.cache_stats c2 in
      if st.Cache.misses <> 0 then
        QCheck2.Test.fail_reportf "%d misses after a full reload" st.Cache.misses;
      List.for_all2 (fun a b -> a = b) direct again)

(* Corrupt a saved snapshot every way the codec guards against; each
   attempt must reject atomically, leaving the target cache empty. *)
let test_snapshot_rejection () =
  let c = Theorem1.make_cache () in
  List.iter
    (fun seed -> ignore (Theorem1.embed ~capacity:8 ~cache:c (Gen.uniform (Rng.make ~seed) 60)))
    [ 1; 2; 3 ];
  let file = tmp_snapshot () in
  ignore (Theorem1.cache_save c ~file);
  let bytes = In_channel.with_open_bin file In_channel.input_all in
  let try_load mutated what expect_substring =
    Out_channel.with_open_bin file (fun oc -> output_string oc mutated);
    let fresh = Theorem1.make_cache () in
    (match Theorem1.cache_load fresh ~file with
    | Ok n -> Alcotest.failf "%s: load accepted %d entries" what n
    | Error msg ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s: error mentions %S (got %S)" what expect_substring msg)
          true (contains msg expect_substring));
    Alcotest.(check int) (what ^ ": nothing inserted") 0 (Theorem1.cache_length fresh)
  in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  try_load (flip bytes 0) "bad magic" "magic";
  try_load (flip bytes 4) "wrong version" "version";
  try_load (String.sub bytes 0 (String.length bytes / 2)) "truncated file" "truncated";
  try_load (flip bytes (String.length bytes - 20)) "corrupted entry" "checksum";
  try_load (bytes ^ "tail") "trailing bytes" "trailing";
  Sys.remove file;
  let missing = Theorem1.make_cache () in
  (match Theorem1.cache_load missing ~file with
  | Ok _ -> Alcotest.fail "missing file: load accepted"
  | Error _ -> ());
  Alcotest.(check int) "missing file: nothing inserted" 0 (Theorem1.cache_length missing)

(* ---------------- the serve loop ---------------- *)

let collect_replies () =
  let acc = ref [] in
  let on_reply (r : Loadgen.reply) = acc := r :: !acc in
  (on_reply, fun () -> List.rev !acc)

(* Every response must be byte-for-byte what a direct Theorem1.embed
   returns for that request — the acceptance criterion of ISSUE 10. *)
let test_serve_equivalence () =
  let pool = Loadgen.make_shapes ~seed:11 ~count:5 ~size:90 in
  let stream = Loadgen.skewed_stream ~seed:11 ~shapes:pool ~requests:30 ~skew:1.2 in
  let on_reply, replies = collect_replies () in
  let config = { Serve.default with capacity = 8 } in
  let outcome, summary =
    Serve.in_process ~config (fun ch ->
        Loadgen.replay ~window:7 ~on_reply ~requests:stream ch)
  in
  Alcotest.(check int) "all requests answered" 30 outcome.Loadgen.sent;
  Alcotest.(check int) "server counted them" 30 summary.Serve.requests;
  Alcotest.(check int) "no errors" 0 summary.Serve.errors;
  List.iter
    (fun (r : Loadgen.reply) ->
      let resp =
        match Wire.decode_response r.Loadgen.payload with
        | Ok resp -> resp
        | Error msg -> Alcotest.failf "request %d got error: %s" r.Loadgen.index msg
      in
      let tree =
        match Codec.of_string r.Loadgen.request with
        | Ok t -> t
        | Error msg -> Alcotest.failf "unparsable request: %s" msg
      in
      let direct = Theorem1.embed ~capacity:8 tree in
      Alcotest.(check int) "height matches direct embed" direct.Theorem1.height
        resp.Wire.height;
      Alcotest.(check int) "fallbacks match direct embed" direct.Theorem1.fallbacks
        resp.Wire.fallbacks;
      Alcotest.(check bool) "placement bit-identical to direct embed" true
        (place direct = resp.Wire.place))
    (replies ())

let test_serve_error_reply () =
  let stream = [ Codec.to_string (Gen.complete 15); "(()"; Codec.to_string (Gen.path 7) ] in
  let on_reply, replies = collect_replies () in
  let outcome, summary =
    Serve.in_process (fun ch -> Loadgen.replay ~window:2 ~on_reply ~requests:stream ch)
  in
  Alcotest.(check int) "client saw one error" 1 outcome.Loadgen.errors;
  Alcotest.(check int) "server counted one error" 1 summary.Serve.errors;
  match List.map (fun (r : Loadgen.reply) -> Wire.decode_response r.Loadgen.payload) (replies ()) with
  | [ Ok _; Error msg; Ok _ ] ->
      Alcotest.(check bool) "error message non-empty" true (String.length msg > 0)
  | _ -> Alcotest.fail "expected ok/error/ok replies in order"

(* A restarted server with a snapshot answers from the restored cache:
   zero misses, and responses byte-identical to the first session's. *)
let test_serve_snapshot_warm_restart () =
  let file = tmp_snapshot () in
  Sys.remove file;
  let config = { Serve.default with capacity = 8; snapshot = Some file } in
  let pool = Loadgen.make_shapes ~seed:23 ~count:4 ~size:70 in
  let stream = Loadgen.skewed_stream ~seed:23 ~shapes:pool ~requests:20 ~skew:1.0 in
  let session () =
    let on_reply, replies = collect_replies () in
    let _, summary =
      Serve.in_process ~config (fun ch ->
          Loadgen.replay ~window:6 ~on_reply ~requests:stream ch)
    in
    (summary, List.map (fun (r : Loadgen.reply) -> r.Loadgen.payload) (replies ()))
  in
  let s1, replies1 = session () in
  Alcotest.(check int) "first session starts cold" 0 s1.Serve.loaded;
  Alcotest.(check int) "first session snapshots every shape" 4 s1.Serve.saved;
  let s2, replies2 = session () in
  Alcotest.(check int) "restart restores every shape" 4 s2.Serve.loaded;
  Alcotest.(check int) "restart never misses" 0 s2.Serve.stats.Cache.misses;
  Alcotest.(check bool) "responses byte-identical across restart" true
    (replies1 = replies2);
  Sys.remove file

let suite =
  [
    Alcotest.test_case "wire frames round-trip" `Quick test_wire_frames;
    Alcotest.test_case "wire error response" `Quick test_wire_error_response;
    Alcotest.test_case "snapshot rejection is atomic" `Quick test_snapshot_rejection;
    Alcotest.test_case "serve responses = direct embeds" `Quick test_serve_equivalence;
    Alcotest.test_case "serve reports request errors" `Quick test_serve_error_reply;
    Alcotest.test_case "snapshot-warm restart" `Quick test_serve_snapshot_warm_restart;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~long:false)
      [ wire_response_prop; snapshot_roundtrip_prop ]
