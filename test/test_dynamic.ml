open Xt_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_create () =
  let d = Dynamic.create () in
  check "size" 1 (Dynamic.size d);
  check "root placed at xtree root" 0 (Dynamic.place d (Dynamic.root d));
  check "host X(0)" 0 (Dynamic.host_height d);
  check "dilation" 0 (Dynamic.dilation d)

let test_add_children () =
  let d = Dynamic.create () in
  let a = Dynamic.add_child d ~parent:(Dynamic.root d) in
  let b = Dynamic.add_child d ~parent:(Dynamic.root d) in
  check "size" 3 (Dynamic.size d);
  checkb "distinct" true (a <> b);
  Alcotest.check_raises "third child" (Invalid_argument "Dynamic.add_child: parent full")
    (fun () -> ignore (Dynamic.add_child d ~parent:(Dynamic.root d)))

let test_parent_colocation () =
  (* with capacity 16 the first children share the root vertex *)
  let d = Dynamic.create () in
  let a = Dynamic.add_child d ~parent:(Dynamic.root d) in
  check "same vertex as parent" (Dynamic.place d (Dynamic.root d)) (Dynamic.place d a)

let test_host_grows () =
  let d = Dynamic.create ~capacity:2 () in
  (* capacity 2, X(0) holds 2; adding a second node fills it, a third
     forces growth *)
  let a = Dynamic.add_child d ~parent:(Dynamic.root d) in
  check "still X(0)" 0 (Dynamic.host_height d);
  let _ = Dynamic.add_child d ~parent:a in
  checkb "grew" true (Dynamic.host_height d >= 1);
  checkb "load bound kept" true (Dynamic.load d <= 2)

let test_load_never_exceeds_capacity () =
  let rng = Xt_prelude.Rng.make ~seed:12 in
  let d = Dynamic.create () in
  let slots = ref [ Dynamic.root d; Dynamic.root d ] in
  for _ = 1 to 500 do
    let idx = Xt_prelude.Rng.int rng (List.length !slots) in
    let parent = List.nth !slots idx in
    match Dynamic.add_child d ~parent with
    | v -> slots := v :: v :: List.filteri (fun i _ -> i <> idx) !slots
    | exception Invalid_argument _ ->
        slots := List.filteri (fun i _ -> i <> idx) !slots
  done;
  checkb "load <= 16" true (Dynamic.load d <= 16)

let test_snapshot_roundtrip () =
  let d = Dynamic.create () in
  let a = Dynamic.add_child d ~parent:(Dynamic.root d) in
  let _ = Dynamic.add_child d ~parent:a in
  let t = Dynamic.to_tree d in
  checkb "valid tree" true (Xt_bintree.Bintree.check t = Ok ());
  check "size matches" (Dynamic.size d) (Xt_bintree.Bintree.n t);
  let e = Dynamic.to_embedding d in
  check "embedding guest size" 3 (Xt_embedding.Embedding.guest_size e)

let test_rebuild_restores_quality () =
  let rng = Xt_prelude.Rng.make ~seed:31 in
  let d = Dynamic.create () in
  let slots = ref [ Dynamic.root d; Dynamic.root d ] in
  for _ = 1 to 2000 do
    let idx = Xt_prelude.Rng.int rng (List.length !slots) in
    let parent = List.nth !slots idx in
    match Dynamic.add_child d ~parent with
    | v -> slots := v :: v :: List.filteri (fun i _ -> i <> idx) !slots
    | exception Invalid_argument _ -> slots := List.filteri (fun i _ -> i <> idx) !slots
  done;
  let before = Dynamic.dilation d in
  Dynamic.rebuild d;
  let after = Dynamic.dilation d in
  checkb (Printf.sprintf "rebuild improves (%d -> %d)" before after) true (after <= before);
  checkb "rebuild reaches paper bound" true (after <= 4);
  checkb "load still fine" true (Dynamic.load d <= 16);
  check "size unchanged" 2001 (Dynamic.size d)

let test_invalid_parent () =
  let d = Dynamic.create () in
  Alcotest.check_raises "no such parent" (Invalid_argument "Dynamic.add_child: no such parent")
    (fun () -> ignore (Dynamic.add_child d ~parent:42))

let suite =
  [
    ("create", `Quick, test_create);
    ("add children", `Quick, test_add_children);
    ("parent colocation", `Quick, test_parent_colocation);
    ("host grows", `Quick, test_host_grows);
    ("load never exceeds capacity", `Quick, test_load_never_exceeds_capacity);
    ("snapshot roundtrip", `Quick, test_snapshot_roundtrip);
    ("rebuild restores quality", `Slow, test_rebuild_restores_quality);
    ("invalid parent", `Quick, test_invalid_parent);
  ]
