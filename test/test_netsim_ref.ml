(* Equivalence of the active-set simulator core against the retained
   sweep-based reference (ISSUE 5): for every workload x family x size,
   on native and embedded placements, [Sim] must produce exactly the
   same cycle count, deliveries, per-link loads, per-message latencies
   (in delivery order — stronger than the multiset), and both queue
   high-water marks as [Sim_ref]. Since ISSUE 8 every comparison runs
   the active-set core at shards 1, 2 and 4 — the sharded cycle-barrier
   schedule must be bit-identical to the sweep at every setting. Plus
   the zero-allocation guard on the steady-state run loop and the
   degenerate cases (zero messages, single host, single link) that fall
   outside the workload sweeps. *)

open Xt_topology
open Xt_bintree
open Xt_core
open Xt_embedding
open Xt_netsim

module RefW = Workload.Make (Sim_ref)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let families = [ "complete"; "path"; "caterpillar"; "random-bst"; "uniform"; "skewed" ]
let n_workloads = List.length Workload.workloads

(* Both cores, same placement, same knobs; compare every observable,
   running the active-set core once per shard count. *)
let compare_runs ~what ?link_capacity ?service_rate ?(shard_counts = [ 1; 2; 4 ]) ~graph
    ~place ~tree widx =
  let fast = List.nth Workload.workloads widx in
  let slow = List.nth RefW.workloads widx in
  let rsim = Sim_ref.create ?link_capacity ?service_rate graph in
  let rcycles = slow.RefW.run rsim ~place ~tree in
  List.iter
    (fun shards ->
      let what = Printf.sprintf "%s [shards=%d]" what shards in
      let sim = Sim.create ?link_capacity ?service_rate ~shards graph in
      let cycles = fast.Workload.run sim ~place ~tree in
      check (what ^ ": cycles") rcycles cycles;
      check (what ^ ": delivered") (Sim_ref.delivered rsim) (Sim.delivered sim);
      Alcotest.(check (array int))
        (what ^ ": link loads") (Sim_ref.link_loads rsim) (Sim.link_loads sim);
      Alcotest.(check (array int))
        (what ^ ": latencies in delivery order")
        (Sim_ref.latencies rsim) (Sim.latencies sim);
      check (what ^ ": max link queue") (Sim_ref.max_link_queue rsim)
        (Sim.max_link_queue sim);
      check (what ^ ": max inbox queue") (Sim_ref.max_inbox_queue rsim)
        (Sim.max_inbox_queue sim))
    shard_counts

let workload_name widx = (List.nth Workload.workloads widx).Workload.name

(* ---------------- exhaustive: all workloads x families x sizes ------- *)

let test_native_exhaustive () =
  let rng = Xt_prelude.Rng.make ~seed:1905 in
  List.iter
    (fun fname ->
      List.iter
        (fun n ->
          let tree = (Gen.family fname).generate rng n in
          let graph = Workload.guest_graph tree in
          let place = Array.init n Fun.id in
          for widx = 0 to n_workloads - 1 do
            let what = Printf.sprintf "%s on %s(%d)" (workload_name widx) fname n in
            compare_runs ~what ~graph ~place ~tree widx
          done)
        [ 1; 2; 17; 63; 240 ])
    families

let test_embedded_exhaustive () =
  let rng = Xt_prelude.Rng.make ~seed:1906 in
  let n = Theorem1.optimal_size 3 in
  List.iter
    (fun fname ->
      let tree = (Gen.family fname).generate rng n in
      let e = (Theorem1.embed tree).Theorem1.embedding in
      for widx = 0 to n_workloads - 1 do
        let what = Printf.sprintf "%s embedded, %s(%d)" (workload_name widx) fname n in
        compare_runs ~what ~graph:e.Embedding.host ~place:e.Embedding.place
          ~tree:e.Embedding.tree widx
      done)
    families

let test_constrained_exhaustive () =
  (* finite link capacity and service rate exercise the queue build-up
     paths (and the inbox high-water satellite) in both cores *)
  let rng = Xt_prelude.Rng.make ~seed:1907 in
  List.iter
    (fun fname ->
      let tree = (Gen.family fname).generate rng 63 in
      let graph = Workload.guest_graph tree in
      let place = Array.init 63 Fun.id in
      for widx = 0 to n_workloads - 1 do
        let what = Printf.sprintf "%s constrained on %s(63)" (workload_name widx) fname in
        compare_runs ~what ~link_capacity:2 ~service_rate:1 ~graph ~place ~tree widx
      done)
    families

(* ---------------- qcheck: random cases across the full knob space ---- *)

type eq_case = {
  fname : string;
  size : int;
  widx : int;
  cap : int;
  rate : int option;
  mode : int; (* 0 = native, 1 = Theorem 1 embedded, 2 = random placement *)
  shards : int;
  seed : int;
}

let print_case c =
  Printf.sprintf "%s(%d) %s cap=%d rate=%s mode=%d shards=%d seed=%d" c.fname c.size
    (workload_name c.widx) c.cap
    (match c.rate with None -> "inf" | Some r -> string_of_int r)
    c.mode c.shards c.seed

let case_gen =
  QCheck2.Gen.(
    let* fi = int_bound (List.length families - 1) in
    let* size = map (fun k -> k + 1) (int_bound 79) in
    let* widx = int_bound (n_workloads - 1) in
    let* cap = map (fun k -> k + 1) (int_bound 2) in
    let* rate = oneofl [ None; Some 1; Some 2 ] in
    let* mode = int_bound 2 in
    let* shards = oneofl [ 1; 2; 3; 4 ] in
    let* seed = int_bound 1_000_000 in
    return { fname = List.nth families fi; size; widx; cap; rate; mode; shards; seed })

let run_eq_case c =
  let rng = Xt_prelude.Rng.make ~seed:c.seed in
  let tree = (Gen.family c.fname).generate rng c.size in
  let graph, place, tree =
    match c.mode with
    | 0 -> (Workload.guest_graph tree, Array.init c.size Fun.id, tree)
    | 1 ->
        let e = (Theorem1.embed tree).Theorem1.embedding in
        (e.Embedding.host, e.Embedding.place, e.Embedding.tree)
    | _ ->
        (* arbitrary (non-injective) placement onto a fixed X-tree host *)
        let xt = Xtree.create ~height:3 in
        let order = Xtree.order xt in
        let place = Array.init c.size (fun _ -> Xt_prelude.Rng.int rng order) in
        (Xtree.graph xt, place, tree)
  in
  compare_runs ~what:(print_case c) ~link_capacity:c.cap ?service_rate:c.rate
    ~shard_counts:[ c.shards ] ~graph ~place ~tree c.widx;
  true

let qcheck_equivalence =
  QCheck2.Test.make ~count:120 ~name:"netsim: active-set core == reference core"
    ~print:print_case case_gen run_eq_case

(* ---------------- degenerate cases outside the workload sweeps ------- *)

(* Raw send lists rather than tree workloads, so the empty/singleton
   shapes the generators never produce are pinned too. Each case runs
   the reference once and the active-set core at shards 1, 2 and 4
   (clamped to the vertex count where the host is smaller). *)
let compare_direct ~what ?link_capacity ?service_rate ~graph sends =
  let quiet ~tag:_ _ = () in
  let rsim = Sim_ref.create ?link_capacity ?service_rate graph in
  List.iter (fun (src, dst, tag) -> Sim_ref.send rsim ~src ~dst ~tag) sends;
  let rcycles = Sim_ref.run rsim ~on_deliver:quiet in
  List.iter
    (fun shards ->
      let what = Printf.sprintf "%s [shards=%d]" what shards in
      let sim = Sim.create ?link_capacity ?service_rate ~shards graph in
      List.iter (fun (src, dst, tag) -> Sim.send sim ~src ~dst ~tag) sends;
      let cycles = Sim.run sim ~on_deliver:quiet in
      check (what ^ ": cycles") rcycles cycles;
      check (what ^ ": delivered") (Sim_ref.delivered rsim) (Sim.delivered sim);
      Alcotest.(check (array int))
        (what ^ ": link loads") (Sim_ref.link_loads rsim) (Sim.link_loads sim);
      Alcotest.(check (array int))
        (what ^ ": latencies") (Sim_ref.latencies rsim) (Sim.latencies sim);
      check (what ^ ": max link queue") (Sim_ref.max_link_queue rsim)
        (Sim.max_link_queue sim);
      check (what ^ ": max inbox queue") (Sim_ref.max_inbox_queue rsim)
        (Sim.max_inbox_queue sim))
    [ 1; 2; 4 ]

let test_degenerate_zero_messages () =
  (* quiescent networks: run returns 0 cycles without stepping at all *)
  compare_direct ~what:"zero messages, empty host" ~graph:(Graph.of_edges ~n:0 []) [];
  compare_direct ~what:"zero messages, path host"
    ~graph:(Graph.of_edges ~n:8 (List.init 7 (fun i -> (i, i + 1))))
    []

let test_degenerate_single_host () =
  (* one vertex, no links: only self-sends, serviced through the inbox *)
  let graph = Graph.of_edges ~n:1 [] in
  compare_direct ~what:"single host self-traffic" ~service_rate:1 ~graph
    (List.init 5 (fun k -> (0, 0, k)))

let test_degenerate_single_link () =
  (* two vertices, one edge: both directions, enough traffic to queue *)
  let graph = Graph.of_edges ~n:2 [ (0, 1) ] in
  compare_direct ~what:"single link" ~link_capacity:1 ~service_rate:1 ~graph
    [ (0, 1, 0); (0, 1, 1); (1, 0, 2); (0, 1, 3); (1, 0, 4); (1, 1, 5); (0, 0, 6) ]

(* ---------------- steady-state loop allocates nothing ---------------- *)

let test_run_allocation_free () =
  let n = 64 in
  let host = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let sim = Sim.create ~service_rate:1 host in
  let on_deliver ~tag:_ _ = () in
  let batch () =
    for v = 0 to 19 do
      Sim.send sim ~src:v ~dst:(n - 1 - v) ~tag:v
    done;
    ignore (Sim.run sim ~on_deliver)
  in
  (* warm up: sizes the arena, rings, scratch buffers and the latency
     array (which doubles geometrically) past what the measured batch
     needs, and builds the router's next-hop rows *)
  for _ = 1 to 16 do
    batch ()
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  batch ();
  let allocated = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "run loop allocated %.0f minor words" allocated)
    true (allocated < 256.)

let test_fast_forward_allocation_free () =
  (* the idle-skip path: one message at a time over a long path *)
  let n = 256 in
  let host = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let sim = Sim.create host in
  let on_deliver ~tag:_ _ = () in
  let batch () =
    for _ = 1 to 4 do
      Sim.send sim ~src:0 ~dst:(n - 1) ~tag:0;
      ignore (Sim.run sim ~on_deliver)
    done
  in
  for _ = 1 to 20 do
    batch ()
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  batch ();
  let allocated = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "fast-forward allocated %.0f minor words" allocated)
    true (allocated < 256.)

let suite =
  [
    ("native exhaustive equivalence", `Quick, test_native_exhaustive);
    ("embedded exhaustive equivalence", `Slow, test_embedded_exhaustive);
    ("constrained exhaustive equivalence", `Quick, test_constrained_exhaustive);
    QCheck_alcotest.to_alcotest ~long:false qcheck_equivalence;
    ("degenerate: zero messages", `Quick, test_degenerate_zero_messages);
    ("degenerate: single host", `Quick, test_degenerate_single_host);
    ("degenerate: single link", `Quick, test_degenerate_single_link);
    ("run loop allocation free", `Quick, test_run_allocation_free);
    ("fast forward allocation free", `Quick, test_fast_forward_allocation_free);
  ]
