open Xt_bintree
open Xt_core
open Xt_embedding

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let uniform_weights n = Array.make n 1

let zipfish_weights rng n cap =
  Array.init n (fun _ ->
      let u = Xt_prelude.Rng.float rng 1.0 in
      1 + int_of_float (float_of_int (cap - 1) *. u *. u *. u))

let test_validation () =
  let t = Gen.complete 7 in
  Alcotest.check_raises "weights size" (Invalid_argument "Weighted.embed: weights size")
    (fun () -> ignore (Weighted.embed ~budget:4 ~weights:[| 1 |] t));
  Alcotest.check_raises "non-positive" (Invalid_argument "Weighted.embed: non-positive weight")
    (fun () -> ignore (Weighted.embed ~budget:4 ~weights:(Array.make 7 0) t));
  Alcotest.check_raises "budget too small"
    (Invalid_argument "Weighted.embed: budget below heaviest node") (fun () ->
      ignore (Weighted.embed ~budget:4 ~weights:(Array.make 7 5) t))

let test_unit_weights_behave () =
  let n = 240 in
  let t = Gen.uniform (Xt_prelude.Rng.make ~seed:3) n in
  let res = Weighted.embed ~budget:16 ~weights:(uniform_weights n) t in
  checkb "all placed" true (Array.for_all (fun p -> p >= 0) res.Weighted.embedding.Embedding.place);
  checkb "budget respected" true (res.Weighted.max_vertex_weight <= 16);
  check "total" n res.Weighted.total_weight

let test_budget_is_hard () =
  let rng = Xt_prelude.Rng.make ~seed:9 in
  List.iter
    (fun fname ->
      let n = 1000 in
      let t = (Gen.family fname).generate rng n in
      let weights = zipfish_weights rng n 32 in
      let res = Weighted.embed ~budget:128 ~weights t in
      checkb (fname ^ " budget hard") true (res.Weighted.max_vertex_weight <= 128);
      checkb (fname ^ " placed") true
        (Array.for_all (fun p -> p >= 0) res.Weighted.embedding.Embedding.place))
    [ "path"; "caterpillar"; "uniform"; "random-bst" ]

let test_vertex_weights_sum () =
  let n = 500 in
  let rng = Xt_prelude.Rng.make ~seed:4 in
  let t = Gen.uniform rng n in
  let weights = zipfish_weights rng n 16 in
  let res = Weighted.embed ~budget:100 ~weights t in
  let vw = Weighted.vertex_weights res in
  check "sums to total" res.Weighted.total_weight (Array.fold_left ( + ) 0 vw);
  check "max agrees" res.Weighted.max_vertex_weight (Array.fold_left max 0 vw)

let test_beats_weight_blind () =
  let rng = Xt_prelude.Rng.make ~seed:6 in
  let n = Theorem1.optimal_size 6 in
  let t = Gen.uniform rng n in
  let weights = zipfish_weights rng n 32 in
  let res = Weighted.embed ~budget:128 ~weights t in
  let blind = Theorem1.embed ~height:res.Weighted.height t in
  let blind_max = Weighted.evaluate_placement ~weights blind.Theorem1.embedding in
  checkb
    (Printf.sprintf "weighted %d < blind %d" res.Weighted.max_vertex_weight blind_max)
    true
    (res.Weighted.max_vertex_weight < blind_max)

let test_imbalance_metric () =
  let n = 48 in
  let t = Gen.complete n in
  let res = Weighted.embed ~budget:16 ~weights:(uniform_weights n) t in
  checkb "imbalance >= 1" true (Weighted.imbalance res >= 1.0)

let test_single_heavy_node () =
  let t = Gen.complete 3 in
  let res = Weighted.embed ~budget:10 ~weights:[| 10; 1; 1 |] t in
  checkb "fits" true (res.Weighted.max_vertex_weight <= 10)

let test_explicit_height () =
  let n = 100 in
  let t = Gen.uniform (Xt_prelude.Rng.make ~seed:1) n in
  let res = Weighted.embed ~height:5 ~budget:16 ~weights:(uniform_weights n) t in
  check "height respected" 5 res.Weighted.height

let suite =
  [
    ("validation", `Quick, test_validation);
    ("unit weights behave", `Quick, test_unit_weights_behave);
    ("budget is hard", `Quick, test_budget_is_hard);
    ("vertex weights sum", `Quick, test_vertex_weights_sum);
    ("beats weight-blind", `Quick, test_beats_weight_blind);
    ("imbalance metric", `Quick, test_imbalance_metric);
    ("single heavy node", `Quick, test_single_heavy_node);
    ("explicit height", `Quick, test_explicit_height);
  ]

(* randomized: the budget is a hard bound for any family/size/skew *)
let weighted_qcheck =
  let gen_case =
    QCheck2.Gen.(
      let families = [| "path"; "caterpillar"; "uniform"; "random-bst" |] in
      let* fi = int_bound 3 in
      let* n = map (fun k -> k + 2) (int_bound 500) in
      let* maxw = map (fun k -> k + 1) (int_bound 20) in
      let* seed = int_bound 1_000_000 in
      return (families.(fi), n, maxw, seed))
  in
  let print_case (f, n, maxw, seed) = Printf.sprintf "%s n=%d maxw=%d seed=%d" f n maxw seed in
  [
    QCheck2.Test.make ~count:80 ~name:"weighted: hard budget, everything placed" ~print:print_case
      gen_case (fun (fname, n, maxw, seed) ->
        let rng = Xt_prelude.Rng.make ~seed in
        let t = (Gen.family fname).generate rng n in
        let weights = Array.init n (fun _ -> 1 + Xt_prelude.Rng.int rng maxw) in
        let budget = 4 * (maxw + 1) in
        let res = Weighted.embed ~budget ~weights t in
        res.Weighted.max_vertex_weight <= budget
        && Array.for_all (fun p -> p >= 0) res.Weighted.embedding.Embedding.place);
  ]

let suite = suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) weighted_qcheck
