open Xt_topology
open Xt_bintree
open Xt_embedding

let check = Alcotest.(check int)

let check_opt name expected got =
  Alcotest.(check (option int)) name expected got

let path_host n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_identity_cases () =
  (* a guest that IS the host embeds with dilation 1 *)
  check_opt "path into path" (Some 1)
    (Exact.optimal_dilation ~guest:(Gen.path 5) ~host:(path_host 5) ());
  check_opt "cbt into cbt" (Some 1)
    (Exact.optimal_dilation ~guest:(Gen.complete 7) ~host:(Cbt.graph (Cbt.create ~height:2)) ())

let test_does_not_fit () =
  check_opt "too big" None (Exact.optimal_dilation ~guest:(Gen.path 5) ~host:(path_host 4) ())

let test_single_node () =
  match Exact.optimal_embedding ~guest:(Gen.path 1) ~host:(path_host 3) () with
  | Some (place, d) ->
      check "dilation 0" 0 d;
      check "one node" 1 (Array.length place)
  | None -> Alcotest.fail "single node must embed"

let test_complete_into_path_needs_stretch () =
  (* B_2 (7 nodes) in a path of 7: known to need dilation > 1 *)
  match Exact.optimal_dilation ~guest:(Gen.complete 7) ~host:(path_host 7) () with
  | Some d -> Alcotest.(check bool) "dilation > 1" true (d > 1)
  | None -> Alcotest.fail "must fit"

let test_respects_max_dilation () =
  check_opt "bounded out" None
    (Exact.optimal_dilation ~max_dilation:1 ~guest:(Gen.complete 7) ~host:(path_host 7) ())

let test_result_is_valid_embedding () =
  let guest = Gen.caterpillar 9 in
  let host = Xtree.graph (Xtree.create ~height:3) in
  match Exact.optimal_embedding ~guest ~host () with
  | None -> Alcotest.fail "should fit"
  | Some (place, d) ->
      let e = Embedding.make ~tree:guest ~host ~place in
      Alcotest.(check bool) "injective" true (Embedding.is_injective e);
      check "dilation agrees" d (Embedding.dilation e)

let test_matches_brute_force () =
  let rng = Xt_prelude.Rng.make ~seed:77 in
  let hosts =
    [ path_host 6; Xtree.graph (Xtree.create ~height:2); Hypercube.graph (Hypercube.create ~dim:3) ]
  in
  for _ = 1 to 8 do
    let guest = Gen.uniform rng (4 + Xt_prelude.Rng.int rng 3) in
    List.iter
      (fun host ->
        check_opt "agrees with brute force"
          (Exact.brute_force_dilation ~guest ~host)
          (Exact.optimal_dilation ~guest ~host ()))
      hosts
  done

let test_context_separation () =
  (* the BCHLR-style observation the paper cites: a complete tree is a
     subgraph of its X-tree but needs stretching in CCC / hypercube *)
  let b3 = Gen.complete 15 in
  check_opt "X-tree holds B_3" (Some 1)
    (Exact.optimal_dilation ~guest:b3 ~host:(Xtree.graph (Xtree.create ~height:3)) ());
  (match Exact.optimal_dilation ~guest:b3 ~host:(Ccc.graph (Ccc.create ~dim:3)) () with
  | Some d -> Alcotest.(check bool) "CCC needs more" true (d >= 2)
  | None -> Alcotest.fail "fits in CCC(3)");
  match Exact.optimal_dilation ~guest:b3 ~host:(Hypercube.graph (Hypercube.create ~dim:4)) () with
  | Some d -> Alcotest.(check bool) "Q4 needs more" true (d >= 2)
  | None -> Alcotest.fail "fits in Q4"

let suite =
  [
    ("identity cases", `Quick, test_identity_cases);
    ("does not fit", `Quick, test_does_not_fit);
    ("single node", `Quick, test_single_node);
    ("complete into path", `Quick, test_complete_into_path_needs_stretch);
    ("respects max dilation", `Quick, test_respects_max_dilation);
    ("result is valid", `Quick, test_result_is_valid_embedding);
    ("matches brute force", `Slow, test_matches_brute_force);
    ("context separation", `Slow, test_context_separation);
  ]

(* ---------------- graph guests ---------------- *)

let test_graph_guest_xtree_in_cube () =
  let x2 = Xtree.graph (Xtree.create ~height:2) in
  check_opt "X(2) in Q3 needs 2" (Some 2)
    (Exact.optimal_dilation_graph ~guest:x2 ~host:(Hypercube.graph (Hypercube.create ~dim:3)) ());
  check_opt "X(2) in X(2) is 1" (Some 1) (Exact.optimal_dilation_graph ~guest:x2 ~host:x2 ())

let test_graph_guest_disconnected () =
  let guest = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check_opt "disconnected guest rejected" None
    (Exact.optimal_dilation_graph ~guest ~host:(Hypercube.graph (Hypercube.create ~dim:3)) ())

let test_graph_guest_matches_tree_api () =
  let tree = Gen.complete 7 in
  let host = Xtree.graph (Xtree.create ~height:2) in
  let via_graph =
    Exact.optimal_dilation_graph ~guest:(Graph.of_edges ~n:7 (Bintree.edges tree)) ~host ()
  in
  check_opt "agree" (Exact.optimal_dilation ~guest:tree ~host ()) via_graph

let test_grid_guest () =
  let g = Grid.graph (Grid.create ~rows:2 ~cols:4) in
  check_opt "2x4 grid is a subgraph of Q3" (Some 1)
    (Exact.optimal_dilation_graph ~guest:g ~host:(Hypercube.graph (Hypercube.create ~dim:3)) ())

let suite =
  suite
  @ [
      ("graph guest: xtree in cube", `Quick, test_graph_guest_xtree_in_cube);
      ("graph guest: disconnected", `Quick, test_graph_guest_disconnected);
      ("graph guest matches tree api", `Quick, test_graph_guest_matches_tree_api);
      ("grid guest subgraph of Q3", `Quick, test_grid_guest);
    ]
