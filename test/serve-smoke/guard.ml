(* Allocation guard for the @serve-smoke alias: the serve steady state is
   a cache hit — a repeated shape must be answered from the memoised
   placement, never by re-running the embedding pipeline. A full run on a
   ~500-node tree allocates megawords; a hit decodes the stored entry and
   rebuilds the result record, which is O(n). The threshold sits well
   above the hit path and well below the pipeline, so a regression that
   silently stops hitting the cache fails loudly. Prints one parseable
   line for check.sh. *)

let () =
  let open Xt_prelude in
  let open Xt_bintree in
  let open Xt_core in
  let tree = Gen.uniform (Rng.make ~seed:5) 509 in
  let cache = Theorem1.make_cache ~capacity:64 () in
  let embed () = Theorem1.embed ~capacity:16 ~cache tree in
  ignore (embed ());
  for _ = 1 to 4 do
    ignore (embed ())
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  ignore (embed ());
  let allocated = Gc.minor_words () -. before in
  Printf.printf "hit-minor-words = %.0f\n" allocated;
  let stats = Theorem1.cache_stats cache in
  Printf.printf "hits = %d misses = %d\n" stats.Cache.hits stats.Cache.misses;
  print_endline
    (if allocated < 65536. && stats.Cache.misses = 1 then "guard PASS"
     else "guard FAIL")
