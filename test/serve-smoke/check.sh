#!/usr/bin/env bash
# Embedding-service smoke assertions for the @serve-smoke alias.
set -eu

# the wire round-trip changes nothing: a loadgen replay against a spawned
# server prints byte-for-byte what embed-batch prints on the same stream
diff -u loadgen.out embed.out

# the report is the one we expect, not an empty file that trivially diffs
test "$(grep -c '^[0-9]*: n=' loadgen.out)" -eq 24
grep -q '^0: n=' loadgen.out
grep -q '^23: n=' loadgen.out
grep -q '^batch: trees=24 unique=3$' loadgen.out

# serve steady state is a cache hit, not a pipeline re-run
grep -q '^guard PASS$' guard.out
