The CLI drives every pipeline stage; these sessions pin its observable
behaviour (all commands are deterministic given --seed).

Generate a tree and print its statistics:

  $ xtree generate -f caterpillar -n 20 -s 1
  family=caterpillar nodes=20 height=13 leaves=7 max-degree=3
  shape: 0(2(3(5(6(8(9(11(12(14(15(17(18(19,_),_),16),_),13),_),10),_),7),_),4),_),1)

Round-trip a tree through the codec format:

  $ xtree generate -f complete -n 7 -s 1 -o tree.txt
  family=complete nodes=7 height=2 leaves=4 max-degree=3
  written to tree.txt
  $ cat tree.txt
  (((..)(..))((..)(..)))

Theorem 1 embedding of the paper's exact size for X(3):

  $ xtree embed -f uniform -n 240 -s 7
  theorem1: dilation=2 avg=0.19 load=16 expansion=0.062 congestion=5
  host: X(3) with 15 vertices; fallbacks=0
  condition (3'): 239/239 edges ok; max level gap 2

Parallel sweeps cannot change the embedding: --jobs runs the Theorem 1
rounds on a domain pool, and the result is bit-identical to the default
sequential run. XT_DOMAINS=1 forces the sequential path; same output:

  $ xtree embed -f uniform -n 1008 -s 7 --jobs 4
  theorem1: dilation=3 avg=0.33 load=16 expansion=0.062 congestion=12
  host: X(5) with 63 vertices; fallbacks=0
  condition (3'): 1004/1007 edges ok; max level gap 2

  $ XT_DOMAINS=1 xtree embed -f uniform -n 1008 -s 7
  theorem1: dilation=3 avg=0.33 load=16 expansion=0.062 congestion=12
  host: X(5) with 63 vertices; fallbacks=0
  condition (3'): 1004/1007 edges ok; max level gap 2

An embedding read back from a file, with the repair pass:

  $ xtree embed -i tree.txt --repair
  repair: 0 swaps, (3') violations 0 -> 0, dilation 0 -> 0
  theorem1: dilation=0 avg=0.00 load=7 expansion=0.143 congestion=0
  host: X(0) with 1 vertices; fallbacks=0
  condition (3'): 6/6 edges ok; max level gap 0

Hypercube transfer (Theorem 3):

  $ xtree hypercube -f path -n 240 -s 1
  theorem3: dilation=2 avg=0.26 load=16 expansion=0.067 congestion=6
  host: Q_4 with 16 vertices

The Figure 2 neighbourhood:

  $ xtree neighbourhood --height 3 -v 01
  N(01) in X(3): 10 vertices (paper bound: self + 20)
    00
    01
    10
    11
    000
    001
    010
    011
    100
    101

Table-free routing:

  $ xtree route --height 5 --from 00000 --to 11111
  analytic distance: 9 (BFS: 9)
  route: 00000 -> 0000 -> 000 -> 00 -> 01 -> 10 -> 11 -> 111 -> 1111 -> 11111

Exact optimal dilation of a small guest:

  $ xtree exact -f complete -n 7 --host cube:3
  optimal injective dilation of complete (n=7): 2

Weight-aware embedding with heterogeneous node costs:

  $ xtree weighted -f uniform -n 1000 -s 1 --budget 128
  weighted: total=8397 host=X(6) budget=128 max-vertex=128 imbalance=1.91 dilation=4
  weight-blind theorem1 on the same host: max-vertex=212
