The CLI drives every pipeline stage; these sessions pin its observable
behaviour (all commands are deterministic given --seed).

Generate a tree and print its statistics:

  $ xtree generate -f caterpillar -n 20 -s 1
  family=caterpillar nodes=20 height=13 leaves=7 max-degree=3
  shape: 0(2(3(5(6(8(9(11(12(14(15(17(18(19,_),_),16),_),13),_),10),_),7),_),4),_),1)

Round-trip a tree through the codec format:

  $ xtree generate -f complete -n 7 -s 1 -o tree.txt
  family=complete nodes=7 height=2 leaves=4 max-degree=3
  written to tree.txt
  $ cat tree.txt
  (((..)(..))((..)(..)))

Theorem 1 embedding of the paper's exact size for X(3):

  $ xtree embed -f uniform -n 240 -s 7
  theorem1: dilation=2 avg=0.19 load=16 expansion=0.062 congestion=5
  host: X(3) with 15 vertices; fallbacks=0
  condition (3'): 239/239 edges ok; max level gap 2

Parallel sweeps cannot change the embedding: --jobs runs the Theorem 1
rounds on a domain pool, and the result is bit-identical to the default
sequential run. XT_DOMAINS=1 forces the sequential path; same output:

  $ xtree embed -f uniform -n 1008 -s 7 --jobs 4
  theorem1: dilation=3 avg=0.33 load=16 expansion=0.062 congestion=12
  host: X(5) with 63 vertices; fallbacks=0
  condition (3'): 1004/1007 edges ok; max level gap 2

  $ XT_DOMAINS=1 xtree embed -f uniform -n 1008 -s 7
  theorem1: dilation=3 avg=0.33 load=16 expansion=0.062 congestion=12
  host: X(5) with 63 vertices; fallbacks=0
  condition (3'): 1004/1007 edges ok; max level gap 2

Telemetry: --metrics prints the merged work counters after the run.
The algorithmic counters (adjust.*, split.*, theorem1.*) count the
deterministic pipeline, so they are identical whatever --jobs says:

  $ xtree embed -f uniform -n 240 -s 7 --metrics | grep -E '^(adjust|split|theorem1)\.'
  adjust.active_calls = 2
  adjust.lemma_splits = 2
  adjust.nodes_moved = 5
  adjust.whole_moves = 0
  split.balance_splits = 4
  split.calls = 7
  split.fill_laid = 191
  split.pieces = 31
  theorem1.rounds = 3

  $ xtree embed -f uniform -n 240 -s 7 --jobs 4 --metrics | grep -E '^(adjust|split|theorem1)\.'
  adjust.active_calls = 2
  adjust.lemma_splits = 2
  adjust.nodes_moved = 5
  adjust.whole_moves = 0
  split.balance_splits = 4
  split.calls = 7
  split.fill_laid = 191
  split.pieces = 31
  theorem1.rounds = 3

--trace writes a Chrome trace-event JSON file (load it in Perfetto or
chrome://tracing), with every span's begin matched by an end:

  $ XT_DOMAINS=1 xtree embed -f uniform -n 240 -s 7 --trace trace.json | tail -n 1
  trace written to trace.json
  $ head -c 16 trace.json
  {"traceEvents":[
  $ test $(grep -c '"ph":"B"' trace.json) -eq $(grep -c '"ph":"E"' trace.json) && echo balanced
  balanced
  $ grep -c '"name":"theorem1.round","ph":"B"' trace.json
  3

The network simulator reports end-to-end latency quantiles and per-link
load from its dense link-indexed queues:

  $ xtree simulate -f uniform -n 240 -s 7
  reduction on uniform (n=240): native=36 cycles, on X(3)=39 cycles, slowdown 1.08x
  latency cycles: p50=1 p90=1 p99=2 max=2; busiest link carried 4, max queue 2, max inbox 8

The full workload suite in one table (trailing padding trimmed for the
cram), then the conservation counters — everything sent was delivered:

  $ xtree simulate --suite -f uniform -n 240 -s 7 | sed 's/ *$//'
  == workload suite on uniform (n=240), host X(3) ==
  workload        native  x-tree  slowdown  hops  max queue  max inbox
  --------------------------------------------------------------------
  reduction       36      39      1.08      46    2          8
  broadcast       36      40      1.11      46    2          4
  all-reduce      72      79      1.10      92    2          8
  pingpong-sweep  478     494     1.03      92    1          1
  permutation     89      30      0.34      596   16         3

  $ xtree simulate --suite -f uniform -n 240 -s 7 --metrics | grep -E '^netsim\.(sent|delivered|hops) '
  netsim.delivered = 3348
  netsim.hops = 7256
  netsim.sent = 3348

--shards partitions the simulated host across domain lanes with a
deterministic cycle-barrier merge, so the output is byte-identical to
the single-lane run (only the wall clock changes); the conservation
counters pick up the boundary-crossing count:

  $ xtree simulate -f uniform -n 240 -s 7 --shards 4
  reduction on uniform (n=240): native=36 cycles, on X(3)=39 cycles, slowdown 1.08x
  latency cycles: p50=1 p90=1 p99=2 max=2; busiest link carried 4, max queue 2, max inbox 8
  $ xtree simulate --suite -f uniform -n 240 -s 7 --shards 4 --metrics | grep -E '^netsim\.(sent|delivered|hops) '
  netsim.delivered = 3348
  netsim.hops = 7256
  netsim.sent = 3348

An embedding read back from a file, with the repair pass:

  $ xtree embed -i tree.txt --repair
  repair: 0 swaps, (3') violations 0 -> 0, dilation 0 -> 0
  theorem1: dilation=0 avg=0.00 load=7 expansion=0.143 congestion=0
  host: X(0) with 1 vertices; fallbacks=0
  condition (3'): 6/6 edges ok; max level gap 0

Hypercube transfer (Theorem 3):

  $ xtree hypercube -f path -n 240 -s 1
  theorem3: dilation=2 avg=0.26 load=16 expansion=0.067 congestion=6
  host: Q_4 with 16 vertices

The Figure 2 neighbourhood:

  $ xtree neighbourhood --height 3 -v 01
  N(01) in X(3): 10 vertices (paper bound: self + 20)
    00
    01
    10
    11
    000
    001
    010
    011
    100
    101

Table-free routing:

  $ xtree route --height 5 --from 00000 --to 11111
  analytic distance: 9 (BFS: 9)
  route: 00000 -> 0000 -> 000 -> 00 -> 01 -> 10 -> 11 -> 111 -> 1111 -> 11111

Exact optimal dilation of a small guest:

  $ xtree exact -f complete -n 7 --host cube:3
  optimal injective dilation of complete (n=7): 2

Weight-aware embedding with heterogeneous node costs:

  $ xtree weighted -f uniform -n 1000 -s 1 --budget 128
  weighted: total=8397 host=X(6) budget=128 max-vertex=128 imbalance=1.91 dilation=4
  weight-blind theorem1 on the same host: max-vertex=212

Batch embedding through the canonical-shape cache: structurally repeated
trees are embedded once, results fan back out in input order, and the
cache counters expose the dedupe (one miss per unique shape, one hit per
served line):

  $ xtree generate -f complete -n 31 -s 1 -o shape-a.txt
  family=complete nodes=31 height=4 leaves=16 max-degree=3
  written to shape-a.txt
  $ xtree generate -f caterpillar -n 31 -s 2 -o shape-b.txt
  family=caterpillar nodes=31 height=20 leaves=11 max-degree=3
  written to shape-b.txt
  $ { cat shape-a.txt; echo; cat shape-b.txt; echo; cat shape-a.txt; echo; } > batch.txt
  $ XT_DOMAINS=1 xtree embed-batch -i batch.txt --metrics | grep -E '^[0-9]+:|^batch:|^cache\.'
  0: n=31 dilation=1 load=16 host=X(1)
  1: n=31 dilation=1 load=16 host=X(1)
  2: n=31 dilation=1 load=16 host=X(1)
  batch: trees=3 unique=2
  cache.evictions = 0
  cache.hits = 3
  cache.misses = 2
  cache.verify_rejects = 0

Observability v2: the same telemetry terms are mounted on every
subcommand, so --metrics / --trace / --flight compose with all of them,
not just embed and simulate:

  $ XT_DOMAINS=1 xtree route --height 5 --from 00000 --to 11111 --metrics | sed -n '3p'
  == metrics ==
  $ XT_DOMAINS=1 xtree hypercube -f path -n 240 -s 1 --metrics | grep -E '^(adjust.nodes_moved|theorem1.rounds) '
  adjust.nodes_moved = 20
  theorem1.rounds = 3
  $ XT_DOMAINS=1 XT_FAKE_CLOCK=1 xtree weighted -f uniform -n 1000 -s 1 --budget 128 --trace w.json | tail -n 1
  trace written to w.json
  $ test $(grep -c '"ph":"B"' w.json) -eq $(grep -c '"ph":"E"' w.json) && echo balanced
  balanced
  $ XT_DOMAINS=1 xtree embed-batch -i batch.txt --metrics --trace b.json | grep '^trace written'
  trace written to b.json
  $ grep -c '"name":"theorem1.embed","ph":"B"' b.json
  2

The flight recorder is on by default; --flight (or XT_FLIGHT=FILE in
the environment) dumps the per-domain rings of recent events on exit:

  $ XT_DOMAINS=1 XT_FAKE_CLOCK=1 xtree embed -f uniform -n 240 -s 7 --flight fl.txt > /dev/null
  $ head -n 2 fl.txt
  == flight recorder ==
  capacity=256/shard recorded=22 dropped=0
  $ XT_DOMAINS=1 XT_FLIGHT=fl2.txt xtree route --height 3 --from 000 --to 111 > /dev/null
  $ head -n 1 fl2.txt
  == flight recorder ==

Trace analytics: `xtree trace report` digests a trace file into tables;
the --deterministic projection is stable across runs and --jobs under
the fake clock (the full report adds wall-time and per-domain tables):

  $ XT_DOMAINS=1 XT_FAKE_CLOCK=1 xtree embed -f uniform -n 240 -s 7 --trace t.json > /dev/null
  $ xtree trace report --deterministic t.json
  == spans (deterministic) ==
  span                   count
  theorem1.adjust-sweep      3
  theorem1.embed             1
  theorem1.final-fill        1
  theorem1.round             3
  theorem1.split-sweep       3
  $ xtree trace report t.json | grep -E '^== (spans|domains) =='
  == spans ==
  == domains ==

--out archives the same report next to the trace instead of printing:

  $ xtree trace report --deterministic --out t.report t.json
  $ xtree trace report --deterministic t.json | diff - t.report

--trace-report skips the file and reports on the in-memory log at exit:

  $ XT_DOMAINS=1 xtree simulate -f uniform -n 240 -s 7 --trace-report | grep -cE '^== (spans|domains|instants|series) =='
  4
