#!/usr/bin/env bash
# Simulator smoke assertions for the @sim-smoke alias.
set -eu

grep -q '^== workload suite on uniform (n=496)' sim-smoke.out
for w in reduction broadcast all-reduce pingpong-sweep permutation; do
  grep -q "^$w " sim-smoke.out
done

# conservation: everything sent was delivered, and something was sent
sent=$(sed -n 's/^netsim.sent = //p' sim-smoke.out)
delivered=$(sed -n 's/^netsim.delivered = //p' sim-smoke.out)
test "$sent" -gt 0
test "$sent" -eq "$delivered"
