(* Telemetry subsystem: disabled-mode cost, deterministic drains, and
   Chrome-trace export shape. *)
open Xt_obs
open Xt_prelude
open Xt_bintree
open Xt_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let quiesce () =
  Obs.disable_metrics ();
  Obs.disable_tracing ();
  Obs.reset_metrics ();
  Obs.reset_trace ()

(* ---------------- minimal JSON reader ----------------

   The container has no JSON library, so the trace-validity test parses
   the export with a small recursive-descent reader covering exactly the
   grammar [Obs.trace_json] can emit (and standard JSON escapes). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of int

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let adv () = incr pos in
  let rec skip () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> adv (); skip () | _ -> ()
  in
  let expect c = if peek () <> c then raise (Bad_json !pos) else adv () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> adv (); Buffer.contents b
      | '\255' -> raise (Bad_json !pos)
      | '\\' -> (
          adv ();
          let c = peek () in
          adv ();
          match c with
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> raise (Bad_json !pos));
                adv ()
              done;
              Buffer.add_char b '?';
              go ()
          | '"' | '\\' | '/' -> Buffer.add_char b c; go ()
          | _ -> raise (Bad_json !pos))
      | c -> Buffer.add_char b c; adv (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> adv (); go ()
      | _ -> ()
    in
    go ();
    if !pos = start then raise (Bad_json !pos);
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> raise (Bad_json start)
  in
  let literal w v =
    String.iter (fun c -> expect c) w;
    v
  in
  let rec parse_value () =
    skip ();
    match peek () with
    | '{' ->
        adv ();
        skip ();
        if peek () = '}' then (adv (); Obj [])
        else
          let rec members acc =
            skip ();
            let k = parse_string () in
            skip ();
            expect ':';
            let v = parse_value () in
            skip ();
            match peek () with
            | ',' -> adv (); members ((k, v) :: acc)
            | '}' -> adv (); Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad_json !pos)
          in
          members []
    | '[' ->
        adv ();
        skip ();
        if peek () = ']' then (adv (); Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip ();
            match peek () with
            | ',' -> adv (); elems (v :: acc)
            | ']' -> adv (); Arr (List.rev (v :: acc))
            | _ -> raise (Bad_json !pos)
          in
          elems []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip ();
  if !pos <> n then raise (Bad_json !pos);
  v

let field name = function
  | Obj kvs -> List.assoc name kvs
  | _ -> invalid_arg "field: not an object"

let str_field name o = match field name o with Str s -> s | _ -> invalid_arg name
let num_field name o = match field name o with Num f -> f | _ -> invalid_arg name

let trace_events doc =
  match field "traceEvents" doc with
  | Arr evs -> evs
  | _ -> invalid_arg "traceEvents"

(* ---------------- disabled mode ---------------- *)

let test_disabled_records_nothing () =
  let c = Obs.counter "test.off_counter" in
  let g = Obs.gauge "test.off_gauge" in
  let h = Obs.histogram "test.off_hist" in
  quiesce ();
  Obs.incr c;
  Obs.add c 41;
  Obs.set_gauge g 7;
  Obs.observe h 3;
  ignore (Obs.time_ns h (fun () -> 5));
  ignore (Obs.span "test.off_span" (fun () -> 1));
  Obs.instant "test.off_instant";
  Obs.counter_event "test.off_series" 9;
  let d = Obs.snapshot () in
  check "counter untouched" 0 (List.assoc "test.off_counter" d.Obs.counters);
  check "gauge untouched" 0 (List.assoc "test.off_gauge" d.Obs.gauges);
  let row = List.find (fun r -> r.Obs.h_name = "test.off_hist") d.Obs.histograms in
  check "hist untouched" 0 row.Obs.count;
  let evs = trace_events (parse_json (Obs.trace_json ())) in
  checkb "no span events recorded" true
    (List.for_all (fun e -> str_field "ph" e = "M") evs)

let test_disabled_allocates_nothing () =
  let c = Obs.counter "test.off_alloc_counter" in
  let h = Obs.histogram "test.off_alloc_hist" in
  quiesce ();
  let before = Gc.minor_words () in
  for i = 1 to 50_000 do
    Obs.incr c;
    Obs.add c i;
    Obs.observe h i
  done;
  let allocated = Gc.minor_words () -. before in
  (* 150k disabled recordings: a handful of boxed words of slack covers
     the Gc.minor_words calls themselves. *)
  checkb (Printf.sprintf "allocated %.0f words" allocated) true (allocated < 256.)

(* ---------------- enabled metrics ---------------- *)

let test_enabled_merge_and_drain () =
  quiesce ();
  Obs.enable_metrics ();
  let c = Obs.counter "test.on_counter" in
  Obs.incr c;
  Obs.add c 41;
  let g = Obs.gauge "test.on_gauge" in
  (* within one shard a gauge is last-write-wins; the max-merge applies
     across shards *)
  Obs.set_gauge g 3;
  Obs.set_gauge g 9;
  let h = Obs.histogram ~buckets:[| 1; 10; 100 |] "test.on_hist" in
  List.iter (Obs.observe h) [ 0; 5; 50; 5000 ];
  let d = Obs.drain () in
  Obs.disable_metrics ();
  check "counter total" 42 (List.assoc "test.on_counter" d.Obs.counters);
  check "gauge max-merge" 9 (List.assoc "test.on_gauge" d.Obs.gauges);
  let row = List.find (fun r -> r.Obs.h_name = "test.on_hist") d.Obs.histograms in
  Alcotest.(check (array int)) "bucketed" [| 1; 1; 1; 1 |] row.Obs.counts;
  check "count" 4 row.Obs.count;
  check "sum" 5055 row.Obs.sum;
  check "min" 0 row.Obs.vmin;
  check "max" 5000 row.Obs.vmax;
  checkb "names sorted" true
    (let names = List.map fst d.Obs.counters in
     names = List.sort compare names);
  (* drain reset everything *)
  let d2 = Obs.snapshot () in
  check "drained counter" 0 (List.assoc "test.on_counter" d2.Obs.counters);
  let row2 = List.find (fun r -> r.Obs.h_name = "test.on_hist") d2.Obs.histograms in
  check "drained hist" 0 row2.Obs.count

(* The work counters of the deterministic pipeline must not depend on
   how many domains executed it. *)
let embed_work_counters jobs =
  Parallel.set_domain_budget jobs;
  quiesce ();
  Obs.enable_metrics ();
  let rng = Rng.make ~seed:42 in
  let t = (Gen.family "uniform").generate rng 1008 in
  ignore (Theorem1.embed t);
  let d = Obs.drain () in
  Obs.disable_metrics ();
  let deterministic name =
    List.exists
      (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
      [ "adjust."; "split."; "theorem1."; "repair." ]
  in
  List.filter (fun (name, _) -> deterministic name) d.Obs.counters

let test_counters_domain_count_independent () =
  let seq = embed_work_counters 1 in
  let par = embed_work_counters 4 in
  Alcotest.(check (list (pair string int))) "jobs 1 = jobs 4" seq par;
  checkb "counted real work" true (List.exists (fun (_, v) -> v > 0) seq);
  checkb "rounds counted" true (List.assoc "theorem1.rounds" seq > 0)

(* ---------------- tracing ---------------- *)

let test_trace_shape_fake_clock () =
  let tick = ref 0 in
  Obs.set_clock (fun () ->
      incr tick;
      !tick * 1000);
  quiesce ();
  Obs.enable_tracing ();
  Obs.span "outer" (fun () ->
      Obs.span ~arg:1 "inner" (fun () -> Obs.instant "tick");
      try Obs.span "raiser" (fun () -> raise Exit) with Exit -> ());
  Obs.counter_event "depth" 5;
  let doc = parse_json (Obs.trace_json ()) in
  Obs.disable_tracing ();
  let evs = trace_events doc in
  let phases p = List.filter (fun e -> str_field "ph" e = p) evs in
  check "three begins" 3 (List.length (phases "B"));
  (* the raising span still closed *)
  check "three ends" 3 (List.length (phases "E"));
  check "one instant" 1 (List.length (phases "i"));
  check "one counter sample" 1 (List.length (phases "C"));
  (* begin/end balanced per track *)
  let tids = List.sort_uniq compare (List.map (fun e -> num_field "tid" e) evs) in
  List.iter
    (fun tid ->
      let on p e = str_field "ph" e = p && num_field "tid" e = tid in
      check
        (Printf.sprintf "balanced tid %.0f" tid)
        (List.length (List.filter (on "B") evs))
        (List.length (List.filter (on "E") evs)))
    tids;
  (* fake clock: timestamps are non-negative and non-decreasing in
     recording order *)
  let ts = List.map (fun e -> num_field "ts" e) (phases "B" @ phases "E") in
  checkb "non-negative ts" true (List.for_all (fun t -> t >= 0.) ts);
  let names = List.map (fun e -> str_field "name" e) (phases "B") in
  Alcotest.(check (list string)) "span names" [ "outer"; "inner"; "raiser" ] names;
  (match List.hd (phases "C") with
  | e ->
      Alcotest.(check string) "series name" "depth" (str_field "name" e);
      check "series value" 5 (int_of_float (num_field "value" (field "args" e))));
  (* reset drops everything but metadata stays consistent *)
  Obs.reset_trace ();
  let evs2 = trace_events (parse_json (Obs.trace_json ())) in
  checkb "reset cleared events" true (List.for_all (fun e -> str_field "ph" e = "M") evs2)

let test_trace_disabled_passthrough () =
  quiesce ();
  check "span returns" 17 (Obs.span "unrecorded" (fun () -> 17))

let suite =
  [
    ("disabled records nothing", `Quick, test_disabled_records_nothing);
    ("disabled allocates nothing", `Quick, test_disabled_allocates_nothing);
    ("merge and drain", `Quick, test_enabled_merge_and_drain);
    ("counters independent of jobs", `Quick, test_counters_domain_count_independent);
    ("trace shape under fake clock", `Quick, test_trace_shape_fake_clock);
    ("trace disabled passthrough", `Quick, test_trace_disabled_passthrough);
  ]
