(* Telemetry subsystem: disabled-mode cost, deterministic drains, and
   Chrome-trace export shape. *)
open Xt_obs
open Xt_prelude
open Xt_bintree
open Xt_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let quiesce () =
  Obs.disable_metrics ();
  Obs.disable_tracing ();
  Obs.disable_gc_sampling ();
  Obs.reset_metrics ();
  Obs.reset_trace ();
  Obs.reset_recorder ()

(* ---------------- minimal JSON reader ----------------

   The container has no JSON library, so the trace-validity test parses
   the export with a small recursive-descent reader covering exactly the
   grammar [Obs.trace_json] can emit (and standard JSON escapes). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of int

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let adv () = incr pos in
  let rec skip () =
    match peek () with ' ' | '\t' | '\n' | '\r' -> adv (); skip () | _ -> ()
  in
  let expect c = if peek () <> c then raise (Bad_json !pos) else adv () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> adv (); Buffer.contents b
      | '\255' -> raise (Bad_json !pos)
      | '\\' -> (
          adv ();
          let c = peek () in
          adv ();
          match c with
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> raise (Bad_json !pos));
                adv ()
              done;
              Buffer.add_char b '?';
              go ()
          | '"' | '\\' | '/' -> Buffer.add_char b c; go ()
          | _ -> raise (Bad_json !pos))
      | c -> Buffer.add_char b c; adv (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let rec go () =
      match peek () with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> adv (); go ()
      | _ -> ()
    in
    go ();
    if !pos = start then raise (Bad_json !pos);
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> raise (Bad_json start)
  in
  let literal w v =
    String.iter (fun c -> expect c) w;
    v
  in
  let rec parse_value () =
    skip ();
    match peek () with
    | '{' ->
        adv ();
        skip ();
        if peek () = '}' then (adv (); Obj [])
        else
          let rec members acc =
            skip ();
            let k = parse_string () in
            skip ();
            expect ':';
            let v = parse_value () in
            skip ();
            match peek () with
            | ',' -> adv (); members ((k, v) :: acc)
            | '}' -> adv (); Obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad_json !pos)
          in
          members []
    | '[' ->
        adv ();
        skip ();
        if peek () = ']' then (adv (); Arr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip ();
            match peek () with
            | ',' -> adv (); elems (v :: acc)
            | ']' -> adv (); Arr (List.rev (v :: acc))
            | _ -> raise (Bad_json !pos)
          in
          elems []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip ();
  if !pos <> n then raise (Bad_json !pos);
  v

let field name = function
  | Obj kvs -> List.assoc name kvs
  | _ -> invalid_arg "field: not an object"

let str_field name o = match field name o with Str s -> s | _ -> invalid_arg name
let num_field name o = match field name o with Num f -> f | _ -> invalid_arg name

let trace_events doc =
  match field "traceEvents" doc with
  | Arr evs -> evs
  | _ -> invalid_arg "traceEvents"

(* ---------------- disabled mode ---------------- *)

let test_disabled_records_nothing () =
  let c = Obs.counter "test.off_counter" in
  let g = Obs.gauge "test.off_gauge" in
  let h = Obs.histogram "test.off_hist" in
  quiesce ();
  Obs.incr c;
  Obs.add c 41;
  Obs.set_gauge g 7;
  Obs.observe h 3;
  ignore (Obs.time_ns h (fun () -> 5));
  ignore (Obs.span "test.off_span" (fun () -> 1));
  Obs.instant "test.off_instant";
  Obs.counter_event "test.off_series" 9;
  let d = Obs.snapshot () in
  check "counter untouched" 0 (List.assoc "test.off_counter" d.Obs.counters);
  check "gauge untouched" 0 (List.assoc "test.off_gauge" d.Obs.gauges);
  let row = List.find (fun r -> r.Obs.h_name = "test.off_hist") d.Obs.histograms in
  check "hist untouched" 0 row.Obs.count;
  let evs = trace_events (parse_json (Obs.trace_json ())) in
  checkb "no span events recorded" true
    (List.for_all (fun e -> str_field "ph" e = "M") evs)

let test_disabled_allocates_nothing () =
  let c = Obs.counter "test.off_alloc_counter" in
  let h = Obs.histogram "test.off_alloc_hist" in
  quiesce ();
  let before = Gc.minor_words () in
  for i = 1 to 50_000 do
    Obs.incr c;
    Obs.add c i;
    Obs.observe h i
  done;
  let allocated = Gc.minor_words () -. before in
  (* 150k disabled recordings: a handful of boxed words of slack covers
     the Gc.minor_words calls themselves. *)
  checkb (Printf.sprintf "allocated %.0f words" allocated) true (allocated < 256.)

(* ---------------- enabled metrics ---------------- *)

let test_enabled_merge_and_drain () =
  quiesce ();
  Obs.enable_metrics ();
  let c = Obs.counter "test.on_counter" in
  Obs.incr c;
  Obs.add c 41;
  let g = Obs.gauge "test.on_gauge" in
  (* within one shard a gauge is last-write-wins; the max-merge applies
     across shards *)
  Obs.set_gauge g 3;
  Obs.set_gauge g 9;
  let h = Obs.histogram ~buckets:[| 1; 10; 100 |] "test.on_hist" in
  List.iter (Obs.observe h) [ 0; 5; 50; 5000 ];
  let d = Obs.drain () in
  Obs.disable_metrics ();
  check "counter total" 42 (List.assoc "test.on_counter" d.Obs.counters);
  check "gauge max-merge" 9 (List.assoc "test.on_gauge" d.Obs.gauges);
  let row = List.find (fun r -> r.Obs.h_name = "test.on_hist") d.Obs.histograms in
  Alcotest.(check (array int)) "bucketed" [| 1; 1; 1; 1 |] row.Obs.counts;
  check "count" 4 row.Obs.count;
  check "sum" 5055 row.Obs.sum;
  check "min" 0 row.Obs.vmin;
  check "max" 5000 row.Obs.vmax;
  checkb "names sorted" true
    (let names = List.map fst d.Obs.counters in
     names = List.sort compare names);
  (* drain reset everything *)
  let d2 = Obs.snapshot () in
  check "drained counter" 0 (List.assoc "test.on_counter" d2.Obs.counters);
  let row2 = List.find (fun r -> r.Obs.h_name = "test.on_hist") d2.Obs.histograms in
  check "drained hist" 0 row2.Obs.count

(* The work counters of the deterministic pipeline must not depend on
   how many domains executed it. *)
let embed_work_counters jobs =
  Parallel.set_domain_budget jobs;
  quiesce ();
  Obs.enable_metrics ();
  let rng = Rng.make ~seed:42 in
  let t = (Gen.family "uniform").generate rng 1008 in
  ignore (Theorem1.embed t);
  let d = Obs.drain () in
  Obs.disable_metrics ();
  let deterministic name =
    List.exists
      (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
      [ "adjust."; "split."; "theorem1."; "repair." ]
  in
  List.filter (fun (name, _) -> deterministic name) d.Obs.counters

let test_counters_domain_count_independent () =
  let seq = embed_work_counters 1 in
  let par = embed_work_counters 4 in
  Alcotest.(check (list (pair string int))) "jobs 1 = jobs 4" seq par;
  checkb "counted real work" true (List.exists (fun (_, v) -> v > 0) seq);
  checkb "rounds counted" true (List.assoc "theorem1.rounds" seq > 0)

(* ---------------- tracing ---------------- *)

let test_trace_shape_fake_clock () =
  let tick = ref 0 in
  Obs.set_clock (fun () ->
      incr tick;
      !tick * 1000);
  quiesce ();
  Obs.enable_tracing ();
  Obs.span "outer" (fun () ->
      Obs.span ~arg:1 "inner" (fun () -> Obs.instant "tick");
      try Obs.span "raiser" (fun () -> raise Exit) with Exit -> ());
  Obs.counter_event "depth" 5;
  let doc = parse_json (Obs.trace_json ()) in
  Obs.disable_tracing ();
  let evs = trace_events doc in
  let phases p = List.filter (fun e -> str_field "ph" e = p) evs in
  check "three begins" 3 (List.length (phases "B"));
  (* the raising span still closed *)
  check "three ends" 3 (List.length (phases "E"));
  check "one instant" 1 (List.length (phases "i"));
  check "one counter sample" 1 (List.length (phases "C"));
  (* begin/end balanced per track *)
  let tids = List.sort_uniq compare (List.map (fun e -> num_field "tid" e) evs) in
  List.iter
    (fun tid ->
      let on p e = str_field "ph" e = p && num_field "tid" e = tid in
      check
        (Printf.sprintf "balanced tid %.0f" tid)
        (List.length (List.filter (on "B") evs))
        (List.length (List.filter (on "E") evs)))
    tids;
  (* fake clock: timestamps are non-negative and non-decreasing in
     recording order *)
  let ts = List.map (fun e -> num_field "ts" e) (phases "B" @ phases "E") in
  checkb "non-negative ts" true (List.for_all (fun t -> t >= 0.) ts);
  let names = List.map (fun e -> str_field "name" e) (phases "B") in
  Alcotest.(check (list string)) "span names" [ "outer"; "inner"; "raiser" ] names;
  (match List.hd (phases "C") with
  | e ->
      Alcotest.(check string) "series name" "depth" (str_field "name" e);
      check "series value" 5 (int_of_float (num_field "value" (field "args" e))));
  (* reset drops everything but metadata stays consistent *)
  Obs.reset_trace ();
  let evs2 = trace_events (parse_json (Obs.trace_json ())) in
  checkb "reset cleared events" true (List.for_all (fun e -> str_field "ph" e = "M") evs2)

let test_trace_disabled_passthrough () =
  quiesce ();
  check "span returns" 17 (Obs.span "unrecorded" (fun () -> 17))

(* ---------------- flight recorder ---------------- *)

let with_fake_clock f =
  let tick = ref 0 in
  Obs.set_clock (fun () ->
      incr tick;
      !tick * 1000);
  Fun.protect
    ~finally:(fun () -> Obs.set_clock (fun () -> int_of_float (Unix.gettimeofday () *. 1e9)))
    f

let test_recorder_ring_wraps () =
  quiesce ();
  with_fake_clock @@ fun () ->
  Obs.set_recorder_capacity 16;
  Fun.protect
    ~finally:(fun () -> Obs.set_recorder_capacity 256)
    (fun () ->
      checkb "recorder on by default" true (Obs.recorder_enabled ());
      check "capacity rounded" 16 (Obs.recorder_capacity ());
      for i = 1 to 40 do
        Obs.instant ~arg:i "test.flight"
      done;
      let evs = Obs.flight_events () in
      check "ring keeps the newest capacity events" 16 (List.length evs);
      check "dropped counts the overwritten prefix" 24 (Obs.flight_dropped ());
      let args = List.map (fun e -> e.Obs.ev_arg) evs in
      Alcotest.(check (list int)) "oldest-to-newest tail" (List.init 16 (fun i -> 25 + i)) args;
      let b = Buffer.create 256 in
      Obs.pp_flight b;
      let dump = Buffer.contents b in
      checkb "dump has header" true
        (String.length dump > 0
        && String.sub dump 0 (String.length "== flight recorder ==") = "== flight recorder ==");
      checkb "dump names events" true
        (let re = "test.flight" in
         let rec find i =
           i + String.length re <= String.length dump
           && (String.sub dump i (String.length re) = re || find (i + 1))
         in
         find 0))

let test_recorder_ring_allocation_free () =
  quiesce ();
  with_fake_clock @@ fun () ->
  (* warm: make sure the instant's path has run once *)
  Obs.instant "test.flight_alloc";
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Obs.instant ~arg:3 "test.flight_alloc"
  done;
  let allocated = Gc.minor_words () -. before in
  (* The ring append itself is allocation-free; the default wall clock
     boxes one float per reading, which is why this runs under the fake
     integer clock. *)
  checkb (Printf.sprintf "10k recordings allocated %.0f words" allocated) true (allocated < 256.)

let test_recorder_off_means_silent () =
  quiesce ();
  Obs.disable_recorder ();
  Fun.protect
    ~finally:(fun () -> Obs.enable_recorder ())
    (fun () ->
      ignore (Obs.span "test.flight_off" (fun () -> 0));
      Obs.instant "test.flight_off";
      check "nothing retained" 0 (List.length (Obs.flight_events ())))

(* ---------------- histogram quantiles ---------------- *)

let test_quantile_empty () =
  let r =
    {
      Obs.h_name = "q.empty";
      bounds = [| 1; 10; 100 |];
      counts = [| 0; 0; 0; 0 |];
      count = 0;
      sum = 0;
      vmin = 0;
      vmax = 0;
    }
  in
  check "empty p50" 0 (Obs.quantile r 0.50);
  check "empty p99" 0 (Obs.quantile r 0.99)

let row_of name = List.find (fun r -> r.Obs.h_name = name)

let test_quantile_single_sample () =
  quiesce ();
  Obs.enable_metrics ();
  let h = Obs.histogram ~buckets:[| 1; 10; 100 |] "test.q_single" in
  Obs.observe h 7;
  let d = Obs.drain () in
  Obs.disable_metrics ();
  let r = row_of "test.q_single" d.Obs.histograms in
  (* one sample: every quantile is that sample, exactly (vmin/vmax
     clamping, not the bucket bound 10) *)
  check "p50" 7 (Obs.quantile r 0.50);
  check "p90" 7 (Obs.quantile r 0.90);
  check "p99" 7 (Obs.quantile r 0.99)

let test_quantile_overflow_bucket () =
  quiesce ();
  Obs.enable_metrics ();
  let h = Obs.histogram ~buckets:[| 1; 10; 100 |] "test.q_over" in
  List.iter (Obs.observe h) [ 50; 5000 ];
  let d = Obs.drain () in
  Obs.disable_metrics ();
  let r = row_of "test.q_over" d.Obs.histograms in
  (* rank 1 falls in the (10,100] bucket and reports its upper bound;
     rank 2 in the unbounded overflow bucket, which must clamp to the
     observed max *)
  check "p50 bucket upper bound" 100 (Obs.quantile r 0.50);
  check "p99 overflow clamps to vmax" 5000 (Obs.quantile r 0.99);
  let b = Buffer.create 128 in
  Obs.pp_dump b d;
  let line = Buffer.contents b in
  checkb "pp_dump carries quantiles" true
    (let re = "p99=5000" in
     let rec find i =
       i + String.length re <= String.length line
       && (String.sub line i (String.length re) = re || find (i + 1))
     in
     find 0)

(* ---------------- late-domain shards ---------------- *)

(* Instruments are registered at module-init time, but pool domains are
   created lazily — often after registration. Drain must still merge
   samples recorded from shards those late domains map to, including ids
   past nshards (which wrap onto earlier shards). *)
let test_drain_covers_late_domains () =
  quiesce ();
  Obs.enable_metrics ();
  let c = Obs.counter "test.late_domains" in
  let h = Obs.histogram ~buckets:[| 1; 10; 100 |] "test.late_hist" in
  let spawned = 80 in
  for i = 1 to spawned do
    Domain.join
      (Domain.spawn (fun () ->
           Obs.incr c;
           Obs.observe h (i mod 7)))
  done;
  let d = Obs.drain () in
  Obs.disable_metrics ();
  check "every late-domain increment merged" spawned (List.assoc "test.late_domains" d.Obs.counters);
  let r = row_of "test.late_hist" d.Obs.histograms in
  check "every late-domain sample merged" spawned r.Obs.count

let suite =
  [
    ("disabled records nothing", `Quick, test_disabled_records_nothing);
    ("disabled allocates nothing", `Quick, test_disabled_allocates_nothing);
    ("merge and drain", `Quick, test_enabled_merge_and_drain);
    ("counters independent of jobs", `Quick, test_counters_domain_count_independent);
    ("trace shape under fake clock", `Quick, test_trace_shape_fake_clock);
    ("trace disabled passthrough", `Quick, test_trace_disabled_passthrough);
    ("recorder ring wraps", `Quick, test_recorder_ring_wraps);
    ("recorder ring allocation free", `Quick, test_recorder_ring_allocation_free);
    ("recorder off is silent", `Quick, test_recorder_off_means_silent);
    ("quantile empty histogram", `Quick, test_quantile_empty);
    ("quantile single sample", `Quick, test_quantile_single_sample);
    ("quantile overflow bucket", `Quick, test_quantile_overflow_bucket);
    ("drain covers late domains", `Quick, test_drain_covers_late_domains);
  ]
