open Xt_bintree
open Xt_core
open Xt_embedding

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let families_under_test = [ "complete"; "path"; "caterpillar"; "uniform"; "random-bst"; "skewed" ]

let gen name rng n = (Gen.family name).generate rng n

(* ---------------- height arithmetic ---------------- *)

let test_height_for () =
  check "n=1" 0 (Theorem1.height_for 1);
  check "n=16" 0 (Theorem1.height_for 16);
  check "n=17" 1 (Theorem1.height_for 17);
  check "n=48" 1 (Theorem1.height_for 48);
  check "n=49" 2 (Theorem1.height_for 49);
  check "optimal r=3" 240 (Theorem1.optimal_size 3);
  check "custom capacity" 2 (Theorem1.height_for ~capacity:1 7)

(* ---------------- Theorem 1 core guarantees ---------------- *)

let embed_all f =
  let rng = Xt_prelude.Rng.make ~seed:77 in
  List.iter
    (fun fname ->
      List.iter
        (fun r ->
          let n = Theorem1.optimal_size r in
          let t = gen fname rng n in
          let res = Theorem1.embed t in
          f fname r res)
        [ 1; 2; 3; 4 ])
    families_under_test

let test_t1_every_node_placed () =
  embed_all (fun fname r res ->
      Array.iteri
        (fun v p ->
          if p < 0 then Alcotest.failf "%s r=%d: node %d unplaced" fname r v)
        res.Theorem1.embedding.Embedding.place)

let test_t1_load_exact_16 () =
  (* at the paper's exact sizes every vertex holds exactly 16 nodes *)
  embed_all (fun fname r res ->
      Array.iteri
        (fun a l ->
          if l <> 16 then Alcotest.failf "%s r=%d: vertex %d has load %d" fname r a l)
        (Embedding.loads res.Theorem1.embedding))

let test_t1_dilation_constant () =
  embed_all (fun fname r res ->
      let d = Embedding.dilation ~dist:(Theorem1.distance_oracle res) res.Theorem1.embedding in
      if d > 4 then Alcotest.failf "%s r=%d: dilation %d" fname r d)

let test_t1_optimal_expansion () =
  embed_all (fun fname r res ->
      check
        (Printf.sprintf "%s r=%d host size" fname r)
        (Xt_topology.Xtree.order res.Theorem1.xt)
        (Theorem1.optimal_size r / 16))

let test_t1_slack_sizes () =
  (* non-optimal n: load <= 16 still enforced, everything placed *)
  let rng = Xt_prelude.Rng.make ~seed:3 in
  List.iter
    (fun n ->
      let t = Gen.uniform rng n in
      let res = Theorem1.embed t in
      checkb "all placed" true
        (Array.for_all (fun p -> p >= 0) res.Theorem1.embedding.Embedding.place);
      checkb "load bound" true (Embedding.load res.Theorem1.embedding <= 16))
    [ 1; 2; 15; 17; 100; 241; 500; 1000 ]

let test_t1_small_capacity () =
  (* the algorithm generalises to other capacities *)
  let rng = Xt_prelude.Rng.make ~seed:4 in
  List.iter
    (fun capacity ->
      let n = capacity * 15 in
      let t = Gen.uniform rng n in
      let res = Theorem1.embed ~capacity t in
      checkb "load bound" true (Embedding.load res.Theorem1.embedding <= capacity);
      let d = Embedding.dilation ~dist:(Theorem1.distance_oracle res) res.Theorem1.embedding in
      checkb "dilation finite" true (d <= 8))
    [ 4; 8; 32 ]

let test_t1_explicit_height () =
  let rng = Xt_prelude.Rng.make ~seed:5 in
  let t = Gen.uniform rng 100 in
  let res = Theorem1.embed ~height:5 t in
  check "height respected" 5 res.Theorem1.height;
  Alcotest.check_raises "too small"
    (Invalid_argument "Theorem1.embed: X-tree too small for this guest") (fun () ->
      ignore (Theorem1.embed ~height:1 t))

let test_t1_trace_decays () =
  let rng = Xt_prelude.Rng.make ~seed:6 in
  let t = Gen.uniform rng (Theorem1.optimal_size 5) in
  let res = Theorem1.embed ~record_trace:true t in
  match res.Theorem1.trace with
  | None -> Alcotest.fail "trace missing"
  | Some tr ->
      check "one row per round" res.Theorem1.height (Array.length tr.Theorem1.rounds);
      (* after the final round every sibling pair at levels <= r-2 is balanced *)
      let last = tr.Theorem1.rounds.(Array.length tr.Theorem1.rounds - 1) in
      for j = 0 to res.Theorem1.height - 2 do
        checkb (Printf.sprintf "level %d settled" j) true (last.(j) <= 16)
      done

let test_t1_deterministic () =
  let rng1 = Xt_prelude.Rng.make ~seed:9 and rng2 = Xt_prelude.Rng.make ~seed:9 in
  let t1 = Gen.uniform rng1 500 and t2 = Gen.uniform rng2 500 in
  let r1 = Theorem1.embed t1 and r2 = Theorem1.embed t2 in
  Alcotest.(check (array int))
    "same placement" r1.Theorem1.embedding.Embedding.place r2.Theorem1.embedding.Embedding.place

(* ---------------- State invariants under the real run ---------------- *)

let test_state_invariants_after_rounds () =
  (* replicate embed's setup, checking invariants between phases *)
  let rng = Xt_prelude.Rng.make ~seed:13 in
  let tree = Gen.uniform rng (Theorem1.optimal_size 3) in
  let res = Theorem1.embed tree in
  (* final state is not exposed; instead re-run on a fresh state manually *)
  ignore res;
  let st = State.create ~tree ~height:3 ~capacity:16 in
  (match State.check_invariants st with
  | Ok () -> Alcotest.fail "empty state should fail coverage (nothing placed)"
  | Error _ -> ());
  (* placing everything via the public algorithm keeps the ledger exact;
     verified indirectly through load/placement tests above *)
  ()

let test_state_lay_and_weights () =
  let tree = Gen.complete 31 in
  let st = State.create ~tree ~height:2 ~capacity:16 in
  State.lay st ~max_level:0 ~node:0 ~vertex:0;
  check "weight at root" 1 (State.weight_of st 0);
  State.lay st ~max_level:2 ~node:1 ~vertex:5;
  check "root weight counts descendants" 2 (State.weight_of st 0);
  check "leaf weight" 1 (State.weight_of st 5);
  Alcotest.check_raises "double placement" (Invalid_argument "State.lay: node already placed")
    (fun () -> State.lay st ~max_level:0 ~node:0 ~vertex:0)

let test_state_lay_fallback () =
  let tree = Gen.complete 31 in
  let st = State.create ~tree ~height:2 ~capacity:1 in
  State.lay st ~max_level:1 ~node:0 ~vertex:0;
  (* vertex 0 is full: next placement diverts to a neighbour *)
  State.lay st ~max_level:1 ~node:1 ~vertex:0;
  check "fallback counted" 1 st.State.fallbacks;
  checkb "placed somewhere else" true (st.State.place.(1) <> 0 && st.State.place.(1) >= 0)

let test_state_attach_detach () =
  let tree = Gen.complete 31 in
  let st = State.create ~tree ~height:2 ~capacity:16 in
  let piece = State.make_piece st [ 1; 3; 4 ] in
  State.attach st ~vertex:3 piece;
  check "weight" 3 (State.weight_of st 3);
  check "root sees it" 3 (State.weight_of st 0);
  check "pieces there" 1 (List.length (State.pieces_at st 3));
  State.detach st ~vertex:3 piece;
  check "weight gone" 0 (State.weight_of st 0);
  Alcotest.check_raises "double detach" (Invalid_argument "State.detach: piece not attached here")
    (fun () -> State.detach st ~vertex:3 piece)

let test_make_piece_boundaries () =
  let tree = Gen.complete 7 in
  let st = State.create ~tree ~height:1 ~capacity:16 in
  State.lay st ~max_level:0 ~node:0 ~vertex:0;
  let piece = State.make_piece st [ 1; 3; 4 ] in
  check "one boundary" 1 (List.length piece.State.bounds);
  let b = List.hd piece.State.bounds in
  check "boundary node" 1 b.State.bnode;
  check "anchor" 0 b.State.anchor;
  let sp = State.separator_piece piece in
  check "r1" 1 sp.Separator.r1;
  Alcotest.(check (option int)) "no r2" None sp.Separator.r2

(* ---------------- parallel sweeps are bit-identical ---------------- *)

(* Same tree, sequential vs pool-parallel sweeps: the place array and the
   derived dilation/load statistics must match exactly. Covers n = 1008
   (height 5) and n = 4080 (height 7), seeds 1-5. *)
let test_t1_parallel_identical () =
  Xt_prelude.Parallel.set_domain_budget 3;
  List.iter
    (fun n ->
      for seed = 1 to 5 do
        let tree seed =
          let rng = Xt_prelude.Rng.make ~seed in
          Gen.uniform rng n
        in
        let seq = Theorem1.embed ~par:false (tree seed) in
        let par = Theorem1.embed ~par:true (tree seed) in
        let label what = Printf.sprintf "n=%d seed=%d %s" n seed what in
        Alcotest.(check (array int))
          (label "place") seq.Theorem1.embedding.Embedding.place
          par.Theorem1.embedding.Embedding.place;
        check (label "fallbacks") seq.Theorem1.fallbacks par.Theorem1.fallbacks;
        check (label "wide pieces") seq.Theorem1.wide_pieces par.Theorem1.wide_pieces;
        check (label "load") (Embedding.load seq.Theorem1.embedding)
          (Embedding.load par.Theorem1.embedding);
        check (label "dilation")
          (Embedding.dilation ~dist:(Theorem1.distance_oracle seq) seq.Theorem1.embedding)
          (Embedding.dilation ~dist:(Theorem1.distance_oracle par) par.Theorem1.embedding)
      done)
    [ 1008; 4080 ]

let suite =
  [
    ("height arithmetic", `Quick, test_height_for);
    ("T1: parallel sweeps identical", `Slow, test_t1_parallel_identical);
    ("T1: every node placed", `Slow, test_t1_every_node_placed);
    ("T1: load exactly 16 at optimal sizes", `Slow, test_t1_load_exact_16);
    ("T1: constant dilation", `Slow, test_t1_dilation_constant);
    ("T1: optimal expansion", `Slow, test_t1_optimal_expansion);
    ("T1: slack sizes", `Quick, test_t1_slack_sizes);
    ("T1: other capacities", `Quick, test_t1_small_capacity);
    ("T1: explicit height", `Quick, test_t1_explicit_height);
    ("T1: trace decays", `Quick, test_t1_trace_decays);
    ("T1: deterministic", `Quick, test_t1_deterministic);
    ("state invariants", `Quick, test_state_invariants_after_rounds);
    ("state lay and weights", `Quick, test_state_lay_and_weights);
    ("state lay fallback", `Quick, test_state_lay_fallback);
    ("state attach/detach", `Quick, test_state_attach_detach);
    ("make_piece boundaries", `Quick, test_make_piece_boundaries);
  ]
