open Xt_bintree
open Xt_core
open Xt_embedding

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let embed_variant options fname r =
  let rng = Xt_prelude.Rng.make ~seed:(Hashtbl.hash (fname, r)) in
  let t = (Gen.family fname).generate rng (Theorem1.optimal_size r) in
  Theorem1.embed ~options t

let test_all_variants_place_everything () =
  List.iter
    (fun (vname, options) ->
      List.iter
        (fun fname ->
          let res = embed_variant options fname 4 in
          checkb
            (Printf.sprintf "%s/%s placed" vname fname)
            true
            (Array.for_all (fun p -> p >= 0) res.Theorem1.embedding.Embedding.place);
          check (Printf.sprintf "%s/%s load" vname fname) 16 (Embedding.load res.Theorem1.embedding))
        [ "path"; "uniform" ])
    Options.variants

let test_adjust_is_the_key_mechanism () =
  (* disabling ADJUST must hurt: strictly more fallbacks and higher
     dilation on an unbalanced family at a non-trivial size *)
  let full = embed_variant Options.default "caterpillar" 6 in
  let no_adj = embed_variant Options.no_adjust "caterpillar" 6 in
  let d_full = Embedding.dilation ~dist:(Theorem1.distance_oracle full) full.Theorem1.embedding in
  let d_no = Embedding.dilation ~dist:(Theorem1.distance_oracle no_adj) no_adj.Theorem1.embedding in
  checkb
    (Printf.sprintf "dilation worsens (%d -> %d)" d_full d_no)
    true (d_no > d_full);
  checkb
    (Printf.sprintf "fallbacks grow (%d -> %d)" full.Theorem1.fallbacks no_adj.Theorem1.fallbacks)
    true
    (no_adj.Theorem1.fallbacks > full.Theorem1.fallbacks)

let test_balance_split_matters () =
  let full = embed_variant Options.default "uniform" 6 in
  let no_bal = embed_variant Options.no_balance "uniform" 6 in
  checkb "fallbacks grow without the balance split" true
    (no_bal.Theorem1.fallbacks >= full.Theorem1.fallbacks)

let test_variants_list () =
  check "4 variants" 4 (List.length Options.variants);
  checkb "full first" true (fst (List.hd Options.variants) = "full")

let suite =
  [
    ("all variants place everything", `Quick, test_all_variants_place_everything);
    ("adjust is the key mechanism", `Slow, test_adjust_is_the_key_mechanism);
    ("balance split matters", `Quick, test_balance_split_matters);
    ("variants list", `Quick, test_variants_list);
  ]
