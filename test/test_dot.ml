open Xt_topology
open Xt_bintree
open Xt_embedding
open Xt_core

let checkb = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let count_lines_with s sub =
  String.split_on_char '\n' s |> List.filter (fun l -> contains l sub) |> List.length

let test_plain_graph () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let dot = Dot.graph g in
  checkb "header" true (contains dot "graph g {");
  Alcotest.(check int) "edges" 2 (count_lines_with dot " -- ");
  checkb "closes" true (contains dot "}")

let test_graph_custom_label () =
  let g = Graph.of_edges ~n:2 [ (0, 1) ] in
  let dot = Dot.graph ~name:"demo" ~label:(fun v -> Printf.sprintf "v%d!" v) g in
  checkb "name" true (contains dot "graph demo {");
  checkb "label" true (contains dot "v1!")

let test_xtree_dot () =
  let xt = Xtree.create ~height:2 in
  let dot = Dot.xtree xt in
  checkb "root label" true (contains dot "\"e\"");
  checkb "leaf label" true (contains dot "\"11\"");
  (* horizontal edges are dotted *)
  checkb "dotted horizontals" true (contains dot "style=dotted");
  Alcotest.(check int) "rank groups" 3 (count_lines_with dot "rank=same");
  Alcotest.(check int) "edge count" (Graph.m (Xtree.graph xt)) (count_lines_with dot " -- ")

let test_embedding_dot () =
  let tree = Gen.uniform (Xt_prelude.Rng.make ~seed:5) 240 in
  let res = Theorem1.embed tree in
  let dot = Dot.embedding res.Theorem1.xt res.Theorem1.embedding in
  checkb "has guest sets" true (contains dot "{0,");
  checkb "has cross edges" true (contains dot "style=dashed");
  checkb "truncation marker" true (contains dot ",...")

let test_embedding_dot_valid_syntaxish () =
  (* cheap syntactic sanity: braces balance *)
  let tree = Gen.complete 48 in
  let res = Theorem1.embed tree in
  let dot = Dot.embedding res.Theorem1.xt res.Theorem1.embedding in
  let opens = count_lines_with dot "{" and closes = count_lines_with dot "}" in
  checkb "balanced-ish" true (opens > 0 && closes > 0)

let suite =
  [
    ("plain graph", `Quick, test_plain_graph);
    ("custom label", `Quick, test_graph_custom_label);
    ("xtree dot", `Quick, test_xtree_dot);
    ("embedding dot", `Quick, test_embedding_dot);
    ("embedding dot sane", `Quick, test_embedding_dot_valid_syntaxish);
  ]

(* ---------------- SVG ---------------- *)

let test_svg_xtree () =
  let xt = Xtree.create ~height:2 in
  let svg = Svg.xtree xt in
  checkb "svg header" true (contains svg "<svg xmlns");
  checkb "has circles" true (contains svg "<circle");
  checkb "root label" true (contains svg ">e<");
  checkb "closes" true (contains svg "</svg>");
  Alcotest.(check int) "circle per vertex" (Xtree.order xt) (count_lines_with svg "<circle")

let test_svg_embedding () =
  let tree = Gen.uniform (Xt_prelude.Rng.make ~seed:9) 240 in
  let res = Theorem1.embed tree in
  let svg = Svg.embedding res.Theorem1.xt res.Theorem1.embedding in
  checkb "has loads" true (contains svg ">16<");
  checkb "has fills" true (contains svg "rgb(");
  Alcotest.(check int) "circle per vertex" (Xtree.order res.Theorem1.xt) (count_lines_with svg "<circle")

let suite =
  suite
  @ [
      ("svg xtree", `Quick, test_svg_xtree);
      ("svg embedding", `Quick, test_svg_embedding);
    ]
