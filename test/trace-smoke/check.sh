#!/usr/bin/env bash
# Byte-stability assertions for the @trace-smoke alias.
set -eu

# Same command, same fake clock, one domain: the whole trace (and hence
# the whole report) must be byte-identical across runs.
diff -u trace1.json trace2.json
diff -u report1.txt report2.txt

# Across domain budgets only the deterministic projection is promised.
diff -u det1.txt det4.txt

# The full report carries every analytics section for a traced embed.
grep -q '^== spans ==' report1.txt
grep -q '^== domains ==' report1.txt
grep -q 'theorem1.embed' report1.txt

# The deterministic projection drops schedule-dependent content.
grep -q '^== spans (deterministic) ==' det1.txt
! grep -q 'wall_ms' det1.txt
! grep -q '^== domains ==' det1.txt
! grep -q 'parallel\.' det4.txt
