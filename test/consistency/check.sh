#!/usr/bin/env bash
# Docs/code consistency for instrument names (counters, gauges,
# histograms, spans). Names live in one flat namespace of the form
# <subsystem>.<name>; the docs and the code must agree on the full set.
set -eu
DOCS="$1"
LIB="$2"

names_in_docs() {
  grep -ohE '\b(obs|parallel|cache|netsim|congestion|serve|loadgen)(\.[a-z_0-9]+)+\b' "$DOCS" \
    | sort -u
}

names_in_lib() {
  grep -rohE '"(obs|parallel|cache|netsim|congestion|serve|loadgen)(\.[a-z_0-9]+)+"' \
    --include='*.ml' "$LIB" \
    | tr -d '"' | sort -u
}

names_in_docs > docs.names
names_in_lib > lib.names

status=0

# Forward: everything the docs talk about must exist in the code.
if ! comm -23 docs.names lib.names > docs.only || [ -s docs.only ]; then
  echo "instrument names documented in EXPERIMENTS.md but absent from lib/:" >&2
  cat docs.only >&2
  status=1
fi

# Reverse: everything the code emits must be documented.
if ! comm -13 docs.names lib.names > lib.only || [ -s lib.only ]; then
  echo "instrument names emitted in lib/ but undocumented in EXPERIMENTS.md:" >&2
  cat lib.only >&2
  status=1
fi

exit $status
