(* The canonical-shape cache (ISSUE 4): structural fingerprints, the
   sharded LRU, and the bit-identity guarantee of cached embeddings. *)

open Xt_obs
open Xt_prelude
open Xt_bintree
open Xt_embedding
open Xt_core
open Xt_baseline

let place (res : Theorem1.result) = res.Theorem1.embedding.Embedding.place

let roundtrip tree =
  match Codec.of_string (Codec.to_string tree) with
  | Ok t -> t
  | Error msg -> Alcotest.failf "roundtrip: %s" msg

(* ---------------- fingerprints ---------------- *)

let test_enum_shapes_distinct () =
  for n = 1 to 8 do
    let keys = Hashtbl.create 512 in
    Seq.iter
      (fun t ->
        let key = Fingerprint.canonical_key t in
        Alcotest.(check bool)
          (Printf.sprintf "no collision among all %d-node shapes" n)
          false (Hashtbl.mem keys key);
        Hashtbl.add keys key ())
      (Enum.all_shapes n);
    Alcotest.(check int)
      (Printf.sprintf "catalan(%d) distinct keys" n)
      (Enum.catalan n) (Hashtbl.length keys)
  done

let chain side k =
  let b = Bintree.Builder.create () in
  let v = ref (Bintree.Builder.add_root b) in
  for _ = 2 to k do
    v := (if side = `L then Bintree.Builder.add_left else Bintree.Builder.add_right) b !v
  done;
  Bintree.Builder.finish b

let mirror tree =
  let n = Bintree.n tree in
  Bintree.of_arrays ~root:(Bintree.root tree)
    ~parent:(Array.init n (Bintree.parent_id tree))
    ~left:(Array.init n (Bintree.right_id tree))
    ~right:(Array.init n (Bintree.left_id tree))

let test_mirrors_differ () =
  Alcotest.(check bool)
    "left chain vs right chain" false
    (Fingerprint.equal (Fingerprint.of_tree (chain `L 7)) (Fingerprint.of_tree (chain `R 7)));
  let t = Gen.uniform (Rng.make ~seed:5) 41 in
  Alcotest.(check bool)
    "asymmetric tree vs its mirror" false
    (Fingerprint.equal (Fingerprint.of_tree t) (Fingerprint.of_tree (mirror t)));
  let symmetric = Gen.complete 15 in
  Alcotest.(check bool)
    "symmetric tree equals its mirror" true
    (Fingerprint.equal (Fingerprint.of_tree symmetric) (Fingerprint.of_tree (mirror symmetric)))

let test_label_independent () =
  List.iter
    (fun (f : Gen.family) ->
      let t = f.Gen.generate (Rng.make ~seed:3) 57 in
      Alcotest.(check string)
        (f.Gen.name ^ ": key survives relabeling")
        (Fingerprint.canonical_key t)
        (Fingerprint.canonical_key (roundtrip t)))
    Gen.families

let test_subtrees_and_ranks () =
  let t = Gen.uniform (Rng.make ~seed:11) 63 in
  let subs = Fingerprint.subtrees t in
  Alcotest.(check bool)
    "root subtree = whole tree" true
    (Fingerprint.equal subs.(Bintree.root t) (Fingerprint.of_tree t));
  let leaf_fp = ref None in
  for v = 0 to Bintree.n t - 1 do
    if Bintree.is_leaf t v then
      match !leaf_fp with
      | None -> leaf_fp := Some subs.(v)
      | Some fp -> Alcotest.(check bool) "all leaves share a fingerprint" true (Fingerprint.equal fp subs.(v))
  done;
  let canon = roundtrip t in
  Alcotest.(check (array int))
    "codec-parsed trees are rank-labelled"
    (Array.init (Bintree.n canon) Fun.id)
    (Fingerprint.preorder_ranks canon)

(* ---------------- sharded LRU ---------------- *)

let test_lru_eviction_order () =
  let c : int Cache.t = Cache.create ~shards:1 ~capacity:3 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  ignore (Cache.find c "a");
  (* recency now a, c, b *)
  Cache.add c "d" 4;
  Alcotest.(check bool) "lru entry b evicted" false (Cache.mem c "b");
  Alcotest.(check bool) "promoted a kept" true (Cache.mem c "a");
  Alcotest.(check bool) "c kept" true (Cache.mem c "c");
  Alcotest.(check bool) "d kept" true (Cache.mem c "d");
  Alcotest.(check int) "capacity respected" 3 (Cache.length c);
  Cache.add c "e" 5;
  Alcotest.(check bool) "then c evicted" false (Cache.mem c "c")

let test_byte_bound () =
  let c : string Cache.t = Cache.create ~shards:1 ~capacity:100 ~max_bytes:100 () in
  Cache.add c ~bytes:40 "a" "x";
  Cache.add c ~bytes:40 "b" "y";
  Cache.add c ~bytes:40 "c" "z";
  Alcotest.(check bool) "oldest evicted by byte bound" false (Cache.mem c "a");
  Alcotest.(check int) "bytes within bound" 80 (Cache.bytes c);
  Alcotest.(check int) "two entries left" 2 (Cache.length c)

let test_with_memo_and_verify () =
  let c : int Cache.t = Cache.create ~shards:1 ~capacity:8 () in
  let computes = ref 0 in
  let get ?validate () =
    Cache.with_memo c ?validate "k"
      (fun () ->
        incr computes;
        !computes)
  in
  Obs.enable_metrics ();
  ignore (Obs.drain ());
  Alcotest.(check int) "first call computes" 1 (get ());
  Alcotest.(check int) "second call hits" 1 (get ());
  Alcotest.(check int) "one compute so far" 1 !computes;
  (* A failed validation (stands in for a fingerprint collision) drops
     the entry and recomputes. *)
  Alcotest.(check int) "rejecting validate recomputes" 2 (get ~validate:(fun v -> v > 1) ());
  Alcotest.(check int) "recomputed value now hits" 2 (get ());
  let d = Obs.drain () in
  Obs.disable_metrics ();
  let counter name = List.assoc name d.Obs.counters in
  Alcotest.(check int) "verify_rejects counted" 1 (counter "cache.verify_rejects");
  Alcotest.(check int) "hits counted" 2 (counter "cache.hits");
  Alcotest.(check int) "misses counted" 2 (counter "cache.misses")

let test_concurrent_misses_compute_once () =
  let c : int Cache.t = Cache.create ~shards:1 ~capacity:8 () in
  let computes = Atomic.make 0 in
  let compute () =
    Atomic.incr computes;
    Unix.sleepf 0.05;
    42
  in
  let doms =
    Array.init 4 (fun _ -> Domain.spawn (fun () -> Cache.with_memo c "shared" compute))
  in
  let values = Array.map Domain.join doms in
  Array.iter (fun v -> Alcotest.(check int) "every waiter gets the value" 42 v) values;
  Alcotest.(check int) "the in-flight latch deduplicates the compute" 1 (Atomic.get computes)

(* ---------------- cached embeds: bit-identity ---------------- *)

type case = { fname : string; size : int; capacity : int; seed : int }

let case_gen =
  QCheck2.Gen.(
    let families = Array.of_list (List.map (fun (f : Gen.family) -> f.Gen.name) Gen.families) in
    let* fi = int_bound (Array.length families - 1) in
    let* size = map (fun k -> k + 1) (int_bound 400) in
    let* ci = int_bound 1 in
    let* seed = int_bound 1_000_000 in
    return { fname = families.(fi); size; capacity = [| 4; 16 |].(ci); seed })

let print_case c = Printf.sprintf "%s n=%d cap=%d seed=%d" c.fname c.size c.capacity c.seed

let tree_of_case c = (Gen.family c.fname).generate (Rng.make ~seed:c.seed) c.size

let cache_props =
  [
    QCheck2.Test.make ~count:60 ~name:"theorem1: cached (miss then hit) = uncached"
      ~print:print_case case_gen (fun c ->
        let tree = tree_of_case c in
        let un = place (Theorem1.embed ~capacity:c.capacity tree) in
        let cache = Theorem1.make_cache () in
        let miss = place (Theorem1.embed ~capacity:c.capacity ~cache tree) in
        let hit = place (Theorem1.embed ~capacity:c.capacity ~cache tree) in
        un = miss && un = hit);
    QCheck2.Test.make ~count:30 ~name:"theorem1: cached hit = uncached across domain counts"
      ~print:print_case case_gen (fun c ->
        let tree = tree_of_case c in
        Parallel.set_domain_budget 1;
        let un = place (Theorem1.embed ~capacity:c.capacity ~par:false tree) in
        Parallel.set_domain_budget 3;
        let cache = Theorem1.make_cache () in
        let miss = place (Theorem1.embed ~capacity:c.capacity ~cache ~par:true tree) in
        let hit = place (Theorem1.embed ~capacity:c.capacity ~cache ~par:true tree) in
        Parallel.set_domain_budget 1;
        un = miss && un = hit);
    QCheck2.Test.make ~count:30 ~name:"theorem1: cached = uncached after evictions"
      ~print:print_case case_gen (fun c ->
        let t1 = tree_of_case c in
        let t2 = (Gen.family c.fname).generate (Rng.make ~seed:(c.seed + 1)) (c.size + 1) in
        let cache = Theorem1.make_cache ~shards:1 ~capacity:1 () in
        (* capacity 1: every alternation evicts the other shape *)
        let ok tree = place (Theorem1.embed ~capacity:c.capacity ~cache tree)
                      = place (Theorem1.embed ~capacity:c.capacity tree) in
        ok t1 && ok t2 && ok t1 && ok t2);
    QCheck2.Test.make ~count:40 ~name:"theorem2: cached (miss then hit) = uncached"
      ~print:print_case case_gen (fun c ->
        let tree = tree_of_case c in
        let p2 (r : Theorem2.result) = r.Theorem2.embedding.Embedding.place in
        let un = p2 (Theorem2.embed ~capacity:c.capacity tree) in
        let cache = Theorem1.make_cache () in
        let miss = p2 (Theorem2.embed ~capacity:c.capacity ~cache tree) in
        let hit = p2 (Theorem2.embed ~capacity:c.capacity ~cache tree) in
        un = miss && un = hit);
    QCheck2.Test.make ~count:30 ~name:"baselines: cached (miss then hit) = uncached"
      ~print:print_case case_gen (fun c ->
        let tree = tree_of_case c in
        let pb (r : Recursive_bisection.result) = r.Recursive_bisection.embedding.Embedding.place in
        let po (r : Order_layout.result) = r.Order_layout.embedding.Embedding.place in
        let bc = Recursive_bisection.make_cache () in
        let oc = Order_layout.make_cache () in
        let un_b = pb (Recursive_bisection.embed ~capacity:c.capacity tree) in
        let un_d = po (Order_layout.embed ~capacity:c.capacity ~order:Order_layout.Dfs tree) in
        un_b = pb (Recursive_bisection.embed ~capacity:c.capacity ~cache:bc tree)
        && un_b = pb (Recursive_bisection.embed ~capacity:c.capacity ~cache:bc tree)
        && un_d = po (Order_layout.embed ~capacity:c.capacity ~cache:oc ~order:Order_layout.Dfs tree)
        && un_d = po (Order_layout.embed ~capacity:c.capacity ~cache:oc ~order:Order_layout.Dfs tree));
  ]

(* A hit served to a differently-labelled tree of the same shape is the
   stored embedding transported along the shape isomorphism: same host,
   same metrics, and still a valid embedding. (Bit-identity is guaranteed
   for preorder-labelled callers — everything Codec parses — which the
   property tests above cover via miss-then-hit on one labelling.) *)
let test_cross_label_hit () =
  let tree = Gen.uniform (Rng.make ~seed:21) 300 in
  let cache = Theorem1.make_cache () in
  let a = Theorem1.embed ~cache tree in
  let b = Theorem1.embed ~cache (roundtrip tree) in
  Alcotest.(check int) "one entry serves both labellings" 1 (Theorem1.cache_length cache);
  Alcotest.(check bool) "host shared between hits" true (a.Theorem1.xt == b.Theorem1.xt);
  (match Embedding.verify ~dist:(Theorem1.distance_oracle b) ~max_load:16 b.Theorem1.embedding with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "cross-label hit invalid: %s" msg);
  let dist r = Theorem1.distance_oracle r in
  Alcotest.(check int)
    "identical dilation"
    (Embedding.dilation ~dist:(dist a) a.Theorem1.embedding)
    (Embedding.dilation ~dist:(dist b) b.Theorem1.embedding);
  Alcotest.(check int)
    "identical load" (Embedding.load a.Theorem1.embedding) (Embedding.load b.Theorem1.embedding)

let test_shape_dedup_counts () =
  let cache = Theorem1.make_cache () in
  let shapes = [ Gen.complete 63; Gen.path 63; Gen.zigzag 63 ] in
  List.iter
    (fun t ->
      ignore (Theorem1.embed ~cache t);
      ignore (Theorem1.embed ~cache (roundtrip t)))
    shapes;
  Alcotest.(check int) "one entry per shape" (List.length shapes) (Theorem1.cache_length cache)

let test_stats () =
  let c : int Cache.t = Cache.create ~shards:1 ~capacity:2 () in
  let z = Cache.stats c in
  Alcotest.(check (list int)) "fresh cache all zero"
    [ 0; 0; 0; 0; 0 ]
    [ z.Cache.hits; z.Cache.misses; z.Cache.evictions; z.Cache.entries; z.Cache.resident_bytes ];
  Alcotest.(check bool) "miss" true (Cache.find c "a" = None);
  Cache.add c ~bytes:10 "a" 1;
  Alcotest.(check bool) "hit" true (Cache.find c "a" = Some 1);
  Alcotest.(check int) "memo miss computes" 2
    (Cache.with_memo c ~bytes:(fun _ -> 5) "b" (fun () -> 2));
  Alcotest.(check int) "memo hit serves" 2
    (Cache.with_memo c "b" (fun () -> Alcotest.fail "hit recomputed"));
  Cache.add c ~bytes:7 "c" 3 (* capacity 2: evicts "a", the LRU *);
  let s = Cache.stats c in
  Alcotest.(check (list int)) "hits/misses/evictions/entries/bytes"
    [ 2; 2; 1; 2; 12 ]
    [ s.Cache.hits; s.Cache.misses; s.Cache.evictions; s.Cache.entries; s.Cache.resident_bytes ]

let test_fold_order () =
  let c : int Cache.t = Cache.create ~shards:1 ~capacity:8 () in
  List.iter (fun (k, v) -> Cache.add c ~bytes:v k v) [ ("a", 1); ("b", 2); ("c", 3) ];
  ignore (Cache.find c "a") (* recency now a > c > b *);
  let got =
    List.rev (Cache.fold c ~init:[] ~f:(fun acc ~key ~bytes v -> (key, bytes, v) :: acc))
  in
  Alcotest.(check bool) "least recent first, bytes preserved" true
    (got = [ ("b", 2, 2); ("c", 3, 3); ("a", 1, 1) ])

let suite =
  [
    Alcotest.test_case "enum shapes map to distinct keys" `Quick test_enum_shapes_distinct;
    Alcotest.test_case "per-instance stats" `Quick test_stats;
    Alcotest.test_case "fold is lru-first snapshot" `Quick test_fold_order;
    Alcotest.test_case "mirror trees differ" `Quick test_mirrors_differ;
    Alcotest.test_case "fingerprint is label independent" `Quick test_label_independent;
    Alcotest.test_case "subtree fingerprints and ranks" `Quick test_subtrees_and_ranks;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "byte bound evicts" `Quick test_byte_bound;
    Alcotest.test_case "with_memo hit, verify-reject counters" `Quick test_with_memo_and_verify;
    Alcotest.test_case "concurrent misses compute once" `Quick test_concurrent_misses_compute_once;
    Alcotest.test_case "cross-label hit shares entry, metrics" `Quick test_cross_label_hit;
    Alcotest.test_case "shape dedup counts entries" `Quick test_shape_dedup_counts;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) cache_props
