open Xt_topology
open Xt_bintree
open Xt_core
open Xt_netsim

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let path_host n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

(* ---------------- router ---------------- *)

let test_router_next_hop () =
  let r = Router.create (path_host 5) in
  check "towards 4" 1 (Router.next_hop r ~current:0 ~dst:4);
  check "towards 0" 3 (Router.next_hop r ~current:4 ~dst:0);
  check "path length" 4 (Router.path_length r ~src:0 ~dst:4);
  Alcotest.check_raises "already there" (Invalid_argument "Router.next_hop: already there")
    (fun () -> ignore (Router.next_hop r ~current:2 ~dst:2))

let test_router_shortest () =
  (* a cycle: 0-1-2-3-0; 0 to 2 must take 2 hops *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let r = Router.create g in
  check "dist" 2 (Router.path_length r ~src:0 ~dst:2);
  let hop = Router.next_hop r ~current:0 ~dst:2 in
  checkb "a neighbour on a shortest path" true (hop = 1 || hop = 3)

(* ---------------- sim ---------------- *)

let test_sim_single_message () =
  let sim = Sim.create (path_host 5) in
  Sim.send sim ~src:0 ~dst:4 ~tag:0;
  let cycles = Sim.run sim ~on_deliver:(fun ~tag:_ _ -> ()) in
  check "4 hops take 4 cycles" 4 cycles;
  check "delivered" 1 (Sim.delivered sim)

let test_sim_self_send () =
  let sim = Sim.create (path_host 2) in
  Sim.send sim ~src:1 ~dst:1 ~tag:7;
  let got = ref (-1) in
  let cycles = Sim.run sim ~on_deliver:(fun ~tag _ -> got := tag) in
  check "tag seen" 7 !got;
  check "delivered next cycle" 1 cycles

let test_sim_contention () =
  (* two messages over the same directed link: second waits one cycle *)
  let sim = Sim.create (path_host 3) in
  Sim.send sim ~src:0 ~dst:2 ~tag:0;
  Sim.send sim ~src:0 ~dst:2 ~tag:1;
  let cycles = Sim.run sim ~on_deliver:(fun ~tag:_ _ -> ()) in
  check "serialised" 3 cycles;
  checkb "queue built up" true (Sim.max_link_queue sim >= 2)

let test_sim_link_capacity () =
  let mk cap =
    let sim = Sim.create ~link_capacity:cap (path_host 3) in
    Sim.send sim ~src:0 ~dst:2 ~tag:0;
    Sim.send sim ~src:0 ~dst:2 ~tag:1;
    Sim.run sim ~on_deliver:(fun ~tag:_ _ -> ())
  in
  check "capacity 2 avoids serialisation" 2 (mk 2);
  check "capacity 1 serialises" 3 (mk 1)

let test_sim_cascade () =
  (* deliveries that trigger further sends *)
  let sim = Sim.create (path_host 4) in
  Sim.send sim ~src:0 ~dst:1 ~tag:1;
  let cycles =
    Sim.run sim ~on_deliver:(fun ~tag sim ->
        if tag < 3 then Sim.send sim ~src:tag ~dst:(tag + 1) ~tag:(tag + 1))
  in
  check "chain of three hops" 3 cycles;
  check "three deliveries" 3 (Sim.delivered sim)

(* ---------------- workloads ---------------- *)

let test_reduction_native_cycles () =
  (* on a complete tree of height h, the reduce wave takes h cycles up *)
  let t = Gen.complete 15 in
  check "height 3 wave" 3 (Workload.run_native Workload.reduction t)

let test_broadcast_native_cycles () =
  let t = Gen.complete 15 in
  check "height 3 wave" 3 (Workload.run_native Workload.broadcast t)

let test_allreduce_is_both () =
  let t = Gen.complete 15 in
  check "up + down" 6 (Workload.run_native Workload.all_reduce t)

let test_pingpong_counts () =
  let t = Gen.complete 7 in
  (* 6 edges, request + reply, each 1 hop: 12 cycles *)
  check "sequential pingpong" 12 (Workload.run_native Workload.pingpong_sweep t)

let test_single_node_workloads () =
  let t = Gen.complete 1 in
  List.iter
    (fun (w : Workload.spec) -> check (w.Workload.name ^ " trivial") 0 (Workload.run_native w t))
    Workload.workloads

let test_embedded_slowdown_small () =
  let rng = Xt_prelude.Rng.make ~seed:2 in
  let t = Gen.uniform rng (Theorem1.optimal_size 3) in
  let res = Theorem1.embed t in
  List.iter
    (fun (w : Workload.spec) ->
      let s = Workload.slowdown w res.Theorem1.embedding in
      checkb (Printf.sprintf "%s slowdown %.2f sane" w.Workload.name s) true (s >= 0.2 && s <= 6.0))
    Workload.workloads

let test_path_tree_reduction () =
  (* a path of n nodes reduces in n-1 cycles natively *)
  let t = Gen.path 20 in
  check "wave length" 19 (Workload.run_native Workload.reduction t)

let test_link_loads_and_latencies () =
  (* one message 0 -> 4 over a path: each forward directed link carries
     it once, the reverse direction stays idle *)
  let sim = Sim.create (path_host 5) in
  Sim.send sim ~src:0 ~dst:4 ~tag:0;
  ignore (Sim.run sim ~on_deliver:(fun ~tag:_ _ -> ()));
  let loads = Sim.link_loads sim in
  check "2m directed links" 8 (Array.length loads);
  check "total hops" 4 (Array.fold_left ( + ) 0 loads);
  checkb "each link at most once" true (Array.for_all (fun l -> l <= 1) loads);
  Alcotest.(check (array int)) "latency per message" [| 4 |] (Sim.latencies sim);
  (* contention shows up in the tail: two messages over one link *)
  let sim2 = Sim.create (path_host 3) in
  Sim.send sim2 ~src:0 ~dst:2 ~tag:0;
  Sim.send sim2 ~src:0 ~dst:2 ~tag:1;
  ignore (Sim.run sim2 ~on_deliver:(fun ~tag:_ _ -> ()));
  let lat = Sim.latencies sim2 in
  Array.sort compare lat;
  Alcotest.(check (array int)) "second message waited" [| 2; 3 |] lat;
  check "busiest link carried both" 2 (Xt_prelude.Stats.max_int_array (Sim.link_loads sim2))

let suite =
  [
    ("router next hop", `Quick, test_router_next_hop);
    ("router shortest", `Quick, test_router_shortest);
    ("sim single message", `Quick, test_sim_single_message);
    ("sim self send", `Quick, test_sim_self_send);
    ("sim contention", `Quick, test_sim_contention);
    ("sim link capacity", `Quick, test_sim_link_capacity);
    ("sim cascade", `Quick, test_sim_cascade);
    ("reduction native cycles", `Quick, test_reduction_native_cycles);
    ("broadcast native cycles", `Quick, test_broadcast_native_cycles);
    ("allreduce both waves", `Quick, test_allreduce_is_both);
    ("pingpong counts", `Quick, test_pingpong_counts);
    ("single node workloads", `Quick, test_single_node_workloads);
    ("embedded slowdown sane", `Quick, test_embedded_slowdown_small);
    ("path tree reduction", `Quick, test_path_tree_reduction);
    ("link loads and latencies", `Quick, test_link_loads_and_latencies);
  ]

let test_permutation_workload () =
  let t = Gen.complete 15 in
  let cycles = Workload.run_native Workload.permutation t in
  checkb "takes time" true (cycles > 0);
  (* every node with an antipode distinct from itself sends one message *)
  let host = Graph.of_edges ~n:15 (Bintree.edges t) in
  let place = Array.init 15 Fun.id in
  let sim = Sim.create host in
  let _ = Workload.permutation.Workload.run sim ~place ~tree:t in
  check "deliveries" 15 (Sim.delivered sim)

let test_service_rate_serialises () =
  (* two messages to the same vertex: unlimited rate completes them in one
     cycle, rate 1 takes two *)
  let host = path_host 3 in
  let fast = Sim.create host in
  Sim.send fast ~src:0 ~dst:1 ~tag:0;
  Sim.send fast ~src:2 ~dst:1 ~tag:1;
  check "parallel service" 1 (Sim.run fast ~on_deliver:(fun ~tag:_ _ -> ()));
  let slow = Sim.create ~service_rate:1 host in
  Sim.send slow ~src:0 ~dst:1 ~tag:0;
  Sim.send slow ~src:2 ~dst:1 ~tag:1;
  check "serialised service" 2 (Sim.run slow ~on_deliver:(fun ~tag:_ _ -> ()))

let test_service_rate_models_load () =
  (* a loaded host vertex serialises its guests' work: reduction on a
     complete tree embedded entirely onto ONE vertex of a 1-vertex host *)
  let t = Gen.complete 15 in
  let host = Graph.of_edges ~n:1 [] in
  let place = Array.make 15 0 in
  let sim = Sim.create ~service_rate:1 host in
  let cycles = Workload.reduction.Workload.run sim ~place ~tree:t in
  (* 14 messages all served by a single CPU, one per cycle: >= 14 *)
  checkb (Printf.sprintf "cycles %d >= 14" cycles) true (cycles >= 14)

let test_max_inbox_queue () =
  (* every delivery passes through the destination inbox, so the mark is
     at least 1; simultaneous arrivals at one vertex stack up there even
     when service is unlimited (both are served the same cycle) *)
  let host = path_host 3 in
  let one = Sim.create host in
  Sim.send one ~src:0 ~dst:1 ~tag:0;
  ignore (Sim.run one ~on_deliver:(fun ~tag:_ _ -> ()));
  check "single message" 1 (Sim.max_inbox_queue one);
  let fast = Sim.create host in
  Sim.send fast ~src:0 ~dst:1 ~tag:0;
  Sim.send fast ~src:2 ~dst:1 ~tag:1;
  ignore (Sim.run fast ~on_deliver:(fun ~tag:_ _ -> ()));
  check "two arrivals, unlimited rate" 2 (Sim.max_inbox_queue fast);
  let slow = Sim.create ~service_rate:1 host in
  Sim.send slow ~src:0 ~dst:1 ~tag:0;
  Sim.send slow ~src:2 ~dst:1 ~tag:1;
  ignore (Sim.run slow ~on_deliver:(fun ~tag:_ _ -> ()));
  check "two arrivals, rate 1" 2 (Sim.max_inbox_queue slow);
  check "link queues never built up" 1 (Sim.max_link_queue slow)

let test_run_suite_matches_single_runs () =
  let t = Gen.complete 15 in
  let cases = List.map (fun w -> Workload.native_case w t) Workload.workloads in
  let outcomes = Workload.run_suite ~domains:2 cases in
  List.iter2
    (fun (w : Workload.spec) (o : Workload.outcome) ->
      check (w.Workload.name ^ " suite cycles") (Workload.run_native w t) o.Workload.cycles;
      checkb (w.Workload.name ^ " delivered") true (o.Workload.delivered > 0);
      checkb (w.Workload.name ^ " inbox mark") true (o.Workload.max_inbox >= 1))
    Workload.workloads outcomes

(* ---------------- sharding: partition and plumbing (ISSUE 8) --------- *)

let test_shard_partition_xtree () =
  let g = Xtree.graph (Xtree.create ~height:4) in
  let sim = Sim.create ~shards:4 g in
  check "shard count" 4 (Sim.shards sim);
  check "root in shard 0" 0 (Sim.shard_of sim 0);
  (* wedge partition: the vertex at index i of level l lands in shard
     i*S / 2^l, so each level is cut into contiguous index bands aligned
     with the recursive structure *)
  for l = 0 to 4 do
    let width = 1 lsl l in
    let base = width - 1 in
    for i = 0 to width - 1 do
      check
        (Printf.sprintf "level %d index %d" l i)
        (i * 4 / width)
        (Sim.shard_of sim (base + i))
    done
  done

let test_shard_partition_generic () =
  let sim = Sim.create ~shards:3 (path_host 10) in
  check "shard count" 3 (Sim.shards sim);
  (* fallback: contiguous id ranges, non-decreasing, all shards populated *)
  let seen = Array.make 3 0 in
  let prev = ref 0 in
  for v = 0 to 9 do
    let s = Sim.shard_of sim v in
    check (Printf.sprintf "vertex %d" v) (v * 3 / 10) s;
    checkb "non-decreasing" true (s >= !prev);
    prev := s;
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun s c -> checkb (Printf.sprintf "shard %d populated" s) true (c > 0))
    seen

let test_shard_clamp_and_validate () =
  check "clamped to n" 2 (Sim.shards (Sim.create ~shards:8 (path_host 2)));
  check "default is 1" 1 (Sim.shards (Sim.create (path_host 4)));
  Alcotest.check_raises "shards 0 rejected" (Invalid_argument "Sim.create: shards")
    (fun () -> ignore (Sim.create ~shards:0 (path_host 4)))

let test_sharded_run_matches () =
  (* the full equivalence battery lives in test_netsim_ref.ml; this is
     the quick in-suite version: an embedded all_reduce on an X-tree
     host must agree exactly across shard settings *)
  let rng = Xt_prelude.Rng.make ~seed:42 in
  let t = Gen.uniform rng (Theorem1.optimal_size 4) in
  let e = (Theorem1.embed t).Theorem1.embedding in
  let base = Workload.run_embedded ~service_rate:2 Workload.all_reduce e in
  List.iter
    (fun shards ->
      check
        (Printf.sprintf "all_reduce at shards=%d" shards)
        base
        (Workload.run_embedded ~service_rate:2 ~shards Workload.all_reduce e))
    [ 2; 3; 4 ]

let test_run_suite_sharded_matches () =
  let t = Gen.complete 31 in
  let cases = List.map (fun w -> Workload.native_case w t) Workload.workloads in
  let plain = Workload.run_suite cases in
  let sharded = Workload.run_suite ~shards:4 ~domains:1 cases in
  List.iter2
    (fun (a : Workload.outcome) (b : Workload.outcome) ->
      let what = a.Workload.case.Workload.label in
      check (what ^ " cycles") a.Workload.cycles b.Workload.cycles;
      check (what ^ " delivered") a.Workload.delivered b.Workload.delivered;
      check (what ^ " hops") a.Workload.hops b.Workload.hops;
      check (what ^ " max queue") a.Workload.max_queue b.Workload.max_queue;
      check (what ^ " max inbox") a.Workload.max_inbox b.Workload.max_inbox)
    plain sharded

(* The cutoff starts at the 16·S prior, adapts only from measured
   samples, and stays inside its clamps; a run across the cutoff keeps
   results identical (covered above — this pins the sizing contract). *)
let test_sparse_cutoff_adapts () =
  let g = Xtree.graph (Xtree.create ~height:4) in
  let sim = Sim.create ~shards:4 g in
  check "initial cutoff is the 16*S prior" 64 (Sim.sparse_cutoff sim);
  let rng = Xt_prelude.Rng.make ~seed:9 in
  let t = Gen.uniform rng (Theorem1.optimal_size 4) in
  let e = (Theorem1.embed t).Theorem1.embedding in
  List.iter
    (fun shards ->
      ignore (Workload.run_embedded ~service_rate:2 ~shards Workload.all_reduce e))
    [ 4; 4; 4 ];
  let sim2 = Sim.create ~shards:4 g in
  let c = Sim.sparse_cutoff sim2 in
  checkb "fresh sim back at prior" true (c = 64);
  (* drive one sim long enough for sampled cycles to fire, then check
     the clamp window *)
  let host = Xtree.graph (Xtree.create ~height:6) in
  let sim3 = Sim.create ~shards:4 host in
  let n = Graph.n host in
  for v = 1 to n - 1 do
    Sim.send sim3 ~src:v ~dst:0 ~tag:v
  done;
  ignore (Sim.run sim3 ~on_deliver:(fun ~tag:_ _ -> ()));
  let c3 = Sim.sparse_cutoff sim3 in
  checkb
    (Printf.sprintf "cutoff %d within clamps [8, 4096]" c3)
    true
    (c3 >= 8 && c3 <= 4096)

(* ---------------- router: dense rows == tree-mode lifting ------------ *)

type route_case = { fname : string; size : int; seed : int }

let print_route_case c = Printf.sprintf "%s(%d) seed=%d" c.fname c.size c.seed

let route_families = [ "complete"; "path"; "caterpillar"; "random-bst"; "uniform"; "skewed" ]

let route_case_gen =
  QCheck2.Gen.(
    let* fi = int_bound (List.length route_families - 1) in
    let* size = map (fun k -> k + 1) (int_bound 63) in
    let* seed = int_bound 1_000_000 in
    return { fname = List.nth route_families fi; size; seed })

(* On a tree the shortest path is unique, so the binary-lifting mode and
   the forced-dense BFS rows must agree on EVERY (current, dst) pair —
   the guarantee the fault-reroute escape hatch leans on. [warm] on the
   dense router must be equivalent to lazy row building. *)
let run_route_case c =
  let rng = Xt_prelude.Rng.make ~seed:c.seed in
  let tree = (Gen.family c.fname).generate rng c.size in
  let g = Workload.guest_graph tree in
  let lifted = Router.create g in
  let dense = Router.create ~dense:true g in
  Router.warm dense;
  for dst = 0 to c.size - 1 do
    for cur = 0 to c.size - 1 do
      if cur <> dst then begin
        let a = Router.next_hop lifted ~current:cur ~dst in
        let b = Router.next_hop dense ~current:cur ~dst in
        if a <> b then
          Alcotest.failf "%s: next_hop %d->%d: lifted %d, dense %d" (print_route_case c)
            cur dst a b
      end;
      if Router.path_length lifted ~src:cur ~dst <> Router.path_length dense ~src:cur ~dst
      then Alcotest.failf "%s: path_length %d->%d differs" (print_route_case c) cur dst
    done
  done;
  true

let qcheck_router_modes =
  QCheck2.Test.make ~count:80 ~name:"router: tree-mode lifting == dense BFS rows"
    ~print:print_route_case route_case_gen run_route_case

let suite =
  suite
  @ [
      ("sparse cutoff sizing contract", `Quick, test_sparse_cutoff_adapts);
      ("permutation workload", `Quick, test_permutation_workload);
      ("service rate serialises", `Quick, test_service_rate_serialises);
      ("service rate models load", `Quick, test_service_rate_models_load);
      ("max inbox queue", `Quick, test_max_inbox_queue);
      ("run_suite matches single runs", `Quick, test_run_suite_matches_single_runs);
      ("shard partition: x-tree wedges", `Quick, test_shard_partition_xtree);
      ("shard partition: generic fallback", `Quick, test_shard_partition_generic);
      ("shard count clamp and validation", `Quick, test_shard_clamp_and_validate);
      ("sharded run matches unsharded", `Quick, test_sharded_run_matches);
      ("run_suite sharded matches", `Quick, test_run_suite_sharded_matches);
      QCheck_alcotest.to_alcotest ~long:false qcheck_router_modes;
    ]
