open Xt_bintree

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let all_nodes t = List.init (Bintree.n t) Fun.id

let verify ws piece sp =
  match Separator.verify_split ws piece sp with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "split verification failed: %s" msg

(* ---------------- deterministic cases ---------------- *)

let test_lemma1_path () =
  let t = Gen.path 100 in
  let ws = Separator.make_ws t in
  let piece = { Separator.nodes = all_nodes t; r1 = 0; r2 = Some 99 } in
  let sp = Separator.lemma1 ws piece ~target:30 in
  verify ws piece sp;
  let _, n2 = Separator.side_sizes sp in
  checkb "size error" true (abs (n2 - 30) <= 10);
  checkb "s1 small" true (List.length sp.Separator.s1 <= 4);
  checkb "s2 small" true (List.length sp.Separator.s2 <= 2)

(* on a path, Lemma 2's error bound (A+4)/9 still applies and is tiny *)
let test_lemma2_path_exact () =
  let t = Gen.path 64 in
  let ws = Separator.make_ws t in
  let piece = { Separator.nodes = all_nodes t; r1 = 0; r2 = Some 63 } in
  List.iter
    (fun target ->
      let sp = Separator.lemma2 ws piece ~target in
      verify ws piece sp;
      let _, n2 = Separator.side_sizes sp in
      checkb
        (Printf.sprintf "target %d got %d" target n2)
        true
        (abs (n2 - target) <= (target + 4) / 9))
    [ 1; 2; 5; 16; 31; 32; 40; 63 ]

let test_move_all () =
  let t = Gen.complete 31 in
  let ws = Separator.make_ws t in
  let piece = { Separator.nodes = all_nodes t; r1 = 30; r2 = None } in
  let sp = Separator.lemma2 ws piece ~target:31 in
  let n1, n2 = Separator.side_sizes sp in
  check "all moved" 31 n2;
  check "nothing stays" 0 n1;
  checkb "designated laid" true (List.mem 30 sp.Separator.s2)

let test_single_node_piece () =
  let t = Gen.complete 7 in
  let ws = Separator.make_ws t in
  let piece = { Separator.nodes = [ 3 ]; r1 = 3; r2 = None } in
  let sp = Separator.lemma2 ws piece ~target:1 in
  let _, n2 = Separator.side_sizes sp in
  check "single node moves" 1 n2

let test_subtree_piece () =
  (* piece = left subtree of a complete tree *)
  let t = Gen.complete 31 in
  let sizes = Bintree.subtree_sizes t in
  let in_left_subtree v =
    let rec anc u = u = 1 || (u > 0 && anc ((u - 1) / 2)) in
    anc v
  in
  let nodes = List.filter in_left_subtree (all_nodes t) in
  check "piece size" sizes.(1) (List.length nodes);
  let ws = Separator.make_ws t in
  let piece = { Separator.nodes; r1 = 1; r2 = None } in
  let sp = Separator.lemma2 ws piece ~target:5 in
  verify ws piece sp;
  let _, n2 = Separator.side_sizes sp in
  checkb "error bound" true (abs (n2 - 5) <= 1)

let test_target_validation () =
  let t = Gen.complete 7 in
  let ws = Separator.make_ws t in
  let piece = { Separator.nodes = all_nodes t; r1 = 0; r2 = None } in
  Alcotest.check_raises "zero target" (Invalid_argument "Separator.lemma2: target must be positive")
    (fun () -> ignore (Separator.lemma2 ws piece ~target:0));
  Alcotest.check_raises "missing r2" (Invalid_argument "Separator.lemma1: r2 not in piece")
    (fun () -> ignore (Separator.lemma1 ws { piece with r2 = Some 6; nodes = [ 0; 1; 2 ] } ~target:1))

let test_components () =
  let t = Gen.complete 7 in
  let ws = Separator.make_ws t in
  let comps = Separator.components ws ~nodes:(all_nodes t) ~removed:[ 0 ] in
  check "two components" 2 (List.length comps);
  let comps2 = Separator.components ws ~nodes:(all_nodes t) ~removed:[ 0; 1; 2 ] in
  check "four leaves" 4 (List.length comps2);
  let comps3 = Separator.components ws ~nodes:(all_nodes t) ~removed:[] in
  check "connected whole" 1 (List.length comps3)

(* ---------------- qcheck properties ---------------- *)

(* A random scenario: a uniform tree, designated nodes with at most two
   neighbours inside the piece (the paper's situation — designated nodes
   always touch the embedded region), and a target. *)
type scenario = {
  tree : Bintree.t;
  piece : Separator.piece;
  target : int;
}

let scenario_gen ~lemma1 =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = map (fun k -> k + 2) (int_bound 400) in
    let rng = Xt_prelude.Rng.make ~seed in
    let tree = Gen.uniform rng n in
    (* r1: a node of degree <= 2 (always exists: any leaf) *)
    let low_degree =
      List.filter (fun v -> Bintree.degree tree v <= 2) (List.init n Fun.id)
    in
    let* i1 = int_bound (List.length low_degree - 1) in
    let r1 = List.nth low_degree i1 in
    let* r2_raw = int_bound (n - 1) in
    let r2 = if r2_raw = r1 then None else Some r2_raw in
    let max_target = if lemma1 then max 1 ((3 * n / 4) - 1) else n in
    let* target = map (fun k -> 1 + (k mod max_target)) (int_bound 10_000) in
    return { tree; piece = { Separator.nodes = List.init n Fun.id; r1; r2 }; target })

let print_scenario s =
  Printf.sprintf "n=%d r1=%d r2=%s target=%d" (Bintree.n s.tree) s.piece.Separator.r1
    (match s.piece.Separator.r2 with None -> "-" | Some r -> string_of_int r)
    s.target

let qcheck_tests =
  [
    QCheck2.Test.make ~count:300 ~name:"lemma1: structural validity" ~print:print_scenario
      (scenario_gen ~lemma1:true) (fun s ->
        let ws = Separator.make_ws s.tree in
        let sp = Separator.lemma1 ws s.piece ~target:s.target in
        Separator.verify_split ws s.piece sp = Ok ());
    QCheck2.Test.make ~count:300 ~name:"lemma1: size error <= (A+1)/3" ~print:print_scenario
      (scenario_gen ~lemma1:true) (fun s ->
        let ws = Separator.make_ws s.tree in
        let sp = Separator.lemma1 ws s.piece ~target:s.target in
        let _, n2 = Separator.side_sizes sp in
        abs (n2 - s.target) <= (s.target + 1) / 3);
    QCheck2.Test.make ~count:300 ~name:"lemma1: |s1|<=4, |s2|<=2" ~print:print_scenario
      (scenario_gen ~lemma1:true) (fun s ->
        let ws = Separator.make_ws s.tree in
        let sp = Separator.lemma1 ws s.piece ~target:s.target in
        List.length sp.Separator.s1 <= 4 && List.length sp.Separator.s2 <= 2);
    QCheck2.Test.make ~count:300 ~name:"lemma2: structural validity" ~print:print_scenario
      (scenario_gen ~lemma1:false) (fun s ->
        let ws = Separator.make_ws s.tree in
        let sp = Separator.lemma2 ws s.piece ~target:s.target in
        Separator.verify_split ws s.piece sp = Ok ());
    QCheck2.Test.make ~count:300 ~name:"lemma2: size error <= (A+4)/9" ~print:print_scenario
      (scenario_gen ~lemma1:false) (fun s ->
        let ws = Separator.make_ws s.tree in
        let sp = Separator.lemma2 ws s.piece ~target:s.target in
        let _, n2 = Separator.side_sizes sp in
        abs (n2 - s.target) <= (s.target + 4) / 9);
    QCheck2.Test.make ~count:300 ~name:"lemma2: |s1|,|s2| <= 4" ~print:print_scenario
      (scenario_gen ~lemma1:false) (fun s ->
        let ws = Separator.make_ws s.tree in
        let sp = Separator.lemma2 ws s.piece ~target:s.target in
        List.length sp.Separator.s1 <= 4 && List.length sp.Separator.s2 <= 4);
    QCheck2.Test.make ~count:300 ~name:"splits partition the piece" ~print:print_scenario
      (scenario_gen ~lemma1:false) (fun s ->
        let ws = Separator.make_ws s.tree in
        let sp = Separator.lemma2 ws s.piece ~target:s.target in
        let n1, n2 = Separator.side_sizes sp in
        n1 + n2 = Bintree.n s.tree);
  ]

let suite =
  [
    ("lemma1 on a path", `Quick, test_lemma1_path);
    ("lemma2 on a path", `Quick, test_lemma2_path_exact);
    ("move all", `Quick, test_move_all);
    ("single node piece", `Quick, test_single_node_piece);
    ("subtree piece", `Quick, test_subtree_piece);
    ("target validation", `Quick, test_target_validation);
    ("components", `Quick, test_components);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
