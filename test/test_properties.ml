(* Cross-cutting qcheck properties: random graphs, random X-tree vertices,
   and a randomized safety net over the full Theorem 1 pipeline. *)

open Xt_topology
open Xt_bintree
open Xt_core
open Xt_embedding

(* ---------------- random graph properties ---------------- *)

type graph_case = { n : int; edges : (int * int) list }

let graph_gen =
  QCheck2.Gen.(
    let* n = map (fun k -> k + 2) (int_bound 40) in
    let* m = int_bound (2 * n) in
    let* seed = int_bound 1_000_000 in
    let rng = Xt_prelude.Rng.make ~seed in
    let edges =
      List.init m (fun _ ->
          (Xt_prelude.Rng.int rng n, Xt_prelude.Rng.int rng n))
    in
    return { n; edges })

let print_graph_case c = Printf.sprintf "n=%d m=%d" c.n (List.length c.edges)

let graph_props =
  [
    QCheck2.Test.make ~count:200 ~name:"graph: degree sum = 2m" ~print:print_graph_case graph_gen
      (fun c ->
        let g = Graph.of_edges ~n:c.n c.edges in
        let sum = ref 0 in
        for v = 0 to c.n - 1 do
          sum := !sum + Graph.degree g v
        done;
        !sum = 2 * Graph.m g);
    QCheck2.Test.make ~count:200 ~name:"graph: has_edge agrees with neighbours"
      ~print:print_graph_case graph_gen (fun c ->
        let g = Graph.of_edges ~n:c.n c.edges in
        let ok = ref true in
        for v = 0 to c.n - 1 do
          Graph.iter_neighbours g v (fun w -> if not (Graph.has_edge g v w) then ok := false)
        done;
        (* and a negative probe *)
        !ok);
    QCheck2.Test.make ~count:100 ~name:"graph: bfs distance is symmetric" ~print:print_graph_case
      graph_gen (fun c ->
        let g = Graph.of_edges ~n:c.n c.edges in
        let d0 = Graph.bfs g 0 in
        let ok = ref true in
        for v = 0 to c.n - 1 do
          if d0.(v) >= 0 then begin
            let dv = Graph.bfs g v in
            if dv.(0) <> d0.(v) then ok := false
          end
        done;
        !ok);
    QCheck2.Test.make ~count:100 ~name:"graph: triangle inequality over edges"
      ~print:print_graph_case graph_gen (fun c ->
        let g = Graph.of_edges ~n:c.n c.edges in
        let d0 = Graph.bfs g 0 in
        let ok = ref true in
        Graph.iter_edges g (fun u v ->
            if d0.(u) >= 0 && d0.(v) >= 0 && abs (d0.(u) - d0.(v)) > 1 then ok := false);
        !ok);
    QCheck2.Test.make ~count:200 ~name:"graph: no self loops or duplicates survive"
      ~print:print_graph_case graph_gen (fun c ->
        let g = Graph.of_edges ~n:c.n c.edges in
        let ok = ref true in
        for v = 0 to c.n - 1 do
          let ns = Graph.neighbours g v in
          Array.iteri
            (fun i w ->
              if w = v then ok := false;
              if i > 0 && ns.(i - 1) >= w then ok := false)
            ns
        done;
        !ok);
  ]

(* ---------------- X-tree vertex properties ---------------- *)

let xtree_height = 8
let shared_xt = lazy (Xtree.create ~height:xtree_height)

let vertex_gen =
  QCheck2.Gen.(map (fun k -> k mod Xtree.order (Lazy.force shared_xt)) (int_bound 100_000))

let xtree_props =
  [
    QCheck2.Test.make ~count:300 ~name:"xtree: parent of child is self" vertex_gen (fun v ->
        let xt = Lazy.force shared_xt in
        Xtree.level v >= Xtree.height xt
        || Xtree.parent (Xtree.child v 0) = Some v && Xtree.parent (Xtree.child v 1) = Some v);
    QCheck2.Test.make ~count:300 ~name:"xtree: successor/predecessor inverse" vertex_gen (fun v ->
        match Xtree.successor v with
        | None -> true
        | Some s -> Xtree.predecessor s = Some v);
    QCheck2.Test.make ~count:300 ~name:"xtree: address string roundtrip" vertex_gen (fun v ->
        Xtree.of_string (Xtree.to_string v) = v);
    QCheck2.Test.make ~count:100 ~name:"xtree: distance symmetric"
      QCheck2.Gen.(pair vertex_gen vertex_gen)
      (fun (u, v) ->
        let xt = Lazy.force shared_xt in
        Xtree.distance xt u v = Xtree.distance xt v u);
    QCheck2.Test.make ~count:200 ~name:"xtree: N(a) within distance 3" vertex_gen (fun a ->
        let xt = Lazy.force shared_xt in
        List.for_all (fun b -> Xtree.distance xt a b <= 3) (Xtree.neighbourhood xt a));
    QCheck2.Test.make ~count:300 ~name:"xtree: ancestors are closer to root" vertex_gen (fun v ->
        match Xtree.parent v with
        | None -> v = Xtree.root
        | Some p -> Xtree.level p = Xtree.level v - 1 && Xtree.is_ancestor p v);
  ]

(* ---------------- end-to-end Theorem 1 safety net ---------------- *)

type pipeline_case = { fname : string; size : int; capacity : int; seed : int }

let pipeline_gen =
  QCheck2.Gen.(
    let families = Array.of_list (List.map (fun (f : Gen.family) -> f.Gen.name) Gen.families) in
    let* fi = int_bound (Array.length families - 1) in
    let* size = map (fun k -> k + 1) (int_bound 600) in
    let* ci = int_bound 2 in
    let* seed = int_bound 1_000_000 in
    return { fname = families.(fi); size; capacity = [| 4; 8; 16 |].(ci); seed })

let print_pipeline c = Printf.sprintf "%s n=%d cap=%d seed=%d" c.fname c.size c.capacity c.seed

let run_pipeline c =
  let rng = Xt_prelude.Rng.make ~seed:c.seed in
  let tree = (Gen.family c.fname).generate rng c.size in
  Theorem1.embed ~capacity:c.capacity tree

let pipeline_props =
  [
    QCheck2.Test.make ~count:120 ~name:"theorem1: every node placed, load within capacity"
      ~print:print_pipeline pipeline_gen (fun c ->
        let res = run_pipeline c in
        Array.for_all (fun p -> p >= 0) res.Theorem1.embedding.Embedding.place
        && Embedding.load res.Theorem1.embedding <= c.capacity);
    QCheck2.Test.make ~count:60 ~name:"theorem1: dilation stays small at any size"
      ~print:print_pipeline pipeline_gen (fun c ->
        let res = run_pipeline c in
        Embedding.dilation ~dist:(Theorem1.distance_oracle res) res.Theorem1.embedding <= 8);
    QCheck2.Test.make ~count:40 ~name:"theorem1: deterministic" ~print:print_pipeline pipeline_gen
      (fun c ->
        let a = run_pipeline c and b = run_pipeline c in
        a.Theorem1.embedding.Embedding.place = b.Theorem1.embedding.Embedding.place);
    QCheck2.Test.make ~count:60 ~name:"repair: never increases violations" ~print:print_pipeline
      pipeline_gen (fun c ->
        let res = run_pipeline c in
        let _, rep = Repair.improve_theorem1 res in
        rep.Repair.violations_after <= rep.Repair.violations_before);
  ]

let suite =
  List.map (QCheck_alcotest.to_alcotest ~long:false) (graph_props @ xtree_props @ pipeline_props)
