let () =
  Alcotest.run "xtree"
    [
      ("prelude", Test_prelude.suite);
      ("topology", Test_topology.suite);
      ("bintree", Test_bintree.suite);
      ("separator", Test_separator.suite);
      ("embedding", Test_embedding.suite);
      ("core", Test_core.suite);
      ("theorems", Test_theorems.suite);
      ("dynamic", Test_dynamic.suite);
      ("codec", Test_codec.suite);
      ("dot", Test_dot.suite);
      ("ablation", Test_ablation.suite);
      ("exact", Test_exact.suite);
      ("properties", Test_properties.suite);
      ("congestion+enum", Test_congestion.suite);
      ("weighted", Test_weighted.suite);
      ("internals", Test_internals.suite);
      ("baseline", Test_baseline.suite);
      ("netsim", Test_netsim.suite);
      ("netsim-ref", Test_netsim_ref.suite);
      ("theorem1-ref", Test_theorem1_ref.suite);
      ("obs", Test_obs.suite);
      ("trace-report", Test_trace_report.suite);
      ("cache", Test_cache.suite);
      ("serve", Test_serve.suite);
    ]
