(* Trace analytics engine: JSON round trip, wall/self attribution,
   deterministic projection, and the fork-efficiency section. *)
open Xt_obs

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let contains hay needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let ev ?(tid = 0) ?(arg = min_int) ?(arg2 = min_int) ph name ts_ms =
  {
    Obs.ev_tid = tid;
    ev_name = name;
    ev_ph = ph;
    ev_ts = int_of_float (ts_ms *. 1e6);
    ev_arg = arg;
    ev_arg2 = arg2;
  }

(* outer [0,10ms] wraps inner [1,3ms]: outer self = 10 - 2 = 8ms *)
let nested =
  [
    ev 'B' "outer" 0.;
    ev 'B' "inner" 1.;
    ev 'E' "inner" 3.;
    ev 'E' "outer" 10.;
  ]

let test_wall_vs_self () =
  let r = Trace_report.report nested in
  checkb "inner wall 2ms" true (contains r "2.000");
  checkb "outer self 8ms" true (contains r "8.000");
  checkb "outer wall 10ms" true (contains r "10.000");
  checkb "has spans section" true (contains r "== spans ==");
  checkb "has domains section" true (contains r "== domains ==")

let test_idle_gaps () =
  let evs =
    [
      ev 'B' "a" 0.;
      ev 'E' "a" 1.;
      ev 'B' "b" 5.; (* 4ms gap *)
      ev 'E' "b" 6.;
      ev 'B' "c" 6.; (* back to back: no gap *)
      ev 'E' "c" 8.;
    ]
  in
  let r = Trace_report.report evs in
  (* busy 4ms over an 8ms range, one idle gap of 4ms *)
  checkb "busy" true (contains r "4.000");
  checkb "util 50%" true (contains r "50.0");
  checkb "one gap" true (contains r "== domains ==")

let test_truncated_spans_close () =
  (* B without E (process died mid-span) and E without B (ring evicted
     the begin): neither may crash or distort counts *)
  let evs = [ ev 'E' "orphan" 1.; ev 'B' "unclosed" 2.; ev 'B' "leaf" 3.; ev 'E' "leaf" 4. ] in
  let r = Trace_report.report evs in
  checkb "unclosed still counted" true (contains r "unclosed");
  checkb "leaf counted" true (contains r "leaf")

let test_series_and_instants () =
  let evs =
    [
      ev 'C' ~arg:3 "depth" 0.;
      ev 'C' ~arg:9 "depth" 1.;
      ev 'C' ~arg:1 "depth" 2.;
      ev 'i' "blip" 1.5;
    ]
  in
  let r = Trace_report.report evs in
  checkb "series section" true (contains r "== series ==");
  checkb "min..max..last row" true (contains r "depth");
  checkb "instants section" true (contains r "== instants ==");
  let rd = Trace_report.report ~deterministic:true evs in
  checkb "deterministic series drops last" true (contains rd "== series (deterministic) ==")

let test_deterministic_projection () =
  let evs = nested @ [ ev 'B' "parallel.for" 11.; ev 'E' "parallel.for" 12. ] in
  let full = Trace_report.report evs in
  let det = Trace_report.report ~deterministic:true evs in
  checkb "full sees parallel.for" true (contains full "parallel.for");
  checkb "deterministic drops parallel.*" false (contains det "parallel.for");
  checkb "deterministic drops time columns" false (contains det "wall_ms");
  checkb "deterministic drops domains" false (contains det "== domains ==");
  checkb "deterministic keeps counts" true (contains det "outer")

let test_empty () = checks "empty trace" "(empty trace)\n" (Trace_report.report [])

let test_gc_section () =
  let evs = [ ev 'B' "hot" 0.; ev ~arg:1200 ~arg2:34 'E' "hot" 1. ] in
  let r = Trace_report.report evs in
  checkb "gc section" true (contains r "== gc ==");
  checkb "minor words" true (contains r "1200");
  checkb "major words" true (contains r "34");
  let no_gc = Trace_report.report nested in
  checkb "no gc section without samples" false (contains no_gc "== gc ==")

let test_fork_efficiency () =
  let dump =
    {
      Obs.counters =
        [ ("parallel.forks_sequentialized", 30); ("parallel.forks_taken", 90) ];
      gauges = [];
      histograms = [];
    }
  in
  let r = Trace_report.report ~dump nested in
  checkb "parallel section" true (contains r "== parallel ==");
  checkb "taken" true (contains r "forks_taken = 90");
  checkb "efficiency 75%" true (contains r "fork_efficiency_pct = 75.0")

(* The report over the in-memory log must equal the report over its own
   Chrome-trace export: the JSON round trip is lossless at ns grain. *)
let test_json_round_trip () =
  Obs.reset_trace ();
  let tick = ref 0 in
  Obs.set_clock (fun () ->
      incr tick;
      !tick * 1000);
  Fun.protect
    ~finally:(fun () ->
      Obs.disable_tracing ();
      Obs.reset_trace ();
      Obs.set_clock (fun () -> int_of_float (Unix.gettimeofday () *. 1e9)))
    (fun () ->
      Obs.enable_tracing ();
      Obs.span "outer" (fun () ->
          Obs.span ~arg:7 "inner" (fun () -> Obs.instant "tick");
          Obs.counter_event "depth" 5);
      let live = Obs.events () in
      check "events exported" 6 (List.length live);
      let json = Obs.trace_json () in
      match Trace_report.of_trace_json json with
      | Error msg -> Alcotest.fail msg
      | Ok parsed ->
          check "same event count" (List.length live) (List.length parsed);
          checks "identical reports" (Trace_report.report live) (Trace_report.report parsed))

let test_rejects_garbage () =
  (match Trace_report.of_trace_json "{nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON");
  match Trace_report.of_trace_json "{\"x\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted document without traceEvents"

let suite =
  [
    ("wall vs self attribution", `Quick, test_wall_vs_self);
    ("idle gaps and utilization", `Quick, test_idle_gaps);
    ("truncated spans close", `Quick, test_truncated_spans_close);
    ("series and instants", `Quick, test_series_and_instants);
    ("deterministic projection", `Quick, test_deterministic_projection);
    ("empty trace", `Quick, test_empty);
    ("gc pressure section", `Quick, test_gc_section);
    ("fork efficiency from dump", `Quick, test_fork_efficiency);
    ("json round trip", `Quick, test_json_round_trip);
    ("rejects garbage", `Quick, test_rejects_garbage);
  ]
