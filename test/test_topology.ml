open Xt_topology

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------------- Graph ---------------- *)

let triangle () = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]

let test_graph_basic () =
  let g = triangle () in
  check "n" 3 (Graph.n g);
  check "m" 3 (Graph.m g);
  check "deg" 2 (Graph.degree g 0);
  checkb "edge 0-1" true (Graph.has_edge g 0 1);
  checkb "edge 1-0" true (Graph.has_edge g 1 0);
  checkb "no self" false (Graph.has_edge g 0 0)

let test_graph_dedup () =
  let g = Graph.of_edges ~n:2 [ (0, 1); (1, 0); (0, 1); (0, 0) ] in
  check "m" 1 (Graph.m g);
  check "deg 0" 1 (Graph.degree g 0)

let test_graph_bfs () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3) ] in
  let d = Graph.bfs g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; -1 |] d;
  check "distance" 3 (Graph.distance g 0 3);
  check "unreachable" (-1) (Graph.distance g 0 4);
  checkb "not connected" false (Graph.is_connected g);
  check "diameter disconnected" (-1) (Graph.diameter g)

let test_graph_bfs_parents () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let dist, parent = Graph.bfs_parents g 0 in
  check "dist to 2" 2 dist.(2);
  check "parent of 0" 0 parent.(0);
  (* walking parents from any vertex reaches the source in dist steps *)
  let rec walk v steps = if v = 0 then steps else walk parent.(v) (steps + 1) in
  check "walk length" dist.(2) (walk 2 0)

let test_graph_diameter () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check "path diameter" 3 (Graph.diameter g);
  check "triangle diameter" 1 (Graph.diameter (triangle ()))

let test_graph_iter_edges () =
  let g = triangle () in
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      incr count;
      checkb "ordered" true (u < v));
  check "each edge once" 3 !count

let test_graph_validation () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.of_edges: endpoint out of range") (fun () ->
      ignore (Graph.of_edges ~n:2 [ (0, 5) ]))

let test_subgraph_respects () =
  let g = triangle () in
  checkb "subset ok" true (Graph.subgraph_respects g [ (0, 1); (2, 1) ]);
  checkb "missing edge" false (Graph.subgraph_respects g [ (0, 1); (0, 0) ])

(* ---------------- X-tree ---------------- *)

let test_xtree_order () =
  List.iter
    (fun r -> check (Printf.sprintf "order h=%d" r) ((2 * Xt_prelude.Bits.pow2 r) - 1) (Xtree.order (Xtree.create ~height:r)))
    [ 0; 1; 2; 5; 8 ]

(* Figure 1: X(3) has 15 vertices and 14 + 11 = 25 edges
   (tree edges 2^4-2 = 14, horizontal edges (2^l - 1) summed = 1+3+7 = 11). *)
let test_xtree_figure1 () =
  let t = Xtree.create ~height:3 in
  check "vertices" 15 (Xtree.order t);
  check "edges" 25 (Graph.m (Xtree.graph t));
  check "max degree" 5 (Graph.max_degree (Xtree.graph t));
  checkb "connected" true (Graph.is_connected (Xtree.graph t))

let test_xtree_addressing () =
  check "root" 0 Xtree.root;
  check "level of root" 0 (Xtree.level Xtree.root);
  let v = Xtree.id ~level:3 ~index:5 in
  check "level" 3 (Xtree.level v);
  check "index" 5 (Xtree.index v);
  Alcotest.(check string) "address" "101" (Xtree.to_string v);
  check "roundtrip" v (Xtree.of_string "101");
  check "of e" 0 (Xtree.of_string "e");
  check "of empty" 0 (Xtree.of_string "")

let test_xtree_family () =
  let v = Xtree.of_string "10" in
  Alcotest.(check (option int)) "parent" (Some (Xtree.of_string "1")) (Xtree.parent v);
  check "left child" (Xtree.of_string "100") (Xtree.child v 0);
  check "right child" (Xtree.of_string "101") (Xtree.child v 1);
  Alcotest.(check (option int)) "successor" (Some (Xtree.of_string "11")) (Xtree.successor v);
  Alcotest.(check (option int)) "predecessor" (Some (Xtree.of_string "01")) (Xtree.predecessor v);
  Alcotest.(check (option int)) "last has no successor" None (Xtree.successor (Xtree.of_string "11"));
  Alcotest.(check (option int)) "first has no predecessor" None (Xtree.predecessor (Xtree.of_string "00"));
  Alcotest.(check (option int)) "root parent" None (Xtree.parent Xtree.root)

let test_xtree_ancestor () =
  checkb "prefix" true (Xtree.is_ancestor (Xtree.of_string "10") (Xtree.of_string "1011"));
  checkb "self" true (Xtree.is_ancestor (Xtree.of_string "10") (Xtree.of_string "10"));
  checkb "not prefix" false (Xtree.is_ancestor (Xtree.of_string "11") (Xtree.of_string "1011"));
  checkb "root of all" true (Xtree.is_ancestor Xtree.root (Xtree.of_string "0101"))

let test_xtree_distance () =
  let t = Xtree.create ~height:4 in
  check "self" 0 (Xtree.distance t 0 0);
  check "child" 1 (Xtree.distance t 0 (Xtree.of_string "1"));
  check "siblings via horizontal" 1
    (Xtree.distance t (Xtree.of_string "0") (Xtree.of_string "1"));
  (* leftmost to rightmost leaf: up and down is shortest for height 4 *)
  let d = Xtree.distance t (Xtree.of_string "0000") (Xtree.of_string "1111") in
  checkb "long distance sane" true (d >= 2 && d <= 8)

(* Figure 2: |N(a) - {a}| <= 20 with equality for interior vertices. *)
let test_neighbourhood_bound () =
  let t = Xtree.create ~height:6 in
  let maxn = ref 0 in
  for a = 0 to Xtree.order t - 1 do
    let n = List.length (Xtree.neighbourhood t a) - 1 in
    if n > !maxn then maxn := n;
    checkb "bound" true (n <= Xtree.neighbourhood_closure_bound)
  done;
  check "bound attained" 20 !maxn

let test_neighbourhood_contains_self () =
  let t = Xtree.create ~height:4 in
  for a = 0 to Xtree.order t - 1 do
    checkb "self in N(a)" true (List.mem a (Xtree.neighbourhood t a))
  done

(* Every element of N(a) is within distance 4 in the X-tree (3 horizontal,
   or 2 down + 2 horizontal). *)
let test_neighbourhood_distance () =
  let t = Xtree.create ~height:5 in
  for a = 0 to Xtree.order t - 1 do
    List.iter
      (fun b -> checkb "close" true (Xtree.distance t a b <= 4))
      (Xtree.neighbourhood t a)
  done

(* The paper: at most 5 vertices b with a in N(b) but b not in N(a). *)
let test_neighbourhood_asymmetry () =
  let t = Xtree.create ~height:6 in
  let order = Xtree.order t in
  let n_of = Array.init order (fun a -> Xtree.neighbourhood t a) in
  for a = 0 to order - 1 do
    let incoming = ref 0 in
    for b = 0 to order - 1 do
      if b <> a && List.mem a n_of.(b) && not (List.mem b n_of.(a)) then incr incoming
    done;
    checkb (Printf.sprintf "asymmetric in-neighbours of %s" (Xtree.to_string a)) true (!incoming <= 5)
  done

(* ---------------- Hypercube / CBT / CCC / Butterfly / Grid ---------------- *)

let test_hypercube () =
  let q = Hypercube.create ~dim:4 in
  check "order" 16 (Hypercube.order q);
  check "m" 32 (Graph.m (Hypercube.graph q));
  check "degree" 4 (Graph.max_degree (Hypercube.graph q));
  check "distance" 3 (Hypercube.distance q 0b0000 0b0111);
  check "flip" 0b0100 (Hypercube.flip 0 2);
  check "diameter" 4 (Graph.diameter (Hypercube.graph q))

let test_hypercube_distance_is_bfs () =
  let q = Hypercube.create ~dim:4 in
  let g = Hypercube.graph q in
  for u = 0 to 15 do
    let row = Graph.bfs g u in
    for v = 0 to 15 do
      check "hamming = bfs" row.(v) (Hypercube.distance q u v)
    done
  done

let test_cbt () =
  let t = Cbt.create ~height:3 in
  check "order" 15 (Cbt.order t);
  check "m" 14 (Graph.m (Cbt.graph t));
  check "lca" 0 (Cbt.lca 7 14);
  check "lca ancestor" 3 (Cbt.lca 7 3);
  check "lca cousins" 1 (Cbt.lca 7 4);
  check "distance siblings" 2 (Cbt.distance t 1 2);
  check "distance leaf to root" 3 (Cbt.distance t 7 0)

let test_cbt_distance_is_bfs () =
  let t = Cbt.create ~height:4 in
  let g = Cbt.graph t in
  for u = 0 to Cbt.order t - 1 do
    let row = Graph.bfs g u in
    for v = 0 to Cbt.order t - 1 do
      check "arith = bfs" row.(v) (Cbt.distance t u v)
    done
  done

let test_ccc () =
  let c = Ccc.create ~dim:3 in
  check "order" 24 (Ccc.order c);
  check "degree" 3 (Graph.max_degree (Ccc.graph c));
  checkb "connected" true (Graph.is_connected (Ccc.graph c));
  let v = Ccc.vertex c ~word:5 ~pos:1 in
  check "word" 5 (Ccc.word c v);
  check "pos" 1 (Ccc.pos c v)

let test_butterfly () =
  let b = Butterfly.create ~dim:3 in
  check "order" 32 (Butterfly.order b);
  checkb "connected" true (Graph.is_connected (Butterfly.graph b));
  check "degree" 4 (Graph.max_degree (Butterfly.graph b));
  let v = Butterfly.vertex b ~word:2 ~level:3 in
  check "word" 2 (Butterfly.word b v);
  check "level" 3 (Butterfly.level b v)

let test_grid () =
  let g = Grid.create ~rows:3 ~cols:4 in
  check "order" 12 (Grid.order g);
  check "m" 17 (Graph.m (Grid.graph g));
  let v = Grid.vertex g ~row:2 ~col:1 in
  check "row" 2 (Grid.row g v);
  check "col" 1 (Grid.col g v);
  check "manhattan" 5 (Grid.distance g (Grid.vertex g ~row:0 ~col:0) (Grid.vertex g ~row:2 ~col:3));
  check "diameter" 5 (Graph.diameter (Grid.graph g))

let test_grid_distance_is_bfs () =
  let g = Grid.create ~rows:4 ~cols:5 in
  let gr = Grid.graph g in
  for u = 0 to Grid.order g - 1 do
    let row = Graph.bfs gr u in
    for v = 0 to Grid.order g - 1 do
      check "manhattan = bfs" row.(v) (Grid.distance g u v)
    done
  done

let suite =
  [
    ("graph basic", `Quick, test_graph_basic);
    ("graph dedup", `Quick, test_graph_dedup);
    ("graph bfs", `Quick, test_graph_bfs);
    ("graph bfs parents", `Quick, test_graph_bfs_parents);
    ("graph diameter", `Quick, test_graph_diameter);
    ("graph iter edges", `Quick, test_graph_iter_edges);
    ("graph validation", `Quick, test_graph_validation);
    ("subgraph respects", `Quick, test_subgraph_respects);
    ("xtree order", `Quick, test_xtree_order);
    ("xtree figure 1", `Quick, test_xtree_figure1);
    ("xtree addressing", `Quick, test_xtree_addressing);
    ("xtree family", `Quick, test_xtree_family);
    ("xtree ancestor", `Quick, test_xtree_ancestor);
    ("xtree distance", `Quick, test_xtree_distance);
    ("neighbourhood bound (fig 2)", `Quick, test_neighbourhood_bound);
    ("neighbourhood has self", `Quick, test_neighbourhood_contains_self);
    ("neighbourhood distance", `Quick, test_neighbourhood_distance);
    ("neighbourhood asymmetry", `Quick, test_neighbourhood_asymmetry);
    ("hypercube", `Quick, test_hypercube);
    ("hypercube distance = bfs", `Quick, test_hypercube_distance_is_bfs);
    ("cbt", `Quick, test_cbt);
    ("cbt distance = bfs", `Quick, test_cbt_distance_is_bfs);
    ("ccc", `Quick, test_ccc);
    ("butterfly", `Quick, test_butterfly);
    ("grid", `Quick, test_grid);
    ("grid distance = bfs", `Quick, test_grid_distance_is_bfs);
  ]

(* ---------------- analytic routing ---------------- *)

let test_analytic_distance_exact () =
  (* matches BFS on every pair for heights up to 5 (larger in bench E17) *)
  List.iter
    (fun h ->
      let t = Xtree.create ~height:h in
      let g = Xtree.graph t in
      for a = 0 to Xtree.order t - 1 do
        let row = Graph.bfs g a in
        for b = 0 to Xtree.order t - 1 do
          check
            (Printf.sprintf "h=%d %s-%s" h (Xtree.to_string a) (Xtree.to_string b))
            row.(b) (Xtree.analytic_distance a b)
        done
      done)
    [ 1; 2; 3; 4; 5 ]

let test_route_is_shortest () =
  let t = Xtree.create ~height:5 in
  let g = Xtree.graph t in
  let rng = Xt_prelude.Rng.make ~seed:3 in
  for _ = 1 to 300 do
    let a = Xt_prelude.Rng.int rng (Xtree.order t) and b = Xt_prelude.Rng.int rng (Xtree.order t) in
    if a <> b then begin
      let path = Xtree.route t ~src:a ~dst:b in
      check "length = distance" (Xtree.distance t a b) (List.length path - 1);
      let rec adjacent = function
        | x :: (y :: _ as rest) ->
            checkb "consecutive adjacent" true (Graph.has_edge g x y);
            adjacent rest
        | _ -> ()
      in
      adjacent path;
      check "starts at src" a (List.hd path);
      check "ends at dst" b (List.nth path (List.length path - 1))
    end
  done

(* The closed-form fast paths inside [Xtree.distance] (ancestor pairs,
   same-level pairs) and the memoised BFS fallback must all agree with a
   plain graph BFS — checked on every pair of X(6). *)
let test_xtree_distance_matches_bfs () =
  let t = Xtree.create ~height:6 in
  let g = Xtree.graph t in
  for a = 0 to Xtree.order t - 1 do
    let row = Graph.bfs g a in
    for b = 0 to Xtree.order t - 1 do
      check
        (Printf.sprintf "%s-%s" (Xtree.to_string a) (Xtree.to_string b))
        row.(b) (Xtree.distance t a b)
    done
  done

let test_graph_edge_ids () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 0); (1, 3) ] in
  let m = Graph.m g in
  let seen = Array.make m 0 in
  for v = 0 to 4 do
    Graph.iter_neighbours_e g v (fun w eid ->
        checkb "id in range" true (eid >= 0 && eid < m);
        check "same id both directions" eid (Graph.edge_index g w v);
        seen.(eid) <- seen.(eid) + 1)
  done;
  Array.iter (fun c -> check "each id on exactly two arcs" 2 c) seen;
  Alcotest.check_raises "not an edge" (Invalid_argument "Graph.edge_index: not an edge")
    (fun () -> ignore (Graph.edge_index g 0 2))

let test_route_next_hop_validation () =
  let t = Xtree.create ~height:3 in
  Alcotest.check_raises "same vertex" (Invalid_argument "Xtree.route_next_hop: already there")
    (fun () -> ignore (Xtree.route_next_hop t ~src:3 ~dst:3))

(* The closed-form branches of [Xtree.distance] (same-level and ancestor
   pairs) and [analytic_distance] are the hot path of every embedding
   metric; assert they stay allocation-free (ISSUE 4 satellite). *)
let test_distance_allocation_free () =
  let t = Xtree.create ~height:10 in
  let leaf0 = 1023 and n = 2047 in
  (* warm up: everything below must be in closed form, but be safe *)
  ignore (Xtree.distance t leaf0 2046);
  Gc.minor ();
  let before = Gc.minor_words () in
  let total = ref 0 in
  for v = leaf0 to n - 1 do
    for _rep = 1 to 32 do
      total := !total + Xtree.distance t leaf0 v (* same level: closed form *)
    done;
    total := !total + Xtree.distance t 0 v (* ancestor: closed form *)
  done;
  for v = 0 to n - 1 do
    total := !total + Xtree.analytic_distance 1000 v
  done;
  let allocated = Gc.minor_words () -. before in
  ignore !total;
  checkb
    (Printf.sprintf "~35k closed-form queries allocated %.0f words" allocated)
    true (allocated < 256.)

let suite =
  suite
  @ [
      ("analytic distance exact", `Slow, test_analytic_distance_exact);
      ("xtree distance = bfs on X(6)", `Slow, test_xtree_distance_matches_bfs);
      ("graph edge ids", `Quick, test_graph_edge_ids);
      ("greedy route is shortest", `Quick, test_route_is_shortest);
      ("route next hop validation", `Quick, test_route_next_hop_validation);
      ("closed-form distance allocation free", `Quick, test_distance_allocation_free);
    ]
