(* Allocation guard for the @shard-smoke alias: the sharded run loop's
   steady-state allocation on the driving domain must stay bounded per
   shard and per cycle. The phase bodies themselves are allocation-free
   (per-shard arenas, rings and scratch are all reused), so the only
   recurring cost is the three pool dispatches of the cycle barrier and
   the merge cursors — a small constant, independent of traffic. Prints
   parseable lines for check.sh; the bit-identical equivalence suite
   lives in test_netsim_ref.ml. *)

let () =
  let open Xt_topology in
  let open Xt_netsim in
  let n = 256 in
  let host = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let sim = Sim.create ~service_rate:1 ~shards:4 host in
  let on_deliver ~tag:_ _ = () in
  (* antipodal permutation over a path: enough concurrent traffic that
     the stepped cycles take the pooled (non-sparse) schedule *)
  let batch () =
    for v = 0 to n - 1 do
      Sim.send sim ~src:v ~dst:((v + (n / 2)) mod n) ~tag:v
    done;
    Sim.run sim ~on_deliver
  in
  (* warm up: sizes arenas, rings, scratch, outboxes and latency storage *)
  for _ = 1 to 4 do
    ignore (batch ())
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  let cycles = batch () in
  let allocated = Gc.minor_words () -. before in
  let per_shard_cycle =
    allocated /. float_of_int (max 1 cycles) /. float_of_int (Sim.shards sim)
  in
  Printf.printf "shards = %d\n" (Sim.shards sim);
  Printf.printf "cycles = %d\n" cycles;
  Printf.printf "run-minor-words-per-shard-cycle = %.1f\n" per_shard_cycle;
  print_endline (if per_shard_cycle < 512. then "guard PASS" else "guard FAIL")
