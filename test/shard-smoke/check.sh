#!/usr/bin/env bash
# Sharded-simulator smoke assertions for the @shard-smoke alias.
set -eu

# deterministic cycle-barrier merge: the whole suite table must be
# byte-identical between one lane and four
diff -u shards1.out shards4.out

# the table is the one we expect, not an empty file that trivially diffs
grep -q '^== workload suite on uniform (n=496)' shards1.out
for w in reduction broadcast all-reduce pingpong-sweep permutation; do
  grep -q "^$w " shards1.out
done

# sharded steady state stays allocation-bounded on the driving domain
grep -q '^guard PASS$' guard.out
