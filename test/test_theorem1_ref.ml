(* Equivalence of the parallel, flat-workspace Theorem 1 core against the
   frozen sequential reference (ISSUE 6): the production pipeline — flat
   generation-stamped separator workspaces, domain-parallel ADJUST/SPLIT
   sweeps, per-domain scratch slots — must produce bit-identical
   placements. Checked exhaustively over every binary-tree shape up to 14
   nodes, by qcheck over random family x size x capacity cases swept
   across domain budgets {1,2,4}, and on deterministic large trees where
   the parallel sweeps actually engage. Plus the [Gc.minor_words] guard
   pinning [Separator.prepare] as allocation-free. *)

open Xt_prelude
open Xt_bintree
open Xt_core
open Xt_embedding

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Capacity 2 for the exhaustive pass: the smallest capacity that keeps
   the paper's slack assumptions alive (capacity 1 overfills the host on
   some shapes, in both implementations alike), while forcing far more
   splitting and fallback traffic per node than the paper's 16. *)
let exhaustive_capacity = 2

(* Compare every observable of the two cores; [what] is built lazily so
   the exhaustive pass doesn't pay a format call per shape. *)
let same_result ?capacity ~what tree =
  let rf = Theorem1_ref.embed ?capacity tree in
  let r = Theorem1.embed ?capacity tree in
  let e = r.Theorem1.embedding in
  if rf.Theorem1_ref.place <> e.Embedding.place then
    Alcotest.failf "%s: placements diverge from the reference" (what ());
  if
    rf.Theorem1_ref.height <> r.Theorem1.height
    || rf.Theorem1_ref.capacity <> r.Theorem1.capacity
    || rf.Theorem1_ref.fallbacks <> r.Theorem1.fallbacks
    || rf.Theorem1_ref.wide_pieces <> r.Theorem1.wide_pieces
  then Alcotest.failf "%s: run statistics diverge from the reference" (what ());
  rf

(* ---------------- exhaustive: every shape up to 14 nodes ------------- *)

(* Enumerate all binary-tree shapes on [n] nodes in a preorder arena:
   the subtree filling [lo, lo+sz) is rooted at [lo], its left subtree
   takes the next [k] indices for every [k]. The arrays are reused across
   shapes — each recursion step rewrites exactly the cells it owns. *)
let iter_shapes n f =
  let parent = Array.make n (-1) and left = Array.make n (-1) and right = Array.make n (-1) in
  let rec fill lo sz cont =
    if sz = 0 then cont ()
    else
      for k = 0 to sz - 1 do
        if k > 0 then begin
          left.(lo) <- lo + 1;
          parent.(lo + 1) <- lo
        end
        else left.(lo) <- -1;
        if sz - 1 - k > 0 then begin
          right.(lo) <- lo + 1 + k;
          parent.(lo + 1 + k) <- lo
        end
        else right.(lo) <- -1;
        fill (lo + 1) k (fun () -> fill (lo + 1 + k) (sz - 1 - k) cont)
      done
  in
  fill 0 n (fun () -> f (Bintree.of_arrays ~root:0 ~parent ~left ~right))

let catalan n =
  let c = Array.make (n + 1) 0 in
  c.(0) <- 1;
  for i = 1 to n do
    for k = 0 to i - 1 do
      c.(i) <- c.(i) + (c.(k) * c.(i - 1 - k))
    done
  done;
  c.(n)

let exhaustive lo hi () =
  for n = lo to hi do
    let count = ref 0 in
    iter_shapes n (fun t ->
        incr count;
        ignore
          (same_result ~capacity:exhaustive_capacity
             ~what:(fun () -> Format.asprintf "shape %a" Bintree.pp t)
             t));
    check (Printf.sprintf "all %d-node shapes enumerated" n) (catalan n) !count
  done

(* ---------------- qcheck: random cases across budgets ---------------- *)

let families = [ "complete"; "path"; "caterpillar"; "random-bst"; "uniform"; "skewed"; "random-split" ]

type eq_case = { fname : string; size : int; cap : int; seed : int }

let print_case c = Printf.sprintf "%s(%d) capacity=%d seed=%d" c.fname c.size c.cap c.seed

let case_gen =
  QCheck2.Gen.(
    let* fi = int_bound (List.length families - 1) in
    let* size = map (fun k -> 32 + k) (int_bound 8160) in
    let* cap = oneofl [ 2; 4; 16 ] in
    let* seed = int_bound 1_000_000 in
    return { fname = List.nth families fi; size; cap; seed })

(* Hold the budget at [jobs] for the duration of [f]. The pool is sized
   for at least 4 lanes at first use, so raising the budget mid-process
   finds real workers. *)
let with_budget jobs f =
  let saved = Parallel.domain_budget () in
  Parallel.set_domain_budget jobs;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_budget saved) f

(* At capacity 2 some big shapes legitimately overfill the host (the
   paper's slack assumes capacity 16); both cores must then raise the
   same [Invalid_argument] — equivalence extends to the failure mode. *)
let run_eq_case c =
  let tree = (Gen.family c.fname).generate (Rng.make ~seed:c.seed) c.size in
  let outcome f = match f () with r -> Ok r | exception Invalid_argument m -> Error m in
  let rf = outcome (fun () -> Theorem1_ref.embed ~capacity:c.cap tree) in
  List.iter
    (fun jobs ->
      with_budget jobs @@ fun () ->
      let r = outcome (fun () -> Theorem1.embed ~capacity:c.cap ~par:true tree) in
      match (rf, r) with
      | Ok rf, Ok r ->
          if rf.Theorem1_ref.place <> r.Theorem1.embedding.Embedding.place then
            Alcotest.failf "%s at %d jobs: placements diverge" (print_case c) jobs;
          if rf.Theorem1_ref.fallbacks <> r.Theorem1.fallbacks then
            Alcotest.failf "%s at %d jobs: fallbacks diverge" (print_case c) jobs
      | Error m, Error m' ->
          if m <> m' then
            Alcotest.failf "%s at %d jobs: failure modes diverge (%s vs %s)" (print_case c) jobs m m'
      | Ok _, Error m -> Alcotest.failf "%s at %d jobs: only parallel core fails (%s)" (print_case c) jobs m
      | Error m, Ok _ -> Alcotest.failf "%s at %d jobs: only reference fails (%s)" (print_case c) jobs m)
    [ 1; 2; 4 ];
  true

let qcheck_equivalence =
  QCheck2.Test.make ~count:100 ~name:"theorem1: parallel core == reference at jobs {1,2,4}"
    ~print:print_case case_gen run_eq_case

(* ---------------- deterministic large trees -------------------------- *)

(* Sizes where the parallel sweeps genuinely engage (levels of >= 8
   X-tree vertices at the paper's capacity 16). Beyond placements, the
   derived metrics the paper cares about — dilation and load — are
   compared through [Embedding] with the memoised distance oracle. *)
let test_large_budget_sweep () =
  List.iter
    (fun (fname, n) ->
      let tree = (Gen.family fname).generate (Rng.make ~seed:(Hashtbl.hash (fname, n))) n in
      let rf = Theorem1_ref.embed tree in
      List.iter
        (fun jobs ->
          with_budget jobs @@ fun () ->
          let what = Printf.sprintf "%s(%d) at %d jobs" fname n jobs in
          let r = Theorem1.embed ~par:true tree in
          let e = r.Theorem1.embedding in
          if rf.Theorem1_ref.place <> e.Embedding.place then
            Alcotest.failf "%s: placements diverge" what;
          check (what ^ ": height") rf.Theorem1_ref.height r.Theorem1.height;
          check (what ^ ": fallbacks") rf.Theorem1_ref.fallbacks r.Theorem1.fallbacks;
          check (what ^ ": wide pieces") rf.Theorem1_ref.wide_pieces r.Theorem1.wide_pieces;
          let dist = Theorem1.distance_oracle r in
          let ef = Embedding.make ~tree ~host:e.Embedding.host ~place:rf.Theorem1_ref.place in
          check (what ^ ": dilation") (Embedding.dilation ~dist ef) (Embedding.dilation ~dist e);
          check (what ^ ": load") (Embedding.load ef) (Embedding.load e))
        [ 1; 2; 4 ])
    [ ("uniform", 30_000); ("caterpillar", 60_000); ("random-split", 100_000) ]

(* ---------------- separator hot path allocates nothing --------------- *)

let test_prepare_allocation_free () =
  let tree = Gen.uniform (Rng.make ~seed:5) 4093 in
  let ws = Separator.make_ws tree in
  let piece = { Separator.nodes = Bintree.preorder tree; r1 = Bintree.root tree; r2 = None } in
  (* warm up: first call settles any lazy sizing *)
  for _ = 1 to 4 do
    ignore (Separator.prepare ws piece)
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  ignore (Separator.prepare ws piece);
  let allocated = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "prepare allocated %.0f minor words" allocated)
    true (allocated < 256.)

(* Rebinding a workspace to a bigger tree grows in one step and keeps
   serving; stamp generations survive the move. *)
let test_rebind_grows () =
  let small = Gen.complete 63 in
  let big = Gen.uniform (Rng.make ~seed:6) 5000 in
  let ws = Separator.make_ws small in
  let piece t = { Separator.nodes = Bintree.preorder t; r1 = Bintree.root t; r2 = None } in
  ignore (Separator.lemma2 ws (piece small) ~target:20);
  Separator.rebind_ws ws big;
  let s = Separator.lemma2 ws (piece big) ~target:1700 in
  (match Separator.verify_split ws (piece big) s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "split after rebind: %s" msg);
  (* and back down: rebinding to a smaller tree must also be sound *)
  Separator.rebind_ws ws small;
  let s = Separator.lemma1 ws (piece small) ~target:20 in
  match Separator.verify_split ws (piece small) s with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "split after shrink rebind: %s" msg

let suite =
  [
    ("exhaustive shapes <= 11", `Quick, exhaustive 1 11);
    ("exhaustive shapes 12-14", `Slow, exhaustive 12 14);
    QCheck_alcotest.to_alcotest ~long:false qcheck_equivalence;
    ("large trees, budget sweep", `Slow, test_large_budget_sweep);
    ("separator prepare allocation free", `Quick, test_prepare_allocation_free);
    ("workspace rebind", `Quick, test_rebind_grows);
  ]
