open Xt_prelude

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_pow2 () =
  check "2^0" 1 (Bits.pow2 0);
  check "2^10" 1024 (Bits.pow2 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bits.pow2") (fun () -> ignore (Bits.pow2 (-1)))

let test_ilog2 () =
  check "log2 1" 0 (Bits.ilog2 1);
  check "log2 2" 1 (Bits.ilog2 2);
  check "log2 3" 1 (Bits.ilog2 3);
  check "log2 1024" 10 (Bits.ilog2 1024);
  check "log2 1023" 9 (Bits.ilog2 1023)

let test_is_pow2 () =
  checkb "1" true (Bits.is_pow2 1);
  checkb "64" true (Bits.is_pow2 64);
  checkb "63" false (Bits.is_pow2 63);
  checkb "0" false (Bits.is_pow2 0);
  checkb "-4" false (Bits.is_pow2 (-4))

let test_popcount () =
  check "0" 0 (Bits.popcount 0);
  check "255" 8 (Bits.popcount 255);
  check "0b1010" 2 (Bits.popcount 0b1010)

let test_trailing () =
  check "ones of 0111" 3 (Bits.trailing_ones ~width:4 0b0111);
  check "ones of 1110" 0 (Bits.trailing_ones ~width:4 0b1110);
  check "ones of 1111" 4 (Bits.trailing_ones ~width:4 0b1111);
  check "zeros of 1000" 3 (Bits.trailing_zeros ~width:4 0b1000);
  check "zeros of 0000" 4 (Bits.trailing_zeros ~width:4 0);
  check "empty width" 0 (Bits.trailing_ones ~width:0 0)

let test_string_of_bits () =
  Alcotest.(check string) "5 as 4 bits" "0101" (Bits.string_of_bits ~width:4 5);
  Alcotest.(check string) "empty" "" (Bits.string_of_bits ~width:0 0)

let test_gray_bijective () =
  let seen = Hashtbl.create 256 in
  for i = 0 to 255 do
    Hashtbl.replace seen (Bits.gray i) ()
  done;
  check "gray is a bijection on 8 bits" 256 (Hashtbl.length seen)

let test_gray_adjacent () =
  for i = 0 to 254 do
    Alcotest.(check int)
      (Printf.sprintf "gray %d vs %d" i (i + 1))
      1
      (Bits.hamming (Bits.gray i) (Bits.gray (i + 1)))
  done

let test_rng_deterministic () =
  let a = Rng.make ~seed:5 and b = Rng.make ~seed:5 in
  for _ = 1 to 100 do
    check "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.make ~seed:1 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng 3 7 in
    checkb "in range" true (x >= 3 && x <= 7)
  done

let test_shuffle_permutes () =
  let rng = Rng.make ~seed:9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_stats_summary () =
  let s = Stats.of_ints [| 1; 2; 3; 4 |] in
  check "count" 4 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max

let test_stats_empty () =
  let s = Stats.of_floats [||] in
  check "count" 0 s.Stats.count

let test_histogram () =
  let h = Stats.histogram ~width:10 [| 1; 5; 11; 12; 25 |] in
  Alcotest.(check (list (pair int int))) "buckets" [ (0, 2); (10, 2); (20, 1) ] h

let test_histogram_negative () =
  (* Buckets cover [start, start+width): -1 belongs to bucket -10, -10
     to bucket -10, -11 to bucket -20, and 0 to bucket 0. *)
  let h = Stats.histogram ~width:10 [| -1; -10; -11; -20; 0; 9 |] in
  Alcotest.(check (list (pair int int))) "negative buckets" [ (-20, 2); (-10, 2); (0, 2) ] h;
  let h1 = Stats.histogram ~width:1 [| -3; -1; -1; 2 |] in
  Alcotest.(check (list (pair int int))) "width 1" [ (-3, 1); (-1, 2); (2, 1) ] h1

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "median" 50.0 (Stats.percentile 50. xs);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile 100. xs)

let test_percentile_exact () =
  (* Nearest-rank: the result is always one of the samples, never an
     interpolation. *)
  let xs = [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check (float 1e-9)) "p50 of 4" 20.0 (Stats.percentile 50. xs);
  Alcotest.(check (float 1e-9)) "p51 of 4" 30.0 (Stats.percentile 51. xs);
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile 0. xs);
  check "int p99 of 1..100" 99 (Stats.percentile_ints 99. (Array.init 100 (fun i -> i + 1)));
  check "int singleton" 7 (Stats.percentile_ints 90. [| 7 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile") (fun () ->
      ignore (Stats.percentile 50. [||]));
  Alcotest.check_raises "p>100" (Invalid_argument "Stats.percentile") (fun () ->
      ignore (Stats.percentile 101. [| 1. |]))

let test_quantiles () =
  let xs = Array.init 1000 (fun i -> 999 - i) (* unsorted on purpose *) in
  let q = Stats.quantiles_of_ints xs in
  Alcotest.(check (float 1e-9)) "p50" 499.0 q.Stats.p50;
  Alcotest.(check (float 1e-9)) "p90" 899.0 q.Stats.p90;
  Alcotest.(check (float 1e-9)) "p99" 989.0 q.Stats.p99;
  let one = Stats.quantiles_of_floats [| 42. |] in
  Alcotest.(check (float 1e-9)) "singleton p99" 42.0 one.Stats.p99

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_tab_renders () =
  let t = Tab.create ~title:"demo" [ "a"; "bb" ] in
  Tab.add_row t [ "1"; "2" ];
  Tab.add_int_row t "x" [ 3 ];
  let s = Tab.to_string t in
  checkb "has title" true (contains_sub s "demo");
  checkb "mentions header" true (contains_sub s "bb");
  checkb "has padded short row" true (contains_sub s "x ")

let test_tab_row_too_long () =
  let t = Tab.create ~title:"t" [ "a" ] in
  Alcotest.check_raises "too long" (Invalid_argument "Tab.add_row: too many cells") (fun () ->
      Tab.add_row t [ "1"; "2" ])

let suite =
  [
    ("pow2", `Quick, test_pow2);
    ("ilog2", `Quick, test_ilog2);
    ("is_pow2", `Quick, test_is_pow2);
    ("popcount", `Quick, test_popcount);
    ("trailing bits", `Quick, test_trailing);
    ("string_of_bits", `Quick, test_string_of_bits);
    ("gray bijective", `Quick, test_gray_bijective);
    ("gray adjacent", `Quick, test_gray_adjacent);
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng bounds", `Quick, test_rng_bounds);
    ("shuffle permutes", `Quick, test_shuffle_permutes);
    ("stats summary", `Quick, test_stats_summary);
    ("stats empty", `Quick, test_stats_empty);
    ("histogram", `Quick, test_histogram);
    ("histogram negative", `Quick, test_histogram_negative);
    ("percentile", `Quick, test_percentile);
    ("percentile exact", `Quick, test_percentile_exact);
    ("quantiles", `Quick, test_quantiles);
    ("tab renders", `Quick, test_tab_renders);
    ("tab row too long", `Quick, test_tab_row_too_long);
  ]

(* ---------------- Parallel ---------------- *)

let test_parallel_map_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs)
    (Parallel.map ~domains:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "sequential path" [ 2; 4 ] (Parallel.map ~domains:1 (fun x -> 2 * x) [ 1; 2 ])

let test_parallel_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 Fun.id []);
  Alcotest.(check (list int)) "single" [ 7 ] (Parallel.map ~domains:4 Fun.id [ 7 ])

let test_parallel_propagates_exception () =
  checkb "raises" true
    (try
       ignore (Parallel.map ~domains:3 (fun x -> if x = 5 then failwith "boom" else x) (List.init 10 Fun.id));
       false
     with Failure _ -> true)

let test_parallel_actually_computes () =
  let total = Parallel.map ~domains:4 (fun x -> x) (List.init 1000 Fun.id) |> List.fold_left ( + ) 0 in
  check "sum" (999 * 1000 / 2) total

let test_parallel_iter () =
  let counter = Atomic.make 0 in
  Parallel.iter ~domains:4 (fun _ -> Atomic.incr counter) (List.init 50 Fun.id);
  check "all visited" 50 (Atomic.get counter)

let test_recommended_domains () =
  checkb "at least one" true (Parallel.recommended_domains () >= 1);
  checkb "capped" true (Parallel.recommended_domains () <= 8)

(* Pool determinism: a 10k-item map over the pool must equal the
   sequential map, element for element. *)
let test_parallel_large_map_deterministic () =
  let xs = Array.init 10_000 (fun i -> i) in
  let f x = (x * 37) lxor (x lsr 3) in
  let expected = Array.map f xs in
  Alcotest.(check (array int)) "10k items" expected (Parallel.map_array ~domains:4 f xs);
  Alcotest.(check (array int)) "repeat run" expected (Parallel.map_array ~domains:4 f xs)

(* Nested parallel calls dispatch to the pool queue like any other
   batch instead of deadlocking on it. *)
let test_parallel_nested_no_deadlock () =
  let rows =
    Parallel.map ~domains:4
      (fun i -> Parallel.map ~domains:4 (fun j -> (10 * i) + j) [ 0; 1; 2 ])
      (List.init 20 Fun.id)
  in
  List.iteri
    (fun i row -> Alcotest.(check (list int)) "nested row" [ 10 * i; (10 * i) + 1; (10 * i) + 2 ] row)
    rows

(* Failure protocol: with several failing items, the propagated exception
   is deterministically the one sequential execution hits first. *)
let test_parallel_first_exception () =
  for _ = 1 to 20 do
    match
      Parallel.map ~domains:4 (fun x -> if x >= 3 then failwith (string_of_int x) else x)
        (List.init 200 Fun.id)
    with
    | _ -> Alcotest.fail "expected an exception"
    | exception Failure msg -> Alcotest.(check string) "lowest failing item" "3" msg
  done

(* map_reduce combines chunk partials in index order, so even a
   non-commutative combine is deterministic. *)
let test_parallel_map_reduce_ordered () =
  let xs = Array.init 100 (fun i -> i) in
  let expected = Array.fold_left (fun acc x -> acc ^ "," ^ string_of_int x) "" xs in
  Alcotest.(check string) "concat in order" expected
    (Parallel.map_reduce ~domains:4 ~map:string_of_int ~combine:(fun a b -> a ^ "," ^ b) "" xs);
  check "sum" (99 * 100 / 2)
    (Parallel.map_reduce ~domains:4 ~map:Fun.id ~combine:( + ) 0 xs)

let test_parallel_for_covers_all () =
  let n = 5000 in
  let hits = Array.make n 0 in
  Parallel.parallel_for ~domains:4 ~chunk:7 n (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "each index exactly once" true (Array.for_all (fun c -> c = 1) hits)

(* [~domains] only caps the process budget, so tests that want real pool
   traffic raise the budget for their duration. *)
let with_budget jobs f =
  let saved = Parallel.domain_budget () in
  Parallel.set_domain_budget jobs;
  Fun.protect ~finally:(fun () -> Parallel.set_domain_budget saved) f

let test_fork_join () =
  with_budget 4 @@ fun () ->
  let a, b = Parallel.fork_join (fun () -> 21 * 2) (fun () -> "x") in
  check "first thunk" 42 a;
  Alcotest.(check string) "second thunk" "x" b;
  (* both fail: the first thunk's exception wins, as in sequential order *)
  match Parallel.fork_join (fun () -> failwith "A") (fun () -> failwith "B") with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure m -> Alcotest.(check string) "first exception wins" "A" m

let test_fork_cutoff_counters () =
  with_budget 4 @@ fun () ->
  Xt_obs.Obs.enable_metrics ();
  Fun.protect
    ~finally:(fun () ->
      ignore (Xt_obs.Obs.drain ());
      Xt_obs.Obs.disable_metrics ())
  @@ fun () ->
  ignore (Xt_obs.Obs.drain ());
  let r1 = Parallel.fork_cutoff ~size:10 ~cutoff:100 (fun () -> 1) (fun () -> 2) in
  let r2 = Parallel.fork_cutoff ~size:1000 ~cutoff:100 (fun () -> 3) (fun () -> 4) in
  Alcotest.(check (pair int int)) "below cutoff" (1, 2) r1;
  Alcotest.(check (pair int int)) "above cutoff" (3, 4) r2;
  let d = Xt_obs.Obs.snapshot () in
  let count n = Option.value ~default:0 (List.assoc_opt n d.Xt_obs.Obs.counters) in
  check "one fork sequentialized" 1 (count "parallel.forks_sequentialized");
  check "one fork taken" 1 (count "parallel.forks_taken")

let test_fork_cutoff_sequential_budget () =
  with_budget 1 @@ fun () ->
  (* a single-domain budget sequentializes even past the cutoff *)
  let r = Parallel.fork_cutoff ~size:1_000_000 ~cutoff:1 (fun () -> "a") (fun () -> "b") in
  Alcotest.(check (pair string string)) "still both results" ("a", "b") r

let test_slots_per_domain () =
  with_budget 4 @@ fun () ->
  let slots = Parallel.make_slots () in
  let mine = Parallel.slot slots ~default:(fun () -> ref 0) in
  incr mine;
  checkb "same value on repeat" true (mine == Parallel.slot slots ~default:(fun () -> ref 100));
  let n = 64 in
  let seen = Array.make n mine in
  Parallel.parallel_for ~chunk:1 n (fun i ->
      let r = Parallel.slot slots ~default:(fun () -> ref 0) in
      incr r;
      seen.(i) <- r);
  (* each item bumped exactly its own domain's ref: summing over the
     physically distinct refs recovers every increment (+1 for ours) *)
  let distinct =
    Array.fold_left (fun acc r -> if List.memq r acc then acc else r :: acc) [ mine ] seen
  in
  check "every item counted once" (n + 1) (List.fold_left (fun acc r -> acc + !r) 0 distinct)

(* fork_cutoff inside a parallel_for body: the nested batches queue up
   behind the outer one and the join still returns the right values. *)
let test_fork_inside_parallel_region () =
  with_budget 4 @@ fun () ->
  let out = Array.make 8 0 in
  Parallel.parallel_for ~chunk:1 8 (fun i ->
      let a, b = Parallel.fork_cutoff ~size:10 ~cutoff:1 (fun () -> i) (fun () -> 2 * i) in
      out.(i) <- a + b);
  checkb "nested fork results" true (Array.for_all Fun.id (Array.init 8 (fun i -> out.(i) = 3 * i)))

let suite =
  suite
  @ [
      ("parallel map order", `Quick, test_parallel_map_order);
      ("parallel empty/single", `Quick, test_parallel_empty_and_single);
      ("parallel exception", `Quick, test_parallel_propagates_exception);
      ("parallel computes", `Quick, test_parallel_actually_computes);
      ("parallel iter", `Quick, test_parallel_iter);
      ("recommended domains", `Quick, test_recommended_domains);
      ("parallel 10k deterministic", `Quick, test_parallel_large_map_deterministic);
      ("parallel nested", `Quick, test_parallel_nested_no_deadlock);
      ("parallel first exception", `Quick, test_parallel_first_exception);
      ("parallel map_reduce ordered", `Quick, test_parallel_map_reduce_ordered);
      ("parallel_for covers all", `Quick, test_parallel_for_covers_all);
      ("fork_join", `Quick, test_fork_join);
      ("fork_cutoff counters", `Quick, test_fork_cutoff_counters);
      ("fork_cutoff sequential budget", `Quick, test_fork_cutoff_sequential_budget);
      ("per-domain slots", `Quick, test_slots_per_domain);
      ("fork inside parallel region", `Quick, test_fork_inside_parallel_region);
    ]

(* ---------------- CSV ---------------- *)

let test_csv_basic () =
  let t = Tab.create ~title:"T" [ "a"; "b" ] in
  Tab.add_row t [ "1"; "x,y" ];
  Tab.add_row t [ "he said \"hi\""; "2" ];
  let csv = Tab.to_csv t in
  Alcotest.(check string) "csv" "a,b\n1,\"x,y\"\n\"he said \"\"hi\"\"\",2\n" csv;
  Alcotest.(check string) "title" "T" (Tab.title t)

let suite = suite @ [ ("csv rendering", `Quick, test_csv_basic) ]
