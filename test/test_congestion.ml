open Xt_prelude
open Xt_topology
open Xt_bintree
open Xt_core
open Xt_embedding

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------------- Heap ---------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k (k * 10)) [ 5; 1; 4; 2; 3 ];
  check "size" 5 (Heap.size h);
  let popped = List.init 5 (fun _ -> Heap.pop_min h) in
  Alcotest.(check (list (option (pair int int))))
    "sorted"
    [ Some (1, 10); Some (2, 20); Some (3, 30); Some (4, 40); Some (5, 50) ]
    popped;
  checkb "empty" true (Heap.is_empty h);
  Alcotest.(check (option (pair int int))) "pop empty" None (Heap.pop_min h)

let test_heap_duplicates_and_peek () =
  let h = Heap.create () in
  Heap.push h ~key:7 "a";
  Heap.push h ~key:7 "b";
  Heap.push h ~key:3 "c";
  Alcotest.(check (option (pair int string))) "peek" (Some (3, "c")) (Heap.peek_min h);
  ignore (Heap.pop_min h);
  let k1 = Option.map fst (Heap.pop_min h) and k2 = Option.map fst (Heap.pop_min h) in
  Alcotest.(check (option int)) "dup key 1" (Some 7) k1;
  Alcotest.(check (option int)) "dup key 2" (Some 7) k2

let test_heap_random () =
  let rng = Rng.make ~seed:44 in
  let h = Heap.create () in
  let keys = List.init 500 (fun _ -> Rng.int rng 10_000) in
  List.iter (fun k -> Heap.push h ~key:k k) keys;
  let rec drain acc = match Heap.pop_min h with None -> List.rev acc | Some (k, _) -> drain (k :: acc) in
  let drained = drain [] in
  Alcotest.(check (list int)) "heap sorts" (List.sort compare keys) drained

(* ---------------- Congestion ---------------- *)

let embedding_for fname r =
  let tree = (Gen.family fname).generate (Rng.make ~seed:12) (Theorem1.optimal_size r) in
  (Theorem1.embed tree).Theorem1.embedding

let test_baseline_matches_embedding_congestion () =
  let e = embedding_for "uniform" 4 in
  check "same accounting" (Embedding.congestion e) (Congestion.baseline e).Congestion.congestion

let test_route_never_worse () =
  List.iter
    (fun fname ->
      let e = embedding_for fname 5 in
      let base = Congestion.baseline e in
      let smart = Congestion.route e in
      checkb (fname ^ " congestion <= baseline") true
        (smart.Congestion.congestion <= base.Congestion.congestion))
    [ "caterpillar"; "uniform"; "complete"; "path" ]

let test_route_detour_bounded () =
  let e = embedding_for "caterpillar" 5 in
  let dil = Embedding.dilation e in
  let smart = Congestion.route e in
  checkb "maxlen <= dilation + 4" true (smart.Congestion.max_route_length <= dil + 4)

let test_route_total_length_sane () =
  let e = embedding_for "uniform" 4 in
  let base = Congestion.baseline e in
  let smart = Congestion.route e in
  (* smart routes are never shorter in total than shortest paths *)
  checkb "total >= baseline" true
    (smart.Congestion.total_route_length >= base.Congestion.total_route_length)

let test_collapsed_embedding_routes () =
  (* everything on one vertex: no demands at all *)
  let tree = Gen.complete 7 in
  let host = Graph.of_edges ~n:2 [ (0, 1) ] in
  let e = Embedding.make ~tree ~host ~place:(Array.make 7 0) in
  let r = Congestion.route e in
  check "no congestion" 0 r.Congestion.congestion;
  check "no routes" 0 r.Congestion.total_route_length

(* ---------------- Enum ---------------- *)

let test_catalan_values () =
  Alcotest.(check (list int)) "catalan 0..8"
    [ 1; 1; 2; 5; 14; 42; 132; 429; 1430 ]
    (List.map Enum.catalan [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ])

let test_enumeration_counts () =
  List.iter (fun n -> check (Printf.sprintf "n=%d" n) (Enum.catalan n) (Enum.count_shapes n)) [ 1; 2; 3; 4; 5; 6; 7 ]

let test_enumeration_distinct_and_valid () =
  let seen = Hashtbl.create 64 in
  Seq.iter
    (fun t ->
      checkb "valid" true (Bintree.check t = Ok ());
      check "size" 6 (Bintree.n t);
      let sig_ = Codec.to_string t in
      checkb "distinct" true (not (Hashtbl.mem seen sig_));
      Hashtbl.replace seen sig_ ())
    (Enum.all_shapes 6);
  check "all there" 132 (Hashtbl.length seen)

let test_enumeration_guard () =
  checkb "guard" true
    (try
       let (_ : Bintree.t Seq.t) = Enum.all_shapes 19 in
       false
     with Invalid_argument _ -> true)

(* exhaustive Theorem 1 over every 6-node tree at capacity 2 *)
let test_exhaustive_tiny_theorem1 () =
  Seq.iter
    (fun tree ->
      let res = Theorem1.embed ~capacity:2 tree in
      checkb "placed" true (Array.for_all (fun p -> p >= 0) res.Theorem1.embedding.Embedding.place);
      checkb "load" true (Embedding.load res.Theorem1.embedding <= 2);
      checkb "dilation" true
        (Embedding.dilation ~dist:(Theorem1.distance_oracle res) res.Theorem1.embedding <= 3))
    (Enum.all_shapes 6)

let suite =
  [
    ("heap ordering", `Quick, test_heap_ordering);
    ("heap duplicates and peek", `Quick, test_heap_duplicates_and_peek);
    ("heap random", `Quick, test_heap_random);
    ("baseline = embedding congestion", `Quick, test_baseline_matches_embedding_congestion);
    ("route never worse", `Quick, test_route_never_worse);
    ("route detour bounded", `Quick, test_route_detour_bounded);
    ("route total length sane", `Quick, test_route_total_length_sane);
    ("collapsed embedding routes", `Quick, test_collapsed_embedding_routes);
    ("catalan values", `Quick, test_catalan_values);
    ("enumeration counts", `Quick, test_enumeration_counts);
    ("enumeration distinct/valid", `Quick, test_enumeration_distinct_and_valid);
    ("enumeration guard", `Quick, test_enumeration_guard);
    ("exhaustive tiny theorem1", `Slow, test_exhaustive_tiny_theorem1);
  ]
