open Xt_bintree

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let ok_tree t =
  match Bintree.check t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invalid tree: %s" msg

(* ---------------- Builder / structure ---------------- *)

let test_builder () =
  let b = Bintree.Builder.create () in
  let root = Bintree.Builder.add_root b in
  let l = Bintree.Builder.add_left b root in
  let r = Bintree.Builder.add_right b root in
  let ll = Bintree.Builder.add_left b l in
  let t = Bintree.Builder.finish b in
  ok_tree t;
  check "n" 4 (Bintree.n t);
  check "root" root (Bintree.root t);
  Alcotest.(check (option int)) "left" (Some l) (Bintree.left t root);
  Alcotest.(check (option int)) "right" (Some r) (Bintree.right t root);
  Alcotest.(check (option int)) "parent" (Some l) (Bintree.parent t ll);
  Alcotest.(check (list int)) "children" [ l; r ] (Bintree.children t root);
  checkb "leaf" true (Bintree.is_leaf t r);
  checkb "not leaf" false (Bintree.is_leaf t l);
  check "degree root" 2 (Bintree.degree t root);
  check "degree l" 2 (Bintree.degree t l);
  check "edges" 3 (List.length (Bintree.edges t))

let test_builder_errors () =
  let b = Bintree.Builder.create () in
  let root = Bintree.Builder.add_root b in
  ignore (Bintree.Builder.add_left b root);
  Alcotest.check_raises "occupied" (Invalid_argument "Bintree.Builder.add_left: occupied")
    (fun () -> ignore (Bintree.Builder.add_left b root));
  Alcotest.check_raises "double root" (Invalid_argument "Bintree.Builder.add_root: root exists")
    (fun () -> ignore (Bintree.Builder.add_root b))

let test_of_arrays_rejects () =
  (* 1 is nobody's child *)
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Bintree.of_arrays ~root:0 ~parent:[| -1; 0 |] ~left:[| -1; -1 |] ~right:[| -1; -1 |]);
       false
     with Invalid_argument _ -> true)

let test_traversals () =
  (* tree: 0(1(3,_),2) in heap shape *)
  let t = Gen.complete 4 in
  Alcotest.(check (list int)) "preorder" [ 0; 1; 3; 2 ] (Bintree.preorder t);
  Alcotest.(check (list int)) "postorder" [ 3; 1; 2; 0 ] (Bintree.postorder t);
  check "fold count" 4 (Bintree.fold_preorder t ~init:0 ~f:(fun acc _ -> acc + 1))

let test_depth_sizes () =
  let t = Gen.complete 7 in
  let d = Bintree.depth t in
  check "root depth" 0 d.(0);
  check "leaf depth" 2 d.(6);
  let s = Bintree.subtree_sizes t in
  check "root size" 7 s.(0);
  check "internal size" 3 s.(1);
  check "leaf size" 1 s.(5);
  check "height" 2 (Bintree.height t)

let test_stats () =
  let t = Gen.complete 7 in
  let s = Bintree.stats t in
  check "size" 7 s.Bintree.size;
  check "height" 2 s.Bintree.height;
  check "leaves" 4 s.Bintree.leaves;
  check "max degree" 3 s.Bintree.max_degree

(* ---------------- Generators ---------------- *)

let test_generator_sizes () =
  let rng = Xt_prelude.Rng.make ~seed:42 in
  List.iter
    (fun (f : Gen.family) ->
      List.iter
        (fun n ->
          let t = f.generate rng n in
          ok_tree t;
          check (Printf.sprintf "%s size %d" f.name n) n (Bintree.n t))
        [ 1; 2; 3; 7; 10; 64; 100 ])
    Gen.families

let test_path_shape () =
  let t = Gen.path 10 in
  check "height" 9 (Bintree.height t);
  check "leaves" 1 (Bintree.stats t).Bintree.leaves

let test_zigzag_shape () =
  let t = Gen.zigzag 10 in
  check "height" 9 (Bintree.height t)

let test_complete_shape () =
  let t = Gen.complete 15 in
  check "height" 3 (Bintree.height t);
  check "leaves" 8 (Bintree.stats t).Bintree.leaves

let test_caterpillar_has_legs () =
  let t = Gen.caterpillar 20 in
  let stats = Bintree.stats t in
  checkb "taller than balanced" true (stats.Bintree.height > 8);
  checkb "has legs" true (stats.Bintree.leaves > 1)

let test_broom () =
  let t = Gen.broom 32 in
  ok_tree t;
  checkb "has bushy head" true ((Bintree.stats t).Bintree.leaves >= 8)

let test_fibonacci_exact_n () =
  List.iter
    (fun n -> check "size" n (Bintree.n (Gen.fibonacci n)))
    [ 1; 2; 4; 7; 12; 20; 33; 50 ]

let test_uniform_distribution_sane () =
  (* all 5 shapes of 3-node binary trees occur in 500 draws *)
  let rng = Xt_prelude.Rng.make ~seed:5 in
  let shapes = Hashtbl.create 8 in
  for _ = 1 to 500 do
    let t = Gen.uniform rng 3 in
    let sig_ = Format.asprintf "%a" Bintree.pp t in
    Hashtbl.replace shapes sig_ (1 + Option.value ~default:0 (Hashtbl.find_opt shapes sig_))
  done;
  check "catalan(3) = 5 shapes" 5 (Hashtbl.length shapes);
  (* uniform: each shape should get roughly 100 of 500 *)
  Hashtbl.iter (fun _ c -> checkb "roughly uniform" true (c > 50 && c < 170)) shapes

let test_random_bst_log_height () =
  let rng = Xt_prelude.Rng.make ~seed:17 in
  let t = Gen.random_bst rng 1024 in
  checkb "height O(log n)" true (Bintree.height t < 60)

let test_skewed_deeper_than_random () =
  let rng = Xt_prelude.Rng.make ~seed:23 in
  let sk = Gen.skewed_grow rng ~bias:0.95 512 in
  let rd = Gen.random_grow rng 512 in
  checkb "skewed is deeper" true (Bintree.height sk > Bintree.height rd)

let test_family_lookup () =
  checkb "found" true ((Gen.family "uniform").name = "uniform");
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Gen.family "nope"))

(* qcheck: structural invariants over uniform random trees *)
let qcheck_tests =
  let gen_tree =
    QCheck2.Gen.(
      map
        (fun (seed, n) ->
          let rng = Xt_prelude.Rng.make ~seed in
          Gen.uniform rng (n + 1))
        (pair (int_bound 1_000_000) (int_bound 300)))
  in
  [
    QCheck2.Test.make ~count:100 ~name:"uniform trees validate" gen_tree (fun t ->
        match Bintree.check t with Ok () -> true | Error _ -> false);
    QCheck2.Test.make ~count:100 ~name:"edges = n - 1" gen_tree (fun t ->
        List.length (Bintree.edges t) = Bintree.n t - 1);
    QCheck2.Test.make ~count:100 ~name:"max degree <= 3" gen_tree (fun t ->
        (Bintree.stats t).Bintree.max_degree <= 3);
    QCheck2.Test.make ~count:100 ~name:"preorder is a permutation" gen_tree (fun t ->
        let p = List.sort compare (Bintree.preorder t) in
        p = List.init (Bintree.n t) Fun.id);
    QCheck2.Test.make ~count:100 ~name:"postorder is a permutation" gen_tree (fun t ->
        let p = List.sort compare (Bintree.postorder t) in
        p = List.init (Bintree.n t) Fun.id);
    QCheck2.Test.make ~count:100 ~name:"subtree sizes consistent" gen_tree (fun t ->
        let s = Bintree.subtree_sizes t in
        s.(Bintree.root t) = Bintree.n t
        && Array.for_all (fun x -> x >= 1) s);
    QCheck2.Test.make ~count:100 ~name:"depth consistent with parent" gen_tree (fun t ->
        let d = Bintree.depth t in
        List.for_all (fun (u, v) -> d.(v) = d.(u) + 1) (Bintree.edges t));
  ]

let suite =
  [
    ("builder", `Quick, test_builder);
    ("builder errors", `Quick, test_builder_errors);
    ("of_arrays rejects", `Quick, test_of_arrays_rejects);
    ("traversals", `Quick, test_traversals);
    ("depth and sizes", `Quick, test_depth_sizes);
    ("stats", `Quick, test_stats);
    ("generator sizes", `Quick, test_generator_sizes);
    ("path shape", `Quick, test_path_shape);
    ("zigzag shape", `Quick, test_zigzag_shape);
    ("complete shape", `Quick, test_complete_shape);
    ("caterpillar legs", `Quick, test_caterpillar_has_legs);
    ("broom", `Quick, test_broom);
    ("fibonacci exact n", `Quick, test_fibonacci_exact_n);
    ("uniform shapes", `Quick, test_uniform_distribution_sane);
    ("random bst height", `Quick, test_random_bst_log_height);
    ("skewed deeper", `Quick, test_skewed_deeper_than_random);
    ("family lookup", `Quick, test_family_lookup);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* Every generator family yields valid trees of the requested size, for
   random sizes — not just the fixed sizes of test_generator_sizes. *)
let family_qcheck =
  let gen_case =
    QCheck2.Gen.(
      let families = Array.of_list Gen.families in
      let* fi = int_bound (Array.length families - 1) in
      let* n = map (fun k -> k + 1) (int_bound 400) in
      let* seed = int_bound 1_000_000 in
      return (families.(fi), n, seed))
  in
  let print_case ((f : Gen.family), n, seed) = Printf.sprintf "%s n=%d seed=%d" f.name n seed in
  [
    QCheck2.Test.make ~count:200 ~name:"all families: valid tree of exact size" ~print:print_case
      gen_case (fun (f, n, seed) ->
        let t = f.generate (Xt_prelude.Rng.make ~seed) n in
        Bintree.n t = n && Bintree.check t = Ok ());
    QCheck2.Test.make ~count:200 ~name:"all families: height < n" ~print:print_case gen_case
      (fun (f, n, seed) ->
        let t = f.generate (Xt_prelude.Rng.make ~seed) n in
        Bintree.height t < n);
  ]

let suite = suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) family_qcheck
