open Xt_bintree
open Xt_core
open Xt_embedding
open Xt_baseline

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rng () = Xt_prelude.Rng.make ~seed:55

(* ---------------- recursive bisection ---------------- *)

let test_bisection_places_everything () =
  let rng = rng () in
  List.iter
    (fun fname ->
      let t = (Gen.family fname).generate rng (Theorem1.optimal_size 4) in
      let res = Recursive_bisection.embed t in
      checkb (fname ^ " placed") true
        (Array.for_all (fun p -> p >= 0) res.Recursive_bisection.embedding.Embedding.place))
    [ "path"; "uniform"; "caterpillar" ]

let test_bisection_load_grows () =
  (* the whole point: without ADJUST the load exceeds 16 as r grows *)
  let rng = rng () in
  let exceeded = ref false in
  List.iter
    (fun r ->
      let t = Gen.path (Theorem1.optimal_size r) in
      let res = Recursive_bisection.embed t in
      if Embedding.load res.Recursive_bisection.embedding > 16 then exceeded := true;
      ignore rng)
    [ 4; 5; 6 ];
  checkb "load exceeds 16 somewhere" true !exceeded

let test_bisection_same_host_size () =
  let rng = rng () in
  let t = Gen.uniform rng (Theorem1.optimal_size 3) in
  let res = Recursive_bisection.embed t in
  check "host" (Theorem1.optimal_size 3 / 16) (Xt_topology.Xtree.order res.Recursive_bisection.xt)

(* ---------------- order layouts ---------------- *)

let test_order_layouts_valid () =
  let rng = rng () in
  List.iter
    (fun order ->
      let t = Gen.uniform rng (Theorem1.optimal_size 3) in
      let res = Order_layout.embed ~order t in
      checkb "placed" true (Array.for_all (fun p -> p >= 0) res.Order_layout.embedding.Embedding.place);
      checkb "load" true (Embedding.load res.Order_layout.embedding <= 16))
    [ Order_layout.Dfs; Order_layout.Bfs ]

let test_order_layout_dilation_grows () =
  let d_at r =
    let t = Gen.complete (Theorem1.optimal_size r) in
    let res = Order_layout.embed ~order:Order_layout.Bfs t in
    Embedding.dilation res.Order_layout.embedding
  in
  checkb "dilation grows with r" true (d_at 6 > d_at 3)

let test_dfs_layout_chunks () =
  let t = Gen.path 48 in
  let res = Order_layout.embed ~order:Order_layout.Dfs t in
  (* a path in DFS order fills vertices 0,1,2 in order *)
  check "first chunk" 0 res.Order_layout.embedding.Embedding.place.(0);
  check "second chunk" 1 res.Order_layout.embedding.Embedding.place.(16);
  check "third chunk" 2 res.Order_layout.embedding.Embedding.place.(47)

(* ---------------- CBT classics ---------------- *)

let test_cbt_identity_dilation_1 () =
  List.iter
    (fun r ->
      let e = Cbt_embeddings.cbt_into_xtree r in
      check (Printf.sprintf "r=%d" r) 1 (Embedding.dilation e);
      checkb "injective" true (Embedding.is_injective e))
    [ 1; 3; 5 ]

let test_inorder_dilation_2 () =
  List.iter
    (fun r ->
      let e = Cbt_embeddings.inorder_into_hypercube r in
      check (Printf.sprintf "r=%d" r) 2 (Embedding.dilation e);
      checkb "injective" true (Embedding.is_injective e))
    [ 1; 3; 5; 7 ]

let test_inorder_distance_property () =
  List.iter
    (fun r -> checkb (Printf.sprintf "r=%d" r) true (Cbt_embeddings.inorder_distance_bound_holds ~height:r))
    [ 1; 2; 3; 4; 5 ]

let test_inorder_vertex_values () =
  (* root of B_2 -> 100, leftmost leaf "00" -> 001 *)
  check "root" 0b100 (Cbt_embeddings.inorder_vertex ~height:2 0);
  check "leaf 00" 0b001 (Cbt_embeddings.inorder_vertex ~height:2 3);
  check "leaf 11" 0b111 (Cbt_embeddings.inorder_vertex ~height:2 6)

let suite =
  [
    ("bisection places everything", `Quick, test_bisection_places_everything);
    ("bisection load grows", `Slow, test_bisection_load_grows);
    ("bisection host size", `Quick, test_bisection_same_host_size);
    ("order layouts valid", `Quick, test_order_layouts_valid);
    ("order layout dilation grows", `Slow, test_order_layout_dilation_grows);
    ("dfs layout chunks", `Quick, test_dfs_layout_chunks);
    ("cbt identity dilation 1", `Quick, test_cbt_identity_dilation_1);
    ("inorder dilation 2", `Quick, test_inorder_dilation_2);
    ("inorder distance property", `Slow, test_inorder_distance_property);
    ("inorder vertex values", `Quick, test_inorder_vertex_values);
  ]

(* ---------------- grid classics ---------------- *)

let test_grid_into_hypercube_dilation_1 () =
  List.iter
    (fun (rows, cols) ->
      let e = Grid_embeddings.embed ~rows ~cols in
      check (Printf.sprintf "%dx%d dilation" rows cols) 1 (Grid_embeddings.dilation e);
      checkb "injective" true (Grid_embeddings.is_injective e))
    [ (2, 2); (4, 4); (3, 5); (8, 8); (5, 9); (1, 7) ]

let test_grid_embedding_expansion () =
  (* power-of-two grids are optimal: expansion exactly 1 *)
  let e = Grid_embeddings.embed ~rows:4 ~cols:8 in
  Alcotest.(check (float 1e-9)) "expansion 1" 1.0 (Grid_embeddings.expansion e);
  (* otherwise bounded by 4 *)
  let e = Grid_embeddings.embed ~rows:5 ~cols:5 in
  checkb "expansion < 4" true (Grid_embeddings.expansion e < 4.0)

let suite =
  suite
  @ [
      ("grid into hypercube dilation 1", `Quick, test_grid_into_hypercube_dilation_1);
      ("grid embedding expansion", `Quick, test_grid_embedding_expansion);
    ]
