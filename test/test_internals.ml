(* White-box tests for the core machinery: hand-built states driven
   through Moves / Adjust / Split directly, with the intermediate
   invariants asserted (the black-box pipeline tests live in
   test_core.ml). *)

open Xt_bintree
open Xt_core

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A state over a path guest with the first [k] nodes laid at the root. *)
let path_state ~n ~height ~capacity ~rooted =
  let tree = Gen.path n in
  let st = State.create ~tree ~height ~capacity in
  for v = 0 to rooted - 1 do
    State.lay st ~max_level:0 ~node:v ~vertex:0
  done;
  (tree, st)

let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let test_clamp_vertex () =
  let _, st = path_state ~n:40 ~height:2 ~capacity:16 ~rooted:16 in
  (* make the left grandchild branch heavier *)
  let p = State.make_piece st (range 16 25) in
  State.attach st ~vertex:3 p;
  (* clamping the root to floor 1 goes to the lighter child (vertex 2) *)
  check "clamps to lighter child" 2 (Moves.clamp_vertex st ~floor_level:1 0);
  (* vertices already at the floor stay put *)
  check "at floor" 1 (Moves.clamp_vertex st ~floor_level:1 1);
  check "below floor stays" 3 (Moves.clamp_vertex st ~floor_level:1 3)

let test_adjust_balances_hand_built_imbalance () =
  let _, st = path_state ~n:100 ~height:2 ~capacity:16 ~rooted:16 in
  (* the whole 84-node residual hangs on the left child *)
  let piece = State.make_piece st (range 16 99) in
  check "one boundary" 1 (List.length piece.State.bounds);
  State.attach st ~vertex:1 piece;
  check "left heavy" 84 (State.weight_of st 1);
  check "right empty" 0 (State.weight_of st 2);
  Adjust.run st ~round:2 ~a:0;
  let w1 = State.weight_of st 1 and w2 = State.weight_of st 2 in
  check "nothing lost" 84 (w1 + w2);
  checkb
    (Printf.sprintf "balanced (%d vs %d)" w1 w2)
    true
    (abs (w1 - w2) <= 2 * (((84 / 2) + 4) / 9));
  (* separator nodes went to the two horizontally adjacent new leaves,
     at most 4 each (the ADJUST budget) *)
  checkb "donor-side layout within budget" true (st.State.occ.(4) <= 4);
  checkb "receiver-side layout within budget" true (st.State.occ.(5) <= 4);
  match State.check_invariants st with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_adjust_noop_when_balanced () =
  let _, st = path_state ~n:48 ~height:2 ~capacity:16 ~rooted:16 in
  let left = State.make_piece st (range 16 31) in
  State.attach st ~vertex:1 left;
  (* a second piece of the same size on the right; its boundary node is
     16's neighbour so build it from the path tail *)
  let right = State.make_piece st (range 32 47) in
  State.attach st ~vertex:2 right;
  (* the right piece's boundary anchors inside the left piece region, but
     weights are what ADJUST reads *)
  Adjust.run st ~round:2 ~a:0;
  check "left unchanged" 16 (State.weight_of st 1);
  check "right unchanged" 16 (State.weight_of st 2);
  check "nothing laid by adjust" 16 st.State.placed

let test_split_distributes_and_fills () =
  let _, st = path_state ~n:100 ~height:2 ~capacity:16 ~rooted:16 in
  let piece = State.make_piece st (range 16 99) in
  State.attach st ~vertex:0 piece;
  Split.run st ~round:1 ~alpha:0;
  (* the root's attachment list is drained *)
  check "root drained" 0 (List.length (State.pieces_at st 0));
  (* both children are filled to capacity *)
  check "left full" 16 st.State.occ.(1);
  check "right full" 16 st.State.occ.(2);
  (* and the leftover weight is split roughly in half *)
  let w1 = State.weight_of st 1 and w2 = State.weight_of st 2 in
  check "all weight below" 84 (w1 + w2);
  checkb (Printf.sprintf "halved (%d vs %d)" w1 w2) true (abs (w1 - w2) <= 14);
  match State.check_invariants st with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants: %s" e

let test_split_lays_old_anchored_bounds () =
  (* a piece anchored two levels up MUST have its boundary node laid *)
  let _, st = path_state ~n:60 ~height:2 ~capacity:16 ~rooted:16 in
  let piece = State.make_piece st (range 16 59) in
  (* attach it directly at level-1 vertex 1, anchor stays at the root *)
  State.attach st ~vertex:1 piece;
  Split.run st ~round:2 ~alpha:1;
  (* boundary node 16 is now placed (its anchor was at level 0 = i-2) *)
  checkb "boundary node laid" true (st.State.place.(16) >= 0);
  check "vertex 1 drained" 0 (List.length (State.pieces_at st 1))

let test_split_respects_capacity () =
  let _, st = path_state ~n:100 ~height:2 ~capacity:16 ~rooted:16 in
  let piece = State.make_piece st (range 16 99) in
  State.attach st ~vertex:0 piece;
  Split.run st ~round:1 ~alpha:0;
  Array.iter (fun o -> checkb "occupancy bound" true (o <= 16)) st.State.occ

let test_reattach_components_by_anchor () =
  let tree = Gen.complete 31 in
  let st = State.create ~tree ~height:2 ~capacity:16 in
  (* lay the root at X-tree vertex 1 so components anchor there *)
  State.lay st ~max_level:1 ~node:0 ~vertex:1;
  (* nodes 1,2 are the root's children: two separate components *)
  Moves.reattach st ~floor_level:1 ~fallback:2 [ 1; 2 ];
  check "two pieces at anchor" 2 (List.length (State.pieces_at st 1));
  check "none at fallback" 0 (List.length (State.pieces_at st 2))

let test_reattach_to_explicit_vertex () =
  let tree = Gen.complete 31 in
  let st = State.create ~tree ~height:2 ~capacity:16 in
  State.lay st ~max_level:1 ~node:0 ~vertex:1;
  Moves.reattach_to st ~vertex:2 [ 1; 2 ];
  check "both pieces at explicit vertex" 2 (List.length (State.pieces_at st 2));
  check "weight follows" 2 (State.weight_of st 2)

let test_move_whole_lays_designated () =
  let _, st = path_state ~n:40 ~height:2 ~capacity:16 ~rooted:16 in
  let piece = State.make_piece st (range 16 39) in
  State.attach st ~vertex:1 piece;
  State.detach st ~vertex:1 piece;
  Moves.move_whole st ~max_level:2 ~floor_level:2 piece ~dest:5;
  (* the boundary node (16) was laid at the destination *)
  check "designated laid at dest" 5 st.State.place.(16);
  (* the remainder is attached below, anchored at the destination *)
  check "rest attached at dest" 1 (List.length (State.pieces_at st 5));
  check "weight accounted" 24 (State.weight_of st 5)

let suite =
  [
    ("clamp vertex", `Quick, test_clamp_vertex);
    ("adjust balances imbalance", `Quick, test_adjust_balances_hand_built_imbalance);
    ("adjust noop when balanced", `Quick, test_adjust_noop_when_balanced);
    ("split distributes and fills", `Quick, test_split_distributes_and_fills);
    ("split lays old-anchored bounds", `Quick, test_split_lays_old_anchored_bounds);
    ("split respects capacity", `Quick, test_split_respects_capacity);
    ("reattach by anchor", `Quick, test_reattach_components_by_anchor);
    ("reattach to explicit vertex", `Quick, test_reattach_to_explicit_vertex);
    ("move whole lays designated", `Quick, test_move_whole_lays_designated);
  ]
