open Xt_bintree
open Xt_core
open Xt_embedding

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let rng () = Xt_prelude.Rng.make ~seed:101

(* ---------------- Theorem 2 ---------------- *)

let test_t2_injective () =
  let rng = rng () in
  List.iter
    (fun fname ->
      let t = (Gen.family fname).generate rng (Theorem1.optimal_size 3) in
      let res = Theorem2.embed t in
      checkb (fname ^ " injective") true (Embedding.is_injective res.Theorem2.embedding))
    [ "path"; "uniform"; "caterpillar" ]

let test_t2_dilation_11 () =
  let rng = rng () in
  List.iter
    (fun fname ->
      List.iter
        (fun r ->
          let t = (Gen.family fname).generate rng (Theorem1.optimal_size r) in
          let res = Theorem2.embed t in
          let d = Embedding.dilation ~dist:(Theorem2.distance_oracle res) res.Theorem2.embedding in
          checkb (Printf.sprintf "%s r=%d dil %d <= 11" fname r d) true (d <= 11))
        [ 2; 4 ])
    [ "path"; "uniform"; "random-bst" ]

let test_t2_host_height () =
  let rng = rng () in
  let t = Gen.uniform rng (Theorem1.optimal_size 2) in
  let res = Theorem2.embed t in
  check "height r+4" (res.Theorem2.base.Theorem1.height + 4) res.Theorem2.height;
  check "extra levels" 4 res.Theorem2.extra_levels

let test_t2_images_descend_base () =
  (* each node's image lies exactly 4 levels below its base image, in the
     base vertex's subtree *)
  let rng = rng () in
  let t = Gen.uniform rng 200 in
  let res = Theorem2.embed t in
  let base = res.Theorem2.base.Theorem1.embedding.Embedding.place in
  Array.iteri
    (fun v img ->
      let b = base.(v) in
      check "level" (Xt_topology.Xtree.level b + 4) (Xt_topology.Xtree.level img);
      checkb "in subtree" true (Xt_topology.Xtree.is_ancestor b img))
    res.Theorem2.embedding.Embedding.place

(* ---------------- Lemma 3 ---------------- *)

let test_lemma3_chi_is_gray () =
  check "chi 0" 0 (Hypercube_transfer.chi 0);
  check "chi 1" 1 (Hypercube_transfer.chi 1);
  check "chi 2" 3 (Hypercube_transfer.chi 2);
  check "chi 3" 2 (Hypercube_transfer.chi 3)

let test_lemma3_injective () =
  let height = 6 in
  let xt = Xt_topology.Xtree.create ~height in
  let seen = Hashtbl.create 256 in
  for a = 0 to Xt_topology.Xtree.order xt - 1 do
    Hashtbl.replace seen (Hypercube_transfer.map_vertex ~height a) ()
  done;
  check "injective" (Xt_topology.Xtree.order xt) (Hashtbl.length seen)

let test_lemma3_siblings () =
  List.iter
    (fun h -> checkb (Printf.sprintf "h=%d" h) true (Hypercube_transfer.siblings_adjacent ~height:h))
    [ 1; 2; 3; 4; 5; 6; 7 ]

let test_lemma3_distance_bound () =
  List.iter
    (fun h ->
      checkb (Printf.sprintf "h=%d" h) true (Hypercube_transfer.lemma3_distance_bound_holds ~height:h))
    [ 1; 2; 3; 4; 5; 6 ]

(* ---------------- Theorem 3 ---------------- *)

let test_t3_load_and_dilation () =
  let rng = rng () in
  List.iter
    (fun fname ->
      List.iter
        (fun r ->
          let t = (Gen.family fname).generate rng (Theorem1.optimal_size r) in
          let res = Hypercube_transfer.embed t in
          let d = Embedding.dilation ~dist:(Hypercube_transfer.distance_oracle res) res.Hypercube_transfer.embedding in
          checkb (Printf.sprintf "%s r=%d load" fname r) true
            (Embedding.load res.Hypercube_transfer.embedding <= 16);
          checkb (Printf.sprintf "%s r=%d dil %d <= 5" fname r d) true (d <= 5))
        [ 2; 4 ])
    [ "path"; "uniform"; "caterpillar" ]

let test_t3_cube_dimension () =
  let rng = rng () in
  let t = Gen.uniform rng (Theorem1.optimal_size 3) in
  let res = Hypercube_transfer.embed t in
  (* optimal size 16·(2^4-1) = 240 fits in Q_4 slots = 16·2^4 = 256 *)
  check "dim = r+1" (res.Hypercube_transfer.base.Theorem1.height + 1) res.Hypercube_transfer.dim

let test_t3_injective_corollary () =
  let rng = rng () in
  List.iter
    (fun fname ->
      let t = (Gen.family fname).generate rng (Theorem1.optimal_size 3) in
      let res = Hypercube_transfer.embed_injective t in
      checkb "injective" true (Embedding.is_injective res.Hypercube_transfer.embedding);
      let d = Embedding.dilation ~dist:(Hypercube_transfer.distance_oracle res) res.Hypercube_transfer.embedding in
      checkb (Printf.sprintf "%s dil %d <= 8" fname d) true (d <= 8))
    [ "path"; "uniform"; "random-bst" ]

(* ---------------- Theorem 4 ---------------- *)

let test_universal_degree () =
  List.iter
    (fun h ->
      let u = Universal.create h in
      checkb
        (Printf.sprintf "h=%d degree" h)
        true
        (Xt_topology.Graph.max_degree u.Universal.graph <= Universal.degree_bound))
    [ 1; 2; 3; 4 ]

let test_universal_order () =
  let u = Universal.create 3 in
  check "order 16(2^4-1)" 240 (Universal.order u);
  check "slots" 16 u.Universal.slots

let test_universal_spanning_trees () =
  let rng = rng () in
  let u = Universal.create 3 in
  List.iter
    (fun fname ->
      let t = (Gen.family fname).generate rng (Universal.order u) in
      match Universal.spanning_tree_of u t with
      | Ok place ->
          (* injective and complete: a genuine spanning tree *)
          let seen = Hashtbl.create 256 in
          Array.iter (fun p -> Hashtbl.replace seen p ()) place;
          check (fname ^ " covers all slots") (Universal.order u) (Hashtbl.length seen)
      | Error msg -> Alcotest.failf "%s: %s" fname msg)
    [ "path"; "uniform"; "caterpillar"; "random-bst"; "complete" ]

let test_universal_custom_slots () =
  let u = Universal.create ~slots:4 2 in
  check "order" 28 (Universal.order u);
  checkb "degree bound scales down" true
    (Xt_topology.Graph.max_degree u.Universal.graph <= (25 * 4) + 3)

let test_universal_rejects_oversize () =
  let rng = rng () in
  let u = Universal.create 1 in
  let t = Gen.uniform rng (Universal.order u + 1) in
  match Universal.spanning_tree_of u t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversize guest should be rejected"

(* ---------------- Conditions ---------------- *)

let test_conditions_on_identity () =
  (* the CBT identity embedding satisfies (3') trivially: children are in N(a) *)
  let e = Xt_baseline.Cbt_embeddings.cbt_into_xtree 4 in
  let xt = Xt_topology.Xtree.create ~height:4 in
  let rep = Conditions.check xt e in
  check "no 3' violations" 0 rep.Conditions.cond3_violations;
  check "no level gap > 2" 0 rep.Conditions.cond4_violations;
  check "gap is 1" 1 rep.Conditions.max_level_gap

let test_conditions_on_theorem1 () =
  let rng = rng () in
  List.iter
    (fun fname ->
      let t = (Gen.family fname).generate rng (Theorem1.optimal_size 3) in
      let res = Theorem1.embed t in
      let rep = Conditions.check_theorem1 res in
      check (fname ^ " edge count") (Bintree.n t - 1) rep.Conditions.edges;
      check (fname ^ " cond4") 0 rep.Conditions.cond4_violations;
      checkb (fname ^ " cond3 holds almost everywhere") true
        (rep.Conditions.cond3_violations * 100 <= rep.Conditions.edges))
    [ "uniform"; "random-bst"; "caterpillar" ]

(* ---------------- Repair ---------------- *)

let test_repair_preserves_load_and_placement () =
  let rng = rng () in
  let t = Gen.caterpillar (Theorem1.optimal_size 5) in
  ignore rng;
  let res = Theorem1.embed t in
  let repaired, _ = Repair.improve_theorem1 res in
  (* loads are untouched by swapping *)
  Alcotest.(check (array int))
    "loads identical"
    (Embedding.loads res.Theorem1.embedding)
    (Embedding.loads repaired.Theorem1.embedding);
  checkb "all placed" true
    (Array.for_all (fun p -> p >= 0) repaired.Theorem1.embedding.Embedding.place)

let test_repair_never_worsens () =
  let rng = rng () in
  List.iter
    (fun fname ->
      let t = (Gen.family fname).generate rng (Theorem1.optimal_size 5) in
      let res = Theorem1.embed t in
      let _, rep = Repair.improve_theorem1 res in
      checkb (fname ^ " violations do not grow") true
        (rep.Repair.violations_after <= rep.Repair.violations_before);
      checkb (fname ^ " dilation does not grow") true
        (rep.Repair.dilation_after <= max rep.Repair.dilation_before 3))
    [ "path"; "caterpillar"; "uniform"; "skewed" ]

let test_repair_fixes_path_trees () =
  (* path trees are the known worst case for fallbacks; repair clears them *)
  let t = Gen.path (Theorem1.optimal_size 6) in
  let res = Theorem1.embed t in
  let repaired, rep = Repair.improve_theorem1 res in
  check "violations cleared" 0 rep.Repair.violations_after;
  let c = Conditions.check_theorem1 repaired in
  check "independent check agrees" 0 c.Conditions.cond3_violations;
  checkb "dilation back to paper bound" true (rep.Repair.dilation_after <= 3)

let test_repair_identity_on_clean_embedding () =
  let t = Gen.complete (Theorem1.optimal_size 3) in
  let res = Theorem1.embed t in
  let _, rep = Repair.improve_theorem1 res in
  check "nothing to do" 0 rep.Repair.swaps;
  check "still zero" 0 rep.Repair.violations_after

let suite =
  [
    ("T2: injective", `Quick, test_t2_injective);
    ("repair: preserves load", `Quick, test_repair_preserves_load_and_placement);
    ("repair: never worsens", `Quick, test_repair_never_worsens);
    ("repair: fixes path trees", `Quick, test_repair_fixes_path_trees);
    ("repair: identity on clean", `Quick, test_repair_identity_on_clean_embedding);
    ("T2: dilation <= 11", `Slow, test_t2_dilation_11);
    ("T2: host height r+4", `Quick, test_t2_host_height);
    ("T2: images descend base", `Quick, test_t2_images_descend_base);
    ("L3: chi = gray", `Quick, test_lemma3_chi_is_gray);
    ("L3: injective", `Quick, test_lemma3_injective);
    ("L3: siblings adjacent", `Quick, test_lemma3_siblings);
    ("L3: distance bound", `Slow, test_lemma3_distance_bound);
    ("T3: load and dilation", `Slow, test_t3_load_and_dilation);
    ("T3: cube dimension", `Quick, test_t3_cube_dimension);
    ("T3: injective corollary", `Quick, test_t3_injective_corollary);
    ("T4: degree bound", `Slow, test_universal_degree);
    ("T4: order", `Quick, test_universal_order);
    ("T4: spanning trees", `Slow, test_universal_spanning_trees);
    ("T4: custom slots", `Quick, test_universal_custom_slots);
    ("T4: rejects oversize", `Quick, test_universal_rejects_oversize);
    ("conditions: identity embedding", `Quick, test_conditions_on_identity);
    ("conditions: theorem 1", `Quick, test_conditions_on_theorem1);
  ]

(* Lemma 3 structural properties of the chi-map image *)
let lemma3_qcheck =
  let height = 7 in
  let gen_vertex =
    QCheck2.Gen.(map (fun k -> k mod ((2 * 128) - 1)) (int_bound 100_000))
  in
  [
    QCheck2.Test.make ~count:300 ~name:"lemma3: image encodes the level" gen_vertex (fun a ->
        (* the lowest set bit of the image sits at position height - level *)
        let img = Hypercube_transfer.map_vertex ~height a in
        let lowest = img land -img in
        lowest = Xt_prelude.Bits.pow2 (height - Xt_topology.Xtree.level a));
    QCheck2.Test.make ~count:300 ~name:"lemma3: parent-child images within distance 2" gen_vertex
      (fun a ->
        Xt_topology.Xtree.level a >= height
        ||
        let img = Hypercube_transfer.map_vertex ~height a in
        List.for_all
          (fun b ->
            Xt_prelude.Bits.hamming img (Hypercube_transfer.map_vertex ~height b) <= 2)
          [ Xt_topology.Xtree.child a 0; Xt_topology.Xtree.child a 1 ]);
  ]

let suite = suite @ List.map (QCheck_alcotest.to_alcotest ~long:false) lemma3_qcheck
