(* Command-line interface to the X-tree embedding library.

   Subcommands: generate, embed, hypercube, universal, simulate,
   neighbourhood. Every command is deterministic given --seed. *)

open Cmdliner
open Xt_obs
open Xt_prelude
open Xt_topology
open Xt_bintree
open Xt_embedding
open Xt_core
open Xt_baseline
open Xt_netsim
open Xt_serve

(* ---------------- shared arguments ---------------- *)

let family_names = List.map (fun (f : Gen.family) -> f.Gen.name) Gen.families

let family_arg =
  let doc =
    Printf.sprintf "Guest tree family. One of: %s." (String.concat ", " family_names)
  in
  Arg.(value & opt string "uniform" & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)

let size_arg =
  let doc = "Number of guest tree nodes." in
  Arg.(value & opt int 240 & info [ "n"; "size" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Random seed (all randomness is derived from it)." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let capacity_arg =
  let doc = "Host vertex capacity (the paper's load factor is 16)." in
  Arg.(value & opt int 16 & info [ "c"; "capacity" ] ~docv:"CAP" ~doc)

let make_tree family size seed =
  match List.find_opt (fun (f : Gen.family) -> f.Gen.name = family) Gen.families with
  | None ->
      Printf.eprintf "unknown family %S; known: %s\n" family (String.concat ", " family_names);
      exit 2
  | Some f ->
      if size <= 0 then begin
        Printf.eprintf "size must be positive\n";
        exit 2
      end;
      f.Gen.generate (Rng.make ~seed) size

let input_arg =
  let doc = "Read the guest tree from $(docv) (Codec format) instead of generating one." in
  Arg.(value & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)

(* ---------------- telemetry flags ---------------- *)

(* Every subcommand composes with the same telemetry bundle; commands
   thread one [telemetry] value through [obs_begin]/[obs_end] instead of
   individual flags. *)
type telemetry = {
  tm_trace : string option; (* --trace FILE: Chrome trace JSON *)
  tm_metrics : bool; (* --metrics: counters/gauges/histograms on exit *)
  tm_flight : string option; (* --flight FILE: flight-recorder dump on exit *)
  tm_report : bool; (* --trace-report: analytics tables on exit *)
  tm_gc : bool; (* --gc-spans: GC deltas on every span *)
}

let telemetry_term =
  let trace =
    let doc =
      "Record span tracing and write a Chrome trace-event JSON file to $(docv) \
       (load it in Perfetto or chrome://tracing; one track per domain)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc = "Record work metrics and print the merged counters/gauges/histograms on exit." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let flight =
    let doc =
      "Dump the flight recorder (the fixed-size ring of recent span/counter \
       events, on by default) to $(docv) on exit. Set XT_FLIGHT=FILE to get \
       the same dump even when the process dies on a fatal error."
    in
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE" ~doc)
  in
  let report =
    let doc =
      "Record span tracing and print the trace-analytics tables (wall/self \
       time, domain utilization, series) on exit; with $(b,--metrics) the \
       fork-efficiency section is included."
    in
    Arg.(value & flag & info [ "trace-report" ] ~doc)
  in
  let gc =
    let doc = "Sample Gc.quick_stat around every span (minor/major words per span)." in
    Arg.(value & flag & info [ "gc-spans" ] ~doc)
  in
  Term.(
    const (fun tm_trace tm_metrics tm_flight tm_report tm_gc ->
        { tm_trace; tm_metrics; tm_flight; tm_report; tm_gc })
    $ trace $ metrics $ flight $ report $ gc)

let obs_begin tm =
  if tm.tm_metrics then Obs.enable_metrics ();
  if tm.tm_gc then Obs.enable_gc_sampling ();
  if tm.tm_trace <> None || tm.tm_report then Obs.enable_tracing ()

let obs_end tm =
  (match tm.tm_trace with
  | Some file ->
      Obs.write_trace file;
      Printf.printf "trace written to %s\n" file
  | None -> ());
  if tm.tm_report then begin
    let dump = if tm.tm_metrics then Some (Obs.snapshot ()) else None in
    print_string (Trace_report.report ?dump (Obs.events ()))
  end;
  (match tm.tm_flight with
  | Some file ->
      Obs.write_flight file;
      Printf.printf "flight dump written to %s\n" file
  | None -> ());
  if tm.tm_metrics then begin
    let b = Buffer.create 1024 in
    Obs.pp_dump b (Obs.drain ());
    print_string "== metrics ==\n";
    print_string (Buffer.contents b)
  end

let load_tree family size seed input =
  match input with
  | None -> make_tree family size seed
  | Some file -> (
      let ic = open_in file in
      let parsed = Codec.of_channel ic in
      close_in ic;
      match parsed with
      | Ok t -> t
      | Error msg ->
          Printf.eprintf "cannot parse %s: %s\n" file msg;
          exit 2)

(* ---------------- generate ---------------- *)

let generate family size seed output tm =
  obs_begin tm;
  let t = make_tree family size seed in
  let s = Bintree.stats t in
  Printf.printf "family=%s nodes=%d height=%d leaves=%d max-degree=%d\n" family s.Bintree.size
    s.Bintree.height s.Bintree.leaves s.Bintree.max_degree;
  (match output with
  | Some file ->
      let oc = open_out file in
      Codec.to_channel oc t;
      close_out oc;
      Printf.printf "written to %s\n" file
  | None -> ());
  if size <= 64 && output = None then Format.printf "shape: %a@." Bintree.pp t;
  obs_end tm

let output_arg =
  let doc = "Write the generated tree to $(docv) in the Codec format." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let generate_cmd =
  let doc = "Generate a guest binary tree and print its statistics." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const generate $ family_arg $ size_arg $ seed_arg $ output_arg $ telemetry_term)

(* ---------------- embed ---------------- *)

type algorithm = Theorem1_alg | Theorem2_alg | Bisection | Dfs | Bfs

let algorithm_conv =
  let parse = function
    | "theorem1" | "xtree" -> Ok Theorem1_alg
    | "theorem2" | "injective" -> Ok Theorem2_alg
    | "bisection" -> Ok Bisection
    | "dfs" -> Ok Dfs
    | "bfs" -> Ok Bfs
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  Arg.conv (parse, fun fmt a ->
      Format.pp_print_string fmt
        (match a with
        | Theorem1_alg -> "theorem1"
        | Theorem2_alg -> "theorem2"
        | Bisection -> "bisection"
        | Dfs -> "dfs"
        | Bfs -> "bfs"))

let algorithm_arg =
  let doc = "Embedding algorithm: theorem1, theorem2 (injective), bisection, dfs, bfs." in
  Arg.(value & opt algorithm_conv Theorem1_alg & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let weight_trace_arg =
  let doc = "Print the per-round weight-imbalance trace (Theorem 1 only)." in
  Arg.(value & flag & info [ "weight-trace" ] ~doc)

let repair_arg =
  let doc = "Run the local-search repair pass after Theorem 1." in
  Arg.(value & flag & info [ "repair" ] ~doc)

let jobs_arg =
  let doc =
    "Domain budget for the parallel runtime (Theorem 1 sweeps). The \
     embedding is bit-identical for every value; 1 forces the sequential \
     path. Overrides the XT_DOMAINS environment variable."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let print_report name (e : Embedding.t) dist =
  let r = Embedding.report ?dist e in
  Format.printf "%s: %a@." name Embedding.pp_report r

let dot_arg =
  let doc = "Write a Graphviz rendering of the embedding to $(docv) (Theorem 1 only)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let svg_arg =
  let doc = "Write a self-contained SVG rendering of the embedding to $(docv) (Theorem 1 only)." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let embed_run family size seed capacity algorithm trace repair input dot svg jobs tm =
  (match jobs with Some n -> Parallel.set_domain_budget n | None -> ());
  obs_begin tm;
  let t = load_tree family size seed input in
  (match algorithm with
  | Theorem1_alg ->
      let res = Theorem1.embed ~capacity ~record_trace:trace t in
      let res =
        if repair then begin
          let res, rep = Repair.improve_theorem1 res in
          Printf.printf
            "repair: %d swaps, (3') violations %d -> %d, dilation %d -> %d\n"
            rep.Repair.swaps rep.Repair.violations_before rep.Repair.violations_after
            rep.Repair.dilation_before rep.Repair.dilation_after;
          res
        end
        else res
      in
      print_report "theorem1" res.Theorem1.embedding (Some (Theorem1.distance_oracle res));
      Printf.printf "host: X(%d) with %d vertices; fallbacks=%d\n" res.Theorem1.height
        (Xtree.order res.Theorem1.xt) res.Theorem1.fallbacks;
      let cond = Conditions.check_theorem1 res in
      Printf.printf "condition (3'): %d/%d edges ok; max level gap %d\n"
        (cond.Conditions.edges - cond.Conditions.cond3_violations)
        cond.Conditions.edges cond.Conditions.max_level_gap;
      (match dot with
      | Some file ->
          let oc = open_out file in
          output_string oc (Dot.embedding res.Theorem1.xt res.Theorem1.embedding);
          close_out oc;
          Printf.printf "graphviz written to %s\n" file
      | None -> ());
      (match svg with
      | Some file ->
          let oc = open_out file in
          output_string oc (Svg.embedding res.Theorem1.xt res.Theorem1.embedding);
          close_out oc;
          Printf.printf "svg written to %s\n" file
      | None -> ());
      (match res.Theorem1.trace with
      | Some tr ->
          Array.iteri
            (fun i row ->
              Printf.printf "round %2d: %s\n" (i + 1)
                (String.concat " " (List.map string_of_int (Array.to_list row))))
            tr.Theorem1.rounds
      | None -> ())
  | Theorem2_alg ->
      let res = Theorem2.embed ~capacity t in
      print_report "theorem2" res.Theorem2.embedding (Some (Theorem2.distance_oracle res));
      Printf.printf "host: X(%d)\n" res.Theorem2.height
  | Bisection ->
      let res = Recursive_bisection.embed ~capacity t in
      print_report "bisection" res.Recursive_bisection.embedding None
  | Dfs ->
      let res = Order_layout.embed ~capacity ~order:Order_layout.Dfs t in
      print_report "dfs-layout" res.Order_layout.embedding None
  | Bfs ->
      let res = Order_layout.embed ~capacity ~order:Order_layout.Bfs t in
      print_report "bfs-layout" res.Order_layout.embedding None);
  obs_end tm

let embed_cmd =
  let doc = "Embed a guest tree into an X-tree and report dilation/load/expansion." in
  Cmd.v
    (Cmd.info "embed" ~doc)
    Term.(
      const embed_run $ family_arg $ size_arg $ seed_arg $ capacity_arg $ algorithm_arg
      $ weight_trace_arg $ repair_arg $ input_arg $ dot_arg $ svg_arg $ jobs_arg
      $ telemetry_term)

(* ---------------- embed-batch ---------------- *)

let batch_input_arg =
  let doc = "Read guest trees from $(docv): one Codec string per line, blank lines skipped." in
  Arg.(required & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)

let read_batch file =
  let ic = open_in file in
  let trees = ref [] and lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line <> "" then
         match Codec.of_string line with
         | Ok t -> trees := t :: !trees
         | Error msg ->
             Printf.eprintf "%s:%d: %s\n" file !lineno msg;
             exit 2
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !trees

let embed_batch_run file capacity algorithm jobs tm =
  (match jobs with Some n -> Parallel.set_domain_budget n | None -> ());
  obs_begin tm;
  let trees = read_batch file in
  let embed_one =
    match algorithm with
    | Theorem1_alg ->
        let cache = Theorem1.make_cache ~capacity:4096 () in
        fun t ->
          let r = Theorem1.embed ~capacity ~cache t in
          (r.Theorem1.embedding, r.Theorem1.xt, r.Theorem1.height)
    | Theorem2_alg ->
        let cache = Theorem1.make_cache ~capacity:4096 () in
        fun t ->
          let r = Theorem2.embed ~capacity ~cache t in
          (r.Theorem2.embedding, r.Theorem2.xt, r.Theorem2.height)
    | Bisection ->
        let cache = Recursive_bisection.make_cache ~capacity:4096 () in
        fun t ->
          let r = Recursive_bisection.embed ~capacity ~cache t in
          (r.Recursive_bisection.embedding, r.Recursive_bisection.xt, r.Recursive_bisection.height)
    | Dfs | Bfs ->
        let order = if algorithm = Dfs then Order_layout.Dfs else Order_layout.Bfs in
        let cache = Order_layout.make_cache ~capacity:4096 () in
        fun t ->
          let r = Order_layout.embed ~capacity ~cache ~order t in
          (r.Order_layout.embedding, r.Order_layout.xt, r.Order_layout.height)
  in
  (* Dedupe by canonical shape, embed each unique shape once on the domain
     pool (the cache misses), then serve every input line from the cache in
     input order. Codec numbers nodes in preorder, so every served
     embedding is bit-identical to an uncached run on that line. *)
  let seen = Hashtbl.create 64 in
  let unique =
    List.filter
      (fun t ->
        let key = Fingerprint.canonical_key t in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      trees
  in
  ignore (Parallel.map (fun t -> ignore (embed_one t)) unique);
  List.iteri
    (fun i t ->
      let e, xt, height = embed_one t in
      let dist = Xtree.distance xt in
      Printf.printf "%d: n=%d dilation=%d load=%d host=X(%d)\n" i (Bintree.n t)
        (Embedding.dilation ~dist e) (Embedding.load e) height)
    trees;
  Printf.printf "batch: trees=%d unique=%d\n" (List.length trees) (List.length unique);
  obs_end tm

let embed_batch_cmd =
  let doc =
    "Embed many guest trees (one Codec string per input line), deduplicating \
     structurally repeated trees through the canonical-shape cache."
  in
  Cmd.v
    (Cmd.info "embed-batch" ~doc)
    Term.(
      const embed_batch_run $ batch_input_arg $ capacity_arg $ algorithm_arg $ jobs_arg
      $ telemetry_term)

(* ---------------- hypercube ---------------- *)

let hypercube_run family size seed capacity injective tm =
  obs_begin tm;
  let t = make_tree family size seed in
  let res =
    if injective then Hypercube_transfer.embed_injective ~capacity t
    else Hypercube_transfer.embed ~capacity t
  in
  print_report
    (if injective then "theorem3-injective" else "theorem3")
    res.Hypercube_transfer.embedding
    (Some (Hypercube_transfer.distance_oracle res));
  Printf.printf "host: Q_%d with %d vertices\n" res.Hypercube_transfer.dim
    (Hypercube.order res.Hypercube_transfer.cube);
  obs_end tm

let injective_arg =
  let doc = "Use the injective corollary (4 extra dimensions, dilation <= 8)." in
  Arg.(value & flag & info [ "injective" ] ~doc)

let hypercube_cmd =
  let doc = "Embed a guest tree into a hypercube via Theorem 3 / Lemma 3." in
  Cmd.v
    (Cmd.info "hypercube" ~doc)
    Term.(
      const hypercube_run $ family_arg $ size_arg $ seed_arg $ capacity_arg $ injective_arg
      $ telemetry_term)

(* ---------------- universal ---------------- *)

let height_arg =
  let doc = "X-tree height for the universal graph." in
  Arg.(value & opt int 3 & info [ "height" ] ~docv:"H" ~doc)

let universal_run height family seed tm =
  obs_begin tm;
  let u = Universal.create height in
  Printf.printf "universal graph: n=%d edges=%d max-degree=%d (paper bound %d)\n"
    (Universal.order u)
    (Graph.m u.Universal.graph)
    (Graph.max_degree u.Universal.graph)
    Universal.degree_bound;
  let t = make_tree family (Universal.order u) seed in
  (match Universal.spanning_tree_of u t with
  | Ok _ -> Printf.printf "%s tree with %d nodes: realised as a spanning tree\n" family (Universal.order u)
  | Error msg -> Printf.printf "%s tree: FAILED (%s)\n" family msg);
  obs_end tm

let universal_cmd =
  let doc = "Build the Theorem 4 universal graph and check a spanning tree." in
  Cmd.v (Cmd.info "universal" ~doc)
    Term.(const universal_run $ height_arg $ family_arg $ seed_arg $ telemetry_term)

(* ---------------- simulate ---------------- *)

let workload_arg =
  let names = List.map (fun (w : Workload.spec) -> w.Workload.name) Workload.workloads in
  let doc = Printf.sprintf "Workload: %s." (String.concat ", " names) in
  Arg.(value & opt string "reduction" & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc)

let link_capacity_arg =
  let doc = "Messages a directed link can carry per cycle." in
  Arg.(value & opt int 1 & info [ "link-capacity" ] ~docv:"K" ~doc)

let service_rate_arg =
  let doc = "Messages a vertex CPU can complete per cycle (0 = unlimited)." in
  Arg.(value & opt int 0 & info [ "service-rate" ] ~docv:"K" ~doc)

let suite_arg =
  let doc = "Replay every workload (natively and embedded) and print one table." in
  Arg.(value & flag & info [ "suite" ] ~doc)

let shards_arg =
  let doc =
    "Partition the simulated host across N domain lanes (cycle-barrier \
     sharding). Results are bit-identical at every setting; only the wall \
     clock changes."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let simulate_suite ~family ~size ~link_capacity ~service_rate ~shards t
    (res : Theorem1.result) =
  let cases =
    List.concat_map
      (fun (w : Workload.spec) ->
        [ Workload.native_case w t; Workload.embedded_case w res.Theorem1.embedding ])
      Workload.workloads
  in
  let outcomes = Workload.run_suite ~link_capacity ?service_rate ~shards cases in
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf "workload suite on %s (n=%d), host X(%d)" family size
           res.Theorem1.height)
      [ "workload"; "native"; "x-tree"; "slowdown"; "hops"; "max queue"; "max inbox" ]
  in
  let rec rows = function
    | (native : Workload.outcome) :: (embedded : Workload.outcome) :: rest ->
        Tab.add_row tab
          [
            native.Workload.case.Workload.workload.Workload.name;
            string_of_int native.Workload.cycles;
            string_of_int embedded.Workload.cycles;
            Printf.sprintf "%.2f" (float_of_int embedded.Workload.cycles /. float_of_int (max 1 native.Workload.cycles));
            string_of_int embedded.Workload.hops;
            string_of_int embedded.Workload.max_queue;
            string_of_int embedded.Workload.max_inbox;
          ];
        rows rest
    | _ -> ()
  in
  rows outcomes;
  Tab.print tab

let simulate_run family size seed workload link_capacity service_rate suite shards tm =
  let service_rate = if service_rate = 0 then None else Some service_rate in
  obs_begin tm;
  let t = make_tree family size seed in
  let res = Theorem1.embed t in
  (* the shard count is deliberately absent from the output: the
     @shard-smoke alias byte-diffs runs at different --shards values *)
  (if suite then simulate_suite ~family ~size ~link_capacity ~service_rate ~shards t res
   else
     match
       List.find_opt (fun (w : Workload.spec) -> w.Workload.name = workload) Workload.workloads
     with
     | None ->
         Printf.eprintf "unknown workload %S\n" workload;
         exit 2
     | Some w ->
         let native = Workload.run_native ~link_capacity ?service_rate ~shards w t in
         let sim, embedded =
           Workload.run_on ~link_capacity ?service_rate ~shards w res.Theorem1.embedding
         in
         Printf.printf "%s on %s (n=%d): native=%d cycles, on X(%d)=%d cycles, slowdown %.2fx\n"
           workload family size native res.Theorem1.height embedded
           (float_of_int embedded /. float_of_int (max 1 native));
         let lats = Sim.latencies sim in
         if Array.length lats > 0 then begin
           let q = Stats.quantiles_of_ints lats in
           let busiest = Stats.max_int_array (Sim.link_loads sim) in
           Printf.printf
             "latency cycles: p50=%.0f p90=%.0f p99=%.0f max=%d; busiest link carried %d, max queue %d, max inbox %d\n"
             q.Stats.p50 q.Stats.p90 q.Stats.p99
             (Stats.max_int_array lats) busiest (Sim.max_link_queue sim)
             (Sim.max_inbox_queue sim)
         end);
  obs_end tm

let simulate_cmd =
  let doc = "Simulate a tree workload natively and on the embedded X-tree network." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate_run $ family_arg $ size_arg $ seed_arg $ workload_arg
      $ link_capacity_arg $ service_rate_arg $ suite_arg $ shards_arg $ telemetry_term)

(* ---------------- neighbourhood ---------------- *)

let vertex_arg =
  let doc = "X-tree vertex address as a binary string (or 'e' for the root)." in
  Arg.(value & opt string "e" & info [ "v"; "vertex" ] ~docv:"ADDR" ~doc)

let neighbourhood_run height vertex tm =
  obs_begin tm;
  let xt = Xtree.create ~height in
  let a = Xtree.of_string vertex in
  if not (Xtree.mem xt a) then begin
    Printf.eprintf "vertex %s not in X(%d)\n" vertex height;
    exit 2
  end;
  let n = Xtree.neighbourhood xt a in
  Printf.printf "N(%s) in X(%d): %d vertices (paper bound: self + %d)\n" vertex height
    (List.length n) Xtree.neighbourhood_closure_bound;
  List.iter (fun b -> Printf.printf "  %s\n" (Xtree.to_string b)) n;
  obs_end tm

let neighbourhood_cmd =
  let doc = "Print the Figure 2 neighbourhood N(a) of an X-tree vertex." in
  Cmd.v (Cmd.info "neighbourhood" ~doc)
    Term.(const neighbourhood_run $ height_arg $ vertex_arg $ telemetry_term)

(* ---------------- exact ---------------- *)

let host_conv =
  let parse s =
    let fail () = Error (`Msg (Printf.sprintf "unknown host %S (xtree:H, cbt:H, cube:D, ccc:D, butterfly:D, grid:RxC)" s)) in
    match String.split_on_char ':' s with
    | [ "xtree"; h ] -> ( try Ok (Xtree.graph (Xtree.create ~height:(int_of_string h))) with _ -> fail ())
    | [ "cbt"; h ] -> ( try Ok (Cbt.graph (Cbt.create ~height:(int_of_string h))) with _ -> fail ())
    | [ "cube"; d ] -> ( try Ok (Hypercube.graph (Hypercube.create ~dim:(int_of_string d))) with _ -> fail ())
    | [ "ccc"; d ] -> ( try Ok (Ccc.graph (Ccc.create ~dim:(int_of_string d))) with _ -> fail ())
    | [ "butterfly"; d ] -> ( try Ok (Butterfly.graph (Butterfly.create ~dim:(int_of_string d))) with _ -> fail ())
    | [ "grid"; rc ] -> (
        match String.split_on_char 'x' rc with
        | [ r; c ] -> (
            try Ok (Grid.graph (Grid.create ~rows:(int_of_string r) ~cols:(int_of_string c)))
            with _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  Arg.conv (parse, fun fmt _ -> Format.pp_print_string fmt "<host>")

let host_arg =
  let doc = "Host network: xtree:H, cbt:H, cube:D, ccc:D, butterfly:D or grid:RxC." in
  Arg.(value & opt host_conv (Xtree.graph (Xtree.create ~height:3)) & info [ "host" ] ~docv:"HOST" ~doc)

let max_dilation_arg =
  let doc = "Give up beyond this dilation." in
  Arg.(value & opt int 6 & info [ "max-dilation" ] ~docv:"D" ~doc)

let exact_run family size seed host max_dilation tm =
  obs_begin tm;
  let t = make_tree family size seed in
  if size > 15 then
    Printf.eprintf "warning: branch and bound is exponential; %d nodes may take very long\n" size;
  (match Exact.optimal_dilation ~max_dilation ~guest:t ~host () with
  | Some d -> Printf.printf "optimal injective dilation of %s (n=%d): %d\n" family size d
  | None -> Printf.printf "no injective embedding within dilation %d (or guest too large)\n" max_dilation);
  obs_end tm

let exact_cmd =
  let doc = "Exact minimum-dilation embedding of a small tree (branch & bound)." in
  Cmd.v
    (Cmd.info "exact" ~doc)
    Term.(const exact_run $ family_arg $ Arg.(value & opt int 12 & info [ "n"; "size" ] ~docv:"N" ~doc:"Guest size (keep small).") $ seed_arg $ host_arg $ max_dilation_arg $ telemetry_term)

(* ---------------- route ---------------- *)

let route_run height src dst tm =
  obs_begin tm;
  let xt = Xtree.create ~height in
  let a = Xtree.of_string src and b = Xtree.of_string dst in
  if not (Xtree.mem xt a && Xtree.mem xt b) then begin
    Printf.eprintf "vertices not in X(%d)\n" height;
    exit 2
  end;
  Printf.printf "analytic distance: %d (BFS: %d)\n" (Xtree.analytic_distance a b) (Xtree.distance xt a b);
  if a <> b then begin
    let path = Xtree.route xt ~src:a ~dst:b in
    Printf.printf "route: %s\n" (String.concat " -> " (List.map Xtree.to_string path))
  end;
  obs_end tm

let src_arg = Arg.(value & opt string "e" & info [ "from" ] ~docv:"ADDR" ~doc:"Source address.")
let dst_arg = Arg.(value & opt string "e" & info [ "to" ] ~docv:"ADDR" ~doc:"Destination address.")

let route_cmd =
  let doc = "Table-free greedy routing between two X-tree addresses." in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(const route_run $ height_arg $ src_arg $ dst_arg $ telemetry_term)

(* ---------------- weighted ---------------- *)

let budget_arg =
  let doc = "Weight budget per host vertex." in
  Arg.(value & opt int 128 & info [ "budget" ] ~docv:"W" ~doc)

let max_weight_arg =
  let doc = "Node weights are drawn skewed from 1..$(docv)." in
  Arg.(value & opt int 32 & info [ "max-weight" ] ~docv:"W" ~doc)

let weighted_run family size seed budget max_weight tm =
  obs_begin tm;
  let t = make_tree family size seed in
  let rng = Rng.make ~seed:(seed + 1) in
  let weights =
    Array.init size (fun _ ->
        let u = Rng.float rng 1.0 in
        1 + int_of_float (float_of_int (max_weight - 1) *. u *. u *. u))
  in
  let res = Weighted.embed ~budget ~weights t in
  let dil = Embedding.dilation ~dist:Xtree.analytic_distance res.Weighted.embedding in
  Printf.printf
    "weighted: total=%d host=X(%d) budget=%d max-vertex=%d imbalance=%.2f dilation=%d\n"
    res.Weighted.total_weight res.Weighted.height budget res.Weighted.max_vertex_weight
    (Weighted.imbalance res) dil;
  let blind = Theorem1.embed ~height:res.Weighted.height t in
  Printf.printf "weight-blind theorem1 on the same host: max-vertex=%d\n"
    (Weighted.evaluate_placement ~weights blind.Theorem1.embedding);
  obs_end tm

let weighted_cmd =
  let doc = "Weight-aware embedding of a tree with heterogeneous node costs." in
  Cmd.v
    (Cmd.info "weighted" ~doc)
    Term.(
      const weighted_run $ family_arg $ size_arg $ seed_arg $ budget_arg $ max_weight_arg
      $ telemetry_term)

(* ---------------- trace (analytics) ---------------- *)

let trace_report_run file deterministic out =
  let contents =
    try
      let ic = open_in_bin file in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  match Trace_report.of_trace_json contents with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 2
  | Ok evs -> (
      let report = Trace_report.report ~deterministic evs in
      match out with
      | None -> print_string report
      | Some path -> (
          try
            let oc = open_out_bin path in
            output_string oc report;
            close_out oc
          with Sys_error msg ->
            Printf.eprintf "%s\n" msg;
            exit 2))

let trace_cmd =
  let report_cmd =
    let doc =
      "Analyse an exported Chrome trace (as written by $(b,--trace)): per-span \
       wall vs. self time, per-domain utilization and idle gaps, counter \
       series, and GC pressure when spans were recorded with $(b,--gc-spans)."
    in
    let file =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.json"
             ~doc:"Chrome trace-event JSON file.")
    in
    let deterministic =
      let doc =
        "Project away schedule-dependent data (time columns, per-domain rows, \
         parallel.* events): the remaining tables are byte-identical across \
         --jobs values for a deterministic computation."
      in
      Arg.(value & flag & info [ "deterministic" ] ~doc)
    in
    let out =
      let doc =
        "Write the report to $(docv) instead of stdout, so it can be archived \
         next to the trace it analyses."
      in
      Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
    in
    Cmd.v (Cmd.info "report" ~doc) Term.(const trace_report_run $ file $ deterministic $ out)
  in
  let doc = "Trace analytics over exported Chrome traces." in
  Cmd.group (Cmd.info "trace" ~doc) [ report_cmd ]

(* ---------------- serve / loadgen ---------------- *)

let cache_entries_arg =
  let doc = "Shape-cache capacity in entries." in
  Arg.(value & opt int 4096 & info [ "cache-entries" ] ~docv:"N" ~doc)

let cache_bytes_arg =
  let doc = "Shape-cache byte bound (default unlimited)." in
  Arg.(value & opt (some int) None & info [ "cache-bytes" ] ~docv:"BYTES" ~doc)

let snapshot_arg =
  let doc =
    "Persist the shape cache to $(docv): restored at startup, flushed atomically \
     at EOF (and periodically with $(b,--snapshot-every)), so a restarted server \
     resumes warm."
  in
  Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)

let snapshot_every_arg =
  let doc = "Also flush the snapshot every $(docv) requests (0: at EOF only)." in
  Arg.(value & opt int 0 & info [ "snapshot-every" ] ~docv:"N" ~doc)

let serve_run capacity cache_entries cache_bytes snapshot snapshot_every batch status
    socket max_conns jobs tm =
  (match jobs with Some n -> Parallel.set_domain_budget n | None -> ());
  obs_begin tm;
  let config =
    {
      Serve.capacity;
      cache_entries;
      cache_bytes;
      snapshot;
      snapshot_every;
      max_batch = batch;
      status;
    }
  in
  (match socket with
  | Some path -> Serve.listen ~config ?max_conns ~path ()
  | None ->
      set_binary_mode_in stdin true;
      set_binary_mode_out stdout true;
      let s = Serve.run ~config stdin stdout in
      if status then
        Printf.eprintf "serve: done requests=%d batches=%d errors=%d loaded=%d saved=%d\n%!"
          s.Serve.requests s.Serve.batches s.Serve.errors s.Serve.loaded s.Serve.saved);
  obs_end tm

let serve_cmd =
  let doc =
    "Run a persistent embedding service: length-framed Codec requests in, framed \
     placements out (stdin/stdout by default, or a Unix socket), all sharing one \
     shape cache across the whole run."
  in
  let socket =
    let doc = "Listen on a Unix-domain socket at $(docv) instead of stdin/stdout." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let max_conns =
    let doc = "With $(b,--socket): exit after $(docv) connections (default: serve forever)." in
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let batch =
    let doc = "Embed at most $(docv) buffered requests at once." in
    Arg.(value & opt int 512 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let status =
    let doc = "Print a per-batch status line (with cache stats) on stderr." in
    Arg.(value & flag & info [ "status" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const serve_run $ capacity_arg $ cache_entries_arg $ cache_bytes_arg $ snapshot_arg
      $ snapshot_every_arg $ batch $ status $ socket $ max_conns $ jobs_arg
      $ telemetry_term)

(* Decode and pretty-print one reply in the embed-batch line format, so a
   [loadgen --print] replay byte-diffs against [embed-batch] on the same
   stream. The host X-tree is rebuilt once per distinct height. *)
let print_reply () =
  let hosts = Hashtbl.create 4 in
  fun (r : Loadgen.reply) ->
    match Wire.decode_response r.payload with
    | Error msg -> Printf.printf "%d: error %s\n" r.Loadgen.index msg
    | Ok resp ->
        let t =
          match Codec.of_string r.Loadgen.request with
          | Ok t -> t
          | Error msg ->
              Printf.eprintf "loadgen: unparsable request %d: %s\n" r.Loadgen.index msg;
              exit 2
        in
        let xt =
          match Hashtbl.find_opt hosts resp.Wire.height with
          | Some xt -> xt
          | None ->
              let xt = Xtree.create ~height:resp.Wire.height in
              Hashtbl.add hosts resp.Wire.height xt;
              xt
        in
        let e = Embedding.make ~tree:t ~host:(Xtree.graph xt) ~place:resp.Wire.place in
        Printf.printf "%d: n=%d dilation=%d load=%d host=X(%d)\n" r.Loadgen.index
          (Bintree.n t)
          (Embedding.dilation ~dist:(Xtree.distance xt) e)
          (Embedding.load e) resp.Wire.height

let loadgen_run requests shapes size skew seed window out codec_out replay_file connect
    capacity cache_entries snapshot snapshot_every print_lines jobs tm =
  (match jobs with Some n -> Parallel.set_domain_budget n | None -> ());
  obs_begin tm;
  let stream =
    match replay_file with
    | Some file -> In_channel.with_open_bin file Loadgen.read_requests
    | None ->
        let pool = Loadgen.make_shapes ~seed ~count:shapes ~size in
        Loadgen.skewed_stream ~seed ~shapes:pool ~requests ~skew
  in
  (match codec_out with
  | Some file ->
      Out_channel.with_open_text file (fun oc ->
          List.iter
            (fun p ->
              output_string oc p;
              output_char oc '\n')
            stream)
  | None -> ());
  (match out with
  | Some file ->
      Out_channel.with_open_bin file (fun oc -> Loadgen.write_requests oc stream);
      Printf.printf "loadgen: wrote %d requests (%d shapes, size %d) to %s\n"
        (List.length stream) shapes size file
  | None ->
      let on_reply = if print_lines then Some (print_reply ()) else None in
      let replay ch = Loadgen.replay ~window ?on_reply ~requests:stream ch in
      let outcome =
        match connect with
        | Some path ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
            set_binary_mode_in ic true;
            set_binary_mode_out oc true;
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                let o = replay (ic, oc) in
                flush oc;
                Unix.shutdown fd Unix.SHUTDOWN_SEND;
                o)
        | None ->
            (* Spawn this executable as the server child over a pipe pair;
               closing its stdin ends the session. *)
            let args =
              [ "xtree"; "serve"; "--capacity"; string_of_int capacity;
                "--cache-entries"; string_of_int cache_entries ]
              @ (match snapshot with Some f -> [ "--snapshot"; f ] | None -> [])
              @
              if snapshot_every > 0 then
                [ "--snapshot-every"; string_of_int snapshot_every ]
              else []
            in
            (* cloexec so the child inherits only the ends dup'd onto its
               stdin/stdout — holding a copy of req_w would stop it from
               ever seeing EOF. *)
            let req_r, req_w = Unix.pipe ~cloexec:true () in
            let resp_r, resp_w = Unix.pipe ~cloexec:true () in
            let pid =
              Unix.create_process Sys.executable_name (Array.of_list args) req_r resp_w
                Unix.stderr
            in
            Unix.close req_r;
            Unix.close resp_w;
            let ic = Unix.in_channel_of_descr resp_r in
            let oc = Unix.out_channel_of_descr req_w in
            set_binary_mode_in ic true;
            set_binary_mode_out oc true;
            let o = replay (ic, oc) in
            close_out oc;
            ignore (Unix.waitpid [] pid);
            close_in_noerr ic;
            o
      in
      if print_lines then begin
        (* Mirror embed-batch's trailer so the outputs byte-diff. *)
        let seen = Hashtbl.create 64 in
        List.iter
          (fun p ->
            match Codec.of_string p with
            | Ok t ->
                let key = Fingerprint.canonical_key t in
                if not (Hashtbl.mem seen key) then Hashtbl.add seen key ()
            | Error _ -> ())
          stream;
        Printf.printf "batch: trees=%d unique=%d\n" (List.length stream)
          (Hashtbl.length seen)
      end;
      if outcome.Loadgen.sent > 0 then begin
        let q = Stats.quantiles_of_ints outcome.Loadgen.rtt_ns in
        let wall_s = float_of_int outcome.Loadgen.wall_ns /. 1e9 in
        Printf.eprintf
          "loadgen: requests=%d errors=%d wall_ms=%.1f rps=%.0f p50_us=%.1f p90_us=%.1f \
           p99_us=%.1f\n\
           %!"
          outcome.Loadgen.sent outcome.Loadgen.errors (wall_s *. 1e3)
          (float_of_int outcome.Loadgen.sent /. wall_s)
          (q.Stats.p50 /. 1e3) (q.Stats.p90 /. 1e3) (q.Stats.p99 /. 1e3)
      end);
  obs_end tm

let loadgen_cmd =
  let doc =
    "Generate a shape-skewed request stream and replay it against an embedding \
     server (a spawned $(b,xtree serve) child by default, or $(b,--connect) to a \
     socket), reporting requests/sec and RTT quantiles on stderr."
  in
  let requests =
    let doc = "Number of requests to generate." in
    Arg.(value & opt int 256 & info [ "r"; "requests" ] ~docv:"N" ~doc)
  in
  let shapes =
    let doc = "Size of the distinct-shape pool the stream draws from." in
    Arg.(value & opt int 16 & info [ "shapes" ] ~docv:"K" ~doc)
  in
  let skew =
    let doc =
      "Shape skew: 0 samples the pool uniformly, larger values concentrate \
       requests on a hot subset."
    in
    Arg.(value & opt float 1.0 & info [ "skew" ] ~docv:"S" ~doc)
  in
  let window =
    let doc = "Requests in flight per window (each window ends in a flush marker)." in
    Arg.(value & opt int 64 & info [ "window" ] ~docv:"W" ~doc)
  in
  let out =
    let doc = "Write the framed request stream to $(docv) and exit (no replay)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let codec_out =
    let doc =
      "Also write the stream as Codec lines to $(docv) — the same requests in \
       $(b,embed-batch) input format, for equivalence checks."
    in
    Arg.(value & opt (some string) None & info [ "codec-out" ] ~docv:"FILE" ~doc)
  in
  let replay_file =
    let doc = "Replay the framed request file $(docv) instead of generating a stream." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let connect =
    let doc = "Connect to a running server's Unix socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"PATH" ~doc)
  in
  let print_lines =
    let doc = "Print one embed-batch-format line per response on stdout." in
    Arg.(value & flag & info [ "print" ] ~doc)
  in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      const loadgen_run $ requests $ shapes $ size_arg $ skew $ seed_arg $ window $ out
      $ codec_out $ replay_file $ connect $ capacity_arg $ cache_entries_arg
      $ snapshot_arg $ snapshot_every_arg $ print_lines $ jobs_arg $ telemetry_term)

(* ---------------- main ---------------- *)

let () =
  (* XT_FLIGHT=FILE arms an at_exit flight-recorder dump: it fires on
     normal exit, on [exit 2] error paths, and after uncaught exceptions
     reach cmdliner — the post-mortem channel for wedged or dying runs. *)
  (match Sys.getenv_opt "XT_FLIGHT" with
  | Some file when file <> "" -> at_exit (fun () -> Obs.write_flight file)
  | _ -> ());
  let doc = "Simulating binary trees on X-trees (Monien, SPAA 1991)" in
  let info = Cmd.info "xtree" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            embed_cmd;
            embed_batch_cmd;
            serve_cmd;
            loadgen_cmd;
            hypercube_cmd;
            universal_cmd;
            simulate_cmd;
            neighbourhood_cmd;
            exact_cmd;
            route_cmd;
            weighted_cmd;
            trace_cmd;
          ]))
