(* Online embedding: the recursion tree of a running program unfolds one
   call at a time, and the network placement must keep up.

   The incremental policy ("place each new call next to its parent, or at
   the nearest free processor") keeps the load bound but lets dilation
   drift upwards; an occasional offline rebuild with the paper's
   Theorem 1 algorithm snaps it back to 3.

   Run with:  dune exec examples/online_growth.exe *)

open Xt_core

let () =
  let rng = Xt_prelude.Rng.make ~seed:99 in
  let d = Dynamic.create () in
  let slots = ref [ Dynamic.root d; Dynamic.root d ] in
  let grow_one () =
    let idx = Xt_prelude.Rng.int rng (List.length !slots) in
    let parent = List.nth !slots idx in
    match Dynamic.add_child d ~parent with
    | v -> slots := v :: v :: List.filteri (fun i _ -> i <> idx) !slots
    | exception Invalid_argument _ -> slots := List.filteri (fun i _ -> i <> idx) !slots
  in
  Printf.printf "%8s %12s %6s %12s\n" "calls" "dilation" "load" "host";
  let rebuild_at = [ 1000; 4000 ] in
  List.iter
    (fun checkpoint ->
      while Dynamic.size d < checkpoint do
        grow_one ()
      done;
      Printf.printf "%8d %12d %6d %11s\n" (Dynamic.size d) (Dynamic.dilation d) (Dynamic.load d)
        (Printf.sprintf "X(%d)" (Dynamic.host_height d));
      if List.mem checkpoint rebuild_at then begin
        Dynamic.rebuild d;
        Printf.printf "%8s %12d %6d %11s   <- rebuild (Theorem 1 + repair)\n" "" (Dynamic.dilation d)
          (Dynamic.load d)
          (Printf.sprintf "X(%d)" (Dynamic.host_height d))
      end)
    [ 200; 500; 1000; 2000; 4000; 6000 ];
  Printf.printf
    "\nIncremental placement drifts; periodic rebuilds restore the offline\n\
     dilation-3 guarantee while the tree keeps growing.\n"
