(* The paper's motivation, made concrete: "binary trees reflect ... the
   type of program structure found in common divide-and-conquer
   algorithms", and dilation "corresponds to the number of clock cycles
   needed in the X-tree network to communicate between formerly adjacent
   processors".

   This example runs divide-and-conquer communication patterns (reduce,
   broadcast, all-reduce) over unbalanced recursion trees, both on an
   ideal machine shaped like the recursion tree itself and on a real
   X-tree machine hosting it through the Theorem 1 embedding, and compares
   clock cycles.

   Run with:  dune exec examples/divide_and_conquer.exe *)

open Xt_bintree
open Xt_core
open Xt_netsim

(* An unbalanced recursion tree, as produced by quicksort-style splits:
   each call splits its range at a random pivot. *)
let quicksort_recursion_tree rng n =
  let b = Bintree.Builder.create ~capacity:n () in
  let root = Bintree.Builder.add_root b in
  let rec split node range =
    if range >= 2 then begin
      let pivot = 1 + Xt_prelude.Rng.int rng (range - 1) in
      let left = pivot and right = range - pivot in
      if left >= 1 && Bintree.Builder.size b < n then begin
        let l = Bintree.Builder.add_left b node in
        split l left
      end;
      if right >= 1 && Bintree.Builder.size b < n then begin
        let r = Bintree.Builder.add_right b node in
        split r right
      end
    end
  in
  split root n;
  Bintree.Builder.finish b

let () =
  let rng = Xt_prelude.Rng.make ~seed:7 in
  let n = Theorem1.optimal_size 5 in
  let tree = quicksort_recursion_tree rng (2 * n) in
  (* the recursion tree has as many nodes as calls; pad/trim to n by
     regenerating at the right size *)
  let tree = if Bintree.n tree >= n then tree else Gen.uniform rng n in
  Printf.printf "recursion tree: %d calls, depth %d\n" (Bintree.n tree) (Bintree.height tree);

  let res = Theorem1.embed tree in
  Printf.printf "hosted on X(%d): %d processors, 16 calls each\n\n" res.Theorem1.height
    (Xt_topology.Xtree.order res.Theorem1.xt);

  Printf.printf "%-16s %14s %14s %10s\n" "pattern" "ideal (cycles)" "X-tree (cycles)" "slowdown";
  List.iter
    (fun (w : Workload.spec) ->
      let native = Workload.run_native w tree in
      let embedded = Workload.run_embedded w res.Theorem1.embedding in
      Printf.printf "%-16s %14d %14d %9.2fx\n" w.Workload.name native embedded
        (float_of_int embedded /. float_of_int (max 1 native)))
    Workload.workloads;

  print_newline ();
  Printf.printf
    "The slowdown stays a small constant because Theorem 1 bounds the\n\
     dilation by 3 regardless of how unbalanced the recursion is.\n"
