(* Weighted recursion trees: not every call costs the same.

   The paper charges one unit per guest node ("the load factor measures
   the computation work ... done by a single processor"); in a real
   divide-and-conquer run the work per call varies wildly — a quicksort
   call's cost is proportional to its range. This example embeds such a
   weighted recursion tree twice:

   - with the weight-blind Theorem 1 algorithm (balances node COUNTS), and
   - with the weight-aware embedder (balances node COSTS under a hard
     per-processor budget),

   and compares the busiest processor of each.

   Run with:  dune exec examples/weighted_recursion.exe *)

open Xt_bintree
open Xt_core

(* A quicksort recursion tree over [range] elements with random pivots;
   the weight of a call is the size of its range (partitioning cost). *)
let recursion_tree rng range =
  let b = Bintree.Builder.create () in
  let weights = ref [] in
  let root = Bintree.Builder.add_root b in
  let rec split node range =
    weights := (node, range) :: !weights;
    if range >= 2 then begin
      let pivot = 1 + Xt_prelude.Rng.int rng (range - 1) in
      let l = Bintree.Builder.add_left b node in
      split l pivot;
      let r = Bintree.Builder.add_right b node in
      split r (range - pivot)
    end
  in
  split root range;
  let tree = Bintree.Builder.finish b in
  let w = Array.make (Bintree.n tree) 1 in
  List.iter (fun (node, range) -> w.(node) <- range) !weights;
  (tree, w)

let () =
  let rng = Xt_prelude.Rng.make ~seed:11 in
  let tree, weights = recursion_tree rng 2048 in
  let total = Array.fold_left ( + ) 0 weights in
  Printf.printf "recursion tree: %d calls, total work %d, heaviest call %d\n" (Bintree.n tree)
    total
    (Array.fold_left max 0 weights);

  let budget = 4096 in
  let aware = Weighted.embed ~budget ~weights tree in
  Printf.printf "\nweight-aware embedding into X(%d), budget %d per processor:\n"
    aware.Weighted.height budget;
  Printf.printf "  busiest processor: %d  (imbalance %.2f)\n" aware.Weighted.max_vertex_weight
    (Weighted.imbalance aware);
  Printf.printf "  dilation: %d\n"
    (Xt_embedding.Embedding.dilation ~dist:Xt_topology.Xtree.analytic_distance
       aware.Weighted.embedding);

  (* the same machine, balanced by node COUNTS: capacity = ceil(n / vertices) *)
  let vertices = Xt_topology.Xtree.order aware.Weighted.xt in
  let capacity = (Bintree.n tree + vertices - 1) / vertices in
  let blind = Theorem1.embed ~capacity ~height:aware.Weighted.height tree in
  Printf.printf "\ncount-balanced Theorem 1 (capacity %d) on the same machine:\n" capacity;
  Printf.printf "  busiest processor: %d\n"
    (Weighted.evaluate_placement ~weights blind.Theorem1.embedding);
  Printf.printf "  dilation: %d\n"
    (Xt_embedding.Embedding.dilation ~dist:(Theorem1.distance_oracle blind) blind.Theorem1.embedding);

  Printf.printf
    "\nTheorem 1 optimises communication (dilation 3) for unit costs; the\n\
     weighted extension trades some dilation for a hard per-processor\n\
     work budget when call costs are skewed.\n"
