(* Theorem 3: the X-tree result transfers to hypercubes.

   The classical inorder embedding handles COMPLETE binary trees in a
   hypercube with dilation 2 (shown below as the baseline); Lemma 3 + the
   X-tree embedding handle ARBITRARY binary trees in their optimal
   hypercube with load 16 and dilation 4 — something the inorder trick
   cannot do at all.

   Run with:  dune exec examples/hypercube_transfer_demo.exe *)

open Xt_bintree
open Xt_core
open Xt_embedding
open Xt_baseline

let () =
  (* Baseline: complete trees via inorder, dilation 2. *)
  Printf.printf "complete trees, inorder embedding into the optimal hypercube:\n";
  List.iter
    (fun r ->
      let e = Cbt_embeddings.inorder_into_hypercube r in
      Printf.printf "  B_%d -> Q_%d: dilation %d, injective %b\n" r (r + 1) (Embedding.dilation e)
        (Embedding.is_injective e))
    [ 3; 5; 7 ];

  (* Lemma 3 distance property, verified exhaustively. *)
  Printf.printf "\nLemma 3 (X(r) -> Q_(r+1), distance <= Delta + 1): ";
  Printf.printf "%s\n"
    (if List.for_all (fun h -> Hypercube_transfer.lemma3_distance_bound_holds ~height:h) [ 2; 4; 6 ]
     then "verified for heights 2, 4, 6"
     else "VIOLATED");

  (* Theorem 3 on trees the inorder trick cannot touch. *)
  let rng = Xt_prelude.Rng.make ~seed:3 in
  Printf.printf "\narbitrary trees via Theorem 1 + Lemma 3 (optimal hypercube, load 16):\n";
  List.iter
    (fun fname ->
      let n = Theorem1.optimal_size 5 in
      let tree = (Gen.family fname).generate rng n in
      let res = Hypercube_transfer.embed tree in
      let dist = Hypercube_transfer.distance_oracle res in
      Printf.printf "  %-12s n=%d -> Q_%d: dilation %d, load %d\n" fname n
        res.Hypercube_transfer.dim
        (Embedding.dilation ~dist res.Hypercube_transfer.embedding)
        (Embedding.load res.Hypercube_transfer.embedding);
      let inj = Hypercube_transfer.embed_injective tree in
      let dist = Hypercube_transfer.distance_oracle inj in
      Printf.printf "  %-12s   injective corollary -> Q_%d: dilation %d\n" "" inj.Hypercube_transfer.dim
        (Embedding.dilation ~dist inj.Hypercube_transfer.embedding))
    [ "path"; "caterpillar"; "uniform" ]
