(* Theorem 4 in action: one fixed "universal" machine graph of degree at
   most 415 that contains EVERY binary tree of the right size as a
   spanning tree — so any tree-shaped computation can be mapped onto it
   with zero communication stretching.

   Run with:  dune exec examples/universal_graph.exe *)

open Xt_bintree
open Xt_core
open Xt_topology

let () =
  let height = 4 in
  let u = Universal.create height in
  Printf.printf "universal graph G_n for n = %d (X-tree height %d, 16 slots per vertex)\n"
    (Universal.order u) height;
  Printf.printf "  edges: %d\n" (Graph.m u.Universal.graph);
  Printf.printf "  max degree: %d  (paper bound: %d)\n"
    (Graph.max_degree u.Universal.graph)
    Universal.degree_bound;

  (* check the paper's degree argument piece by piece: per-vertex clique
     (15) + 16 slots for each of <= 25 neighbouring vertices *)
  let rng = Xt_prelude.Rng.make ~seed:1 in
  let n = Universal.order u in
  Printf.printf "\nembedding every tree family at n = %d as a spanning tree:\n" n;
  List.iter
    (fun (f : Gen.family) ->
      let tree = f.Gen.generate rng n in
      match Universal.spanning_tree_of u tree with
      | Ok place ->
          let distinct = Hashtbl.create n in
          Array.iter (fun p -> Hashtbl.replace distinct p ()) place;
          Printf.printf "  %-12s ok (%d nodes onto %d distinct slots)\n" f.Gen.name n
            (Hashtbl.length distinct)
      | Error msg -> Printf.printf "  %-12s FAILED: %s\n" f.Gen.name msg)
    Gen.families;

  Printf.printf
    "\nEvery family above is a spanning tree of the same fixed graph —\n\
     the machine never needs rewiring for a different recursion shape.\n"
