(* Quickstart: embed an arbitrary binary tree into its optimal X-tree.

   Run with:  dune exec examples/quickstart.exe *)

open Xt_bintree
open Xt_core
open Xt_embedding

let () =
  (* 1. A guest: a uniformly random binary tree with the paper's exact
     size for height 5, n = 16·(2^6 - 1) = 1008. *)
  let rng = Xt_prelude.Rng.make ~seed:2026 in
  let n = Theorem1.optimal_size 5 in
  let tree = Gen.uniform rng n in
  let s = Bintree.stats tree in
  Printf.printf "guest: %d nodes, height %d, %d leaves\n" s.Bintree.size s.Bintree.height
    s.Bintree.leaves;

  (* 2. Embed it with the paper's algorithm (Theorem 1). *)
  let res = Theorem1.embed tree in
  Printf.printf "host: X(%d) with %d vertices of capacity 16\n" res.Theorem1.height
    (Xt_topology.Xtree.order res.Theorem1.xt);

  (* 3. Inspect the quality: the paper proves dilation 3 and load 16. *)
  let report = Embedding.report ~dist:(Theorem1.distance_oracle res) res.Theorem1.embedding in
  Format.printf "quality: %a@." Embedding.pp_report report;
  assert (report.Embedding.load <= 16);

  (* 4. Where did a specific node go? Addresses are binary strings. *)
  let node = Bintree.root tree in
  Printf.printf "the guest root lives at X-tree vertex %S\n"
    (Xt_topology.Xtree.to_string res.Theorem1.embedding.Embedding.place.(node));

  (* 5. The structural invariant behind Theorem 4: images of adjacent
     guest nodes stay inside the Figure 2 neighbourhood. *)
  let cond = Conditions.check_theorem1 res in
  Printf.printf "condition (3'): %d of %d edges inside N(a); max level gap %d\n"
    (cond.Conditions.edges - cond.Conditions.cond3_violations)
    cond.Conditions.edges cond.Conditions.max_level_gap
